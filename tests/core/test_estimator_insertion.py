"""Unit tests for table insertion: free slots, standard replacement, and
the white + compare supplement (paper Section 3.3)."""

import math

import pytest

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import StubCompare, beacon, build_estimator, unicast_attempt


def tiny_config(**overrides):
    defaults = dict(
        table_size=2,
        ku=5,
        kb=2,
        alpha_outer=0.0,
        alpha_beacon=0.0,
        use_standard_replacement=True,
        use_white_compare=True,
        evict_etx_threshold=3.0,
        immature_evict_expected=6,
    )
    defaults.update(overrides)
    return EstimatorConfig(**defaults)


def fill_table_with_good_links(est, addrs=(1, 2)):
    for addr in addrs:
        beacon(est, addr, seq=0)
        beacon(est, addr, seq=1)  # mature at ETX 1.0


def test_free_slot_insert_unconditional():
    est, _, _ = build_estimator(tiny_config(), compare=StubCompare(False))
    beacon(est, 1, seq=0, white=False, route_info=False)
    assert 1 in est.table


def test_full_table_good_entries_no_compare_rejects():
    compare = StubCompare(False)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0)  # white bit set, routed — but compare says no
    assert 9 not in est.table
    assert compare.queries == 1
    assert est.stats.rejected_no_compare == 1


def test_white_compare_insert_replaces_random_entry():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0)
    assert 9 in est.table
    assert len(est.table) == 2
    assert est.stats.inserts_compare == 1


def test_white_bit_required():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0, white=False)
    assert 9 not in est.table
    assert est.stats.rejected_no_white == 1
    assert compare.queries == 0  # white bit gates the query itself


def test_white_requirement_can_be_disabled():
    compare = StubCompare(True)
    est, _, _ = build_estimator(
        tiny_config(require_white_bit=False), compare=compare
    )
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0, white=False)
    assert 9 in est.table


def test_non_routing_packets_never_trigger_compare():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0, route_info=False)
    assert 9 not in est.table
    assert compare.queries == 0


def test_pinned_entries_never_flushed_by_compare():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    fill_table_with_good_links(est)
    est.pin(1)
    est.pin(2)
    beacon(est, 9, seq=0)
    assert 9 not in est.table
    assert est.stats.rejected_all_pinned == 1
    assert set(est.table.addresses()) == {1, 2}


def test_pin_ablation_allows_flushing_pinned():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(honor_pin_bit=False), compare=compare)
    fill_table_with_good_links(est)
    est.pin(1)
    est.pin(2)
    beacon(est, 9, seq=0)
    assert 9 in est.table


def test_young_immature_entries_protected_from_compare_flush():
    compare = StubCompare(True)
    est, _, _ = build_estimator(tiny_config(), compare=compare)
    beacon(est, 1, seq=0)  # immature, age 1
    beacon(est, 2, seq=0)  # immature, age 1
    beacon(est, 9, seq=0)  # table full of young entries → nothing flushable
    assert 9 not in est.table


def test_standard_replacement_evicts_measured_bad_entry():
    est, _, _ = build_estimator(tiny_config(), compare=StubCompare(False))
    fill_table_with_good_links(est, addrs=(1,))
    # Make entry 2 mature and bad (ETX 5 > threshold 3).
    beacon(est, 2, seq=0)
    beacon(est, 2, seq=1)
    for _ in range(5):
        unicast_attempt(est, 2, acked=False)
    assert est.link_quality(2) == pytest.approx(5.0)
    beacon(est, 9, seq=0, white=False, route_info=False)  # plain newcomer
    assert 9 in est.table
    assert 2 not in est.table
    assert est.stats.inserts_evict_worst == 1


def test_standard_replacement_evicts_stale_immature():
    config = tiny_config(
        bidirectional_beacons=True, default_prr_out=None, immature_evict_expected=4
    )
    est, _, _ = build_estimator(config, compare=StubCompare(False))
    for seq in range(5):  # entry 1 ages without ever maturing (no footer)
        beacon(est, 1, seq=seq)
    beacon(est, 2, seq=0)  # fills the table (young immature)
    beacon(est, 9, seq=0, white=False, route_info=False)
    assert 9 in est.table
    assert 1 not in est.table  # the stale one went, not the young one
    assert 2 in est.table


def test_standard_replacement_keeps_good_entries():
    est, _, _ = build_estimator(tiny_config(), compare=StubCompare(False))
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0, white=False, route_info=False)
    assert 9 not in est.table
    assert set(est.table.addresses()) == {1, 2}


def test_compare_evict_worst_ablation():
    compare = StubCompare(True)
    est, _, _ = build_estimator(
        tiny_config(compare_evict="worst"), compare=compare
    )
    fill_table_with_good_links(est, addrs=(1,))
    # entry 2: mature at ETX 2.5 (below standard threshold, above entry 1).
    beacon(est, 2, seq=0)
    beacon(est, 2, seq=1)
    for acked in (True, True, False, False, False):
        unicast_attempt(est, 2, acked)
    beacon(est, 9, seq=0)
    assert 9 in est.table
    assert 2 not in est.table  # the worst went, deterministically
    assert 1 in est.table


def test_without_compare_provider_no_insert():
    est, _, _ = build_estimator(tiny_config(), compare=None)
    fill_table_with_good_links(est)
    beacon(est, 9, seq=0)
    assert 9 not in est.table


def test_invalid_compare_evict_rejected():
    with pytest.raises(ValueError):
        EstimatorConfig(compare_evict="nonsense")


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        EstimatorConfig(ku=0)
    with pytest.raises(ValueError):
        EstimatorConfig(kb=0)
