"""Tests for the estimator's debug snapshot."""

import math

import pytest

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import beacon, build_estimator, unicast_attempt


def test_snapshot_reflects_state():
    est, _, _ = build_estimator(EstimatorConfig(kb=2, ku=5, alpha_outer=0.0, alpha_beacon=0.0))
    beacon(est, 5, seq=0)
    beacon(est, 5, seq=1)
    beacon(est, 9, seq=0)
    est.pin(5)
    for acked in (True, True, False):
        unicast_attempt(est, 5, acked)

    rows = est.table_snapshot()
    assert [r["addr"] for r in rows] == [5, 9]

    row5 = rows[0]
    assert row5["pinned"] is True
    assert row5["mature"] is True
    assert row5["etx"] == pytest.approx(1.0)
    assert row5["prr_in"] == pytest.approx(1.0)
    assert row5["prr_out"] is None
    assert row5["uni_window"] == (2, 3)

    row9 = rows[1]
    assert row9["mature"] is False
    assert math.isinf(row9["etx"])
    assert row9["beacon_window"] == (1, 0)


def test_snapshot_empty_table():
    est, _, _ = build_estimator()
    assert est.table_snapshot() == []
