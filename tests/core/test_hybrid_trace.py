"""Exact-arithmetic worked example of the hybrid estimator (paper Figure 5).

The figure in the paper shows the two sample streams — windowed unicast ETX
(ku = 5) and windowed beacon PRR → EWMA → ETX (kb = 2) — feeding one outer
EWMA.  The scanned figure's numbers are partially garbled, but its visible
transitions (5.0 → 3.1 on a 1.25 sample; 2.1 → ≈1.7 on a 1.25 sample) pin
the outer history weight at 0.5, which is what we use.  This test replays a
trace with the same semantics and checks every intermediate value by hand.
"""

import math

import pytest

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import beacon, build_estimator, unicast_attempt

NBR = 9

CONFIG = EstimatorConfig(
    table_size=10,
    ku=5,
    kb=2,
    alpha_outer=0.5,
    alpha_beacon=0.8,
    use_ack_stream=True,
    bidirectional_beacons=False,
)


def test_full_hybrid_trace():
    est, client, _ = build_estimator(CONFIG)

    # --- two beacons complete the first kb=2 window: PRR 1.0 ------------
    beacon(est, NBR, seq=0)
    assert math.isinf(est.link_quality(NBR))  # window not yet complete
    beacon(est, NBR, seq=1)
    # prr_ewma seeds at 1.0 → beacon ETX sample 1.0 → outer seeds at 1.0
    assert est.link_quality(NBR) == pytest.approx(1.0)

    # --- unicast window 1: 4 of 5 acked → sample 5/4 = 1.25 -------------
    for acked in (True, True, False, True, True):
        unicast_attempt(est, NBR, acked)
    # outer: 0.5·1.0 + 0.5·1.25 = 1.125
    assert est.link_quality(NBR) == pytest.approx(1.125)

    # --- unicast window 2: 1 of 5 acked → sample 5/1 = 5.0 --------------
    for acked in (True, False, False, False, False):
        unicast_attempt(est, NBR, acked)
    # outer: 0.5·1.125 + 0.5·5.0 = 3.0625
    assert est.link_quality(NBR) == pytest.approx(3.0625)

    # --- beacon window 2: seq 2 then seq 5 (missed 3, 4) -----------------
    beacon(est, NBR, seq=2)       # expected=1, window open
    assert est.link_quality(NBR) == pytest.approx(3.0625)
    beacon(est, NBR, seq=5)       # gap 3 ⇒ 2 missed ⇒ expected=4 ≥ kb
    # PRR sample 2/4 = 0.5; prr_ewma: 0.8·1.0 + 0.2·0.5 = 0.9
    # beacon ETX = 1/0.9 = 1.111…; outer: 0.5·3.0625 + 0.5·1.111… = 2.0868…
    assert est.link_quality(NBR) == pytest.approx(0.5 * 3.0625 + 0.5 / 0.9)

    # --- unicast window 3: nothing acked → sample = consecutive fails ----
    for _ in range(5):
        unicast_attempt(est, NBR, acked=False)
    # window 2 ended with 4 consecutive fails, so the count reaches 9.
    expected = 0.5 * (0.5 * 3.0625 + 0.5 / 0.9) + 0.5 * 9.0
    assert est.link_quality(NBR) == pytest.approx(expected)


def test_heavy_data_traffic_dominates():
    """Under heavy data traffic, unicast samples dominate the hybrid value
    (paper: 'When there is heavy data traffic, unicast estimates dominate')."""
    est, _, _ = build_estimator(CONFIG)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)  # bootstrap ETX 1.0 from beacons
    for _ in range(8):  # 8 windows of 40% ack rate → ETX samples of 2.5
        for acked in (True, False, True, False, False):
            unicast_attempt(est, NBR, acked)
    assert est.link_quality(NBR) == pytest.approx(2.5, rel=0.05)


def test_quiet_network_beacon_estimates_dominate():
    est, _, _ = build_estimator(CONFIG)
    # No data traffic at all: only beacons, half of them missing.
    beacon(est, NBR, seq=0)
    for seq in range(2, 20, 2):  # every other beacon lost
        beacon(est, NBR, seq=seq)
    # PRR samples converge toward 0.5 → ETX toward 2.
    assert 1.4 < est.link_quality(NBR) < 2.2


def test_consecutive_failures_reset_by_ack():
    est, _, _ = build_estimator(CONFIG)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)
    entry = est.table.find(NBR)
    for acked in (False, False, True, False, False):
        unicast_attempt(est, NBR, acked)
    # The mid-window ack reset the consecutive-failure counter to 0,
    # then two more fails brought it to 2.
    assert entry.fails_since_last_ack == 2


def test_failure_count_can_exceed_window_sample_cap():
    config = EstimatorConfig(ku=5, kb=2, alpha_outer=0.5, max_etx_sample=50.0)
    est, _, _ = build_estimator(config)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)
    for _ in range(100):
        unicast_attempt(est, NBR, acked=False)
    # Samples are capped at max_etx_sample, so the estimate stays bounded.
    assert est.link_quality(NBR) <= 50.0
    assert est.link_quality(NBR) > 10.0
