"""Every EstimatorStats counter is exercised by at least one scenario.

Each scenario drives the estimator through the path that increments one
(or a few) counters; the closing test merges them all and asserts no
counter field of the dataclass stayed at zero — so a newly added counter
without a test fails here by construction.
"""

import dataclasses

from repro.core.estimator import EstimatorConfig, EstimatorStats

from tests.core.helpers import StubCompare, beacon, build_estimator, unicast_attempt


def _full_table_config(**overrides) -> EstimatorConfig:
    defaults = dict(table_size=2, kb=2, immature_evict_expected=4)
    defaults.update(overrides)
    return EstimatorConfig(**defaults)


def _mature(est, src: int, base_seq: int = 0, beacons: int = 3) -> None:
    """Mature ``src``'s entry with consecutive well-received beacons."""
    for i in range(beacons):
        beacon(est, src=src, seq=base_seq + i)


# ---------------------------------------------------------------------------
# Scenarios (each returns the stats object it exercised)
# ---------------------------------------------------------------------------
def scenario_beacons_sent() -> EstimatorStats:
    from tests.core.helpers import routed_payload

    est, _, _ = build_estimator()
    assert est.send(routed_payload(src=est.node_id))
    assert est.stats.beacons_sent == 1
    return est.stats


def scenario_beacons_received_and_free_insert() -> EstimatorStats:
    est, _, _ = build_estimator()
    beacon(est, src=1, seq=0)
    assert est.stats.beacons_received == 1
    assert est.stats.inserts_free == 1
    return est.stats


def scenario_duplicate_beacons() -> EstimatorStats:
    est, _, _ = build_estimator()
    beacon(est, src=1, seq=0)
    beacon(est, src=1, seq=0)  # same le_seq re-received
    assert est.stats.duplicate_beacons == 1
    return est.stats


def scenario_beacon_samples() -> EstimatorStats:
    est, _, _ = build_estimator(EstimatorConfig(kb=2))
    beacon(est, src=1, seq=0)
    beacon(est, src=1, seq=1)  # window of 2 expected → one PRR/ETX sample
    assert est.stats.beacon_samples == 1
    return est.stats


def scenario_unicast_samples() -> EstimatorStats:
    est, _, _ = build_estimator(EstimatorConfig(ku=3))
    beacon(est, src=1, seq=0)
    for _ in range(3):
        unicast_attempt(est, dest=1, acked=True)
    assert est.stats.unicast_samples == 1
    return est.stats


def scenario_reboot_resets() -> EstimatorStats:
    est, _, _ = build_estimator(EstimatorConfig(kb=2, reboot_gap=32))
    beacon(est, src=1, seq=0)
    beacon(est, src=1, seq=100)  # gap ≥ reboot_gap: window + PRR history reset
    assert est.stats.reboot_resets == 1
    return est.stats


def scenario_rejected_no_white() -> EstimatorStats:
    est, _, _ = build_estimator(
        _full_table_config(use_standard_replacement=False), compare=StubCompare(True)
    )
    _mature(est, 1)
    _mature(est, 2)
    beacon(est, src=3, seq=0, white=False)
    assert est.stats.rejected_no_white == 1
    return est.stats


def scenario_compare_query_and_insert() -> EstimatorStats:
    compare = StubCompare(True)
    est, _, _ = build_estimator(
        _full_table_config(use_standard_replacement=False), compare=compare
    )
    _mature(est, 1)
    _mature(est, 2)
    beacon(est, src=3, seq=0, white=True)
    assert est.stats.compare_queries == 1
    assert est.stats.inserts_compare == 1
    assert compare.queries == 1
    return est.stats


def scenario_rejected_no_compare() -> EstimatorStats:
    est, _, _ = build_estimator(
        _full_table_config(use_standard_replacement=False), compare=StubCompare(False)
    )
    _mature(est, 1)
    _mature(est, 2)
    beacon(est, src=3, seq=0, white=True)
    assert est.stats.rejected_no_compare == 1
    assert est.stats.inserts_compare == 0
    return est.stats


def scenario_rejected_all_pinned() -> EstimatorStats:
    est, _, _ = build_estimator(
        _full_table_config(use_standard_replacement=False), compare=StubCompare(True)
    )
    _mature(est, 1)
    _mature(est, 2)
    assert est.pin(1) and est.pin(2)
    beacon(est, src=3, seq=0, white=True)
    assert est.stats.rejected_all_pinned == 1
    return est.stats


def scenario_insert_evict_worst() -> EstimatorStats:
    est, _, _ = build_estimator(_full_table_config(use_white_compare=False))
    _mature(est, 1)
    # Neighbor 2 matures with heavy loss: 2 receptions over 10 expected
    # beacons → PRR 0.2 → ETX 5 > evict_etx_threshold.
    beacon(est, src=2, seq=0)
    beacon(est, src=2, seq=9)
    beacon(est, src=3, seq=0, white=True)
    assert est.stats.inserts_evict_worst == 1
    assert 3 in est.neighbors() and 2 not in est.neighbors()
    return est.stats


SCENARIOS = [
    scenario_beacons_sent,
    scenario_beacons_received_and_free_insert,
    scenario_duplicate_beacons,
    scenario_beacon_samples,
    scenario_unicast_samples,
    scenario_reboot_resets,
    scenario_rejected_no_white,
    scenario_compare_query_and_insert,
    scenario_rejected_no_compare,
    scenario_rejected_all_pinned,
    scenario_insert_evict_worst,
]


def test_scenarios_pass_individually():
    for scenario in SCENARIOS:
        scenario()


def test_every_counter_field_is_exercised():
    """No EstimatorStats counter may stay untested: merging every scenario's
    stats must leave all fields > 0."""
    totals = {f.name: 0 for f in dataclasses.fields(EstimatorStats)}
    for scenario in SCENARIOS:
        stats = scenario()
        for name in totals:
            totals[name] += getattr(stats, name)
    untouched = sorted(name for name, total in totals.items() if total == 0)
    assert not untouched, f"counters never incremented by any scenario: {untouched}"
