"""Unit tests for the estimator's beacon (broadcast) stream."""

import math

import pytest

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import beacon, build_estimator

NBR = 3


def test_first_beacon_inserts_into_free_slot():
    est, _, _ = build_estimator()
    beacon(est, NBR, seq=0)
    assert NBR in est.table
    assert est.stats.inserts_free == 1


def test_sequence_gap_counts_missed_beacons():
    est, _, _ = build_estimator(EstimatorConfig(kb=10))
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=4)  # 3 missed
    entry = est.table.find(NBR)
    assert entry.beacon_received == 2
    assert entry.beacon_missed == 3


def test_sequence_wraparound():
    est, _, _ = build_estimator(EstimatorConfig(kb=100))
    beacon(est, NBR, seq=254)
    beacon(est, NBR, seq=1)  # 254 → 255 → 0 → 1: gap 3, missed 2
    entry = est.table.find(NBR)
    assert entry.beacon_missed == 2


def test_reboot_gap_resets_window():
    est, _, _ = build_estimator(EstimatorConfig(kb=100, reboot_gap=32))
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)
    beacon(est, NBR, seq=200)  # gap way beyond reboot threshold
    entry = est.table.find(NBR)
    assert entry.beacon_received == 1
    assert entry.beacon_missed == 0


def test_reboot_gap_purges_prr_history():
    # Regression: a neighbor that reboots resets its beacon seq, which shows
    # up here as a huge gap.  The pre-gap PRR history describes a table slot
    # the neighbor no longer has; seeding the post-reboot window's EWMA with
    # it would inflate PRR (0.8·1.0 + 0.2·0.5 = 0.9 below, instead of the
    # fresh window's 0.5).
    est, _, _ = build_estimator(EstimatorConfig(kb=2, reboot_gap=32))
    for seq in range(10):
        beacon(est, NBR, seq=seq)  # five perfect windows: PRR EWMA at 1.0
    entry = est.table.find(NBR)
    assert entry.prr_ewma.value == pytest.approx(1.0)
    beacon(est, NBR, seq=100)  # gap 91 ≥ reboot_gap: treated as a reboot
    assert est.stats.reboot_resets == 1
    assert entry.prr_ewma is None  # history gone, not just the window
    beacon(est, NBR, seq=103)  # closes a 2-received / 4-expected window
    assert entry.prr_ewma.value == pytest.approx(0.5)


def test_perfect_beacons_give_etx_one():
    est, _, _ = build_estimator()
    for seq in range(8):
        beacon(est, NBR, seq=seq)
    assert est.link_quality(NBR) == pytest.approx(1.0)


def test_half_prr_beacons_give_etx_two():
    config = EstimatorConfig(kb=2, alpha_beacon=0.0, alpha_outer=0.0)
    est, _, _ = build_estimator(config)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=2)  # windows of expected 2 with 1 received
    beacon(est, NBR, seq=4)
    assert est.link_quality(NBR) == pytest.approx(2.0)


def test_unknown_neighbor_quality_is_infinite():
    est, _, _ = build_estimator()
    assert math.isinf(est.link_quality(42))


def test_beacon_count_in_stats():
    est, _, _ = build_estimator()
    for seq in range(3):
        beacon(est, NBR, seq=seq)
    assert est.stats.beacons_received == 3


def test_payload_delivered_to_client():
    est, client, _ = build_estimator()
    beacon(est, NBR, seq=0)
    assert len(client.received) == 1
    frame, info, le_src = client.received[0]
    assert le_src == NBR
    assert frame.carries_route_info


def test_bidirectional_immature_until_footer():
    config = EstimatorConfig(
        kb=2, bidirectional_beacons=True, default_prr_out=None, use_ack_stream=False
    )
    est, _, _ = build_estimator(config)
    for seq in range(6):
        beacon(est, NBR, seq=seq)
    # Forward PRR is measured, but without a reverse advertisement the
    # bidirectional estimate cannot exist — the in-degree coupling.
    assert math.isinf(est.link_quality(NBR))


def test_bidirectional_matures_on_footer():
    config = EstimatorConfig(
        kb=2, alpha_beacon=0.0, alpha_outer=0.0,
        bidirectional_beacons=True, default_prr_out=None, use_ack_stream=False,
    )
    est, _, _ = build_estimator(config, node_id=0)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)  # forward PRR 1.0, still immature
    beacon(est, NBR, seq=2, footer=[(0, 0.5)])  # neighbor hears us at 0.5
    # ETX = 1 / (prr_in · prr_out) = 1 / (1.0 · 0.5) = 2.0
    assert est.link_quality(NBR) == pytest.approx(2.0)


def test_bidirectional_with_default_prr_out():
    config = EstimatorConfig(
        kb=2, alpha_beacon=0.0, alpha_outer=0.0,
        bidirectional_beacons=True, default_prr_out=0.25, use_ack_stream=False,
    )
    est, _, _ = build_estimator(config)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)
    assert est.link_quality(NBR) == pytest.approx(4.0)


def test_footer_for_other_node_ignored():
    config = EstimatorConfig(
        kb=2, bidirectional_beacons=True, default_prr_out=None, use_ack_stream=False
    )
    est, _, _ = build_estimator(config, node_id=0)
    beacon(est, NBR, seq=0, footer=[(7, 0.9)])  # about node 7, not us
    entry = est.table.find(NBR)
    assert entry.prr_out is None


def test_unidirectional_ignores_footer_quality():
    est, _, _ = build_estimator(EstimatorConfig(kb=2, bidirectional_beacons=False))
    beacon(est, NBR, seq=0, footer=[(0, 0.1)])
    beacon(est, NBR, seq=1, footer=[(0, 0.1)])
    # 4B uses incoming-beacon PRR only; the footer must not degrade it.
    assert est.link_quality(NBR) == pytest.approx(1.0)


def test_duplicate_seq_dropped_from_window():
    # A beacon re-received with the same le_seq is not a new expected beacon;
    # counting it would inflate the PRR window with phantom receptions.
    est, _, _ = build_estimator(EstimatorConfig(kb=100))
    beacon(est, NBR, seq=5)
    beacon(est, NBR, seq=5)
    entry = est.table.find(NBR)
    assert entry.beacon_received == 1
    assert entry.beacon_missed == 0
    assert est.stats.duplicate_beacons == 1


def test_duplicate_seq_does_not_inflate_prr():
    # kb=2 with alpha 0: each window's PRR lands directly in the estimate.
    # The repeated seq=1 must not count as a reception: the final window is
    # 1 received / 4 expected (ETX 4.0), where the phantom reception would
    # have made it 2/5 (ETX 2.5) — a link better than the sender ever was.
    config = EstimatorConfig(kb=2, alpha_beacon=0.0, alpha_outer=0.0)
    est, _, _ = build_estimator(config)
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)  # closes a 2/2 window, ETX 1.0
    beacon(est, NBR, seq=1)  # duplicate — dropped
    beacon(est, NBR, seq=5)  # gap 4: closes a 1/4 window
    assert est.link_quality(NBR) == pytest.approx(4.0)
    entry = est.table.find(NBR)
    assert entry.expected_since_insert == 6
