"""Property-based tests of estimator invariants under random event storms."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import StubCompare, beacon, build_estimator, unicast_attempt

# One random event: ("beacon", src, seq_gap, white) or ("tx", dest, acked)
_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("beacon"),
            st.integers(1, 8),
            st.integers(1, 5),
            st.booleans(),
        ),
        st.tuples(st.just("tx"), st.integers(1, 8), st.booleans()),
    ),
    min_size=1,
    max_size=120,
)


def _apply(est, events):
    seqs = {}
    for event in events:
        if event[0] == "beacon":
            _, src, gap, white = event
            seqs[src] = (seqs.get(src, 0) + gap) % 256
            beacon(est, src, seq=seqs[src], white=white)
        else:
            _, dest, acked = event
            unicast_attempt(est, dest, acked)


@settings(max_examples=60, deadline=None)
@given(_events)
def test_property_etx_at_least_one(events):
    """Every ETX estimate is ≥ 1: one transmission is the physical floor."""
    est, _, _ = build_estimator(EstimatorConfig(table_size=4), compare=StubCompare(True))
    _apply(est, events)
    for entry in est.table:
        if entry.mature:
            assert entry.etx >= 1.0 - 1e-9


@settings(max_examples=60, deadline=None)
@given(_events)
def test_property_table_capacity_never_exceeded(events):
    est, _, _ = build_estimator(EstimatorConfig(table_size=3), compare=StubCompare(True))
    _apply(est, events)
    assert len(est.table) <= 3


@settings(max_examples=60, deadline=None)
@given(_events, st.integers(1, 8))
def test_property_pinned_neighbor_never_evicted(events, pinned_addr):
    est, _, _ = build_estimator(EstimatorConfig(table_size=3), compare=StubCompare(True))
    beacon(est, pinned_addr, seq=0)
    est.pin(pinned_addr)
    _apply(est, events)
    assert pinned_addr in est.table


@settings(max_examples=60, deadline=None)
@given(_events)
def test_property_quality_is_inf_or_positive_finite(events):
    est, _, _ = build_estimator(EstimatorConfig(table_size=4), compare=StubCompare(True))
    _apply(est, events)
    for addr in range(1, 9):
        quality = est.link_quality(addr)
        assert quality > 0
        assert math.isinf(quality) or quality <= est.config.max_etx_sample


@settings(max_examples=40, deadline=None)
@given(_events)
def test_property_counters_consistent(events):
    est, _, _ = build_estimator(EstimatorConfig(table_size=4), compare=StubCompare(True))
    _apply(est, events)
    stats = est.stats
    inserts = stats.inserts_free + stats.inserts_compare + stats.inserts_evict_worst
    assert inserts >= len(est.table)
    assert est.table.evictions == inserts - len(est.table)
    for entry in est.table:
        assert 0 <= entry.uni_total < est.config.ku
        assert entry.uni_acked <= entry.uni_total
        assert entry.beacon_received + entry.beacon_missed < est.config.kb or est.config.kb == 1


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=2, max_size=60),
)
def test_property_seq_accounting_matches_modular_gaps(seqs):
    """received + missed after a beacon stream equals the modular seq span
    (as long as no gap crosses the reboot threshold)."""
    config = EstimatorConfig(table_size=4, kb=10_000, reboot_gap=256)
    est, _, _ = build_estimator(config)
    span = 0
    duplicates = 0
    prev = None
    for seq in seqs:
        beacon(est, 1, seq=seq)
        if prev is not None:
            gap = (seq - prev) % 256
            span += gap  # a duplicate (gap 0) is dropped, contributing nothing
            duplicates += gap == 0
        prev = seq
    entry = est.table.find(1)
    expected_total = entry.beacon_received + entry.beacon_missed
    # First beacon contributes 1 received, 0 missed.
    assert expected_total == 1 + span
    assert est.stats.duplicate_beacons == duplicates
