"""Tests of the interface contracts themselves."""

import pytest

from repro.core.estimator import HybridLinkEstimator
from repro.core.interfaces import CompareBitProvider, LinkEstimator
from repro.net.ctp.routing import CtpRoutingEngine
from repro.net.geographic import GreedyGeoRouting


def test_link_estimator_is_abstract():
    with pytest.raises(TypeError):
        LinkEstimator()  # type: ignore[abstract]


def test_hybrid_estimator_implements_interface():
    assert issubclass(HybridLinkEstimator, LinkEstimator)


def test_compare_bit_providers_are_structural():
    """Both network layers satisfy the compare-bit protocol structurally —
    no inheritance required, which is the point of a narrow interface."""
    assert issubclass(CtpRoutingEngine, CompareBitProvider)
    # runtime_checkable Protocol: instances check by method presence.
    assert hasattr(GreedyGeoRouting, "compare_bit")


def test_partial_estimator_subclass_rejected():
    class Partial(LinkEstimator):
        def link_quality(self, neighbor):
            return 1.0

    with pytest.raises(TypeError):
        Partial()  # type: ignore[abstract]


def test_fake_estimator_satisfies_interface():
    from tests.net.helpers import FakeEstimator

    estimator = FakeEstimator({1: 1.0})
    assert isinstance(estimator, LinkEstimator)
    assert estimator.link_quality(1) == 1.0
    assert estimator.link_quality(99) == float("inf")
