"""Unit tests for the estimator's unicast (ack bit) stream."""

import math

import pytest

from repro.core.estimator import EstimatorConfig

from tests.core.helpers import beacon, build_estimator, unicast_attempt

NBR = 3


def seeded_estimator(**overrides):
    defaults = dict(ku=5, kb=2, alpha_outer=0.0, alpha_beacon=0.0, use_ack_stream=True)
    defaults.update(overrides)
    est, client, engine = build_estimator(EstimatorConfig(**defaults))
    beacon(est, NBR, seq=0)
    beacon(est, NBR, seq=1)  # table entry + bootstrap estimate of 1.0
    return est


def test_no_sample_before_window_fills():
    est = seeded_estimator()
    for _ in range(4):
        unicast_attempt(est, NBR, acked=True)
    assert est.stats.unicast_samples == 0
    assert est.link_quality(NBR) == pytest.approx(1.0)


def test_all_acked_window_gives_etx_one():
    est = seeded_estimator()
    for _ in range(5):
        unicast_attempt(est, NBR, acked=True)
    assert est.stats.unicast_samples == 1
    assert est.link_quality(NBR) == pytest.approx(1.0)


def test_partial_acks_window():
    est = seeded_estimator()
    for acked in (True, False, True, False, True):
        unicast_attempt(est, NBR, acked)
    # alpha_outer = 0 → quality equals the latest sample: 5/3.
    assert est.link_quality(NBR) == pytest.approx(5.0 / 3.0)


def test_zero_acks_window_uses_consecutive_failures():
    est = seeded_estimator()
    for _ in range(5):
        unicast_attempt(est, NBR, acked=False)
    assert est.link_quality(NBR) == pytest.approx(5.0)
    for _ in range(5):
        unicast_attempt(est, NBR, acked=False)
    # Failures keep accumulating across windows until an ack.
    assert est.link_quality(NBR) == pytest.approx(10.0)


def test_window_resets_after_sample():
    est = seeded_estimator()
    for _ in range(5):
        unicast_attempt(est, NBR, acked=True)
    entry = est.table.find(NBR)
    assert entry.uni_total == 0
    assert entry.uni_acked == 0


def test_unknown_destination_ignored():
    est = seeded_estimator()
    for _ in range(10):
        unicast_attempt(est, 99, acked=False)
    assert est.stats.unicast_samples == 0
    assert math.isinf(est.link_quality(99))


def test_ack_stream_disabled():
    est = seeded_estimator(use_ack_stream=False)
    for _ in range(10):
        unicast_attempt(est, NBR, acked=False)
    # Without the ack bit, data failures leave the estimate untouched —
    # the stock-CTP blindness the paper fixes.
    assert est.link_quality(NBR) == pytest.approx(1.0)


def test_channel_access_failure_not_counted():
    from repro.link.frame import NetworkFrame, le_wrap
    from repro.sim.packets import TxResult

    est = seeded_estimator()
    payload = NetworkFrame(src=0, dst=NBR, length_bytes=30)
    frame = le_wrap(payload, le_seq=0)
    for _ in range(10):
        est._mac_send_done(frame, TxResult(timestamp=0.0, dest=NBR, sent=False, ack_bit=False))
    # Frames that never made it onto the air are not link evidence.
    assert est.stats.unicast_samples == 0


def test_sample_capped():
    est = seeded_estimator(max_etx_sample=20.0)
    for _ in range(200):
        unicast_attempt(est, NBR, acked=False)
    assert est.link_quality(NBR) <= 20.0


def test_ku_window_size_respected():
    est = seeded_estimator(ku=3)
    for _ in range(3):
        unicast_attempt(est, NBR, acked=True)
    assert est.stats.unicast_samples == 1


def test_client_sees_send_done():
    est, client, _ = build_estimator()
    beacon(est, NBR, seq=0)
    unicast_attempt(est, NBR, acked=True)
    assert len(client.send_done) == 1
    frame, sent, acked = client.send_done[0]
    assert sent and acked


def test_ack_resets_consecutive_failure_count():
    est = seeded_estimator()
    for _ in range(10):
        unicast_attempt(est, NBR, acked=False)
    assert est.link_quality(NBR) == pytest.approx(10.0)
    # One ack ends the failure streak: the next window has uni_acked > 0,
    # so the ratio rule applies (5 tx / 1 ack).
    unicast_attempt(est, NBR, acked=True)
    for _ in range(4):
        unicast_attempt(est, NBR, acked=False)
    assert est.link_quality(NBR) == pytest.approx(5.0)
    # The streak restarts from the post-ack failures (4 so far + 5 new).
    for _ in range(5):
        unicast_attempt(est, NBR, acked=False)
    assert est.link_quality(NBR) == pytest.approx(9.0)
