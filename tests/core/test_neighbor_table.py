"""Unit and property tests for the neighbor table (pin bit semantics)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ewma import Ewma
from repro.core.neighbor_table import NeighborEntry, NeighborTable


def mature_entry(addr: int, etx: float) -> NeighborEntry:
    entry = NeighborEntry(addr=addr)
    entry.etx_ewma = Ewma(0.5)
    entry.etx_ewma.update(etx)
    return entry


def test_insert_and_find():
    table = NeighborTable(capacity=3)
    entry = table.insert(7)
    assert table.find(7) is entry
    assert 7 in table
    assert len(table) == 1


def test_duplicate_insert_rejected():
    table = NeighborTable(capacity=3)
    table.insert(7)
    with pytest.raises(ValueError):
        table.insert(7)


def test_insert_into_full_table_rejected():
    table = NeighborTable(capacity=1)
    table.insert(1)
    with pytest.raises(ValueError):
        table.insert(2)


def test_capacity_none_is_unlimited():
    table = NeighborTable(capacity=None)
    for i in range(500):
        table.insert(i)
    assert not table.full
    assert len(table) == 500


@pytest.mark.parametrize("capacity", [0, -1])
def test_invalid_capacity_rejected(capacity):
    with pytest.raises(ValueError):
        NeighborTable(capacity=capacity)


def test_immature_entry_etx_is_infinite():
    assert math.isinf(NeighborEntry(addr=1).etx)
    assert not NeighborEntry(addr=1).mature


def test_evict_random_unpinned_spares_pinned():
    table = NeighborTable(capacity=3)
    for i in range(3):
        table.insert(i)
    table.pin(0)
    table.pin(1)
    rng = random.Random(1)
    assert table.evict_random_unpinned(rng) == 2


def test_evict_random_all_pinned_returns_none():
    table = NeighborTable(capacity=2)
    table.insert(0)
    table.insert(1)
    table.pin(0)
    table.pin(1)
    assert table.evict_random_unpinned(random.Random(1)) is None
    assert len(table) == 2


def test_evict_random_respects_eligibility_filter():
    table = NeighborTable(capacity=3)
    for i in range(3):
        table.insert(i)
    victim = table.evict_random_unpinned(random.Random(1), eligible=lambda e: e.addr == 1)
    assert victim == 1


def test_evict_worst_unpinned():
    table = NeighborTable(capacity=3)
    for i, etx in enumerate([1.5, 8.0, 3.0]):
        table._entries[i] = mature_entry(i, etx)
    assert table.evict_worst_unpinned() == 1


def test_evict_worst_treats_immature_as_worst():
    table = NeighborTable(capacity=2)
    table._entries[0] = mature_entry(0, 9.0)
    table.insert(1)  # immature: etx = inf
    assert table.evict_worst_unpinned() == 1


def test_evict_worst_spares_pinned():
    table = NeighborTable(capacity=2)
    table._entries[0] = mature_entry(0, 9.0)
    table._entries[1] = mature_entry(1, 2.0)
    table.pin(0)
    assert table.evict_worst_unpinned() == 1


def test_pin_unpin_lifecycle():
    table = NeighborTable(capacity=2)
    table.insert(5)
    assert table.pin(5)
    assert table.pinned_addresses() == [5]
    assert table.unpin(5)
    assert table.pinned_addresses() == []


def test_pin_unknown_address_returns_false():
    table = NeighborTable(capacity=2)
    assert not table.pin(99)
    assert not table.unpin(99)


def test_clear_pins():
    table = NeighborTable(capacity=3)
    for i in range(3):
        table.insert(i)
        table.pin(i)
    table.clear_pins()
    assert table.pinned_addresses() == []


def test_remove():
    table = NeighborTable(capacity=2)
    table.insert(3)
    assert table.remove(3)
    assert not table.remove(3)
    assert 3 not in table


def test_eviction_counter():
    table = NeighborTable(capacity=2)
    table.insert(0)
    table.insert(1)
    table.evict_random_unpinned(random.Random(1))
    assert table.evictions == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.booleans()),
        min_size=1,
        max_size=40,
        unique_by=lambda t: t[0],
    ),
    st.integers(0, 2**31),
)
def test_property_pinned_entries_survive_random_eviction_storm(entries, seed):
    """The pin bit is absolute: no storm of random evictions may remove a
    pinned entry (the paper's contract with the network layer)."""
    table = NeighborTable(capacity=None)
    pinned = set()
    for addr, pin in entries:
        table.insert(addr)
        if pin:
            table.pin(addr)
            pinned.add(addr)
    rng = random.Random(seed)
    for _ in range(len(entries) + 5):
        table.evict_random_unpinned(rng)
    assert pinned.issubset(set(table.addresses()))


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 10), st.lists(st.integers(0, 100), min_size=1, max_size=60, unique=True))
def test_property_capacity_never_exceeded(capacity, addrs):
    table = NeighborTable(capacity=capacity)
    rng = random.Random(0)
    for addr in addrs:
        if table.full:
            table.evict_random_unpinned(rng)
        if not table.full and addr not in table:
            table.insert(addr)
        assert len(table) <= capacity
