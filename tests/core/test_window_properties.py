"""Property tests for the windowed ku/kb samplers and their EWMA folding.

Uses hypothesis when available; otherwise falls back to a fixed-seed set
of generated examples so the properties still run (just with a frozen
sample of the input space).
"""

import random

import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.ewma import Ewma

from tests.core.helpers import beacon, build_estimator, unicast_attempt

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False

NBR = 3


def _fixed_cases(build, n_cases=30, seed=0x4B):
    rng = random.Random(seed)
    return [build(rng) for _ in range(n_cases)]


def ack_list_cases(fn):
    """``fn(acks: List[bool])`` — biased coin flips of varying length."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=60, deadline=None)(
            given(st.lists(st.booleans(), min_size=1, max_size=80))(fn)
        )

    def build(rng):
        p = rng.random()
        return [rng.random() < p for _ in range(rng.randint(1, 80))]

    return pytest.mark.parametrize("acks", _fixed_cases(build))(fn)


def gap_list_cases(fn):
    """``fn(gaps: List[int])`` — beacon sequence gaps in [1, 6]."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=60, deadline=None)(
            given(st.lists(st.integers(1, 6), min_size=1, max_size=60))(fn)
        )

    def build(rng):
        return [rng.randint(1, 6) for _ in range(rng.randint(1, 60))]

    return pytest.mark.parametrize("gaps", _fixed_cases(build))(fn)


def count_cases(fn):
    """``fn(n: int)`` — a beacon count in [1, 120]."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=60, deadline=None)(
            given(st.integers(1, 120))(fn)
        )
    return pytest.mark.parametrize("n", list(range(1, 13)) + [40, 99, 120])(fn)


def float_list_cases(fn):
    """``fn(samples: List[float])`` — bounded EWMA inputs."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=60, deadline=None)(
            given(
                st.lists(
                    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
                    min_size=1,
                    max_size=40,
                )
            )(fn)
        )

    def build(rng):
        return [rng.uniform(-50.0, 50.0) for _ in range(rng.randint(1, 40))]

    return pytest.mark.parametrize("samples", _fixed_cases(build))(fn)


# ----------------------------------------------------------------------
# Unicast (ku) window
# ----------------------------------------------------------------------
def _unicast_config():
    # kb huge so the single insertion beacon never folds a beacon sample;
    # alpha_outer 0 so the entry's ETX equals the *last* folded sample.
    return EstimatorConfig(kb=10_000, ku=5, alpha_outer=0.0)


def _reference_samples(acks, ku=5, cap=50.0):
    """Straight re-implementation of the paper's windowing rule."""
    samples = []
    total = acked = fails = 0
    for ack in acks:
        total += 1
        if ack:
            acked += 1
            fails = 0
        else:
            fails += 1
        if total >= ku:
            raw = total / acked if acked > 0 else float(fails)
            samples.append(min(raw, cap))
            total = acked = 0
    return samples


@ack_list_cases
def test_property_unicast_window_matches_reference_model(acks):
    est, _, _ = build_estimator(_unicast_config())
    beacon(est, NBR, seq=0)  # insert the neighbor
    for ack in acks:
        unicast_attempt(est, NBR, ack)
    expected = _reference_samples(acks)
    assert est.stats.unicast_samples == len(expected) == len(acks) // 5
    entry = est.table.find(NBR)
    assert entry.uni_total == len(acks) % 5
    if expected:
        assert entry.etx == pytest.approx(expected[-1])
    else:
        assert not entry.mature


@count_cases
def test_property_all_failure_windows_sample_the_streak(n):
    """With ``acked == 0`` throughout, each window's sample is the failure
    streak (5, 10, 15, ... capped), not ku/0."""
    est, _, _ = build_estimator(_unicast_config())
    beacon(est, NBR, seq=0)
    for _ in range(n):
        unicast_attempt(est, NBR, acked=False)
    entry = est.table.find(NBR)
    windows = n // 5
    assert est.stats.unicast_samples == windows
    assert entry.fails_since_last_ack == n
    if windows:
        assert entry.etx == pytest.approx(min(5.0 * windows, 50.0))


def test_failure_streak_resets_on_ack():
    est, _, _ = build_estimator(_unicast_config())
    beacon(est, NBR, seq=0)
    for _ in range(4):
        unicast_attempt(est, NBR, acked=False)
    unicast_attempt(est, NBR, acked=True)  # closes the window: 5/1
    entry = est.table.find(NBR)
    assert entry.fails_since_last_ack == 0
    assert entry.etx == pytest.approx(5.0)


def test_short_failure_run_yields_no_sample():
    est, _, _ = build_estimator(_unicast_config())
    beacon(est, NBR, seq=0)
    for _ in range(4):
        unicast_attempt(est, NBR, acked=False)
    entry = est.table.find(NBR)
    assert est.stats.unicast_samples == 0
    assert entry.uni_total == 4
    assert not entry.mature


# ----------------------------------------------------------------------
# Beacon (kb) window
# ----------------------------------------------------------------------
@count_cases
def test_property_beacon_sample_count(n):
    """``n`` consecutive beacons close exactly ``n // kb`` windows."""
    est, _, _ = build_estimator(EstimatorConfig(kb=2))
    for seq in range(n):
        beacon(est, NBR, seq=seq)
    assert est.stats.beacon_samples == n // 2


@gap_list_cases
def test_property_prr_ewma_stays_a_probability(gaps):
    est, _, _ = build_estimator(EstimatorConfig(kb=2))
    seq = 0
    beacon(est, NBR, seq=seq)
    for gap in gaps:
        seq = (seq + gap) % 256
        beacon(est, NBR, seq=seq)
    entry = est.table.find(NBR)
    if entry.prr_ewma is not None and entry.prr_ewma.initialized:
        assert 0.0 <= entry.prr_ewma.value <= 1.0
    if entry.mature:
        assert entry.etx >= 1.0 - 1e-9


# ----------------------------------------------------------------------
# The EWMA primitive under the samplers
# ----------------------------------------------------------------------
@float_list_cases
def test_property_ewma_matches_closed_form(samples):
    """The EWMA equals the alpha-weighted sum with the first sample as seed."""
    alpha = 0.8
    ewma = Ewma(alpha)
    expected = samples[0]
    ewma.update(samples[0])
    for s in samples[1:]:
        expected = alpha * expected + (1.0 - alpha) * s
        ewma.update(s)
    assert ewma.value == pytest.approx(expected, rel=1e-12, abs=1e-12)
    assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9


@float_list_cases
def test_property_ewma_reset_forgets_history(samples):
    ewma = Ewma(0.9)
    for s in samples:
        ewma.update(s)
    ewma.reset()
    assert ewma.update(3.25) == 3.25
