"""Unit and property tests for the EWMA primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ewma import Ewma


def test_first_sample_seeds_directly():
    ewma = Ewma(0.9)
    assert ewma.update(4.0) == 4.0
    assert ewma.value == 4.0


def test_update_formula():
    ewma = Ewma(0.5)
    ewma.update(1.0)
    assert ewma.update(3.0) == pytest.approx(2.0)
    assert ewma.update(2.0) == pytest.approx(2.0)


def test_alpha_is_history_weight():
    heavy = Ewma(0.9)
    light = Ewma(0.1)
    for e in (heavy, light):
        e.update(0.0)
        e.update(10.0)
    assert heavy.value == pytest.approx(1.0)
    assert light.value == pytest.approx(9.0)


def test_value_before_update_raises():
    with pytest.raises(ValueError):
        Ewma(0.5).value


def test_initialized_flag():
    ewma = Ewma(0.5)
    assert not ewma.initialized
    ewma.update(1.0)
    assert ewma.initialized


def test_reset():
    ewma = Ewma(0.5)
    ewma.update(5.0)
    ewma.reset()
    assert not ewma.initialized
    assert ewma.update(2.0) == 2.0


@pytest.mark.parametrize("alpha", [-0.1, 1.0, 1.5])
def test_invalid_alpha_rejected(alpha):
    with pytest.raises(ValueError):
        Ewma(alpha)


def test_alpha_zero_tracks_last_sample():
    ewma = Ewma(0.0)
    ewma.update(1.0)
    ewma.update(7.0)
    assert ewma.value == 7.0


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=50),
)
def test_property_value_bounded_by_sample_range(alpha, samples):
    ewma = Ewma(alpha)
    for s in samples:
        ewma.update(s)
    assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.99, allow_nan=False), st.floats(-50, 50))
def test_property_constant_stream_converges_exactly(alpha, value):
    ewma = Ewma(alpha)
    for _ in range(10):
        ewma.update(value)
    assert ewma.value == pytest.approx(value)
