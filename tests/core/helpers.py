"""Harness for driving a link estimator without a full network."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.estimator import EstimatorConfig, HybridLinkEstimator
from repro.link.frame import BROADCAST, NetworkFrame, le_wrap
from repro.link.mac import Mac
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo, TxResult

from tests.conftest import PerfectMedium, make_radio, make_rx_info


class RecordingClient:
    """EstimatorClient that logs everything it is told."""

    def __init__(self) -> None:
        self.received: List[Tuple[NetworkFrame, RxInfo, int]] = []
        self.send_done: List[Tuple[NetworkFrame, bool, bool]] = []

    def on_receive(self, frame, info, le_src):
        self.received.append((frame, info, le_src))

    def on_send_done(self, frame, sent, acked):
        self.send_done.append((frame, sent, acked))


class StubCompare:
    """CompareBitProvider with a scripted answer."""

    def __init__(self, answer: bool = True) -> None:
        self.answer = answer
        self.queries = 0

    def compare_bit(self, frame, info) -> bool:
        self.queries += 1
        return self.answer


def build_estimator(
    config: Optional[EstimatorConfig] = None,
    node_id: int = 0,
    compare=None,
    seed: int = 4,
):
    engine = Engine()
    medium = PerfectMedium(engine)
    mac = Mac(engine, medium, make_radio(node_id), random.Random(seed))
    medium.attach(mac)
    estimator = HybridLinkEstimator(
        mac, config or EstimatorConfig(), random.Random(seed + 1), compare_provider=compare
    )
    client = RecordingClient()
    estimator.client = client
    return estimator, client, engine


def routed_payload(src: int) -> NetworkFrame:
    """A broadcast network frame carrying route info (a routing beacon)."""
    return NetworkFrame(src=src, dst=BROADCAST, length_bytes=16, carries_route_info=True)


def beacon(
    estimator: HybridLinkEstimator,
    src: int,
    seq: int,
    white: bool = True,
    footer=None,
    route_info: bool = True,
    lqi: int = 106,
    snr: float = 12.0,
) -> None:
    """Deliver one link-estimator beacon from ``src`` to the estimator."""
    payload = NetworkFrame(
        src=src, dst=BROADCAST, length_bytes=16, carries_route_info=route_info
    )
    frame = le_wrap(payload, le_seq=seq, footer=footer or [])
    info = make_rx_info(white_bit=white, lqi=lqi, snr_db=snr)
    estimator._mac_receive(frame, info)


def unicast_attempt(estimator: HybridLinkEstimator, dest: int, acked: bool) -> None:
    """Report one unicast transmission outcome (the ack bit) for ``dest``."""
    payload = NetworkFrame(src=estimator.node_id, dst=dest, length_bytes=30)
    frame = le_wrap(payload, le_seq=estimator._seq)
    result = TxResult(timestamp=0.0, dest=dest, sent=True, ack_bit=acked)
    estimator._mac_send_done(frame, result)
