"""Unit tests for the estimator's layer-2.5 send path (header/footer)."""

import pytest

from repro.core.estimator import EstimatorConfig
from repro.link.frame import BROADCAST, LinkEstimatorFrame, NetworkFrame

from tests.core.helpers import beacon, build_estimator


def bcast(src=0) -> NetworkFrame:
    return NetworkFrame(src=src, dst=BROADCAST, length_bytes=16)


def test_broadcast_increments_sequence():
    est, _, engine = build_estimator()
    for expected_seq in range(3):
        assert est.send(bcast())
        engine.run()  # CSMA backoff, transmit, complete
        sent = est.mac.medium.log[-1][2]
        assert isinstance(sent, LinkEstimatorFrame)
        assert sent.le_seq == expected_seq


def test_sequence_wraps_at_256():
    est, _, engine = build_estimator()
    est._seq = 255
    est.send(bcast())
    engine.run()
    assert est._seq == 0


def test_unicast_does_not_increment_sequence():
    est, _, engine = build_estimator()
    est.send(NetworkFrame(src=0, dst=5, length_bytes=16))
    engine.run()
    assert est._seq == 0


def test_send_rejected_while_mac_busy():
    est, _, engine = build_estimator()
    assert est.send(bcast())
    assert not est.send(bcast())
    engine.run()
    assert est.send(bcast())


def test_footers_attached_when_enabled():
    config = EstimatorConfig(send_footers=True, kb=2)
    est, _, engine = build_estimator(config)
    # Two mature inbound neighbors to advertise.
    beacon(est, 7, seq=0)
    beacon(est, 7, seq=1)
    beacon(est, 8, seq=0)
    beacon(est, 8, seq=1)
    est.send(bcast())
    engine.run()
    sent = est.mac.medium.log[-1][2]
    advertised = {addr for addr, _ in sent.footer}
    assert advertised == {7, 8}
    for _, quality in sent.footer:
        assert quality == pytest.approx(1.0)


def test_footers_rotate_over_large_tables():
    config = EstimatorConfig(send_footers=True, kb=2, table_size=None)
    est, _, engine = build_estimator(config)
    for addr in range(10, 30):
        beacon(est, addr, seq=0)
        beacon(est, addr, seq=1)
    advertised = set()
    for _ in range(8):
        est.send(bcast())
        engine.run()
        sent = est.mac.medium.log[-1][2]
        assert len(sent.footer) <= LinkEstimatorFrame.MAX_FOOTER_ENTRIES
        advertised.update(addr for addr, _ in sent.footer)
    # Rotation covers far more neighbors than a single footer holds.
    assert len(advertised) > LinkEstimatorFrame.MAX_FOOTER_ENTRIES * 2


def test_no_footers_when_disabled():
    config = EstimatorConfig(send_footers=False, kb=2)
    est, _, engine = build_estimator(config)
    beacon(est, 7, seq=0)
    beacon(est, 7, seq=1)
    est.send(bcast())
    engine.run()
    sent = est.mac.medium.log[-1][2]
    assert sent.footer == []


def test_beacons_sent_counted():
    est, _, engine = build_estimator()
    est.send(bcast())
    engine.run()
    est.send(NetworkFrame(src=0, dst=5, length_bytes=16))
    engine.run()
    assert est.stats.beacons_sent == 1


def test_non_le_frames_ignored_on_receive():
    est, client, _ = build_estimator()
    est._mac_receive(NetworkFrame(src=3, dst=BROADCAST, length_bytes=16), None)
    assert client.received == []
    assert 3 not in est.table


def test_pin_interface_delegates_to_table():
    est, _, _ = build_estimator()
    beacon(est, 5, seq=0)
    assert est.pin(5)
    assert est.table.find(5).pinned
    assert est.unpin(5)
    assert not est.table.find(5).pinned
    est.pin(5)
    est.clear_pins()
    assert est.table.pinned_addresses() == []


def test_neighbors_lists_table_contents():
    est, _, _ = build_estimator()
    beacon(est, 5, seq=0)
    beacon(est, 6, seq=0)
    assert sorted(est.neighbors()) == [5, 6]
