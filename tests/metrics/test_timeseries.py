"""Unit tests for time-series probes and windowed PRR."""

import random

import pytest

from repro.link.frame import BROADCAST, Frame
from repro.link.mac import Mac
from repro.metrics.timeseries import BroadcastLog, RxProbe, TxProbe, windowed_prr

from tests.conftest import PerfectMedium, make_radio


def test_windowed_prr_basic():
    tx = [0.5, 1.5, 2.5, 3.5]
    rx = [0.5, 2.5]
    series = windowed_prr(tx, rx, window_s=2.0, t_end=4.0)
    assert series == [(1.0, 0.5), (3.0, 0.5)]


def test_windowed_prr_empty_window_is_none():
    series = windowed_prr([0.5], [0.5], window_s=1.0, t_end=3.0)
    assert series[0][1] == 1.0
    assert series[1][1] is None
    assert series[2][1] is None


def test_windowed_prr_values_in_unit_interval():
    rng = random.Random(1)
    tx = sorted(rng.uniform(0, 100) for _ in range(200))
    rx = [t for t in tx if rng.random() < 0.7]
    for _, prr in windowed_prr(tx, rx, 10.0, 100.0):
        if prr is not None:
            assert 0.0 <= prr <= 1.0


def _macs(engine, medium, n=2):
    macs = {}
    for nid in range(n):
        mac = Mac(engine, medium, make_radio(nid), random.Random(nid))
        medium.attach(mac)
        macs[nid] = mac
    return macs


def test_rx_probe_records_and_chains(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    seen = []
    macs[1].on_receive = lambda f, i: seen.append(f)
    probe = RxProbe(macs[1], sender=0)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert len(probe.rx_times) == 1
    assert len(probe.lqi_samples) == 1
    assert len(seen) == 1  # the original handler still fired


def test_rx_probe_filters_by_sender(engine, perfect_medium):
    macs = _macs(engine, perfect_medium, n=3)
    probe = RxProbe(macs[2], sender=0)
    macs[1].send(Frame(src=1, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert probe.rx_times == []


def test_rx_probe_mean_lqi_window(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    probe = RxProbe(macs[1], sender=0)
    for _ in range(3):
        macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
    assert probe.mean_lqi_in(0.0, 10.0) == pytest.approx(106.0)
    assert probe.mean_lqi_in(50.0, 60.0) is None


def test_tx_probe_counts_unacked(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    perfect_medium.drop(1, 0)  # acks never come back
    probe = TxProbe(macs[0], dest=1)
    for _ in range(3):
        macs[0].send(Frame(src=0, dst=1, length_bytes=20))
        engine.run()
    assert len(probe.tx_times) == 3
    assert len(probe.unacked_times) == 3
    assert probe.cumulative_unacked([0.0, engine.now]) == [0, 3]


def test_tx_probe_acked_not_counted_as_unacked(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    probe = TxProbe(macs[0], dest=1)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(probe.tx_times) == 1
    assert probe.unacked_times == []


def test_tx_probe_ignores_broadcasts(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    probe = TxProbe(macs[0])
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert probe.tx_times == []


def test_broadcast_log_counts_all_transmissions(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    log = BroadcastLog(macs[0])
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(log.tx_times) == 2


def test_broadcast_log_excludes_acks(engine, perfect_medium):
    macs = _macs(engine, perfect_medium)
    log = BroadcastLog(macs[1])
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    # Node 1 sent only an ack, which must not appear in its tx log.
    assert log.tx_times == []
