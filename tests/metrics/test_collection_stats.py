"""Unit tests for collection metrics."""

import math

import pytest

from repro.metrics.collection_stats import CollectionResult, _mean_depth


def make_result(**overrides):
    defaults = dict(
        protocol="4b",
        seed=1,
        duration_s=600.0,
        n_nodes=10,
        offered=100,
        accepted=98,
        unique_delivered=95,
        duplicates_at_root=2,
        total_data_tx=190,
        beacons_sent=50,
        mean_packet_hops=2.0,
        avg_tree_depth=1.9,
        disconnected_fraction=0.0,
        per_node_delivery={1: 1.0, 2: 0.9},
    )
    defaults.update(overrides)
    return CollectionResult(**defaults)


def test_cost():
    result = make_result(total_data_tx=200, unique_delivered=100)
    assert result.cost == 2.0


def test_cost_with_zero_deliveries_is_infinite():
    result = make_result(unique_delivered=0)
    assert math.isinf(result.cost)


def test_delivery_ratio():
    result = make_result(offered=100, unique_delivered=95)
    assert result.delivery_ratio == pytest.approx(0.95)


def test_delivery_ratio_no_offered_is_nan():
    assert math.isnan(make_result(offered=0).delivery_ratio)


def test_delivery_values_sorted_by_node():
    result = make_result(per_node_delivery={5: 0.5, 1: 1.0, 3: 0.7})
    assert result.delivery_values() == [1.0, 0.7, 0.5]


def test_summary_row_contains_key_metrics():
    row = make_result().summary_row()
    assert "4b" in row and "cost" in row and "delivery" in row


def test_mean_depth_averages_over_samples():
    samples = [
        {0: 0, 1: 1, 2: 2},
        {0: 0, 1: 1, 2: 4},
    ]
    depth, missing = _mean_depth(samples, roots=0)
    assert depth == pytest.approx((1 + 2 + 1 + 4) / 4)
    assert missing == 0.0


def test_mean_depth_skips_disconnected():
    samples = [{0: 0, 1: 1, 2: None}]
    depth, missing = _mean_depth(samples, roots=0)
    assert depth == 1.0
    assert missing == pytest.approx(0.5)


def test_mean_depth_all_disconnected():
    depth, missing = _mean_depth([{0: 0, 1: None}], roots=0)
    assert math.isnan(depth)
    assert missing == 1.0


# ----------------------------------------------------------------------
# Strict-JSON export
# ----------------------------------------------------------------------
def test_to_json_dict_is_strict_json():
    import json

    from repro.metrics.collection_stats import json_sanitize

    # Zero deliveries → infinite cost; no offered → NaN delivery ratio.
    result = make_result(unique_delivered=0, offered=0)
    payload = result.to_json_dict()
    text = json.dumps(payload, allow_nan=False)  # raises on inf/NaN
    assert payload["cost"] is None
    assert payload["delivery_ratio"] is None
    assert json.loads(text)["protocol"] == "4b"


def test_to_json_dict_preserves_finite_values():
    payload = make_result().to_json_dict()
    assert payload["cost"] == pytest.approx(2.0)
    assert payload["delivery_ratio"] == pytest.approx(0.95)
    assert payload["per_node_delivery"] == {1: 1.0, 2: 0.9}


def test_json_sanitize_recurses():
    from repro.metrics.collection_stats import json_sanitize

    value = {"a": [1.0, float("inf")], "b": {"c": float("nan")}, "d": (2, math.inf)}
    assert json_sanitize(value) == {"a": [1.0, None], "b": {"c": None}, "d": [2, None]}
