"""Unit tests for the MAC layer (CSMA + synchronous acks)."""

import pytest

from repro.link.frame import BROADCAST, AckFrame, Frame
from repro.link.mac import Mac
from repro.sim.rng import RngManager

from tests.conftest import PerfectMedium, make_radio


def build_macs(engine, medium, n=2):
    mgr = RngManager(77)
    macs = {}
    for nid in range(n):
        mac = Mac(engine, medium, make_radio(nid), mgr.stream("mac", nid))
        medium.attach(mac)
        macs[nid] = mac
    return macs


def test_send_rejected_while_busy(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    assert macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    assert not macs[0].send(Frame(src=0, dst=1, length_bytes=20))


def test_send_sets_src(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    frame = Frame(src=99, dst=1, length_bytes=20)
    macs[0].send(frame)
    assert frame.src == 0


def test_broadcast_completes_without_ack(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    results = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert len(results) == 1
    assert results[0].sent and not results[0].ack_bit
    assert macs[0].stats.tx_broadcast == 1


def test_unicast_ack_roundtrip(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    results = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(results) == 1
    assert results[0].ack_bit
    assert macs[0].stats.acks_received == 1
    assert macs[1].stats.acks_sent == 1


def test_unicast_ack_timeout_when_frame_lost(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    perfect_medium.drop(0, 1)  # data never arrives, so no ack comes back
    results = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(results) == 1
    assert results[0].sent and not results[0].ack_bit


def test_unicast_ack_timeout_when_ack_lost(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    perfect_medium.drop(1, 0)  # the reverse direction (ack) is dead
    results = []
    received = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    macs[1].on_receive = lambda f, i: received.append(f)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    # The frame arrived but the ack bit is clear: "the packet may or may
    # not have arrived" — exactly the paper's ack-bit contract.
    assert len(received) == 1
    assert not results[0].ack_bit


def test_mac_free_after_completion(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert not macs[0].busy
    assert macs[0].send(Frame(src=0, dst=1, length_bytes=20))


def test_channel_access_failure_after_max_backoffs(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    perfect_medium.set_busy(0)
    results = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(results) == 1
    assert not results[0].sent
    assert macs[0].stats.channel_access_failures == 1
    assert results[0].backoffs == macs[0].radio.params.max_csma_backoffs + 1


def test_frame_not_for_us_ignored(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium, n=3)
    received = {nid: [] for nid in macs}
    for nid, mac in macs.items():
        mac.on_receive = lambda f, i, nid=nid: received[nid].append(f)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(received[1]) == 1
    assert received[2] == []  # node 2 heard it but it was not addressed to it


def test_broadcast_delivered_to_all(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium, n=4)
    received = {nid: [] for nid in macs}
    for nid, mac in macs.items():
        mac.on_receive = lambda f, i, nid=nid: received[nid].append(f)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert all(len(received[nid]) == 1 for nid in (1, 2, 3))


def test_broadcast_not_acked(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert macs[1].stats.acks_sent == 0


def test_stray_ack_ignored(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    # An ack for a frame we never sent must not confuse the MAC.
    macs[0].on_frame_received(
        AckFrame(src=1, dst=0, length_bytes=5, acked_frame_id=424242),
        None,  # info unused on the ack path
    )
    assert macs[0].stats.acks_received == 0


def test_ack_for_wrong_frame_id_ignored(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    results = []
    macs[0].on_send_done = lambda f, r: results.append(r)
    frame = Frame(src=0, dst=1, length_bytes=20)
    macs[0].send(frame)
    # Inject a mismatched ack mid-flight, right after tx completes.
    airtime = macs[0].radio.params.airtime(20)
    engine.schedule(
        airtime + 1e-6,
        lambda: macs[0].on_frame_received(
            AckFrame(src=1, dst=0, length_bytes=5, acked_frame_id=frame.frame_id + 999), None
        ),
    )
    engine.run()
    assert len(results) == 1  # completed via the real ack or timeout, once


def test_tx_unicast_counted(engine, perfect_medium):
    macs = build_macs(engine, perfect_medium)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert macs[0].stats.tx_unicast == 1
    assert macs[0].stats.tx_broadcast == 0
