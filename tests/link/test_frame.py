"""Unit tests for frame formats and the layer-2.5 wrapping."""

import pytest

from repro.link.frame import (
    BROADCAST,
    AckFrame,
    Frame,
    JamFrame,
    LinkEstimatorFrame,
    NetworkFrame,
    le_wrap,
)


def test_broadcast_detection():
    assert Frame(src=1, dst=BROADCAST, length_bytes=10).is_broadcast
    assert not Frame(src=1, dst=2, length_bytes=10).is_broadcast


def test_frame_ids_unique():
    a = Frame(src=1, dst=2, length_bytes=10)
    b = Frame(src=1, dst=2, length_bytes=10)
    assert a.frame_id != b.frame_id


def test_le_wrap_adds_header_bytes():
    payload = NetworkFrame(src=1, dst=BROADCAST, length_bytes=20)
    wrapped = le_wrap(payload, le_seq=5)
    assert wrapped.length_bytes == 20 + LinkEstimatorFrame.HEADER_BYTES
    assert wrapped.le_seq == 5
    assert wrapped.payload is payload


def test_le_wrap_adds_footer_bytes():
    payload = NetworkFrame(src=1, dst=BROADCAST, length_bytes=20)
    footer = [(2, 0.9), (3, 0.8)]
    wrapped = le_wrap(payload, le_seq=0, footer=footer)
    expected = 20 + LinkEstimatorFrame.HEADER_BYTES + 2 * LinkEstimatorFrame.FOOTER_ENTRY_BYTES
    assert wrapped.length_bytes == expected
    assert wrapped.footer == footer


def test_le_wrap_preserves_addressing():
    payload = NetworkFrame(src=7, dst=3, length_bytes=20)
    wrapped = le_wrap(payload, le_seq=0)
    assert wrapped.src == 7 and wrapped.dst == 3
    assert not wrapped.is_broadcast


def test_footer_overflow_rejected():
    payload = NetworkFrame(src=1, dst=BROADCAST, length_bytes=20)
    footer = [(i, 1.0) for i in range(LinkEstimatorFrame.MAX_FOOTER_ENTRIES + 1)]
    with pytest.raises(ValueError):
        le_wrap(payload, le_seq=0, footer=footer)


@pytest.mark.parametrize("seq", [-1, 256])
def test_le_seq_out_of_range_rejected(seq):
    payload = NetworkFrame(src=1, dst=BROADCAST, length_bytes=20)
    with pytest.raises(ValueError):
        le_wrap(payload, le_seq=seq)


def test_describe_strings():
    payload = NetworkFrame(src=1, dst=BROADCAST, length_bytes=20)
    wrapped = le_wrap(payload, le_seq=9)
    assert "seq=9" in wrapped.describe()
    assert AckFrame(src=1, dst=2, length_bytes=5, acked_frame_id=77).describe() == "Ack(77)"
    assert JamFrame(src=1, dst=BROADCAST, length_bytes=4).describe() == "Jam"


def test_network_frame_route_info_default():
    assert not NetworkFrame(src=1, dst=2, length_bytes=10).carries_route_info
