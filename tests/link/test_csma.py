"""Unit tests for the CSMA/CA backoff machine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.csma import CsmaBackoff
from repro.phy.radio import RadioParams


def test_first_delay_within_initial_window():
    params = RadioParams()
    for seed in range(50):
        backoff = CsmaBackoff(params, random.Random(seed))
        delay = backoff.next_delay()
        assert delay is not None
        assert 0.0 <= delay <= (2**params.min_be - 1) * params.backoff_unit_s


def test_attempts_bounded():
    params = RadioParams()
    backoff = CsmaBackoff(params, random.Random(1))
    count = 0
    while backoff.next_delay() is not None:
        count += 1
    assert count == params.max_csma_backoffs + 1


def test_exhausted_machine_stays_exhausted():
    params = RadioParams()
    backoff = CsmaBackoff(params, random.Random(1))
    while backoff.next_delay() is not None:
        pass
    assert backoff.next_delay() is None


def test_backoff_window_grows_up_to_max_be():
    params = RadioParams(min_be=3, max_be=5, max_csma_backoffs=6)
    # Statistically: later attempts draw from wider windows.
    max_delays = [0.0] * 7
    for seed in range(300):
        backoff = CsmaBackoff(params, random.Random(seed))
        for i in range(7):
            delay = backoff.next_delay()
            assert delay is not None
            max_delays[i] = max(max_delays[i], delay)
    window = lambda be: (2**be - 1) * params.backoff_unit_s
    assert max_delays[0] <= window(3)
    assert max_delays[1] <= window(4)
    assert max_delays[2] <= window(5)
    assert max_delays[3] <= window(5)  # capped at max_be
    # The wider windows were actually exercised.
    assert max_delays[2] > window(3)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_property_delays_nonnegative_multiples_of_unit(seed):
    params = RadioParams()
    backoff = CsmaBackoff(params, random.Random(seed))
    while True:
        delay = backoff.next_delay()
        if delay is None:
            break
        slots = delay / params.backoff_unit_s
        assert abs(slots - round(slots)) < 1e-9
        assert delay >= 0.0
