"""Property-based MAC tests: liveness and exactly-once completion."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.frame import BROADCAST, Frame
from repro.link.mac import Mac
from repro.sim.engine import Engine

from tests.conftest import PerfectMedium, make_radio

# A scenario: per-frame (broadcast?, drop_data?, drop_ack?)
_scenarios = st.lists(
    st.tuples(st.booleans(), st.booleans(), st.booleans()), min_size=1, max_size=25
)


@settings(max_examples=50, deadline=None)
@given(_scenarios, st.integers(0, 2**31))
def test_property_every_send_completes_exactly_once(scenario, seed):
    """No matter which frames or acks are lost, every accepted send yields
    exactly one on_send_done and the MAC returns to idle."""
    engine = Engine()
    medium = PerfectMedium(engine)
    rng = random.Random(seed)
    macs = {}
    for nid in (0, 1):
        mac = Mac(engine, medium, make_radio(nid), random.Random(seed + nid))
        medium.attach(mac)
        macs[nid] = mac
    completions = []
    macs[0].on_send_done = lambda f, r: completions.append((f.frame_id, r))

    sent_ids = []
    for is_broadcast, drop_data, drop_ack in scenario:
        if drop_data:
            medium.drop(0, 1)
        else:
            medium.undrop(0, 1)
        if drop_ack:
            medium.drop(1, 0)
        else:
            medium.undrop(1, 0)
        frame = Frame(src=0, dst=BROADCAST if is_broadcast else 1, length_bytes=20)
        assert macs[0].send(frame)
        sent_ids.append(frame.frame_id)
        engine.run()
        assert not macs[0].busy

    assert [fid for fid, _ in completions] == sent_ids


@settings(max_examples=30, deadline=None)
@given(_scenarios, st.integers(0, 2**31))
def test_property_ack_bit_implies_delivery(scenario, seed):
    """A set ack bit is a guarantee: the frame really was received."""
    engine = Engine()
    medium = PerfectMedium(engine)
    macs = {}
    for nid in (0, 1):
        mac = Mac(engine, medium, make_radio(nid), random.Random(seed + nid))
        medium.attach(mac)
        macs[nid] = mac
    received_ids = set()
    macs[1].on_receive = lambda f, i: received_ids.add(f.frame_id)
    results = []
    macs[0].on_send_done = lambda f, r: results.append((f.frame_id, r))

    for is_broadcast, drop_data, drop_ack in scenario:
        if drop_data:
            medium.drop(0, 1)
        else:
            medium.undrop(0, 1)
        if drop_ack:
            medium.drop(1, 0)
        else:
            medium.undrop(1, 0)
        frame = Frame(src=0, dst=BROADCAST if is_broadcast else 1, length_bytes=20)
        macs[0].send(frame)
        engine.run()

    for frame_id, result in results:
        if result.ack_bit:
            assert frame_id in received_ids
