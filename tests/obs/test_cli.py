"""Tests for the offline trace-analysis CLI (python -m repro.obs)."""

import json

import pytest

from repro.obs.cli import main
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.sim.trace import instrument_network
from repro.topology.generators import grid
from repro.workloads.collection import WorkloadConfig


@pytest.fixture(scope="module")
def exported_trace(tmp_path_factory):
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b", seed=2, duration_s=240.0, warmup_s=80.0,
        workload=WorkloadConfig(send_interval_s=5.0),
    )
    net = CollectionNetwork(topo, config)
    tracer = instrument_network(net, etx_sample_s=60.0)
    net.run()
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    tracer.to_jsonl(path)
    return str(path), net, tracer


def test_summary_reports_kinds_and_counters(exported_trace, capsys):
    path, net, tracer = exported_trace
    assert main(["summary", path]) == 0
    out = capsys.readouterr().out
    assert "records by kind" in out
    assert "rx" in out and "tx" in out
    assert "est.estimator.rejected_no_white" in out
    assert "link.mac.tx_unicast" in out


def test_summary_totals_match_in_process_stats(exported_trace, capsys):
    """Acceptance: CLI summary four-bit counter totals equal the live
    EstimatorStats sums from the run that produced the trace."""
    path, net, _ = exported_trace
    main(["summary", path])
    out = capsys.readouterr().out
    import dataclasses
    from repro.core.estimator import EstimatorStats

    reported = {}
    for line in out.splitlines():
        if line.startswith("est.estimator."):
            name, value = line.rsplit(None, 1)
            reported[name.strip()] = int(value)
    for f in dataclasses.fields(EstimatorStats):
        live = sum(
            getattr(n.estimator.stats, f.name)
            for n in net.nodes.values()
            if n.estimator is not None
        )
        assert reported[f"est.estimator.{f.name}"] == live, f.name


def test_timeline_filters(exported_trace, capsys):
    path, _, tracer = exported_trace
    assert main(["timeline", path, "--kind", "parent-change", "--limit", "5"]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if "parent-change" in l]
    assert 0 < len(lines) <= 5
    node = tracer.filter(kind="parent-change")[0].node
    main(["timeline", path, "--node", str(node), "--kind", "parent-change"])
    out = capsys.readouterr().out
    assert f"node {node}" in out


def test_flaps_counts_match_trace(exported_trace, capsys):
    path, _, tracer = exported_trace
    assert main(["flaps", path]) == 0
    out = capsys.readouterr().out
    total = tracer.count(kind="parent-change")
    assert f"({total} total" in out


def test_convergence_reports_error(exported_trace, capsys):
    path, _, _ = exported_trace
    assert main(["convergence", path]) == 0
    out = capsys.readouterr().out
    assert "true ETX" in out
    assert "mean |error|" in out


def test_convergence_single_node_timeseries(exported_trace, capsys):
    path, _, tracer = exported_trace
    node = tracer.filter(kind="etx")[0].node
    assert main(["convergence", path, "--node", str(node)]) == 0
    out = capsys.readouterr().out
    assert "estimated" in out and "true" in out


def test_journey_renders_span_trees(exported_trace, capsys):
    path, net, tracer = exported_trace
    assert main(["journey", path, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "packet (" in out
    assert "link attempts:" in out  # aggregate footer
    # Filtering by origin narrows the listing to that node's packets.
    origin = tracer.filter(kind="pkt-orig")[0].node
    assert main(["journey", path, "--origin", str(origin), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert f"packet ({origin}," in out


def test_journey_state_filter(exported_trace, capsys):
    path, _, _ = exported_trace
    assert main(["journey", path, "--state", "delivered", "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out


def test_tail_validates_stream(tmp_path, capsys):
    from repro.obs.stream import JsonlStreamSink

    path = tmp_path / "live.jsonl"
    sink = JsonlStreamSink(path)
    sink.emit({"rec": "sweep-start", "seq": 0, "t": None, "total": 1})
    sink.emit({"rec": "run-result", "seq": 1, "t": None, "label": "x",
               "status": "ok"})
    sink.emit({"rec": "sweep-end", "seq": 2, "t": None, "executed": 1,
               "cache_hits": 0, "failures": 0})
    sink.close()
    assert main(["tail", str(path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "sweep-start" in out and "all records valid" in out


def test_tail_check_flags_invalid_records(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"rec": "snapshot", "seq": 0, "t": None,
                                "full": True, "updates": {}}) + "\n")
    assert main(["tail", str(path), "--check"]) == 1
    assert "invalid" in capsys.readouterr().err


def test_cli_handles_empty_sections(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text(json.dumps({"t": 0.0, "kind": "boot", "node": 0}) + "\n")
    main(["summary", str(path)])
    assert "no `stats` records" in capsys.readouterr().out
    main(["flaps", str(path)])
    assert "no parent-change" in capsys.readouterr().out
    main(["convergence", str(path)])
    assert "no usable" in capsys.readouterr().out
