"""Causal packet-journey reconstruction from trace records."""

from repro.obs.journey import build_journeys, summarize_journeys
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.sim.trace import instrument_network
from repro.topology.generators import grid


def _traced_run(protocol="4b", rows=4, cols=4):
    topo = grid(rows, cols, spacing_m=6.0, rng=RngManager(5).stream("t"),
                jitter_m=0.5)
    config = SimConfig(protocol=protocol, seed=2, duration_s=150.0, warmup_s=60.0)
    net = CollectionNetwork(topo, config)
    tracer = instrument_network(net, max_records=None)
    result = net.run()
    return net, tracer, result


# ---------------------------------------------------------------------------
# Synthetic traces: exact span semantics
# ---------------------------------------------------------------------------
def _rec(kind, t, node, **fields):
    return dict(kind=kind, t=t, node=node, **fields)


def test_two_hop_journey_span_tree():
    records = [
        _rec("pkt-orig", 1.0, 5, seq=0),
        _rec("pkt-tx", 1.01, 5, origin=5, seq=0, to=3, acked=False),
        _rec("pkt-tx", 1.05, 5, origin=5, seq=0, to=3, acked=True),
        _rec("pkt-rx", 1.06, 3, origin=5, seq=0, src=5, thl=1, outcome="forward"),
        _rec("pkt-tx", 1.10, 3, origin=5, seq=0, to=0, acked=True),
        _rec("pkt-rx", 1.11, 0, origin=5, seq=0, src=3, thl=2, outcome="deliver"),
        _rec("deliver", 1.11, 5, seq=0, hops=2),
    ]
    journeys = build_journeys(records)
    journey = journeys[(5, 0)]
    assert journey.state == "delivered"
    assert journey.is_complete()
    assert journey.path() == [5, 3, 0]
    assert journey.delivered_at == 0 and journey.delivered_hops == 2
    assert journey.latency_s == journeys[(5, 0)].t_delivered - 1.0

    origin = journey.hops[5]
    assert origin.outcome == "origin"
    assert origin.attempts == 2 and origin.acked == 1 and origin.retries == 1
    assert origin.next_hop == 3
    assert [c.node for c in origin.children] == [3]
    relay = journey.hops[3]
    assert relay.outcome == "forward" and relay.attempts == 1
    assert [c.node for c in relay.children] == [0]

    text = journey.render()
    assert text.splitlines()[0].startswith("packet (5, 0): delivered")
    assert "node 5" in text and "tx=2 (retries=1)" in text


def test_duplicate_rx_counts_without_clobbering_outcome():
    records = [
        _rec("pkt-rx", 1.0, 3, origin=5, seq=1, src=5, thl=1, outcome="forward"),
        _rec("pkt-rx", 1.2, 3, origin=5, seq=1, src=5, thl=1, outcome="dup"),
    ]
    span = build_journeys(records)[(5, 1)].hops[3]
    assert span.outcome == "forward"
    assert span.duplicates == 1


def test_drop_marks_journey_dropped():
    records = [
        _rec("pkt-orig", 1.0, 5, seq=2),
        _rec("pkt-tx", 1.1, 5, origin=5, seq=2, to=3, acked=False),
        _rec("drop", 2.0, 5, origin=5, seq=2, reason="retries"),
    ]
    journey = build_journeys(records)[(5, 2)]
    assert journey.state == "dropped"
    assert journey.drop_reason == "retries" and journey.drop_node == 5
    assert journey.hops[5].outcome == "drop-retries"
    assert not journey.is_complete()
    assert "(retries at node 5)" in journey.render()


def test_broken_chain_yields_empty_path():
    # The relay's rx record is missing, so origin → root cannot be walked.
    records = [
        _rec("pkt-orig", 1.0, 5, seq=3),
        _rec("pkt-rx", 1.2, 0, origin=5, seq=3, src=3, thl=2, outcome="deliver"),
    ]
    journey = build_journeys(records)[(5, 3)]
    assert journey.delivered and not journey.is_complete()
    assert journey.path() == []
    assert "node 0" in journey.render()  # orphan spans still render


# ---------------------------------------------------------------------------
# Real traced runs: the acceptance contract
# ---------------------------------------------------------------------------
def test_every_delivered_packet_has_complete_span_chain():
    net, tracer, result = _traced_run()
    assert tracer.dropped == 0  # unbounded trace: nothing decimated
    journeys = build_journeys(tracer.records)
    delivered = [j for j in journeys.values() if j.delivered]
    assert len(delivered) == result.unique_delivered
    for journey in delivered:
        assert journey.is_complete(), journey.render()
        path = journey.path()
        assert path[0] == journey.origin and path[-1] == journey.delivered_at
        assert journey.delivered_hops == len(path) - 1
        assert journey.latency_s is not None and journey.latency_s >= 0.0

    summary = summarize_journeys(journeys.values())
    assert summary.delivered == summary.complete == result.unique_delivered
    assert summary.total_attempts >= summary.delivered
    assert summary.total_retries <= summary.total_attempts


def test_journeys_survive_trace_dicts_round_trip():
    net, tracer, result = _traced_run()
    from_objects = build_journeys(tracer.records)
    from_dicts = build_journeys([r.to_dict() for r in tracer.records])
    assert set(from_objects) == set(from_dicts)
    for key, journey in from_objects.items():
        other = from_dicts[key]
        assert journey.state == other.state
        assert journey.path() == other.path()
        assert journey.total_attempts == other.total_attempts


def test_mhlqi_packets_get_hopless_journeys():
    # MultiHopLQI has no forwarding engine → no pkt-* records; delivery
    # accounting must still work from the protocol-agnostic deliver records.
    net, tracer, result = _traced_run(protocol="mhlqi")
    journeys = build_journeys(tracer.records)
    delivered = [j for j in journeys.values() if j.delivered]
    assert len(delivered) == result.unique_delivered
    assert all(not j.is_complete() for j in delivered)  # no span chain
