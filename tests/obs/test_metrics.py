"""Unit tests for the cross-layer metrics registry."""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _flat_key,
    parse_flat_key,
    register_dataclass_counters,
)


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------
def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_overwrites():
    g = Gauge()
    g.set(3.5)
    g.set(1.0)
    assert g.value == 1.0


def test_histogram_buckets_and_stats():
    h = Histogram(bounds=(1.0, 2.0, 5.0))
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 5
    assert h.bucket_counts == [1, 2, 1, 1]  # ≤1, ≤2, ≤5, +inf
    assert h.vmin == 0.5 and h.vmax == 100.0
    assert h.mean == pytest.approx(106.5 / 5)


def test_histogram_merge_requires_same_bounds():
    a = Histogram(bounds=(1.0,))
    b = Histogram(bounds=(2.0,))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_unsorted_bounds_rejected():
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("link.mac.tx_unicast", node=7)
    b = reg.counter("link.mac.tx_unicast", node=7)
    assert a is b
    c = reg.counter("link.mac.tx_unicast", node=8)
    assert c is not a


def test_name_convention_enforced():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("NoDots")
    with pytest.raises(ValueError):
        reg.counter("Upper.Case")
    reg.counter("sim.engine.events_run")  # valid


def test_type_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("sim.engine.events_run")
    with pytest.raises(TypeError):
        reg.gauge("sim.engine.events_run")
    with pytest.raises(TypeError):
        reg.histogram("sim.engine.events_run")


def test_snapshot_flat_keys_round_trip():
    reg = MetricsRegistry()
    reg.counter("link.mac.tx_unicast", node=7, neighbor=3).inc(9)
    reg.gauge("sim.engine.pending").set(42)
    snap = reg.snapshot()
    assert snap["link.mac.tx_unicast{neighbor=3,node=7}"] == 9
    assert snap["sim.engine.pending"] == 42
    name, labels = parse_flat_key("link.mac.tx_unicast{neighbor=3,node=7}")
    assert name == "link.mac.tx_unicast"
    assert labels == {"neighbor": "3", "node": "7"}
    assert parse_flat_key("sim.engine.pending") == ("sim.engine.pending", {})


def test_flat_key_escapes_label_specials():
    # `,` `=` `}` and `\` in a label value must not corrupt the key grammar.
    key = _flat_key("sim.run.tag", [("label", "a,b=c}d\\e"), ("node", "3")])
    name, labels = parse_flat_key(key)
    assert name == "sim.run.tag"
    assert labels == {"label": "a,b=c}d\\e", "node": "3"}


_label_keys = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_label_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)


@given(
    labels=st.dictionaries(_label_keys, _label_values, max_size=4),
)
def test_flat_key_round_trips_any_label_value(labels):
    items = sorted(labels.items())
    key = _flat_key("layer.component.event", items)
    name, parsed = parse_flat_key(key)
    assert name == "layer.component.event"
    assert parsed == labels


def test_empty_histogram_json_safe():
    h = Histogram(bounds=(1.0, 5.0))
    payload = h.to_json_dict()
    # The vmin=+inf / vmax=-inf sentinels must not leak into JSON.
    assert payload["min"] is None and payload["max"] is None
    text = json.dumps(payload, allow_nan=False)  # raises on inf/nan
    assert "+inf" in json.loads(text)["buckets"]


def test_nonempty_histogram_json_preserves_extrema():
    h = Histogram(bounds=(1.0,))
    h.observe(0.25)
    h.observe(7.0)
    payload = h.to_json_dict()
    assert payload["min"] == 0.25 and payload["max"] == 7.0
    json.dumps(payload, allow_nan=False)


def test_snapshot_expands_histograms():
    reg = MetricsRegistry()
    h = reg.histogram("net.forwarding.latency_s", bounds=(1.0, 5.0), node=1)
    h.observe(0.5)
    h.observe(10.0)
    snap = reg.snapshot()
    assert snap["net.forwarding.latency_s_count{node=1}"] == 2
    assert snap["net.forwarding.latency_s_sum{node=1}"] == 10.5
    assert snap["net.forwarding.latency_s_bucket{le=1.0,node=1}"] == 1
    assert snap["net.forwarding.latency_s_bucket{le=+inf,node=1}"] == 1


def test_aggregate_sums_across_labels():
    reg = MetricsRegistry()
    reg.counter("link.mac.tx_unicast", node=1).inc(3)
    reg.counter("link.mac.tx_unicast", node=2).inc(4)
    assert reg.aggregate("link.mac.tx_unicast") == 7


def test_merge_semantics():
    a = MetricsRegistry()
    a.counter("link.mac.tx_unicast", node=1).inc(3)
    a.gauge("sim.engine.pending").set(5)
    a.histogram("net.forwarding.latency_s", bounds=(1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.counter("link.mac.tx_unicast", node=1).inc(4)
    b.counter("link.mac.tx_broadcast", node=1).inc(1)
    b.gauge("sim.engine.pending").set(9)
    b.histogram("net.forwarding.latency_s", bounds=(1.0,)).observe(2.0)
    a.merge(b)
    snap = a.snapshot()
    assert snap["link.mac.tx_unicast{node=1}"] == 7  # counters add
    assert snap["link.mac.tx_broadcast{node=1}"] == 1
    assert snap["sim.engine.pending"] == 9  # gauges take the newer value
    assert snap["net.forwarding.latency_s_count"] == 2  # histograms pool


def test_render_filters_by_prefix():
    reg = MetricsRegistry()
    reg.counter("link.mac.tx_unicast").inc(2)
    reg.counter("net.routing.parent_switches").inc(1)
    out = reg.render("link.")
    assert "tx_unicast" in out and "parent_switches" not in out


# ---------------------------------------------------------------------------
# Dataclass bridging
# ---------------------------------------------------------------------------
def test_register_dataclass_counters():
    from repro.core.estimator import EstimatorStats

    stats = EstimatorStats(beacons_sent=3, rejected_no_white=2)
    reg = MetricsRegistry()
    stats.register_into(reg, node=4)
    snap = reg.snapshot()
    assert snap["est.estimator.beacons_sent{node=4}"] == 3
    assert snap["est.estimator.rejected_no_white{node=4}"] == 2
    # Every counter field of the dataclass is present.
    import dataclasses

    for f in dataclasses.fields(EstimatorStats):
        assert f"est.estimator.{f.name}{{node=4}}" in snap


def test_all_stats_dataclasses_register_under_their_layer():
    from repro.core.estimator import EstimatorStats
    from repro.link.mac import MacStats
    from repro.net.ctp.forwarding import ForwardingStats
    from repro.net.ctp.routing import RoutingStats
    from repro.net.multihoplqi import MhlqiStats

    expected = {
        EstimatorStats: "est.estimator",
        MacStats: "link.mac",
        RoutingStats: "net.routing",
        ForwardingStats: "net.forwarding",
        MhlqiStats: "net.mhlqi",
    }
    for cls, prefix in expected.items():
        reg = MetricsRegistry()
        cls().register_into(reg, node=0)
        keys = list(reg.snapshot())
        assert keys, cls.__name__
        assert all(k.startswith(prefix + ".") for k in keys), cls.__name__


def test_network_metrics_bridge():
    from repro.obs import network_metrics
    from repro.sim.network import CollectionNetwork, SimConfig
    from repro.sim.rng import RngManager
    from repro.topology.generators import grid

    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0)
    net = CollectionNetwork(topo, config)
    net.run()
    reg = network_metrics(net)
    assert reg.aggregate("link.mac.tx_unicast") == sum(
        n.mac.stats.tx_unicast for n in net.nodes.values()
    )
    assert reg.aggregate("est.estimator.beacons_received") == sum(
        n.estimator.stats.beacons_received for n in net.nodes.values() if n.estimator
    )
    snap = reg.snapshot()
    assert snap["phy.medium.transmissions"] == net.medium.transmissions
    assert snap["sim.engine.events_run"] == net.engine.events_run
    # Folded totals (per_node=False) are exact.
    folded = network_metrics(net, per_node=False)
    assert folded.aggregate("link.mac.tx_unicast") == reg.aggregate("link.mac.tx_unicast")


def test_collect_metrics_config_flag():
    from repro.sim.network import CollectionNetwork, SimConfig
    from repro.sim.rng import RngManager
    from repro.topology.generators import grid

    topo = grid(2, 2, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0,
                       collect_metrics=True)
    result = CollectionNetwork(topo, config).run()
    assert result.metrics
    assert any(k.startswith("est.estimator.") for k in result.metrics)
