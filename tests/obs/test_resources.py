"""Run resource accounting: probes, aggregation, and runner integration."""

from repro.obs.resources import (
    RESOURCE_FIELDS,
    ResourceProbe,
    attach_resources,
    format_resources,
    measure_run,
    merge_resources,
)
from repro.runner import ExperimentRunner, Task


def _burn(n):
    return sum(i * i for i in range(n))


def test_probe_reports_every_field():
    with ResourceProbe() as probe:
        _burn(50_000)
    resources = probe.result
    assert set(resources) == set(RESOURCE_FIELDS)
    assert resources["wall_s"] > 0.0
    assert resources["cpu_s"] == resources["cpu_user_s"] + resources["cpu_sys_s"]
    assert resources["max_rss_kb"] > 0.0  # Linux: kB high-water mark


def test_measure_run_returns_value_and_resources():
    value, resources = measure_run(_burn, 10_000)
    assert value == _burn(10_000)
    assert resources["wall_s"] > 0.0


def test_attach_resources_is_duck_typed():
    class WithSlot:
        resources = None

    target = WithSlot()
    assert attach_resources(target, {"wall_s": 1.0})
    assert target.resources == {"wall_s": 1.0}
    assert not attach_resources(object(), {"wall_s": 1.0})
    assert not attach_resources(42, {"wall_s": 1.0})


def test_merge_resources_sums_cpu_maxes_rss():
    total = {}
    merge_resources(total, {"wall_s": 1.0, "cpu_s": 0.5, "max_rss_kb": 100.0})
    merge_resources(total, {"wall_s": 2.0, "cpu_s": 0.25, "max_rss_kb": 80.0})
    merge_resources(total, None)  # tolerated: failed run has no resources
    assert total["wall_s"] == 3.0
    assert total["cpu_s"] == 0.75
    assert total["max_rss_kb"] == 100.0  # concurrent peaks don't sum


def test_format_resources():
    line = format_resources({"cpu_s": 1.234, "wall_s": 2.5, "max_rss_kb": 84992.0})
    assert line == "cpu=1.23s wall=2.50s rss=83MB"
    assert format_resources(None) == "(no resource data)"
    assert format_resources({}) == "(no resource data)"


# ---------------------------------------------------------------------------
# Runner integration
# ---------------------------------------------------------------------------
class _SlottedResult:
    """Result type with a ``resources`` slot (like ``CollectionResult``)."""

    def __init__(self, value):
        self.value = value
        self.resources = None


def _burn_slotted(n):
    return _SlottedResult(_burn(n))


def test_runner_aggregates_resources_serial_and_parallel():
    for workers in (1, 2):
        runner = ExperimentRunner(workers=workers)
        out = runner.run([Task(_burn_slotted, n, label=f"burn({n})")
                          for n in (10_000, 20_000)])
        # Workers probe in-process and attach to the result's slot.
        assert all(r.resources["wall_s"] > 0.0 for r in out)
        resources = runner.stats.resources
        assert resources["cpu_s"] >= 0.0 and resources["wall_s"] > 0.0
        assert resources["max_rss_kb"] > 0.0
        assert "rss=" in runner.stats.summary()


def test_plain_results_carry_no_resources():
    runner = ExperimentRunner()
    assert runner.run([Task(_burn, 100, label="burn(100)")]) == [_burn(100)]
    assert runner.stats.resources == {}  # int results have no slot to fill


def test_sim_results_carry_worker_resources():
    from repro.experiments.common import Cell, ExperimentScale, run_cells

    scale = ExperimentScale(n_nodes=9, duration_s=120.0, warmup_s=30.0, seeds=(1,))
    cells = run_cells(scale, [Cell.make("4b")], ExperimentRunner())
    run = cells[0].runs[0]
    assert run.resources is not None
    assert set(run.resources) == set(RESOURCE_FIELDS)
    assert run.resources["cpu_s"] > 0.0
    payload = run.to_json_dict()
    assert payload["resources"]["cpu_s"] == run.resources["cpu_s"]
