"""Tests for engine run profiling."""

from repro.obs.profile import EngineProfiler, merge_profiles
from repro.sim.engine import Engine
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid


def _noop():
    pass


def _other():
    pass


def test_profiler_records_event_kinds():
    engine = Engine()
    profiler = engine.enable_profiling()
    for _ in range(3):
        engine.schedule(1.0, _noop)
    engine.schedule(2.0, _other)
    engine.run_until(10.0)
    assert profiler.events == 4
    counts = dict((k, c) for k, c, _ in profiler.by_kind())
    assert counts["_noop"] == 3
    assert counts["_other"] == 1
    summary = profiler.summary()
    assert summary["events"] == 4
    assert set(summary["by_kind"]) == {"_noop", "_other"}
    assert "events" in profiler.render()


def test_profiler_queue_depth_sampling():
    engine = Engine()
    profiler = EngineProfiler(queue_sample_every=1)
    engine.enable_profiling(profiler)
    for i in range(5):
        engine.schedule(float(i + 1), _noop)
    engine.run_until(10.0)
    assert len(profiler.queue_samples) == 5
    depths = [d for _, d in profiler.queue_samples]
    assert depths == [4, 3, 2, 1, 0]  # queue drains monotonically


def test_profiling_disabled_by_default():
    engine = Engine()
    engine.schedule(1.0, _noop)
    engine.run_until(10.0)
    assert engine.profiler is None


def test_profile_events_config_surfaces_on_result():
    topo = grid(2, 2, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0,
                       profile_events=True)
    net = CollectionNetwork(topo, config)
    result = net.run()
    assert result.profile is not None
    assert result.profile["events"] == result.events_run
    assert result.profile["events_per_s"] > 0
    assert result.profile["by_kind"]


def test_profile_not_collected_when_disabled():
    topo = grid(2, 2, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0)
    result = CollectionNetwork(topo, config).run()
    assert result.profile is None


def test_merge_profiles():
    a = {"events": 10, "wall_s": 1.0,
         "by_kind": {"x": {"count": 10, "wall_s": 1.0}}}
    b = {"events": 20, "wall_s": 1.0,
         "by_kind": {"x": {"count": 5, "wall_s": 0.25},
                     "y": {"count": 15, "wall_s": 0.75}}}
    merged = merge_profiles([a, None, b])
    assert merged["events"] == 30
    assert merged["wall_s"] == 2.0
    assert merged["events_per_s"] == 15.0
    assert merged["by_kind"]["x"] == {"count": 15, "wall_s": 1.25}
    assert merged["runs"] == 2
    assert list(merged["by_kind"]) == ["x", "y"]  # sorted by wall time
    assert merge_profiles([None, None]) is None


def test_runner_stats_absorb_profile():
    from repro.runner.runner import RunnerStats

    stats = RunnerStats()
    assert "no profile data" in stats.profile_report()
    stats.absorb_profile({"events": 10, "wall_s": 1.0,
                          "by_kind": {"x": {"count": 10, "wall_s": 1.0}}})
    stats.absorb_profile({"events": 6, "wall_s": 0.5,
                          "by_kind": {"x": {"count": 6, "wall_s": 0.5}}})
    assert stats.profile["events"] == 16
    assert stats.profile["runs"] == 2
    report = stats.profile_report()
    assert "16 events" in report and "2 run(s)" in report
