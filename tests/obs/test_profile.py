"""Tests for engine run profiling."""

from repro.obs.profile import EngineProfiler, merge_profiles
from repro.sim.engine import Engine
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid


def _noop():
    pass


def _other():
    pass


def test_profiler_records_event_kinds():
    engine = Engine()
    profiler = engine.enable_profiling()
    for _ in range(3):
        engine.schedule(1.0, _noop)
    engine.schedule(2.0, _other)
    engine.run_until(10.0)
    assert profiler.events == 4
    counts = dict((k, c) for k, c, _ in profiler.by_kind())
    assert counts["_noop"] == 3
    assert counts["_other"] == 1
    summary = profiler.summary()
    assert summary["events"] == 4
    assert set(summary["by_kind"]) == {"_noop", "_other"}
    assert "events" in profiler.render()


def test_profiler_queue_depth_sampling():
    engine = Engine()
    profiler = EngineProfiler(queue_sample_every=1)
    engine.enable_profiling(profiler)
    for i in range(5):
        engine.schedule(float(i + 1), _noop)
    engine.run_until(10.0)
    assert len(profiler.queue_samples) == 5
    depths = [d for _, d in profiler.queue_samples]
    assert depths == [4, 3, 2, 1, 0]  # queue drains monotonically


def test_profiling_disabled_by_default():
    engine = Engine()
    engine.schedule(1.0, _noop)
    engine.run_until(10.0)
    assert engine.profiler is None


def test_profile_events_config_surfaces_on_result():
    topo = grid(2, 2, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0,
                       profile_events=True)
    net = CollectionNetwork(topo, config)
    result = net.run()
    assert result.profile is not None
    assert result.profile["events"] == result.events_run
    assert result.profile["events_per_s"] > 0
    assert result.profile["by_kind"]


def test_profile_not_collected_when_disabled():
    topo = grid(2, 2, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0)
    result = CollectionNetwork(topo, config).run()
    assert result.profile is None


class _TinyCapProfiler(EngineProfiler):
    # __slots__ blocks per-instance overrides; subclassing keeps the class
    # attribute semantics identical while making the cap testable.
    LATENCY_SAMPLE_CAP = 8


def test_latency_decimation_at_cap_boundary():
    prof = _TinyCapProfiler()
    for i in range(7):
        prof.record("k", float(i), sim_time=0.0, queue_depth=0)
    # One below the cap: every sample retained, stride untouched.
    assert prof.latency_samples == [float(i) for i in range(7)]
    assert prof._lat_stride == 1

    prof.record("k", 7.0, sim_time=0.0, queue_depth=0)
    # Hitting the cap halves the retained samples and doubles the stride.
    assert prof.latency_samples == [1.0, 3.0, 5.0, 7.0]
    assert prof._lat_stride == 2

    # With stride 2 only every other event is sampled from here on.
    for i in range(8, 12):
        prof.record("k", float(i), sim_time=0.0, queue_depth=0)
    assert prof.latency_samples == [1.0, 3.0, 5.0, 7.0, 9.0, 11.0]
    assert prof.events == 12  # decimation never loses event counts


def test_latency_decimation_repeats_at_next_cap():
    prof = _TinyCapProfiler()
    for i in range(100):
        prof.record("k", float(i), sim_time=0.0, queue_depth=0)
    assert len(prof.latency_samples) < prof.LATENCY_SAMPLE_CAP
    assert prof._lat_stride >= 4  # doubled more than once over 100 events
    # The retained sample still spans the run, not just its head.
    assert prof.latency_samples[0] < 20.0 and prof.latency_samples[-1] > 90.0
    pcts = prof.latency_percentiles()
    assert pcts["p50"] <= pcts["p95"]


def test_record_kernel_buckets_and_render():
    prof = EngineProfiler()
    prof.record("Medium._deliver", 0.01, sim_time=1.0, queue_depth=0)
    prof.record_kernel("medium_fast.prr_decode", 0.004, n=3)
    prof.record_kernel("medium_fast.cull", 0.006)
    prof.record_kernel("medium_fast.cull", 0.001)
    summary = prof.summary()
    kernels = summary["kernels"]
    assert kernels["medium_fast.prr_decode"] == {"count": 3, "wall_s": 0.004}
    assert kernels["medium_fast.cull"]["count"] == 2
    # Sorted by wall time, most expensive first.
    assert list(kernels) == ["medium_fast.cull", "medium_fast.prr_decode"]
    assert "kernels:" in prof.render()
    assert "medium_fast.cull" in prof.render()


def test_merge_profiles_folds_kernels():
    a = {"events": 1, "wall_s": 1.0,
         "by_kind": {"x": {"count": 1, "wall_s": 1.0}},
         "kernels": {"k.a": {"count": 2, "wall_s": 0.5}}}
    b = {"events": 1, "wall_s": 1.0,
         "by_kind": {"x": {"count": 1, "wall_s": 1.0}},
         "kernels": {"k.a": {"count": 1, "wall_s": 0.25},
                     "k.b": {"count": 4, "wall_s": 0.75}}}
    merged = merge_profiles([a, b])
    assert merged["kernels"]["k.a"] == {"count": 3, "wall_s": 0.75}
    assert list(merged["kernels"]) == ["k.a", "k.b"]
    # No kernels anywhere → the key stays absent, as before this field.
    assert "kernels" not in merge_profiles(
        [{"events": 1, "wall_s": 1.0, "by_kind": {}}]
    )


def test_fast_medium_profiles_kernel_buckets():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0,
                       medium="fast", profile_events=True)
    result = CollectionNetwork(topo, config).run()
    kernels = result.profile["kernels"]
    assert {"medium_fast.cull", "medium_fast.fading", "medium_fast.interference",
            "medium_fast.prr_decode"} <= set(kernels)
    for row in kernels.values():
        assert row["count"] > 0 and row["wall_s"] >= 0.0


def test_merge_profiles():
    a = {"events": 10, "wall_s": 1.0,
         "by_kind": {"x": {"count": 10, "wall_s": 1.0}}}
    b = {"events": 20, "wall_s": 1.0,
         "by_kind": {"x": {"count": 5, "wall_s": 0.25},
                     "y": {"count": 15, "wall_s": 0.75}}}
    merged = merge_profiles([a, None, b])
    assert merged["events"] == 30
    assert merged["wall_s"] == 2.0
    assert merged["events_per_s"] == 15.0
    assert merged["by_kind"]["x"] == {"count": 15, "wall_s": 1.25}
    assert merged["runs"] == 2
    assert list(merged["by_kind"]) == ["x", "y"]  # sorted by wall time
    assert merge_profiles([None, None]) is None


def test_runner_stats_absorb_profile():
    from repro.runner.runner import RunnerStats

    stats = RunnerStats()
    assert "no profile data" in stats.profile_report()
    stats.absorb_profile({"events": 10, "wall_s": 1.0,
                          "by_kind": {"x": {"count": 10, "wall_s": 1.0}}})
    stats.absorb_profile({"events": 6, "wall_s": 0.5,
                          "by_kind": {"x": {"count": 6, "wall_s": 0.5}}})
    assert stats.profile["events"] == 16
    assert stats.profile["runs"] == 2
    report = stats.profile_report()
    assert "16 events" in report and "2 run(s)" in report
