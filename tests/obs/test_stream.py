"""Live telemetry streaming: record schema, sinks, and the sim-time sampler."""

import json

import pytest

from repro.obs.bridge import network_metrics
from repro.obs.stream import (
    JsonlStreamSink,
    PrometheusTextSink,
    RingStreamSink,
    TelemetrySampler,
    encode_record,
    fold_snapshots,
    read_stream,
    validate_record,
)
from repro.runner import ExperimentRunner, ResultCache, Task
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid


def _network(**overrides):
    topo = grid(4, 4, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b", seed=2, duration_s=150.0, warmup_s=60.0, **overrides
    )
    return CollectionNetwork(topo, config)


# ---------------------------------------------------------------------------
# Record schema
# ---------------------------------------------------------------------------
def test_validate_accepts_each_kind():
    good = [
        {"rec": "run-start", "seq": 0, "t": 0.0, "protocol": "4b", "seed": 2,
         "nodes": 16, "duration_s": 150.0, "period_s": 30.0},
        {"rec": "snapshot", "seq": 1, "t": 30.0, "full": True,
         "updates": {"sim.engine.events_run": 12}},
        {"rec": "run-end", "seq": 2, "t": 150.0, "events_run": 99, "metrics": 43},
        {"rec": "sweep-start", "seq": 0, "t": None, "total": 4},
        {"rec": "run-result", "seq": 1, "t": None, "label": "4b/s1", "status": "ok"},
        {"rec": "sweep-end", "seq": 2, "t": None, "executed": 4,
         "cache_hits": 0, "failures": 0},
    ]
    for record in good:
        assert validate_record(record) == [], record["rec"]


def test_validate_rejects_malformed_records():
    assert validate_record("not a dict")
    assert validate_record({"rec": "no-such-kind", "seq": 0, "t": 0.0})
    # Run-scoped records need a numeric t; sweep-scoped need t=null.
    assert validate_record({"rec": "snapshot", "seq": 0, "t": None,
                            "full": True, "updates": {}})
    assert validate_record({"rec": "sweep-start", "seq": 0, "t": 1.0, "total": 2})
    assert validate_record({"rec": "snapshot", "seq": -1, "t": 0.0,
                            "full": True, "updates": {}})
    assert validate_record({"rec": "snapshot", "seq": 0, "t": 0.0,
                            "full": True, "updates": {"k": "string"}})
    assert validate_record({"rec": "run-result", "seq": 0, "t": None,
                            "label": "x", "status": "maybe"})
    assert validate_record({"rec": "run-end", "seq": 0, "t": 1.0})  # missing fields


def test_encode_record_is_strict_json():
    line = encode_record({"rec": "snapshot", "seq": 0, "t": 0.0, "full": True,
                          "updates": {"a.b.c": float("inf"), "d.e.f": 1.5}})
    decoded = json.loads(line)
    assert decoded["updates"]["a.b.c"] is None  # non-finite → null
    assert decoded["updates"]["d.e.f"] == 1.5


def test_fold_snapshots_later_updates_win():
    stream = [
        {"rec": "snapshot", "seq": 0, "t": 1.0, "full": True,
         "updates": {"a.b.c": 1, "d.e.f": 2}},
        {"rec": "run-result", "seq": 9, "t": None, "label": "x", "status": "ok"},
        {"rec": "snapshot", "seq": 1, "t": 2.0, "full": False,
         "updates": {"a.b.c": 5}},
    ]
    assert fold_snapshots(stream) == {"a.b.c": 5, "d.e.f": 2}


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "sub" / "stream.jsonl"  # parent dir is created
    sink = JsonlStreamSink(path)
    records = [
        {"rec": "sweep-start", "seq": 0, "t": None, "total": 1},
        {"rec": "sweep-end", "seq": 1, "t": None, "executed": 1,
         "cache_hits": 0, "failures": 0},
    ]
    for record in records:
        sink.emit(record)
    sink.close()
    assert list(read_stream(path)) == records
    assert sink.stats.records_emitted == 2
    assert sink.stats.bytes_written == path.stat().st_size


def test_jsonl_sink_appends_across_opens(tmp_path):
    path = tmp_path / "stream.jsonl"
    for seq in range(2):
        sink = JsonlStreamSink(path)
        sink.emit({"rec": "sweep-start", "seq": seq, "t": None, "total": 1})
        sink.close()
    assert len(list(read_stream(path))) == 2


def test_ring_sink_bounds_memory():
    sink = RingStreamSink(capacity=3)
    for seq in range(5):
        sink.emit({"rec": "sweep-start", "seq": seq, "t": None, "total": 1})
    assert [r["seq"] for r in sink.records] == [2, 3, 4]
    assert sink.dropped == 2
    with pytest.raises(ValueError):
        RingStreamSink(capacity=0)


def test_prometheus_sink_folds_and_escapes(tmp_path):
    from repro.obs.metrics import _flat_key

    path = tmp_path / "metrics.prom"
    sink = PrometheusTextSink(path)
    sink.emit({"rec": "run-start", "seq": 0, "t": 0.0})  # ignored: not a snapshot
    tagged = _flat_key("sim.run.tag", [("label", 'a"b\\c')])
    sink.emit({"rec": "snapshot", "seq": 1, "t": 30.0, "full": True,
               "updates": {"link.mac.tx_unicast{node=7}": 3, tagged: 1}})
    sink.emit({"rec": "snapshot", "seq": 2, "t": 60.0, "full": False,
               "updates": {"link.mac.tx_unicast{node=7}": 9}})
    text = path.read_text()
    assert text == sink.render()
    assert 'link_mac_tx_unicast{node="7"} 9' in text  # latest value wins
    assert '\\"b\\\\c' in text  # quote and backslash escaped


# ---------------------------------------------------------------------------
# The sampler on a real network
# ---------------------------------------------------------------------------
def test_sampler_stream_folds_to_exact_end_state():
    net = _network(telemetry_period_s=30.0)
    assert isinstance(net.telemetry, TelemetrySampler)
    sink = net.telemetry.sink
    assert isinstance(sink, RingStreamSink)  # no path → in-memory ring
    net.run()

    records = sink.records
    kinds = [r["rec"] for r in records]
    assert kinds[0] == "run-start" and kinds[-1] == "run-end"
    snapshots = [r for r in records if r["rec"] == "snapshot"]
    # Period 30 over 150 s: samples at 30..150 plus the run-end flush.
    assert len(snapshots) >= 5
    assert snapshots[0]["full"] and not any(s["full"] for s in snapshots[1:])
    assert [r["seq"] for r in records] == list(range(len(records)))
    for record in records:
        assert validate_record(record) == [], record

    # The acceptance contract: the fold equals the end-of-run registry
    # snapshot key-for-key (sampler default is per_node=False).
    assert fold_snapshots(records) == network_metrics(net, per_node=False).snapshot()

    end = records[-1]
    assert end["events_run"] == net.engine.events_run
    assert end["resources"]["cpu_s"] >= 0.0
    assert net.run_resources is not None


def test_sampler_per_node_mode_folds_exactly():
    net = _network(telemetry_period_s=50.0, telemetry_per_node=True)
    net.run()
    records = net.telemetry.sink.records
    folded = fold_snapshots(records)
    assert folded == network_metrics(net, per_node=True).snapshot()
    assert any("{" in key for key in folded)  # per-node labels survived


def test_sampler_streams_to_jsonl_path(tmp_path):
    path = tmp_path / "live.jsonl"
    net = _network(telemetry_period_s=30.0, telemetry_path=str(path))
    net.run()
    records = list(read_stream(path))
    assert fold_snapshots(records) == network_metrics(net, per_node=False).snapshot()
    assert all(validate_record(r) == [] for r in records)
    assert records[0]["run"] == "4b-seed2"


def test_telemetry_is_pure_observer():
    plain = _network().run()
    sampled = _network(telemetry_period_s=30.0).run()
    lhs, rhs = plain.to_json_dict(), sampled.to_json_dict()
    # Sampler events are extra engine events; everything simulated matches.
    assert lhs.pop("events_run") < rhs.pop("events_run")
    lhs.pop("resources"), rhs.pop("resources")
    assert lhs == rhs


def test_telemetry_config_validation():
    with pytest.raises(ValueError):
        SimConfig(protocol="4b", seed=1, duration_s=10.0, warmup_s=0.0,
                  telemetry_period_s=0.0)
    with pytest.raises(ValueError):
        SimConfig(protocol="4b", seed=1, duration_s=10.0, warmup_s=0.0,
                  telemetry_path="x.jsonl")  # path requires a period


# ---------------------------------------------------------------------------
# Runner sweep records
# ---------------------------------------------------------------------------
def _double(x):
    return x * 2


def test_runner_emits_sweep_scoped_records(tmp_path):
    sink = RingStreamSink(capacity=64)
    cache = ResultCache(tmp_path)
    tasks = [Task(_double, n, label=f"double({n})") for n in (1, 2)]

    runner = ExperimentRunner(cache=cache, telemetry=sink)
    runner.run(tasks)
    kinds = [r["rec"] for r in sink.records]
    assert kinds == ["sweep-start", "run-result", "run-result", "sweep-end"]
    assert all(validate_record(r) == [] for r in sink.records)
    assert {r["status"] for r in sink.records if r["rec"] == "run-result"} == {"ok"}
    end = sink.records[-1]
    assert end["executed"] == 2 and end["cache_hits"] == 0 and end["failures"] == 0

    rerun = ExperimentRunner(cache=cache, telemetry=RingStreamSink(capacity=64))
    rerun.run(tasks)
    statuses = [r["status"] for r in rerun.telemetry.records
                if r["rec"] == "run-result"]
    assert statuses == ["cached", "cached"]


def _explode(x):
    raise RuntimeError(f"boom {x}")


def test_runner_emits_failed_run_results():
    sink = RingStreamSink(capacity=16)
    runner = ExperimentRunner(strict=False, telemetry=sink)
    runner.run([Task(_explode, 1, label="explode(1)")])
    failed = [r for r in sink.records if r["rec"] == "run-result"]
    assert failed and failed[0]["status"] == "failed"
    assert "boom" in failed[0]["error"]
    assert sink.records[-1]["failures"] == 1
