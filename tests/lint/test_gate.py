"""The committed tree passes its own gates: lint clean, mypy strict subset."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import default_rules, lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_tree_is_lint_clean():
    """src/repro has no findings beyond the committed baseline.

    This is the same check the CI lint job runs; keeping it in the suite
    means a violation fails fast locally, with the offending file named.
    """
    ctx = lint_paths([REPO_ROOT / "src" / "repro"], default_rules(None, None), REPO_ROOT)
    assert not ctx.errors
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    new, _ = baseline.partition(ctx.findings)
    assert new == [], "new lint findings:\n" + "\n".join(f.render() for f in new)


def test_mypy_strict_subset():
    """The mypy gate (CI `lint` job) passes on core/, sim/, phy/.

    Skips where mypy is not installed — the gate is enforced in CI; this
    test exists so environments with mypy catch regressions before push.
    """
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
