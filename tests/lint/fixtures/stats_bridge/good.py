"""S001 good fixture: both sanctioned bridging styles, plus out-of-scope classes."""

from dataclasses import dataclass

from repro.obs.bridge import register_dataclass_counters


@dataclass
class WholesaleStats:
    """Delegates to the helper: every numeric field covered by construction."""

    METRICS_PREFIX = "phy.wholesale"

    frames_sent: int = 0
    frames_lost: int = 0

    def register_into(self, registry, **labels):
        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


@dataclass
class ManualStats:
    """Registers each field with an explicit metric-name literal."""

    METRICS_PREFIX = "link.manual"

    acked: int = 0
    dropped: int = 0

    def register_into(self, registry, **labels):
        registry.counter("link.manual.acked", lambda: self.acked, **labels)
        registry.counter("link.manual.dropped", lambda: self.dropped, **labels)


@dataclass
class NoCountersStats:
    """No numeric fields: nothing to bridge."""

    label: str = ""


class PlainStats:
    """Not a dataclass: out of the rule's scope."""

    packets: int = 0
