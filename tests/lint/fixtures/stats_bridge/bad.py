"""S001 bad fixture: stats dataclasses that drift from the obs bridge."""

from dataclasses import dataclass


@dataclass
class OrphanStats:
    """No METRICS_PREFIX, no register_into at all."""

    frames_sent: int = 0
    frames_lost: int = 0


@dataclass
class PartialStats:
    """Bridges one field manually, forgets the other."""

    METRICS_PREFIX = "link.partial"

    acked: int = 0
    dropped: int = 0

    def register_into(self, registry, **labels):
        registry.counter("link.partial.acked", lambda: self.acked, **labels)
