"""R001 fixture: one of every violation class.

Expected findings (7):

1. unseeded ``Random()`` — OS entropy
2. arithmetic seed ``Random(master + nid)`` — no derive_seed provenance
3. literal-seeded bit generator ``Generator(PCG64(12345))``
4. dynamic first stream-name component
5. f-string stream-name component
6. duplicate ``derive_seed`` tuple within the module
7. duplicate ``stream`` tuple within one scope/receiver
"""

from random import Random

from numpy.random import PCG64, Generator

from repro.sim.rng import RngManager, derive_seed


def build(master: int, nid: int, name: str) -> None:
    wild = Random()  # 1: unseeded
    drift = Random(master + nid)  # 2: arithmetic seed
    fast = Generator(PCG64(12345))  # 3: literal seed
    mgr = RngManager(master)
    dyn = mgr.stream(name, nid)  # 4: dynamic namespace
    fmt = mgr.stream("mac", f"node-{nid}")  # 5: string-built component
    a = derive_seed(master, "noise", 3)
    b = derive_seed(master, "noise", 3)  # 6: duplicate derive_seed tuple
    first = mgr.stream("phy", 7)
    second = mgr.stream("phy", 7)  # 7: duplicate stream tuple, same scope
    _ = wild, drift, fast, dyn, fmt, a, b, first, second
