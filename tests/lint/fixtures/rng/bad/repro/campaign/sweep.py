"""R001 fixture: campaign sampling done wrong.

Expected findings (3):

1. arithmetic point seed ``Random(seed * 1000 + i)`` — no provenance, and
   round/point index collisions are silent (round 1 point 0 == round 0
   point 1000)
2. dynamic first stream-name component (the sweep mode as namespace)
3. two call sites deriving the identical ``("campaign", 0)`` tuple — the
   sweep and the optimizer would replay each other's draws
"""

from random import Random

from repro.sim.rng import derive_seed


def sample_points(seed: int, count: int) -> list:
    return [Random(seed * 1000 + i).random() for i in range(count)]  # 1: arithmetic


def propose(seed: int, mode: str, count: int) -> list:
    rng = Random(derive_seed(seed, mode, count))  # 2: dynamic namespace
    return [rng.random() for _ in range(count)]


def draw_round(seed: int) -> float:
    return Random(derive_seed(seed, "campaign", 0)).random()


def tune_round(seed: int) -> float:
    return Random(derive_seed(seed, "campaign", 0)).random()  # 3: duplicate tuple
