"""R001 fixture: the campaign sampling pattern.

Sweep draws and optimizer proposals each get their own derive_seed stream,
keyed literal-first (``"campaign"``) and disambiguated by a second literal
(``"draw"`` vs ``"optimize"``) plus the round/point indices — mirroring
``repro.campaign.sweep`` / ``repro.campaign.optimize``.
"""

from random import Random

from repro.sim.rng import derive_seed


def sample_points(seed: int, round_index: int, count: int) -> list:
    return [
        Random(derive_seed(seed, "campaign", "draw", round_index, i)).random()
        for i in range(count)
    ]


def propose(seed: int, round_index: int, count: int) -> list:
    return [
        Random(derive_seed(seed, "campaign", "optimize", round_index, i)).random()
        for i in range(count)
    ]
