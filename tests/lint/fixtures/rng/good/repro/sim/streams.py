"""R001 fixture: every construction flows from derive_seed, names are
literal-first, and no two call sites derive the same stream tuple."""

from random import Random

from numpy.random import PCG64, Generator

from repro.sim.rng import RngManager, derive_seed


def build(master: int, nid: int) -> None:
    noise = Random(derive_seed(master, "noise", nid))
    fast = Generator(PCG64(derive_seed(master, "fast", "fading")))
    mgr = RngManager(master)
    mac = mgr.stream("mac", nid)
    churn = mgr.cached_stream("churn", nid)
    child = mgr.fork("channel")
    _ = noise, fast, mac, churn, child


def other_scope(master: int, nid: int) -> None:
    # Same tuple as build()'s mac stream, but a different function scope on
    # a different manager: not a collision.
    mgr = RngManager(master)
    _ = mgr.stream("mac", nid)
