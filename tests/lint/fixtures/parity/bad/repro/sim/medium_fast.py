"""P001 fixture (bad): misses the ``candidate_receivers`` override and the
``channel.temporal_sigma_db`` read (``channel.gain_db`` is allowlisted).

Expected findings (2): one method-parity, one surface-parity.
"""

from repro.sim.medium import RadioMedium


class FastRadioMedium(RadioMedium):
    def attach(self, node):
        return self.channel.path_loss_db(node)

    def finalize(self):
        return 0.0
