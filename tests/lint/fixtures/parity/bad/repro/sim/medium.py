"""P001 fixture (bad): adds a public method and a channel read the fast
backend does not mirror."""


class RadioMedium:
    def attach(self, node):
        return self.channel.path_loss_db(node)

    def finalize(self):
        return self.channel.gain_db + self.channel.temporal_sigma_db

    def candidate_receivers(self, tx):
        return []

    def enable_faults(self, schedule):
        return schedule

    def is_transmitting(self, node):
        return False

    def start_transmission(self, frame):
        return frame
