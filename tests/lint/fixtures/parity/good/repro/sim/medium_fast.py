"""P001 fixture (good): overrides every public method except the
allowlisted inherited three; consumes every surface except the
allowlisted-divergent ``channel.gain_db``."""

from repro.sim.medium import RadioMedium


class FastRadioMedium(RadioMedium):
    def attach(self, node):
        return self.channel.path_loss_db(node)

    def detach(self, node):
        return None

    def finalize(self):
        return self.white_bit_policy.threshold

    def channel_clear(self, node):
        return self.config.noise_floor_dbm
