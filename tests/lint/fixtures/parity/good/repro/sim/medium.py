"""P001 fixture (good): the exact backend the fast one must pair with."""


class RadioMedium:
    def attach(self, node):
        return self.channel.path_loss_db(node)

    def detach(self, node):
        return None

    def finalize(self):
        return self.channel.gain_db + self.white_bit_policy.threshold

    def channel_clear(self, node):
        return self.config.noise_floor_dbm

    def enable_faults(self, schedule):
        return schedule

    def is_transmitting(self, node):
        return False

    def start_transmission(self, frame):
        return frame
