"""L001 bad fixture (net layer): every class of illegal cross-layer import."""

from repro.core.estimator import HybridLinkEstimator  # concrete type, not the contract
from repro.link.mac import Mac  # net skipping down into link
from repro.phy.lqi import LqiModel  # net skipping down into phy

import repro.phy.channel


def build(engine):
    return HybridLinkEstimator, Mac, LqiModel, repro.phy.channel
