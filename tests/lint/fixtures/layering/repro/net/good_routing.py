"""L001 good fixture (net layer): couples only through the sanctioned seams."""

from repro.core.interfaces import CompareBitProvider, EstimatorClient, LinkEstimator
from repro.link.frame import BROADCAST, NetworkFrame
from repro.net.ctp.frames import CtpDataFrame
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager


def build(estimator: LinkEstimator) -> tuple:
    return (
        CompareBitProvider,
        EstimatorClient,
        BROADCAST,
        NetworkFrame,
        CtpDataFrame,
        Engine,
        RxInfo,
        RngManager,
    )
