"""L001 bad fixture (phy layer): imports upward into net."""

from repro.net.ctp.routing import CtpRoutingEngine


def peek(engine):
    return CtpRoutingEngine
