"""L001 good fixture (core layer): the sanctioned link entry point + contract."""

from repro.core.neighbor_table import NeighborTable
from repro.link.frame import Frame, le_wrap
from repro.link.mac import Mac


def build(mac: Mac) -> tuple:
    return NeighborTable, Frame, le_wrap
