"""H001 good fixture: None defaults with construction inside the body."""


def append(item, out=None):
    if out is None:
        out = []
    out.append(item)
    return out


def scaled(value, factor=1.0, label="x", flag=False, limit=(1, 2)):
    return value * factor if flag else value
