"""H003 bad fixture: imports nothing references."""

import json
import os.path
from math import sqrt
from typing import Dict as Mapping


def double(x):
    return 2 * x
