"""H001 bad fixture: shared mutable default arguments."""


def append(item, out=[]):
    out.append(item)
    return out


def index(key, table={}):
    return table.setdefault(key, len(table))


def dedupe(items, seen=set()):
    return [x for x in items if x not in seen]


def built(items, out=list()):
    out.extend(items)
    return out


def keyword_only(*, cache={}):
    return cache
