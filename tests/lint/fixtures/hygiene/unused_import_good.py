"""H003 good fixture: real uses, __all__ re-exports, and quoted annotations."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from decimal import Decimal

__all__ = ["hypotenuse", "List"]


def hypotenuse(a: float, b: float) -> float:
    return math.hypot(a, b)


def quantize(value: "Decimal", places: "List[int]") -> "Decimal":
    return value
