"""H002 good fixture: sentinels, tolerances, and non-float comparisons."""

import math


def is_zero(x):
    return x == 0.0


def is_unit(x):
    return x == 1.0


def is_unset(x):
    return x == -1.0


def near(x, target):
    return math.isclose(x, target, rel_tol=1e-9)


def int_compare(n):
    return n == 3


def ordering(x):
    return x < 0.3
