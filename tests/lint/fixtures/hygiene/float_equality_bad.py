"""H002 bad fixture: exact equality against non-trivial float literals."""


def at_threshold(prr):
    return prr == 0.3


def not_at_threshold(etx):
    return etx != 1.5


def negative_literal(offset_db):
    return offset_db == -2.5


def chained(a, b):
    return a == b == 0.7
