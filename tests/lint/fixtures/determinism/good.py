"""D001 good fixture: the sanctioned patterns the rule must not flag."""

from random import Random


def draw(rng: Random) -> float:
    return rng.random()


def fresh_stream(seed: int) -> Random:
    return Random(seed)


def visit(nodes):
    out = []
    for node in sorted(set(nodes)):
        out.append(node)
    return out


def over_list(items):
    return [x for x in list(items)]


import numpy as np
from numpy.random import PCG64, Generator


def np_stream(seed: int) -> Generator:
    return Generator(PCG64(seed))


def np_default_seeded(seed: int):
    return np.random.default_rng(seed)


def mobility_streams(rng_manager, mobile_ids):
    # Sanctioned mobility pattern: one named stream per node, roster
    # deduplicated order-preservingly and visited in sorted-id order.
    roster = dict.fromkeys(mobile_ids)
    return {nid: rng_manager.stream("mobility", nid) for nid in sorted(roster)}


def draw_leg(stream, min_x: float, max_x: float) -> float:
    return stream.uniform(min_x, max_x)
