"""D001 good fixture: the sanctioned patterns the rule must not flag."""

from random import Random


def draw(rng: Random) -> float:
    return rng.random()


def fresh_stream(seed: int) -> Random:
    return Random(seed)


def visit(nodes):
    out = []
    for node in sorted(set(nodes)):
        out.append(node)
    return out


def over_list(items):
    return [x for x in list(items)]
