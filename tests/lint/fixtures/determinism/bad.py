"""D001 bad fixture: every forbidden nondeterminism source in one file."""

import os
import random
import time
import uuid
from datetime import datetime
from random import randint


def draw():
    return random.random()


def shuffle(items):
    random.shuffle(items)
    return items


def stamp():
    return time.time()


def born():
    return datetime.now()


def token():
    return os.urandom(4)


def ident():
    return uuid.uuid4()


def jitter():
    return randint(0, 10)


def visit(nodes):
    out = []
    for node in {1, 2, 3}:
        out.append(node)
    for node in set(nodes):
        out.append(node)
    return out + [n for n in frozenset(nodes)]


import numpy as np
from numpy.random import shuffle as np_shuffle


def np_draw():
    return np.random.normal(0.0, 1.0)


def np_reseed():
    np.random.seed(0)


def np_unseeded():
    return np.random.default_rng()


def mobility_tick(mobile_ids, rng):
    # Set iteration decides the position-update visit order — trajectories
    # would depend on hash seeding instead of node ids.
    for nid in set(mobile_ids):
        rng.uniform(0.0, 300.0)


def waypoint():
    return random.uniform(0.0, 300.0)
