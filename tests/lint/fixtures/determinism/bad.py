"""D001 bad fixture: every forbidden nondeterminism source in one file."""

import os
import random
import time
import uuid
from datetime import datetime
from random import randint


def draw():
    return random.random()


def shuffle(items):
    random.shuffle(items)
    return items


def stamp():
    return time.time()


def born():
    return datetime.now()


def token():
    return os.urandom(4)


def ident():
    return uuid.uuid4()


def jitter():
    return randint(0, 10)


def visit(nodes):
    out = []
    for node in {1, 2, 3}:
        out.append(node)
    for node in set(nodes):
        out.append(node)
    return out + [n for n in frozenset(nodes)]
