"""U001 good fixture: domain-consistent arithmetic and explicit conversions."""


def dbm_to_mw(value_dbm: float) -> float:
    return 10.0 ** (value_dbm / 10.0)


def link_budget(tx_dbm: float, loss_db: float) -> float:
    return tx_dbm - loss_db


def noise_sum(ambient_mw: float, interference_mw: float) -> float:
    return ambient_mw + interference_mw


def sinr_ok(signal_dbm: float, floor_mw: float) -> bool:
    return dbm_to_mw(signal_dbm) > floor_mw


def unrelated(count: int, offset: int) -> int:
    return count + offset
