"""U001 bad fixture: log-domain and linear-domain powers mixed directly."""


def total_power(signal_dbm: float, noise_mw: float) -> float:
    return signal_dbm + noise_mw


def margin(obj) -> float:
    return obj.rssi_dbm - obj.noise_floor_mw


def above_floor(power_db: float, floor_w: float) -> bool:
    return power_db > floor_w


def negated(tx_dbm: float, interference_mw: float) -> float:
    return -tx_dbm + interference_mw
