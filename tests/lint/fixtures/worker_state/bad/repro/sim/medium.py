"""W001 fixture (bad): REGISTRY is mutated at runtime from another module."""

REGISTRY = {}


def lookup(name):
    return REGISTRY.get(name)
