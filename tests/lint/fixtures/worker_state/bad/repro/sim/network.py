"""W001 fixture (bad): worker entry mutating module state at runtime.

Expected findings (2): ``_CACHE`` here (same-module mutation) and
``REGISTRY`` in medium.py (cross-module mutation through the import).
"""

from repro.sim import medium

_CACHE = {}


def build(config):
    _CACHE[id(config)] = config
    medium.REGISTRY.update(config)
    return medium.lookup("a")
