"""W001 fixture (good): module globals only initialized at import time."""

REGISTRY = {}

#: Filled by the loop below — module-level mutation is one-time
#: initialization, not runtime state.
for _name in ("a", "b"):
    REGISTRY[_name] = len(_name)


def lookup(name):
    local = {}
    local[name] = REGISTRY.get(name)
    return local
