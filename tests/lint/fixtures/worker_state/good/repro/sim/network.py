"""W001 fixture (good): worker entry touching only run-scoped state."""

from repro.sim import medium


def build(config):
    nodes = []
    for name in config:
        nodes.append(medium.lookup(name))
    return nodes
