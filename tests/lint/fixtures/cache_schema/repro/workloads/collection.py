"""C001 fixture: a nested config reached through a SimConfig field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadConfig:
    period_s: float = 60.0
    jitter: float = 0.1
