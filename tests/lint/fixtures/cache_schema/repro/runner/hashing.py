"""C001 fixture: the version constant the lock is pinned against."""

CACHE_SCHEMA_VERSION = 3
