"""C001 fixture: the cached payload root."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CollectionResult:
    delivered: int = 0
    duplicates: int = 0
