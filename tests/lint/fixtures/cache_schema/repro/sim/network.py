"""C001 fixture: the config root, pulling WorkloadConfig into the closure."""

from dataclasses import dataclass, field

from repro.workloads.collection import WorkloadConfig


@dataclass(frozen=True)
class SimConfig:
    n_nodes: int = 25
    seed: int = 1
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
