"""--fix: the H003 unused-import autofixer."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.lint import default_rules, fix_unused_imports, lint_paths
from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def h003_findings(path: Path):
    ctx = lint_paths([path], default_rules(["unused-import"], None))
    assert not ctx.errors
    return ctx.findings


def test_fix_round_trips_bad_fixture(tmp_path):
    target = tmp_path / "unused_import_bad.py"
    shutil.copy(FIXTURES / "hygiene" / "unused_import_bad.py", target)
    assert len(h003_findings(target)) == 4

    assert fix_unused_imports(target) > 0
    assert h003_findings(target) == []
    lines = target.read_text(encoding="utf-8").splitlines()
    assert not any(l.startswith(("import ", "from ")) for l in lines)
    assert "def double(x):" in lines

    # Idempotent: a second run touches nothing.
    before = target.read_text(encoding="utf-8")
    assert fix_unused_imports(target) == 0
    assert target.read_text(encoding="utf-8") == before


def test_fix_keeps_used_aliases_in_partial_statement(tmp_path):
    target = tmp_path / "partial.py"
    target.write_text(
        "from typing import Dict, List, Optional as Opt\n\nx: Dict = {}\n",
        encoding="utf-8",
    )
    fix_unused_imports(target)
    assert target.read_text(encoding="utf-8").splitlines()[0] == "from typing import Dict"
    assert h003_findings(target) == []


def test_fix_handles_multiline_from_import(tmp_path):
    target = tmp_path / "multiline.py"
    target.write_text(
        "from typing import (\n    Dict,\n    List,\n)\n\nx: Dict = {}\n",
        encoding="utf-8",
    )
    fix_unused_imports(target)
    lines = target.read_text(encoding="utf-8").splitlines()
    assert lines[0] == "from typing import Dict"
    assert h003_findings(target) == []


def test_fix_respects_inline_suppression(tmp_path):
    target = tmp_path / "suppressed.py"
    source = "import os  # lint: disable=unused-import\nimport json\n"
    target.write_text(source, encoding="utf-8")
    fix_unused_imports(target)
    assert target.read_text(encoding="utf-8") == "import os  # lint: disable=unused-import\n"


def test_fix_leaves_dunder_init_alone(tmp_path):
    pkg = tmp_path / "repro" / "sub"
    pkg.mkdir(parents=True)
    target = pkg / "__init__.py"
    target.write_text("from os import path\n", encoding="utf-8")
    assert fix_unused_imports(target, tmp_path) == 0
    assert target.read_text(encoding="utf-8") == "from os import path\n"


def test_cli_fix_reports_fixed_files(tmp_path, capsys):
    target = tmp_path / "fixme.py"
    target.write_text("import json\n\nx = 1\n", encoding="utf-8")
    rc = main([str(target), "--fix", "--select", "unused-import", "--baseline", str(tmp_path / "b.json")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 file(s) fixed" in out
    assert target.read_text(encoding="utf-8") == "\nx = 1\n"
