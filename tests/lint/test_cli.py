"""CLI behavior: exit codes, --json round-trip, baseline workflow."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD_FLOAT = FIXTURES / "hygiene" / "float_equality_bad.py"
GOOD_FLOAT = FIXTURES / "hygiene" / "float_equality_good.py"


def run_cli(*argv: str) -> int:
    return main(list(argv))


def test_clean_file_exits_zero(tmp_path, capsys):
    rc = run_cli(str(GOOD_FLOAT), "--select", "float-equality", "--baseline", str(tmp_path / "b.json"))
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 file(s) checked, 0 new finding(s)" in out


def test_findings_exit_one_and_render(tmp_path, capsys):
    rc = run_cli(str(BAD_FLOAT), "--select", "float-equality", "--baseline", str(tmp_path / "b.json"))
    out = capsys.readouterr().out
    assert rc == 1
    assert "H002 [float-equality]" in out
    assert "4 new finding(s)" in out


def test_json_round_trip(tmp_path, capsys):
    rc = run_cli(
        str(BAD_FLOAT),
        "--select",
        "float-equality",
        "--json",
        "--baseline",
        str(tmp_path / "b.json"),
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["exit_status"] == 1
    assert payload["checked_files"] == 1
    assert payload["rules"] == ["H002"]
    assert payload["baselined"] == []
    assert len(payload["findings"]) == 4
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "name", "path", "line", "col", "message", "fingerprint"}
        assert finding["rule"] == "H002"
        assert finding["fingerprint"].startswith("H002::")


def test_write_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert run_cli(str(BAD_FLOAT), "--select", "float-equality", "--baseline", str(baseline), "--write-baseline") == 0
    capsys.readouterr()
    assert baseline.is_file()

    rc = run_cli(str(BAD_FLOAT), "--select", "float-equality", "--baseline", str(baseline), "--json")
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["exit_status"] == 0
    assert payload["findings"] == []
    assert len(payload["baselined"]) == 4


def test_written_baseline_reviews_like_code(tmp_path):
    baseline = tmp_path / "baseline.json"
    run_cli(str(BAD_FLOAT), "--select", "float-equality", "--baseline", str(baseline), "--write-baseline")
    data = json.loads(baseline.read_text(encoding="utf-8"))
    assert data["version"] == 1
    for entry in data["findings"]:
        assert set(entry) == {"fingerprint", "count", "rule", "name", "path", "message"}
        assert entry["count"] >= 1


def test_ignore_disables_rule(tmp_path, capsys):
    rc = run_cli(str(BAD_FLOAT), "--ignore", "float-equality,unused-import", "--baseline", str(tmp_path / "b.json"))
    assert rc == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_unknown_rule_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        run_cli("--select", "no-such-rule")
    assert exc.value.code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        run_cli("definitely/not/a/path.py")
    assert exc.value.code == 2


def test_unparsable_file_is_internal_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    rc = run_cli(str(broken), "--baseline", str(tmp_path / "b.json"))
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_baseline_update_flow_with_project_fingerprints(tmp_path, capsys):
    """Project-rule findings baseline exactly like file-rule findings."""
    bad = FIXTURES / "worker_state" / "bad"
    baseline = tmp_path / "baseline.json"
    assert run_cli(str(bad), "--select", "worker-state", "--baseline", str(baseline)) == 1
    capsys.readouterr()
    assert run_cli(str(bad), "--select", "worker-state", "--baseline", str(baseline), "--write-baseline") == 0
    capsys.readouterr()
    rc = run_cli(str(bad), "--select", "worker-state", "--baseline", str(baseline), "--json")
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == [] and len(payload["baselined"]) == 2
    assert all(f["rule"] == "W001" for f in payload["baselined"])


def test_write_schema_lock_cli(tmp_path, monkeypatch, capsys):
    import shutil

    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n", encoding="utf-8")
    shutil.copytree(FIXTURES / "cache_schema" / "repro", tmp_path / "repro")
    monkeypatch.chdir(tmp_path)
    rc = run_cli(str(tmp_path / "repro"), "--write-schema-lock", "--no-index-cache")
    assert rc == 0
    assert "wrote" in capsys.readouterr().out
    assert (tmp_path / "cache-schema.lock.json").is_file()


def test_list_rules(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in (
        "D001", "L001", "U001", "S001", "H001", "H002", "H003",
        "R001", "C001", "P001", "W001",
    ):
        assert rule_id in out
