"""Every lint rule fires on its bad fixture and stays silent on the good one."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import RULES, default_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule: str, *paths: Path):
    ctx = lint_paths(list(paths), default_rules([rule], None))
    assert not ctx.errors
    return ctx.findings


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------
def test_registry_has_all_rules():
    ids = [rule.id for rule in RULES]
    names = [rule.name for rule in RULES]
    assert len(ids) == len(set(ids)) and len(names) == len(set(names))
    assert set(names) >= {
        "determinism",
        "layering",
        "units",
        "stats-bridge",
        "mutable-default",
        "float-equality",
        "unused-import",
        "rng-provenance",
        "cache-schema",
        "backend-parity",
        "worker-state",
    }


def test_default_rules_select_ignore():
    assert [r.name for r in default_rules(["determinism"], None)] == ["determinism"]
    assert [r.id for r in default_rules(["D001"], None)] == ["D001"]
    remaining = {r.name for r in default_rules(None, ["unused-import"])}
    assert "unused-import" not in remaining and "determinism" in remaining
    with pytest.raises(KeyError):
        default_rules(["no-such-rule"], None)


# ----------------------------------------------------------------------
# paired good/bad fixtures, one pair per rule
# ----------------------------------------------------------------------
def test_determinism_bad():
    findings = run_rule("determinism", FIXTURES / "determinism" / "bad.py")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 16
    assert "random.random()" in messages
    assert "random.shuffle()" in messages
    assert "`time.time()` reads the wall clock" in messages
    assert "`datetime.now()` reads the wall clock" in messages
    assert "`os.urandom()` draws OS entropy" in messages
    assert "`uuid.uuid4()` draws OS entropy" in messages
    assert "from random import randint" in messages
    # Three original set-iteration sites plus the mobility visit-order one.
    assert messages.count("iteration over a set") == 4
    assert "random.uniform()" in messages
    assert "global numpy RNG `np.random.normal()`" in messages
    assert "global numpy RNG `np.random.seed()`" in messages
    assert "`default_rng()` without a seed draws OS entropy" in messages
    assert "from numpy.random import shuffle" in messages


def test_determinism_good():
    assert run_rule("determinism", FIXTURES / "determinism" / "good.py") == []


def test_layering_bad():
    findings = run_rule(
        "layering",
        FIXTURES / "layering" / "repro" / "net" / "bad_routing.py",
        FIXTURES / "layering" / "repro" / "phy" / "bad_upward.py",
    )
    by_path = {}
    for f in findings:
        by_path.setdefault(Path(f.path).name, []).append(f.message)
    assert len(by_path["bad_routing.py"]) == 4
    routing = "\n".join(by_path["bad_routing.py"])
    assert "repro.core.estimator" in routing  # concrete estimator, not the contract
    assert "skips layers" in routing  # net -> link.mac / phy internals
    assert "repro.phy.lqi" in routing and "repro.phy.channel" in routing
    assert by_path["bad_upward.py"] == [
        "layer `phy` imports upward into `repro.net.ctp.routing`; cross layers "
        "through repro.core.interfaces (the four-bit contract)"
    ]


def test_layering_good():
    assert (
        run_rule(
            "layering",
            FIXTURES / "layering" / "repro" / "net" / "good_routing.py",
            FIXTURES / "layering" / "repro" / "core" / "good_entry.py",
        )
        == []
    )


def test_units_bad():
    findings = run_rule("units", FIXTURES / "units" / "bad.py")
    assert len(findings) == 4
    messages = "\n".join(f.message for f in findings)
    assert "log-domain `signal_dbm` with linear-domain `noise_mw`" in messages
    assert "log-domain `rssi_dbm` with linear-domain `noise_floor_mw`" in messages
    assert "log-domain `power_db` with linear-domain `floor_w`" in messages
    assert "log-domain `tx_dbm` with linear-domain `interference_mw`" in messages


def test_units_good():
    assert run_rule("units", FIXTURES / "units" / "good.py") == []


def test_stats_bridge_bad():
    findings = run_rule("stats-bridge", FIXTURES / "stats_bridge" / "bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("`OrphanStats` has no METRICS_PREFIX" in m for m in messages)
    assert any("`OrphanStats` has no register_into" in m for m in messages)
    assert any("`PartialStats.dropped` is never registered" in m for m in messages)


def test_stats_bridge_good():
    assert run_rule("stats-bridge", FIXTURES / "stats_bridge" / "good.py") == []


def test_mutable_default_bad():
    findings = run_rule("mutable-default", FIXTURES / "hygiene" / "mutable_default_bad.py")
    assert len(findings) == 5
    flagged = {f.message.split("`")[1] for f in findings}
    assert flagged == {"append()", "index()", "dedupe()", "built()", "keyword_only()"}


def test_mutable_default_good():
    assert run_rule("mutable-default", FIXTURES / "hygiene" / "mutable_default_good.py") == []


def test_float_equality_bad():
    findings = run_rule("float-equality", FIXTURES / "hygiene" / "float_equality_bad.py")
    assert len(findings) == 4
    messages = "\n".join(f.message for f in findings)
    for literal in ("0.3", "1.5", "-2.5", "0.7"):
        assert f"float literal {literal}" in messages


def test_float_equality_good():
    assert run_rule("float-equality", FIXTURES / "hygiene" / "float_equality_good.py") == []


def test_unused_import_bad():
    findings = run_rule("unused-import", FIXTURES / "hygiene" / "unused_import_bad.py")
    messages = [f.message for f in findings]
    assert messages == [
        "`import json` is never used",
        "`import os.path` is never used",
        "`from math import sqrt` is never used",
        "`from typing import Dict` is never used",
    ]


def test_unused_import_good():
    # Exercises the __all__ exemption and quoted-annotation (TYPE_CHECKING) uses.
    assert run_rule("unused-import", FIXTURES / "hygiene" / "unused_import_good.py") == []


def test_findings_carry_location():
    findings = run_rule("float-equality", FIXTURES / "hygiene" / "float_equality_bad.py")
    for f in findings:
        assert f.rule == "H002" and f.name == "float-equality"
        assert f.line > 0 and f.col > 0
        assert f.path.endswith("float_equality_bad.py")
        assert f.fingerprint == f"{f.rule}::{f.path}::{f.message}"
        assert f"{f.path}:{f.line}:{f.col}:" in f.render()
