"""Project pass: facts extraction, index, cache, and the R/C/P/W rules."""

from __future__ import annotations

import ast
import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    IndexCache,
    ProjectIndex,
    build_index,
    default_rules,
    extract_facts,
    lint_paths,
    load_baseline,
    rules_by_name,
    write_baseline,
)
from repro.lint.core import Rule, iter_python_files, load_module
from repro.lint.rules.cache_schema import compute_schema, write_schema_lock

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule: str, path: Path, repo_root=None):
    ctx = lint_paths([path], default_rules([rule], None), repo_root)
    assert not ctx.errors
    return ctx.findings


def module_from(source: str, path: str = "repro/sim/demo.py"):
    text = textwrap.dedent(source)
    from repro.lint.core import ModuleInfo, module_name_for

    return ModuleInfo(
        path=path,
        module=module_name_for(Path(path)),
        tree=ast.parse(text),
        source_lines=text.splitlines(),
    )


# ----------------------------------------------------------------------
# facts extraction
# ----------------------------------------------------------------------
def test_extract_facts_inventory():
    facts = extract_facts(
        module_from(
            '''
            from dataclasses import dataclass
            from repro.sim.rng import derive_seed

            LIMIT = 7
            TABLE = {}

            @dataclass
            class Cfg:
                rate: float = 1.0

            def fill(key):
                TABLE[key] = derive_seed(1, "noise", key)
            '''
        )
    )
    assert facts.module == "repro.sim.demo"
    assert facts.int_constants["LIMIT"] == 7
    assert [g["name"] for g in facts.mutable_globals] == ["TABLE"]
    assert facts.dataclasses["Cfg"]["fields"] == [
        {"name": "rate", "type": "float", "default": "1.0"}
    ]
    (mutation,) = facts.mutations
    assert mutation["recv"] == ["TABLE"] and mutation["op"] == "[]="
    assert mutation["func"] == "fill"  # runtime, not import time
    (site,) = facts.rng_sites
    assert site["kind"] == "derive_seed"
    assert site["components"] == [["lit", "noise"], ["dyn", "key"]]


def test_extract_facts_tracks_stream_alias():
    facts = extract_facts(
        module_from(
            """
            class Medium:
                def finalize(self):
                    stream = self._rng.stream
                    return stream("rx", 3)
            """
        )
    )
    (site,) = facts.rng_sites
    assert site["kind"] == "stream" and site["recv"] == "self._rng"
    assert site["components"] == [["lit", "rx"], ["lit", 3]]


def test_facts_round_trip_json():
    facts = extract_facts(module_from("X = []\n\ndef f():\n    X.append(1)\n"))
    clone = type(facts).from_json(json.loads(json.dumps(facts.to_json())))
    assert clone == facts


# ----------------------------------------------------------------------
# index
# ----------------------------------------------------------------------
def test_index_import_graph_and_cross_module_mutations():
    root = FIXTURES / "worker_state" / "bad"
    modules = [load_module(p, root) for p in iter_python_files([root])]
    index = build_index(modules, root)
    assert index.import_graph["repro.sim.network"] == {"repro.sim.medium"}
    assert index.reachable_from(["repro.sim.network"]) == {
        "repro.sim.network",
        "repro.sim.medium",
    }
    registry_sites = index.runtime_mutations[("repro.sim.medium", "REGISTRY")]
    assert [s["in_module"] for s in registry_sites] == ["repro.sim.network"]
    assert index.runtime_mutations[("repro.sim.network", "_CACHE")]


# ----------------------------------------------------------------------
# facts cache
# ----------------------------------------------------------------------
def test_index_cache_hits_and_graceful_corruption(tmp_path):
    cache_file = tmp_path / "cache.json"
    target = FIXTURES / "rng" / "good"
    rules = default_rules(["rng-provenance"], None)

    cold = lint_paths([target], rules, target, index_cache=cache_file)
    assert cold.index_cache_hits == 0 and cold.index_cache_misses > 0
    warm = lint_paths([target], rules, target, index_cache=cache_file)
    assert warm.index_cache_misses == 0
    assert warm.index_cache_hits == cold.index_cache_misses
    assert warm.findings == cold.findings

    cache_file.write_text("{not json", encoding="utf-8")
    rebuilt = lint_paths([target], rules, target, index_cache=cache_file)
    assert rebuilt.index_cache_hits == 0 and rebuilt.findings == cold.findings
    # ... and the corrupt file was replaced with a usable one.
    again = lint_paths([target], rules, target, index_cache=cache_file)
    assert again.index_cache_misses == 0


def test_index_cache_invalidates_on_edit(tmp_path):
    src = tmp_path / "repro" / "sim"
    src.mkdir(parents=True)
    f = src / "streams.py"
    f.write_text("X = 1\n", encoding="utf-8")
    cache_file = tmp_path / "cache.json"
    rules = default_rules(["rng-provenance"], None)
    lint_paths([f], rules, tmp_path, index_cache=cache_file)
    f.write_text("X = 2\n", encoding="utf-8")
    edited = lint_paths([f], rules, tmp_path, index_cache=cache_file)
    assert edited.index_cache_misses == 1


# ----------------------------------------------------------------------
# R001 — RNG-stream provenance
# ----------------------------------------------------------------------
def test_rng_provenance_good_is_clean():
    assert run_rule("rng-provenance", FIXTURES / "rng" / "good") == []


def test_rng_provenance_bad_finds_every_class():
    findings = run_rule("rng-provenance", FIXTURES / "rng" / "bad")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 10  # 7 in repro/sim + 3 in repro/campaign
    assert "unseeded Random construction" in messages
    assert "does not flow from derive_seed" in messages
    assert "`Generator(PCG64(12345))`" not in messages  # judged at PCG64 site
    assert "`PCG64(12345)`" in messages
    assert "dynamic stream name" in messages
    assert "string-built stream-name component" in messages
    assert "duplicate derive_seed stream tuple ('noise', 3)" in messages
    assert "duplicate stream stream tuple ('phy', 7)" in messages
    # The campaign fixture's three classes: arithmetic point seeds, a
    # dynamic namespace, and sweep/optimizer call sites sharing a tuple.
    assert "`Random(seed * 1000 + i)`" in messages
    assert "first component `mode` is not a string literal" in messages
    assert "duplicate derive_seed stream tuple ('campaign', 0)" in messages


def test_rng_provenance_ignores_modules_outside_deterministic_packages(tmp_path):
    tools = tmp_path / "repro" / "tools"
    tools.mkdir(parents=True)
    f = tools / "probe.py"
    f.write_text("from random import Random\nr = Random()\n", encoding="utf-8")
    assert run_rule("rng-provenance", f, tmp_path) == []


# ----------------------------------------------------------------------
# P001 — backend parity
# ----------------------------------------------------------------------
def test_backend_parity_good_is_clean():
    assert run_rule("backend-parity", FIXTURES / "parity" / "good") == []


def test_backend_parity_bad_flags_method_and_surface():
    findings = run_rule("backend-parity", FIXTURES / "parity" / "bad")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 2
    assert "`candidate_receivers()` on RadioMedium is not overridden" in messages
    assert "reads `channel.temporal_sigma_db`" in messages
    assert "channel.gain_db" not in messages  # allowlisted divergence


# ----------------------------------------------------------------------
# W001 — worker state
# ----------------------------------------------------------------------
def test_worker_state_good_is_clean():
    assert run_rule("worker-state", FIXTURES / "worker_state" / "good") == []


def test_worker_state_bad_flags_same_and_cross_module():
    findings = run_rule("worker-state", FIXTURES / "worker_state" / "bad")
    assert len(findings) == 2
    by_name = {f.message.split("`")[1]: f for f in findings}
    assert set(by_name) == {"_CACHE", "REGISTRY"}
    assert "repro.sim.network" in by_name["REGISTRY"].message  # the mutator


# ----------------------------------------------------------------------
# C001 — cache-schema drift lifecycle
# ----------------------------------------------------------------------
@pytest.fixture()
def schema_tree(tmp_path):
    shutil.copytree(FIXTURES / "cache_schema" / "repro", tmp_path / "repro")
    return tmp_path


def _index_for(root: Path) -> ProjectIndex:
    return build_index([load_module(p, root) for p in iter_python_files([root])], root)


def test_cache_schema_lifecycle(schema_tree):
    root = schema_tree
    network = root / "repro" / "sim" / "network.py"
    hashing = root / "repro" / "runner" / "hashing.py"

    # 1. No lock yet: the rule demands one.
    (finding,) = run_rule("cache-schema", root, root)
    assert "lock file is missing" in finding.message

    # 2. Write the lock: clean, and the closure reached the nested config.
    lock = write_schema_lock(_index_for(root), root)
    assert lock is not None
    locked = json.loads(lock.read_text(encoding="utf-8"))
    assert set(locked["dataclasses"]) == {
        "repro.sim.network.SimConfig",
        "repro.workloads.collection.WorkloadConfig",
        "repro.metrics.collection_stats.CollectionResult",
    }
    assert run_rule("cache-schema", root, root) == []

    # 3. Add a SimConfig field without bumping the version: C001 fires,
    #    anchored at the drifted dataclass.
    network.write_text(
        network.read_text(encoding="utf-8") + "    radio_gain_db: float = 0.0\n",
        encoding="utf-8",
    )
    (finding,) = run_rule("cache-schema", root, root)
    assert "without a CACHE_SCHEMA_VERSION bump (still 3)" in finding.message
    assert finding.path == "repro/sim/network.py"

    # 4. Bump the version: the remaining complaint is the stale lock.
    hashing.write_text(
        hashing.read_text(encoding="utf-8").replace(
            "CACHE_SCHEMA_VERSION = 3", "CACHE_SCHEMA_VERSION = 4"
        ),
        encoding="utf-8",
    )
    (finding,) = run_rule("cache-schema", root, root)
    assert "regenerate with --write-schema-lock" in finding.message

    # 5. Regenerate: clean again.
    write_schema_lock(_index_for(root), root)
    assert run_rule("cache-schema", root, root) == []


def test_cache_schema_nested_drift_is_drift(schema_tree):
    root = schema_tree
    write_schema_lock(_index_for(root), root)
    workload = root / "repro" / "workloads" / "collection.py"
    workload.write_text(
        workload.read_text(encoding="utf-8").replace(
            "jitter: float = 0.1", "jitter: float = 0.25"
        ),
        encoding="utf-8",
    )
    (finding,) = run_rule("cache-schema", root, root)
    assert "repro.workloads.collection.WorkloadConfig" in finding.message
    assert finding.path == "repro/workloads/collection.py"


def test_cache_schema_silent_without_roots(tmp_path):
    f = tmp_path / "repro" / "sim" / "other.py"
    f.parent.mkdir(parents=True)
    f.write_text("X = 1\n", encoding="utf-8")
    assert run_rule("cache-schema", tmp_path, tmp_path) == []


def test_compute_schema_preserves_field_order(schema_tree):
    schema = compute_schema(_index_for(schema_tree))
    assert schema is not None
    names = [f["name"] for f in schema["dataclasses"]["repro.sim.network.SimConfig"]]
    assert names == ["n_nodes", "seed", "workload"]  # definition order


# ----------------------------------------------------------------------
# registry + baseline integration
# ----------------------------------------------------------------------
def test_rules_by_name_rejects_duplicates():
    class A(Rule):
        id = "X001"
        name = "xray"

    class B(Rule):
        id = "X001"
        name = "other"

    with pytest.raises(ValueError, match="duplicate rule registration"):
        rules_by_name([A(), B()])

    class C(Rule):
        id = "X002"
        name = "xray"

    with pytest.raises(ValueError, match="duplicate rule registration"):
        rules_by_name([A(), C()])

    class D(Rule):
        id = ""
        name = "anon"

    with pytest.raises(ValueError, match="empty id or name"):
        rules_by_name([D()])


def test_project_findings_baseline_like_file_findings(tmp_path):
    target = FIXTURES / "worker_state" / "bad"
    rules = default_rules(["worker-state"], None)
    ctx = lint_paths([target], rules, target)
    assert len(ctx.findings) == 2
    for finding in ctx.findings:
        assert finding.fingerprint.startswith("W001::")

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, ctx.findings)
    baseline = load_baseline(baseline_file)
    new, baselined = baseline.partition(lint_paths([target], rules, target).findings)
    assert new == [] and len(baselined) == 2


def test_project_findings_respect_inline_suppression(tmp_path):
    src = tmp_path / "repro" / "sim"
    src.mkdir(parents=True)
    (src / "network.py").write_text(
        "TABLE = {}  # lint: disable=worker-state\n\n"
        "def build(cfg):\n    TABLE[1] = cfg\n",
        encoding="utf-8",
    )
    ctx = lint_paths([tmp_path], default_rules(["worker-state"], None), tmp_path)
    assert ctx.findings == [] and ctx.inline_suppressed == 1
