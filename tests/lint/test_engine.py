"""Engine mechanics: module naming, inline suppression, baseline multiset."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import default_rules, lint_paths, load_baseline, write_baseline
from repro.lint.core import module_name_for


def lint_file(tmp_path: Path, source: str, rule: str = "float-equality"):
    target = tmp_path / "snippet.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], default_rules([rule], None))


# ----------------------------------------------------------------------
# module naming: fixtures staged under a repro/ dir get package policy
# ----------------------------------------------------------------------
def test_module_name_for():
    assert module_name_for(Path("src/repro/net/ctp/routing.py")) == "repro.net.ctp.routing"
    assert module_name_for(Path("tests/lint/fixtures/layering/repro/phy/x.py")) == "repro.phy.x"
    assert module_name_for(Path("src/repro/net/__init__.py")) == "repro.net"
    assert module_name_for(Path("somewhere/standalone.py")) == "standalone"


# ----------------------------------------------------------------------
# inline suppressions
# ----------------------------------------------------------------------
def test_inline_disable_named_rule(tmp_path):
    ctx = lint_file(tmp_path, "def f(x):\n    return x == 0.3  # lint: disable=float-equality\n")
    assert ctx.findings == [] and ctx.inline_suppressed == 1


def test_inline_disable_all_rules(tmp_path):
    ctx = lint_file(tmp_path, "def f(x):\n    return x == 0.3  # lint: disable\n")
    assert ctx.findings == [] and ctx.inline_suppressed == 1


def test_inline_disable_by_rule_id(tmp_path):
    ctx = lint_file(tmp_path, "def f(x):\n    return x == 0.3  # lint: disable=H002\n")
    assert ctx.findings == [] and ctx.inline_suppressed == 1


def test_inline_disable_other_rule_does_not_suppress(tmp_path):
    ctx = lint_file(tmp_path, "def f(x):\n    return x == 0.3  # lint: disable=determinism\n")
    assert len(ctx.findings) == 1 and ctx.inline_suppressed == 0


# ----------------------------------------------------------------------
# baseline round-trip and multiset semantics
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    ctx = lint_file(tmp_path, "def f(x):\n    return x == 0.3\n")
    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, ctx.findings) == 1
    baseline = load_baseline(baseline_path)
    new, baselined = baseline.partition(ctx.findings)
    assert new == [] and len(baselined) == 1


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "nope.json")
    assert baseline.size == 0


def test_baseline_version_check(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_baseline_is_a_multiset(tmp_path):
    # One occurrence baselined; adding an identical second violation (same
    # rule + path + message, hence the same fingerprint) must still fail.
    target = tmp_path / "snippet.py"
    target.write_text("def f(x):\n    return x == 0.3\n", encoding="utf-8")
    rules = default_rules(["float-equality"], None)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, lint_paths([target], rules).findings)

    target.write_text(
        "def f(x):\n    return x == 0.3\n\ndef g(x):\n    return x == 0.3\n",
        encoding="utf-8",
    )
    new, baselined = load_baseline(baseline_path).partition(lint_paths([target], rules).findings)
    assert len(baselined) == 1 and len(new) == 1
    assert new[0].fingerprint == baselined[0].fingerprint


def test_baseline_survives_line_moves(tmp_path):
    # Fingerprints exclude line numbers: shifting the finding down the file
    # must not un-baseline it.
    target = tmp_path / "snippet.py"
    target.write_text("def f(x):\n    return x == 0.3\n", encoding="utf-8")
    rules = default_rules(["float-equality"], None)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, lint_paths([target], rules).findings)

    target.write_text("# a comment\n\n\ndef f(x):\n    return x == 0.3\n", encoding="utf-8")
    new, baselined = load_baseline(baseline_path).partition(lint_paths([target], rules).findings)
    assert new == [] and len(baselined) == 1
