"""Golden-run capture for the bit-reproducibility contract.

The pinned scenario below exercises every stochastic subsystem the hot
path touches: a seeded jittered grid, mixed beacon + data traffic (4B's
estimator beacons plus the collection workload), OU temporal fading AND
bimodal deep fades, interference and collisions.  ``golden_snapshot``
reduces the run to a canonical JSON-safe dict — delivery/collision
counters and every node's final ETX table with full float precision — so
the golden test can assert that performance work leaves results
*byte-identical*, not merely statistically similar.

Regenerate (only when an intentional behavior change is made) with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid

GOLDEN_PATH = Path(__file__).parent / "collection_golden.json"

#: Everything that defines the pinned run, in one place.
GOLDEN_CONFIG = {
    "topology": "grid 4x4, spacing 6.0 m, jitter 0.5 m, topo seed 9",
    "protocol": "4b",
    "seed": 5,
    "duration_s": 180.0,
    "warmup_s": 60.0,
    "bimodal_fraction": 0.3,
}


def _canon(value):
    """Canonical JSON-safe form: floats become ``repr`` strings.

    ``repr`` round-trips every finite float exactly and represents
    inf/nan, so equality of the canonical forms is bit-equality of the
    underlying numbers.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    raise TypeError(f"unsupported golden value type: {type(value)!r}")


def golden_snapshot() -> Dict[str, object]:
    """Run the pinned scenario and return its canonical outcome dict."""
    topo = grid(4, 4, spacing_m=6.0, rng=RngManager(9).stream("topo"), jitter_m=0.5)
    config = SimConfig(
        protocol=GOLDEN_CONFIG["protocol"],
        seed=GOLDEN_CONFIG["seed"],
        duration_s=GOLDEN_CONFIG["duration_s"],
        warmup_s=GOLDEN_CONFIG["warmup_s"],
    )
    net = CollectionNetwork(
        topo, config, channel_overrides={"bimodal_fraction": GOLDEN_CONFIG["bimodal_fraction"]}
    )
    result = net.run()
    etx_tables = {
        nid: node.estimator.table_snapshot()
        for nid, node in sorted(net.nodes.items())
        if node.estimator is not None
    }
    return {
        "config": GOLDEN_CONFIG,
        "counters": {
            "events_run": result.events_run,
            "offered": result.offered,
            "accepted": result.accepted,
            "unique_delivered": result.unique_delivered,
            "duplicates_at_root": result.duplicates_at_root,
            "total_data_tx": result.total_data_tx,
            "beacons_sent": result.beacons_sent,
            "medium_transmissions": net.medium.transmissions,
            "medium_deliveries": net.medium.deliveries,
            "medium_collisions": net.medium.collisions,
            "white_bits_set": net.medium.white_bits_set,
        },
        "final_parents": _canon(result.final_parents),
        "etx_tables": _canon(etx_tables),
    }


def write_golden(snapshot: Dict[str, object]) -> None:
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def load_golden() -> Dict[str, object]:
    return json.loads(GOLDEN_PATH.read_text())
