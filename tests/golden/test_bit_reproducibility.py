"""Golden test: the optimized hot path must be *bit-identical* to the seed.

The stored golden was captured before the PR-3 hot-path optimizations; if
this test fails, an "optimization" changed simulated behavior (different
RNG draw order, reordered float arithmetic, dropped evaluation) and must
be fixed, not regenerated around — see DESIGN.md's determinism contract.
"""

import json
import os

from tests.golden.golden_utils import (
    GOLDEN_PATH,
    golden_snapshot,
    load_golden,
    write_golden,
)


def test_pinned_run_matches_golden():
    snapshot = golden_snapshot()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        write_golden(snapshot)
    assert GOLDEN_PATH.exists(), (
        "golden file missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = load_golden()
    assert snapshot["config"] == golden["config"], "pinned config drifted"
    assert snapshot["counters"] == golden["counters"]
    assert snapshot["final_parents"] == golden["final_parents"]
    # Compare via canonical JSON so a mismatch shows a readable diff.
    assert json.dumps(snapshot["etx_tables"], sort_keys=True) == json.dumps(
        golden["etx_tables"], sort_keys=True
    )


def test_snapshot_is_self_reproducible():
    """Two in-process runs of the pinned scenario are identical."""
    assert golden_snapshot() == golden_snapshot()
