"""SweepSpec: enumeration order, seeded sampling, refinement, file formats."""

import json
import sys

import pytest

from repro.campaign.sweep import RangeSpec, SweepSpec, read_spec_data, shrink_ranges
from repro.campaign.queue import load_campaign_file
from repro.campaign.optimize import OptimizerSpec


GRID = {
    "campaign": "grid3",
    "kind": "synthetic",
    "mode": "grid",
    "base": {"optimum": 0.5},
    "axes": {"x0": [0.0, 1.0], "x1": [0.0, 1.0, 2.0], "x2": [3.0, 4.0]},
    "objective": "objective",
}


def test_grid_is_cartesian_in_axis_order():
    spec = SweepSpec.from_json_dict(GRID)
    points = spec.grid_points()
    assert len(points) == 12 == spec.total_points()
    # Last axis varies fastest; file order of axes is the enumeration order.
    dicts = [p.param_dict() for p in points]
    assert dicts[0] == {"optimum": 0.5, "x0": 0.0, "x1": 0.0, "x2": 3.0}
    assert dicts[1] == {"optimum": 0.5, "x0": 0.0, "x1": 0.0, "x2": 4.0}
    assert dicts[2] == {"optimum": 0.5, "x0": 0.0, "x1": 1.0, "x2": 3.0}
    assert dicts[-1] == {"optimum": 0.5, "x0": 1.0, "x1": 2.0, "x2": 4.0}


def test_grid_round_trip_preserves_digest_and_order():
    spec = SweepSpec.from_json_dict(GRID)
    back = SweepSpec.from_json_dict(spec.to_json_dict())
    assert back == spec
    assert back.digest() == spec.digest()
    assert [p.digest() for p in back.grid_points()] == [
        p.digest() for p in spec.grid_points()
    ]


def test_random_sampling_reproducible_from_spec_and_seed():
    data = {
        "campaign": "r", "kind": "synthetic", "mode": "random",
        "ranges": {"x0": {"lo": -1.0, "hi": 1.0}, "k": {"lo": 1, "hi": 10, "type": "int"}},
        "samples": 25, "seed": 42,
    }
    a = SweepSpec.from_json_dict(data)
    b = SweepSpec.from_json_dict(json.loads(json.dumps(data)))
    assert [p.digest() for p in a.sample_points(0)] == [
        p.digest() for p in b.sample_points(0)
    ]
    # A different seed is a different point set...
    c = SweepSpec.from_json_dict(dict(data, seed=43))
    assert [p.digest() for p in c.sample_points(0)] != [
        p.digest() for p in a.sample_points(0)
    ]
    # ...and so is a different round of the same spec.
    assert [p.digest() for p in a.sample_points(1)] != [
        p.digest() for p in a.sample_points(0)
    ]


def test_range_sampling_respects_bounds_and_types():
    spec = SweepSpec.from_json_dict(
        {
            "campaign": "r", "kind": "synthetic", "mode": "random",
            "ranges": {
                "x0": {"lo": -2.0, "hi": 2.0},
                "size": {"lo": 4, "hi": 64, "scale": "log", "type": "int"},
            },
            "samples": 200, "seed": 7,
        }
    )
    for point in spec.sample_points(0):
        params = point.param_dict()
        assert -2.0 <= params["x0"] <= 2.0
        assert isinstance(params["size"], int) and 4 <= params["size"] <= 64


def test_range_validation():
    with pytest.raises(ValueError, match="lo <= hi"):
        RangeSpec("x", lo=2.0, hi=1.0)
    with pytest.raises(ValueError, match="log scale needs lo > 0"):
        RangeSpec("x", lo=0.0, hi=1.0, scale="log")
    with pytest.raises(ValueError, match="unknown scale"):
        RangeSpec("x", lo=0.0, hi=1.0, scale="cubic")
    with pytest.raises(ValueError, match="unknown type"):
        RangeSpec("x", lo=0.0, hi=1.0, type="complex")


def test_shrink_ranges_contracts_and_clamps():
    ranges = (RangeSpec("x0", lo=0.0, hi=10.0),)
    narrowed = shrink_ranges(ranges, [{"x0": 9.9}], shrink=0.5)
    (r,) = narrowed
    assert r.hi <= 10.0 and r.lo >= 0.0
    assert (r.hi - r.lo) <= 5.0 + 1e-9
    assert r.lo <= 9.9 <= r.hi
    # No survivors: pass-through.
    assert shrink_ranges(ranges, [], shrink=0.5) == ranges


def test_spec_validation_errors():
    with pytest.raises(ValueError, match="at least one axis"):
        SweepSpec.from_json_dict({"campaign": "x", "kind": "synthetic", "mode": "grid"})
    with pytest.raises(ValueError, match="samples > 0"):
        SweepSpec.from_json_dict(
            {"campaign": "x", "kind": "synthetic", "mode": "random",
             "ranges": {"x0": {"lo": 0, "hi": 1}}}
        )
    with pytest.raises(ValueError, match="needs an objective"):
        SweepSpec.from_json_dict(
            {"campaign": "x", "kind": "synthetic", "mode": "adaptive",
             "ranges": {"x0": {"lo": 0, "hi": 1}}, "samples": 4}
        )
    with pytest.raises(ValueError, match="unknown sweep spec key"):
        SweepSpec.from_json_dict(dict(GRID, turbo=True))


def test_load_campaign_file_dispatches_on_mode(tmp_path):
    sweep_file = tmp_path / "sweep.json"
    sweep_file.write_text(json.dumps(GRID))
    assert isinstance(load_campaign_file(sweep_file), SweepSpec)

    tune_file = tmp_path / "tune.json"
    tune_file.write_text(json.dumps(
        {"campaign": "t", "kind": "synthetic", "mode": "optimize",
         "ranges": {"x0": {"lo": -1, "hi": 1}}, "objective": "objective"}
    ))
    assert isinstance(load_campaign_file(tune_file), OptimizerSpec)


def test_load_campaign_file_rejects_bad_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_campaign_file(bad)
    lst = tmp_path / "list.json"
    lst.write_text("[1, 2]")
    with pytest.raises(ValueError, match="must be a JSON object"):
        load_campaign_file(lst)


@pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib is Python 3.11+")
def test_toml_spec_loads_and_digests_identically(tmp_path):
    toml_file = tmp_path / "sweep.toml"
    toml_file.write_text(
        'campaign = "grid3"\n'
        'kind = "synthetic"\n'
        'mode = "grid"\n'
        'objective = "objective"\n'
        "[base]\noptimum = 0.5\n"
        "[axes]\nx0 = [0.0, 1.0]\nx1 = [0.0, 1.0, 2.0]\nx2 = [3.0, 4.0]\n"
    )
    via_toml = load_campaign_file(toml_file)
    via_json = SweepSpec.from_json_dict(GRID)
    assert via_toml.digest() == via_json.digest()


@pytest.mark.skipif(sys.version_info >= (3, 11), reason="checks the pre-3.11 error")
def test_toml_spec_errors_clearly_without_tomllib(tmp_path):
    toml_file = tmp_path / "sweep.toml"
    toml_file.write_text('campaign = "x"\n')
    with pytest.raises(ValueError, match="tomllib"):
        read_spec_data(toml_file)
