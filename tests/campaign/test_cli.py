"""CLI contract: run/status/resume/tune subcommands, SIGTERM resumability."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

GRID_SPEC = {
    "campaign": "cli-grid",
    "kind": "synthetic",
    "mode": "grid",
    "base": {"optimum": 0.5},
    "axes": {"x0": [0.0, 0.5, 1.0], "x1": [0.0, 1.0], "x2": [2.0, 3.0]},
    "objective": "objective",
}

# Accuracy points at this duration take ~0.1s each: slow enough that a
# SIGTERM lands mid-sweep, fast enough for CI.
SLOW_SPEC = {
    "campaign": "cli-slow",
    "kind": "accuracy",
    "mode": "grid",
    "base": {"scenario": "steady", "duration_s": 3600.0, "warmup_s": 60.0},
    "axes": {"prr": [0.5, 0.6, 0.7, 0.8, 0.9, 0.95], "ku": [1, 3, 5, 12]},
    "objective": "mre",
}


def _write_spec(tmp_path: Path, data: dict, name: str = "spec.json") -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _cli(args, tmp_path: Path, **kwargs):
    base = [
        sys.executable, "-m", "repro.campaign", *args,
        "--state-dir", str(tmp_path / "state"),
        "--cache-dir", str(tmp_path / "cache"),
    ]
    return subprocess.run(
        base, env=_env(), cwd=str(REPO_ROOT), capture_output=True, text=True,
        timeout=180, **kwargs,
    )


def _summary_path(tmp_path: Path) -> Path:
    (digest_dir,) = list((tmp_path / "state").iterdir())
    return digest_dir / "summary.json"


def test_run_writes_summary_and_out_copy(tmp_path):
    spec = _write_spec(tmp_path, GRID_SPEC)
    out = tmp_path / "copy.json"
    proc = _cli(["run", str(spec), "--out", str(out)], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "12 executed, 0 cached, 0 failed" in proc.stderr
    assert "best objective" in proc.stderr
    summary = _summary_path(tmp_path)
    assert summary.read_bytes() == out.read_bytes()
    doc = json.loads(out.read_text())
    assert doc["n_points"] == 12 and doc["n_failed"] == 0
    # optimum=0.5: best grid point is (0.5, 0 or 1, 2) -> 0 + 0.25 + 2.25.
    assert doc["best"]["score"] == pytest.approx(2.5)


def test_stop_after_exits_3_and_resume_completes_byte_identical(tmp_path):
    spec = _write_spec(tmp_path, GRID_SPEC)
    ref_dir = tmp_path / "ref"
    ref_dir.mkdir()
    ref_spec = _write_spec(ref_dir, GRID_SPEC)
    ref = _cli(["run", str(ref_spec)], ref_dir)
    assert ref.returncode == 0, ref.stderr

    first = _cli(["run", str(spec), "--stop-after", "5"], tmp_path)
    assert first.returncode == 3, first.stderr
    assert "interrupted after 5 executed" in first.stderr
    assert "resume with" in first.stderr
    assert not _summary_path(tmp_path).exists()

    resumed = _cli(["resume", str(spec)], tmp_path)
    assert resumed.returncode == 0, resumed.stderr
    assert "7 executed, 5 cached" in resumed.stderr
    assert _summary_path(tmp_path).read_bytes() == _summary_path(ref_dir).read_bytes()


def test_sigterm_midway_then_resume_byte_identical(tmp_path):
    spec = _write_spec(tmp_path, SLOW_SPEC)
    ref_dir = tmp_path / "ref"
    ref_dir.mkdir()
    ref_spec = _write_spec(ref_dir, SLOW_SPEC)
    ref = _cli(["run", str(ref_spec)], ref_dir)
    assert ref.returncode == 0, ref.stderr

    telemetry = tmp_path / "stream.jsonl"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.campaign", "run", str(spec),
            "--state-dir", str(tmp_path / "state"),
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(telemetry),
        ],
        env=_env(), cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    # Wait until a few points have actually executed, then pull the plug.
    deadline = time.time() + 60
    while time.time() < deadline:
        if telemetry.exists() and sum(
            1 for line in telemetry.read_text().splitlines() if '"run-result"' in line
        ) >= 3:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    _out, err = proc.communicate(timeout=120)
    if proc.returncode == 0:  # lost the race: the sweep finished first
        pytest.skip("campaign completed before SIGTERM landed")
    assert proc.returncode == 3, err
    assert "interrupted after" in err

    resumed = _cli(["resume", str(spec)], tmp_path)
    assert resumed.returncode == 0, resumed.stderr
    assert "cached" in resumed.stderr
    assert _summary_path(tmp_path).read_bytes() == _summary_path(ref_dir).read_bytes()


def test_status_reports_progress_without_executing(tmp_path):
    spec = _write_spec(tmp_path, GRID_SPEC)
    before = _cli(["status", str(spec)], tmp_path)
    assert before.returncode == 0, before.stderr
    doc = json.loads(before.stdout)
    assert doc["planned_points"] == 12 and doc["cached_points"] == 0
    assert doc["summary_written"] is False

    interrupted = _cli(["run", str(spec), "--stop-after", "4"], tmp_path)
    assert interrupted.returncode == 3
    after = json.loads(_cli(["status", str(spec)], tmp_path).stdout)
    assert after["cached_points"] == 4
    assert after["interrupted"] is True


def test_tune_rejects_non_optimizer_spec(tmp_path):
    spec = _write_spec(tmp_path, GRID_SPEC)
    proc = _cli(["tune", str(spec)], tmp_path)
    assert proc.returncode == 1
    assert "mode: \"optimize\"" in proc.stderr


def test_tune_runs_optimizer_spec(tmp_path):
    spec = _write_spec(
        tmp_path,
        {
            "campaign": "cli-tune",
            "kind": "synthetic",
            "mode": "optimize",
            "base": {"optimum": 0.25},
            "ranges": {"x0": {"lo": -2.0, "hi": 2.0}},
            "objective": "objective",
            "budget": 12,
            "batch": 4,
            "seed": 3,
        },
    )
    proc = _cli(["tune", str(spec)], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "best objective" in proc.stderr
    doc = json.loads(_summary_path(tmp_path).read_text())
    assert doc["evaluations"] == 12
    assert abs(doc["best_params"]["x0"] - 0.25) < 1.0


def test_bad_spec_file_is_a_usage_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    proc = _cli(["run", str(bad)], tmp_path)
    assert proc.returncode == 1
    assert "error:" in proc.stderr
