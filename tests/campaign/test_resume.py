"""Kill/resume property tests: exactly-once execution, byte-identical output.

The campaign contract under interruption is:

* a campaign killed after any ``k`` completed runs and then resumed
  produces a ``summary.json`` byte-identical to an uninterrupted run;
* no point ever executes twice — the resumed session sees exactly ``k``
  cache hits and executes exactly ``N - k`` points (asserted on
  :class:`CampaignSessionStats` counters).

Uses hypothesis to randomize the interruption point when available;
otherwise falls back to 20+ seeded interruption points so the property
still runs in minimal environments.
"""

import json
import random
from pathlib import Path

import pytest

from repro.campaign.queue import (
    Campaign,
    CampaignInterrupted,
    load_campaign_file,
)
from repro.campaign.sweep import SweepSpec
from repro.campaign.optimize import OptimizerSpec
from repro.runner.cache import ResultCache

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False

# 3-axis cartesian sweep (3 * 3 * 3 = 27 points) over the synthetic
# quadratic: cheap enough to run dozens of kill/resume cycles.
GRID = SweepSpec.from_json_dict(
    {
        "campaign": "resume-grid",
        "kind": "synthetic",
        "mode": "grid",
        "base": {"optimum": 0.5},
        "axes": {
            "x0": [0.0, 0.5, 1.0],
            "x1": [-1.0, 0.0, 1.0],
            "x2": [0.25, 0.5, 0.75],
        },
        "objective": "objective",
    }
)
N_POINTS = 27

ADAPTIVE = SweepSpec.from_json_dict(
    {
        "campaign": "resume-adaptive",
        "kind": "synthetic",
        "mode": "adaptive",
        "base": {"optimum": 0.3},
        "ranges": {"x0": {"lo": -4.0, "hi": 4.0}, "x1": {"lo": -4.0, "hi": 4.0}},
        "samples": 6,
        "rounds": 3,
        "seed": 9,
        "objective": "objective",
    }
)

OPTIMIZE = OptimizerSpec.from_json_dict(
    {
        "campaign": "resume-tune",
        "kind": "synthetic",
        "mode": "optimize",
        "base": {"optimum": -0.8},
        "ranges": {"x0": {"lo": -4.0, "hi": 4.0}},
        "objective": "objective",
        "budget": 24,
        "batch": 6,
        "seed": 5,
    }
)


def _campaign(spec, root: Path, workers: int = 1, stop_after=None) -> Campaign:
    return Campaign(
        spec,
        state_root=root / "state",
        cache=ResultCache(root / "cache"),
        workers=workers,
        stop_after=stop_after,
    )


def _reference_bytes(spec, tmp_path_factory, name: str) -> bytes:
    root = tmp_path_factory.mktemp(name)
    campaign = _campaign(spec, root)
    campaign.run()
    return campaign.summary_path.read_bytes()


@pytest.fixture(scope="module")
def grid_reference(tmp_path_factory) -> bytes:
    return _reference_bytes(GRID, tmp_path_factory, "grid-ref")


@pytest.fixture(scope="module")
def adaptive_reference(tmp_path_factory) -> bytes:
    return _reference_bytes(ADAPTIVE, tmp_path_factory, "adaptive-ref")


@pytest.fixture(scope="module")
def optimize_reference(tmp_path_factory) -> bytes:
    return _reference_bytes(OPTIMIZE, tmp_path_factory, "optimize-ref")


def _kill_then_resume(spec, root: Path, k: int, reference: bytes, total: int) -> None:
    """One kill/resume cycle asserting both properties for interruption at k."""
    interrupted = _campaign(spec, root, stop_after=k)
    with pytest.raises(CampaignInterrupted):
        interrupted.run()
    assert interrupted.last_stats.executed == k
    assert not interrupted.summary_path.exists()
    manifest = json.loads(interrupted.manifest_path.read_text())
    assert manifest["interrupted"] is True

    resumed = _campaign(spec, root)
    resumed.run()
    # Exactly-once: every one of the k interrupted-session runs comes back
    # as a cache hit; only the unfinished tail executes.
    assert resumed.last_stats.cache_hits == k
    assert resumed.last_stats.executed == total - k
    assert interrupted.last_stats.executed + resumed.last_stats.executed == total
    assert resumed.summary_path.read_bytes() == reference


if HAVE_HYPOTHESIS:

    @settings(max_examples=24, deadline=None)
    @given(k=st.integers(min_value=1, max_value=N_POINTS - 1))
    def test_grid_kill_resume_property(k, grid_reference, tmp_path_factory):
        root = tmp_path_factory.mktemp("kill")
        _kill_then_resume(GRID, root, k, grid_reference, N_POINTS)

else:  # pragma: no cover - exercised only without hypothesis

    _KS = sorted(set(random.Random(0x4B17).choices(range(1, N_POINTS), k=26)))

    @pytest.mark.parametrize("k", _KS)
    def test_grid_kill_resume_property(k, grid_reference, tmp_path):
        _kill_then_resume(GRID, tmp_path, k, grid_reference, N_POINTS)


def test_serial_pool_and_resumed_twice_are_byte_identical(
    grid_reference, tmp_path
):
    # 4-worker pool: scheduling order differs, bytes must not.
    pooled = _campaign(GRID, tmp_path / "pool", workers=4)
    pooled.run()
    assert pooled.summary_path.read_bytes() == grid_reference

    # Interrupted twice at different depths, resumed to completion.
    root = tmp_path / "twice"
    for stop in (5, 13):
        attempt = _campaign(GRID, root, stop_after=stop)
        with pytest.raises(CampaignInterrupted):
            attempt.run()
    final = _campaign(GRID, root)
    final.run()
    # Session 1 executed 5; session 2 hit those 5 and executed 13 more
    # (stop_after counts *executions*, not completions).
    assert final.last_stats.cache_hits == 18
    assert final.last_stats.executed == N_POINTS - 18
    assert final.summary_path.read_bytes() == grid_reference


def test_adaptive_sweep_resumes_byte_identical(adaptive_reference, tmp_path):
    # Interrupt mid-round-2: the refinement trajectory must re-derive
    # identically from cached round-1 results on resume.
    _kill_then_resume(ADAPTIVE, tmp_path, 8, adaptive_reference, 18)


def test_optimizer_resumes_byte_identical(optimize_reference, tmp_path):
    _kill_then_resume(OPTIMIZE, tmp_path, 13, optimize_reference, 24)


def test_rerun_of_completed_campaign_is_all_cache_hits(tmp_path):
    root = tmp_path
    first = _campaign(GRID, root)
    doc = first.run()
    assert first.last_stats.executed == N_POINTS
    assert doc["n_points"] == N_POINTS and doc["n_failed"] == 0

    again = _campaign(GRID, root)
    again.run()
    assert again.last_stats.executed == 0
    assert again.last_stats.cache_hits == N_POINTS
    assert again.summary_path.read_bytes() == first.summary_path.read_bytes()


def test_status_reports_resumable_progress(tmp_path):
    campaign = _campaign(GRID, tmp_path, stop_after=10)
    with pytest.raises(CampaignInterrupted):
        campaign.run()
    status = _campaign(GRID, tmp_path).status()
    assert status["cached_points"] == 10
    assert status["planned_points"] == N_POINTS
    assert status["interrupted"] is True
    assert status["summary_written"] is False

    finished = _campaign(GRID, tmp_path)
    finished.run()
    status = finished.status()
    assert status["cached_points"] == N_POINTS
    assert status["summary_written"] is True
    assert status["interrupted"] is False


def test_request_stop_interrupts_like_a_signal(tmp_path):
    campaign = _campaign(GRID, tmp_path)

    class ArmedSink:
        def __init__(self, target):
            self.target = target
            self.seen = 0

        def emit(self, record):
            if record.get("rec") == "run-result":
                self.seen += 1
                if self.seen == self.target:
                    campaign.request_stop()

        def close(self):
            pass

    campaign.telemetry = ArmedSink(7)
    with pytest.raises(CampaignInterrupted):
        campaign.run()
    assert campaign.last_stats.executed == 7

    resumed = _campaign(GRID, tmp_path)
    resumed.run()
    assert resumed.last_stats.cache_hits == 7
    assert resumed.last_stats.executed == N_POINTS - 7


def test_campaign_requires_a_result_cache(tmp_path):
    with pytest.raises(TypeError, match="requires a ResultCache"):
        Campaign(GRID, state_root=tmp_path, cache="not-a-cache")


def test_random_sweep_resume_reuses_spec_seeded_draw(tmp_path):
    spec = SweepSpec.from_json_dict(
        {
            "campaign": "resume-random",
            "kind": "synthetic",
            "mode": "random",
            "ranges": {"x0": {"lo": -2.0, "hi": 2.0}, "x1": {"lo": -2.0, "hi": 2.0}},
            "samples": 15,
            "seed": 77,
            "objective": "objective",
        }
    )
    ref_root = tmp_path / "ref"
    reference = _campaign(spec, ref_root)
    reference.run()
    _kill_then_resume(
        spec, tmp_path / "kill", 6, reference.summary_path.read_bytes(), 15
    )


def test_spec_file_round_trip_through_disk_matches_in_memory(tmp_path):
    # A campaign loaded from its own persisted spec.json resumes the same
    # campaign (digest-stable provenance).
    campaign = _campaign(GRID, tmp_path, stop_after=4)
    with pytest.raises(CampaignInterrupted):
        campaign.run()
    persisted = json.loads(campaign.spec_path.read_text())
    digest = persisted.pop("digest")
    assert digest == GRID.digest()
    reloaded_path = tmp_path / "reloaded.json"
    reloaded_path.write_text(json.dumps(persisted))
    reloaded = load_campaign_file(reloaded_path)
    assert reloaded.digest() == GRID.digest()
