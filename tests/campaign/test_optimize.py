"""Closed-loop optimizer: convergence, budgets, failure surfaces."""

import pytest

from repro.campaign.optimize import (
    OptimizerSpec,
    objective_score,
    run_optimizer,
)
from repro.campaign.spec import SimulationSpec, simulate


def _evaluate(points):
    return [simulate(p) for p in points]


def _spec(**overrides):
    data = {
        "campaign": "t",
        "kind": "synthetic",
        "mode": "optimize",
        "base": {"optimum": 1.5},
        "ranges": {"x0": {"lo": -8.0, "hi": 8.0}, "x1": {"lo": -8.0, "hi": 8.0}},
        "objective": "objective",
        "budget": 64,
        "batch": 8,
        "top_k": 3,
        "shrink": 0.5,
        "seed": 11,
    }
    data.update(overrides)
    return OptimizerSpec.from_json_dict(data)


def test_converges_on_convex_objective_within_budget():
    outcome = run_optimizer(_spec(), _evaluate)
    assert outcome.best_params is not None
    assert outcome.best_score is not None and outcome.best_score < 0.5
    assert abs(outcome.best_params["x0"] - 1.5) < 1.0
    assert abs(outcome.best_params["x1"] - 1.5) < 1.0
    assert outcome.evaluations == 64 and outcome.budget_exhausted
    # Refinement visibly contracted the search box.
    first, last = outcome.history[0], outcome.history[-1]
    width = lambda r: r["x0"][1] - r["x0"][0]  # noqa: E731
    assert width(last["ranges"]) < width(first["ranges"])


def test_budget_is_a_hard_ceiling_with_truncated_last_batch():
    outcome = run_optimizer(_spec(budget=10, batch=4), _evaluate)
    assert outcome.evaluations == 10
    assert [h["evaluated"] for h in outcome.history] == [4, 4, 2]
    assert outcome.budget_exhausted


def test_all_nan_objective_degrades_gracefully():
    outcome = run_optimizer(_spec(base={"mode": "nan"}), _evaluate)
    assert outcome.best_params is None and outcome.best_score is None
    assert outcome.valid_evaluations == 0
    assert outcome.evaluations == 64  # still spent the budget looking
    # Ranges never shrank: every round re-samples the full box.
    assert outcome.history[-1]["ranges"] == outcome.history[0]["ranges"]


def test_all_inf_objective_degrades_gracefully():
    outcome = run_optimizer(_spec(base={"mode": "inf"}, budget=16), _evaluate)
    assert outcome.best_params is None
    assert outcome.valid_evaluations == 0


def test_partially_invalid_surface_still_converges():
    # NaN below 0: half the box is poisoned, the optimizer must route
    # around it and still find the bowl at optimum=1.5.
    spec = _spec(base={"optimum": 1.5, "mode": "nan_below", "threshold": 0.0})
    outcome = run_optimizer(spec, _evaluate)
    assert outcome.best_params is not None
    assert outcome.valid_evaluations < outcome.evaluations
    # The shrinking box can trap one coordinate slightly off-optimum when
    # half the surface is invalid; what matters is a finite, sane score.
    assert outcome.best_score < 10.0
    assert outcome.best_params["x0"] >= 0.0
    assert outcome.best_params["x1"] >= 0.0


def test_maximize_mode():
    # Maximizing the quadratic pushes toward the corners, away from optimum.
    spec = _spec(minimize=False, budget=32)
    outcome = run_optimizer(spec, _evaluate)
    assert outcome.best_params is not None
    assert outcome.best_score > 50.0


def test_failed_runs_count_against_budget_but_never_score():
    calls = []

    def flaky(points):
        calls.append(len(points))
        return [None for _ in points]

    outcome = run_optimizer(_spec(budget=8, batch=4), flaky)
    assert outcome.evaluations == 8
    assert outcome.valid_evaluations == 0
    assert outcome.best_params is None


def test_evaluator_length_mismatch_is_an_error():
    with pytest.raises(ValueError, match="evaluator returned"):
        run_optimizer(_spec(budget=4, batch=4), lambda points: [])


def test_trajectory_is_deterministic():
    a = run_optimizer(_spec(), _evaluate)
    b = run_optimizer(_spec(), _evaluate)
    assert a.to_json_dict() == b.to_json_dict()


def test_objective_score_invalid_shapes():
    result = simulate(SimulationSpec.make("synthetic", x0=1.0))
    assert objective_score(result, "objective") == 1.0
    assert objective_score(result, "missing_key") is None
    assert objective_score(None, "objective") is None
    nan_result = simulate(SimulationSpec.make("synthetic", x0=1.0, mode="nan"))
    assert objective_score(nan_result, "objective") is None


def test_spec_validation():
    with pytest.raises(ValueError, match="at least one range"):
        OptimizerSpec.from_json_dict(
            {"campaign": "x", "kind": "synthetic", "mode": "optimize"}
        )
    with pytest.raises(ValueError, match="expected 'optimize'"):
        OptimizerSpec.from_json_dict(
            {"campaign": "x", "kind": "synthetic", "mode": "grid",
             "ranges": {"x0": {"lo": 0, "hi": 1}}}
        )
    with pytest.raises(ValueError, match="0 < shrink < 1"):
        _spec(shrink=1.5)


def test_round_trip():
    spec = _spec()
    back = OptimizerSpec.from_json_dict(spec.to_json_dict())
    assert back == spec and back.digest() == spec.digest()
