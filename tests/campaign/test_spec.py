"""SimulationSpec contract: canonical identity, round-trips, dispatch."""

import math

import pytest

from repro.campaign.spec import (
    OBJECTIVE_KEYS,
    SimulationSpec,
    freeze_value,
    simulate,
)


def test_spec_digest_is_order_independent():
    a = SimulationSpec.make("synthetic", x0=1.0, x1=2.0)
    b = SimulationSpec.from_params("synthetic", {"x1": 2.0, "x0": 1.0})
    assert a == b
    assert a.digest() == b.digest()


def test_spec_json_round_trip_preserves_digest():
    spec = SimulationSpec.make(
        "collection", profile="mirage", n_nodes=10, seed=3, ku=5,
        white_bit="lqi", white_bit_threshold=100.0,
    )
    back = SimulationSpec.from_json_dict(spec.to_json_dict())
    assert back == spec
    assert back.digest() == spec.digest()


def test_freeze_value_normalizes_json_shapes():
    assert freeze_value([1, [2, 3]]) == (1, (2, 3))
    assert freeze_value({"b": 2, "a": [1]}) == (("a", (1,)), ("b", 2))
    # A spec built from JSON-decoded lists equals one built from tuples.
    via_list = SimulationSpec.make("synthetic", x0=1.0, xs=[1, 2])
    via_tuple = SimulationSpec.make("synthetic", x0=1.0, xs=(1, 2))
    assert via_list.digest() == via_tuple.digest()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown simulation kind"):
        SimulationSpec.make("quantum")


def test_synthetic_quadratic_objective():
    result = simulate(SimulationSpec.make("synthetic", x0=3.0, x1=4.0))
    assert result.summary == {"objective": 25.0, "dims": 2}
    assert result.events_run == 0
    assert result.digest == SimulationSpec.make("synthetic", x0=3.0, x1=4.0).digest()


def test_synthetic_optimum_shifts_the_bowl():
    result = simulate(SimulationSpec.make("synthetic", x0=0.7, optimum=0.7))
    assert result.summary["objective"] == 0.0


def test_synthetic_failure_surfaces_are_json_null():
    # NaN/inf objectives sanitize to None: strict-JSON-safe, and the
    # optimizer treats them as invalid.
    for mode in ("nan", "inf"):
        result = simulate(SimulationSpec.make("synthetic", x0=1.0, mode=mode))
        assert result.summary["objective"] is None
    below = simulate(
        SimulationSpec.make("synthetic", x0=-1.0, mode="nan_below", threshold=0.0)
    )
    assert below.summary["objective"] is None
    above = simulate(
        SimulationSpec.make("synthetic", x0=1.0, mode="nan_below", threshold=0.0)
    )
    assert above.summary["objective"] == 1.0


def test_synthetic_requires_coordinates():
    with pytest.raises(ValueError, match="coordinate"):
        simulate(SimulationSpec.make("synthetic", mode="quadratic"))


def test_accuracy_kind_runs_and_reports_cost():
    spec = SimulationSpec.make(
        "accuracy", scenario="steady", prr=0.8, duration_s=120.0, warmup_s=30.0,
        ku=5, kb=2,
    )
    result = simulate(spec)
    for key in OBJECTIVE_KEYS["accuracy"]:
        assert key in result.summary
    assert result.summary["samples"] > 0
    assert result.summary["beacon_tx"] > 0
    assert result.events_run > 0
    assert "_events_run" not in result.summary


def test_accuracy_unknown_param_rejected():
    with pytest.raises(ValueError, match="unknown accuracy parameter"):
        simulate(SimulationSpec.make("accuracy", prr=0.8, warp_factor=9))


def test_accuracy_determinism():
    spec = SimulationSpec.make("accuracy", scenario="steady", prr=0.7, duration_s=90.0)
    a = simulate(spec)
    b = simulate(spec)
    assert a.summary == b.summary


def test_result_json_dict_excludes_resources():
    result = simulate(SimulationSpec.make("synthetic", x0=1.0))
    result.resources = {"wall_s": 1.23}
    doc = result.to_json_dict()
    assert "resources" not in doc
    assert set(doc) == {"kind", "digest", "params", "summary"}


def test_result_equality_ignores_resources():
    a = simulate(SimulationSpec.make("synthetic", x0=1.0))
    b = simulate(SimulationSpec.make("synthetic", x0=1.0))
    b.resources = {"wall_s": math.pi}
    assert a == b
