"""Unit tests for the Node composition container."""

import random

from repro.link.frame import BROADCAST, Frame
from repro.link.mac import Mac
from repro.sim.node import Node

from tests.conftest import PerfectMedium, make_radio


def test_data_transmissions_counts_unicast_only(engine, perfect_medium):
    mac0 = Mac(engine, perfect_medium, make_radio(0), random.Random(1))
    mac1 = Mac(engine, perfect_medium, make_radio(1), random.Random(2))
    perfect_medium.attach(mac0)
    perfect_medium.attach(mac1)

    class StubProtocol:
        is_root = False
        parent = 1

    node = Node(
        node_id=0,
        radio=mac0.radio,
        mac=mac0,
        protocol=StubProtocol(),
        estimator=None,
        source=None,
        boot_time=0.0,
    )
    mac0.send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    mac0.send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert node.data_transmissions() == 1
    assert node.parent == 1
    assert not node.is_root


def test_disabled_mac_stops_everything(engine, perfect_medium):
    mac0 = Mac(engine, perfect_medium, make_radio(0), random.Random(1))
    mac1 = Mac(engine, perfect_medium, make_radio(1), random.Random(2))
    perfect_medium.attach(mac0)
    perfect_medium.attach(mac1)
    received = []
    mac1.on_receive = lambda f, i: received.append(f)

    mac1.enabled = False
    mac0.send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert received == []

    mac1.enabled = True
    assert not mac1.busy
    mac0.send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert len(received) == 1


def test_disabled_mac_rejects_sends(engine, perfect_medium):
    mac0 = Mac(engine, perfect_medium, make_radio(0), random.Random(1))
    perfect_medium.attach(mac0)
    mac0.enabled = False
    assert not mac0.send(Frame(src=0, dst=BROADCAST, length_bytes=20))
