"""Incremental structural maintenance equals a fresh build (DESIGN.md §11).

The fast backend patches per-sender batch state on attach/detach/move
instead of rebuilding.  These tests pin the contract that no churn
history can leak into query results: after an arbitrary interleaving of
moves, crashes and reboots, every candidate list must match a medium
built from scratch over the final layout with the same master seed.
"""

from random import Random

import pytest

from repro.phy.channel import ChannelModel
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium_fast import FastRadioMedium
from repro.sim.rng import RngManager

GRID25 = {nid: (11.0 * (nid % 5), 11.0 * (nid // 5)) for nid in range(25)}


class Listener:
    def __init__(self, node_id):
        self.node_id = node_id
        self.radio = Radio(node_id=node_id)

    def on_frame_received(self, frame, info):
        pass


def build(positions, seed=3):
    """Fast medium over ``positions`` with deterministic per-pair gains.

    Temporal/bimodal dynamics draw from streams at *sample* time, which
    is irrelevant here: candidate construction depends only on the mean
    gains, and those are a pure function of (seed, pair, distance) — so
    an incrementally patched medium and a fresh build must agree exactly.
    """
    engine = Engine()
    rng = RngManager(seed)
    channel = ChannelModel(
        dict(positions),
        rng.fork("channel"),
        shadowing_sigma_db=3.2,
        temporal_sigma_db=0.0,
        bimodal_fraction=0.0,
    )
    medium = FastRadioMedium(engine, channel, rng)
    nodes = {}
    for nid in positions:
        node = Listener(nid)
        medium.attach(node)
        nodes[nid] = node
    medium.finalize()
    return medium, nodes


def all_candidates(medium, node_ids):
    return {sid: medium.candidate_receivers(sid) for sid in sorted(node_ids)}


def test_attach_after_finalize_without_position_raises():
    medium, _ = build(GRID25)
    with pytest.raises(RuntimeError, match="no channel position"):
        medium.attach(Listener(99))
    # Nothing was half-registered by the failed attach.
    assert 99 not in medium._participants
    medium.channel.add_position(99, (27.0, 27.0))
    medium.attach(Listener(99))
    assert any(rid == 99 for rid, _ in medium.candidate_receivers(12))


def test_moved_medium_matches_fresh_build():
    medium, _ = build(GRID25)
    walk = Random(41)
    final = dict(GRID25)
    for _ in range(300):
        nid = walk.randrange(25)
        x = walk.uniform(-10.0, 60.0)
        y = walk.uniform(-10.0, 60.0)
        medium.update_position(nid, x, y)
        final[nid] = (x, y)
    fresh, _ = build(final)
    assert all_candidates(medium, GRID25) == all_candidates(fresh, GRID25)


def test_churned_medium_matches_fresh_build():
    """Interleaved moves, crashes and reboots — the surviving membership's
    candidate lists must equal a fresh build over the final layout."""
    medium, nodes = build(GRID25)
    walk = Random(43)
    final = dict(GRID25)
    detached = set()
    for step in range(200):
        nid = walk.randrange(25)
        action = walk.random()
        if action < 0.2 and nid not in detached and len(detached) < 10:
            medium.detach(nid)
            detached.add(nid)
        elif action < 0.4 and detached:
            back = min(detached)  # deterministic pick
            medium.attach(nodes[back])
            detached.discard(back)
        elif nid not in detached:
            x = walk.uniform(-10.0, 60.0)
            y = walk.uniform(-10.0, 60.0)
            medium.update_position(nid, x, y)
            final[nid] = (x, y)
    alive = [nid for nid in GRID25 if nid not in detached]
    fresh, _ = build({nid: final[nid] for nid in alive})
    got = all_candidates(medium, alive)
    want = all_candidates(fresh, alive)
    # Positions of detached nodes persist in the channel (pair identity
    # survives reboots) but they must never appear as candidates.
    for sid, cands in got.items():
        assert not any(rid in detached for rid, _ in cands)
    assert got == want


def test_detach_then_reattach_restores_candidates():
    medium, nodes = build(GRID25)
    before = all_candidates(medium, GRID25)
    medium.detach(12)
    assert all(
        12 != rid
        for sid in GRID25
        if sid != 12
        for rid, _ in medium.candidate_receivers(sid)
    )
    medium.attach(nodes[12])
    assert all_candidates(medium, GRID25) == before
