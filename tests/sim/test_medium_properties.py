"""Property-based invariants of the radio medium."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.frame import BROADCAST, Frame
from repro.phy.channel import ChannelModel
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.rng import RngManager


class Listener:
    def __init__(self, node_id: int):
        self.node_id = node_id
        self.radio = Radio(node_id=node_id)
        self.received = []

    def on_frame_received(self, frame, info):
        self.received.append((frame, info))


def build(positions, seed):
    engine = Engine()
    rng = RngManager(seed)
    channel = ChannelModel(
        positions, rng.fork("ch"), shadowing_sigma_db=2.0, temporal_sigma_db=0.5
    )
    medium = RadioMedium(engine, channel, rng)
    nodes = {}
    for nid in positions:
        node = Listener(nid)
        medium.attach(node)
        nodes[nid] = node
    medium.finalize()
    return engine, medium, nodes


_layouts = st.lists(
    st.tuples(st.floats(0, 60, allow_nan=False), st.floats(0, 30, allow_nan=False)),
    min_size=2,
    max_size=8,
)


@settings(max_examples=30, deadline=None)
@given(_layouts, st.integers(0, 2**31), st.integers(1, 6))
def test_property_counters_consistent(layout, seed, n_frames):
    positions = {i: pos for i, pos in enumerate(layout)}
    engine, medium, nodes = build(positions, seed)
    for i in range(n_frames):
        sender = i % len(positions)
        engine.schedule_at(
            i * 0.05, medium.start_transmission, sender, Frame(src=sender, dst=BROADCAST, length_bytes=20)
        )
    engine.run()
    assert medium.transmissions == n_frames
    total_received = sum(len(n.received) for n in nodes.values())
    assert medium.deliveries == total_received
    # No node ever receives its own frame.
    for nid, node in nodes.items():
        assert all(frame.src != nid for frame, _ in node.received)


@settings(max_examples=30, deadline=None)
@given(_layouts, st.integers(0, 2**31))
def test_property_rx_info_well_formed(layout, seed):
    positions = {i: pos for i, pos in enumerate(layout)}
    engine, medium, nodes = build(positions, seed)
    for sender in positions:
        engine.schedule_at(
            sender * 0.05,
            medium.start_transmission,
            sender,
            Frame(src=sender, dst=BROADCAST, length_bytes=20),
        )
    engine.run()
    for node in nodes.values():
        for frame, info in node.received:
            assert 0 <= info.lqi <= 255
            assert info.timestamp >= 0.0
            assert info.rssi_dbm < 0.0  # nothing transmits above 0 dBm here
            if info.white_bit:
                assert info.lqi >= 105  # default LQI white-bit policy


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31))
def test_property_same_seed_same_outcome(seed):
    positions = {0: (0.0, 0.0), 1: (20.0, 0.0), 2: (35.0, 5.0)}

    def run():
        engine, medium, nodes = build(positions, seed)
        for i in range(5):
            engine.schedule_at(
                i * 0.01, medium.start_transmission, 0, Frame(src=0, dst=BROADCAST, length_bytes=20)
            )
        engine.run()
        return [(nid, len(n.received)) for nid, n in sorted(nodes.items())]

    assert run() == run()
