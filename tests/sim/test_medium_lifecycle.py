"""Medium lifecycle regressions: finalize idempotence, prune bounds,
channel_clear misuse.

These pin the three PR-6 lifecycle bugfixes:

* ``finalize()`` is idempotent — a second call without an interleaving
  ``attach`` must not rebuild candidate state, so same-seed runs digest
  identically whether a harness calls it once or twice.
* ``_prune_recent`` prunes by horizon as well as length — long runs with
  sparse traffic must not pin an unbounded (or even
  ``_RECENT_PRUNE_LEN``-sized stale) tail of finished transmissions.
* ``channel_clear`` for a node that was never attached is an intentional
  ``ValueError``, not an incidental ``KeyError`` from the position table.
"""

import hashlib

import pytest

from repro.link.frame import BROADCAST, Frame
from repro.phy.channel import ChannelModel
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import _RECENT_PRUNE_LEN, _RECENT_HORIZON_S, RadioMedium
from repro.sim.medium_fast import FastRadioMedium
from repro.sim.rng import RngManager

GRID9 = {nid: (10.0 * (nid % 3), 10.0 * (nid // 3)) for nid in range(9)}


class Listener:
    def __init__(self, node_id):
        self.node_id = node_id
        self.radio = Radio(node_id=node_id)
        self.received = []

    def on_frame_received(self, frame, info):
        self.received.append((frame.src, info.rssi_dbm, info.lqi, info.white_bit))


def build(medium_cls, positions, seed=3, finalize_times=1, **channel_kwargs):
    engine = Engine()
    rng = RngManager(seed)
    defaults = dict(shadowing_sigma_db=3.2, temporal_sigma_db=1.5, bimodal_fraction=0.3)
    defaults.update(channel_kwargs)
    channel = ChannelModel(positions, rng.fork("ch"), **defaults)
    medium = medium_cls(engine, channel, rng)
    nodes = {}
    for nid in positions:
        node = Listener(nid)
        medium.attach(node)
        nodes[nid] = node
    for _ in range(finalize_times):
        medium.finalize()
    return engine, medium, nodes


def run_digest(medium_cls, finalize_times):
    engine, medium, nodes = build(medium_cls, GRID9, finalize_times=finalize_times)
    for i in range(60):
        sender = i % len(nodes)
        medium.start_transmission(sender, Frame(src=sender, dst=BROADCAST, length_bytes=36))
        engine.run()
    h = hashlib.blake2b(digest_size=16)
    for nid in sorted(nodes):
        for row in nodes[nid].received:
            h.update(repr((nid, row)).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# finalize() idempotence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_double_finalize_same_digest(medium_cls):
    once = run_digest(medium_cls, finalize_times=1)
    twice = run_digest(medium_cls, finalize_times=2)
    assert once == twice


@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_finalize_skips_rebuild_when_already_finalized(medium_cls):
    engine, medium, nodes = build(medium_cls, GRID9)
    before = medium._candidates
    medium.finalize()
    assert medium._candidates is before  # no rebuild: the guard short-circuited


@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_attach_after_finalize_reopens(medium_cls):
    engine, medium, nodes = build(medium_cls, GRID9)
    late = Listener(99)
    medium.channel.add_position(99, (5.0, 5.0))
    medium.attach(late)
    medium.finalize()  # re-finalize really rebuilds for the new node
    assert any(rid == 99 for rid, _ in medium.candidate_receivers(4))
    medium.start_transmission(4, Frame(src=4, dst=BROADCAST, length_bytes=36))
    engine.run()
    assert late.received


# ----------------------------------------------------------------------
# _prune_recent horizon bound on long sparse runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_long_sparse_run_bounds_recent_growth(medium_cls):
    engine, medium, nodes = build(
        medium_cls, {0: (0.0, 0.0), 1: (5.0, 0.0)}, shadowing_sigma_db=0.0,
        temporal_sigma_db=0.0, bimodal_fraction=0.0,
    )
    gap = 1.5 * _RECENT_HORIZON_S
    n = 3 * _RECENT_PRUNE_LEN
    max_recent = 0
    for _ in range(n):
        engine.schedule(gap, lambda: None)
        engine.run()
        medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
        max_recent = max(max_recent, len(medium._recent))
    # Every transmission ages past the horizon before the next one starts,
    # so the bookkeeping never accumulates: the high-water mark stays O(1)
    # instead of growing toward _RECENT_PRUNE_LEN (or beyond).
    assert max_recent <= 2
    assert len(medium._tx_by_sender[0]) <= 2
    assert medium.transmissions == n
    assert len(nodes[1].received) == n


# ----------------------------------------------------------------------
# channel_clear misuse
# ----------------------------------------------------------------------
@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_channel_clear_unattached_node_raises_value_error(medium_cls):
    engine, medium, nodes = build(medium_cls, GRID9)
    with pytest.raises(ValueError, match="not attached"):
        medium.channel_clear(12345)


@pytest.mark.parametrize("medium_cls", [RadioMedium, FastRadioMedium])
def test_channel_clear_attached_node_ok(medium_cls):
    engine, medium, nodes = build(medium_cls, GRID9)
    assert medium.channel_clear(0) is True
