"""Edge-behavior tests for the radio medium's hot-path bookkeeping.

These pin the behaviors the optimized reception loop in
:mod:`repro.sim.medium` must preserve: half-duplex suppression through the
``_recent`` list (a receiver that transmitted during *any* part of the
incoming frame misses it, even if its own transmission ended first),
collision-counter attribution (only interference-caused drops count), and
the ``_prune_recent`` horizon (finished transmissions are reclaimed after
long idle gaps without disturbing overlap detection).
"""

import pytest

from repro.link.frame import BROADCAST, Frame
from repro.sim.medium import _RECENT_HORIZON_S, _RECENT_PRUNE_LEN

from tests.sim.test_medium import build_medium


def _frame(src, length=20):
    return Frame(src=src, dst=BROADCAST, length_bytes=length)


# ----------------------------------------------------------------------
# Half-duplex suppression
# ----------------------------------------------------------------------
def test_half_duplex_partial_overlap_suppresses():
    # Node 1 sends a short frame while node 0 sends a long one.  Node 1's
    # transmission is over (moved to ``_recent``) by the time node 0's frame
    # finishes, but it overlapped the frame in time — node 1 was deaf for
    # the frame's first bytes and must not receive it.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, _frame(0, length=100))
    medium.start_transmission(1, _frame(1, length=10))
    engine.run()
    assert all(frame.src != 0 for frame, _ in nodes[1].received)


def test_half_duplex_back_to_back_can_receive():
    # Same nodes, but node 1's transmission fully precedes node 0's frame:
    # no overlap, so the frame is received normally (5 m is a sure link).
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    first = medium.start_transmission(1, _frame(1, length=10))
    engine.schedule(first + 1e-6, medium.start_transmission, 0, _frame(0, length=100))
    engine.run()
    assert [frame.src for frame, _ in nodes[1].received] == [0]


def test_was_transmitting_window():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    duration = medium.start_transmission(0, _frame(0, length=40))
    engine.run()  # transmission over, now sitting in _recent
    assert medium._was_transmitting(0, 0.0, duration)
    assert medium._was_transmitting(0, duration / 2, duration * 2)
    # Windows strictly before or after the transmission do not count …
    assert not medium._was_transmitting(0, duration, duration * 2)
    assert not medium._was_transmitting(0, -1.0, 0.0)
    # … and a node that never transmitted has no history at all.
    assert not medium._was_transmitting(1, 0.0, duration)


# ----------------------------------------------------------------------
# Collision attribution
# ----------------------------------------------------------------------
def test_clear_channel_losses_are_not_collisions():
    # A marginal link drops plenty of frames with no interferer anywhere;
    # none of those drops may be attributed to collisions.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (29.2, 0.0)})
    n = 200
    for _ in range(n):
        medium.start_transmission(0, _frame(0))
        engine.run()
    assert 0 < len(nodes[1].received) < n  # some losses happened …
    assert medium.collisions == 0  # … but nothing collided


def test_interference_losses_count_as_collisions():
    # Receiver 2 sits close to jamming sender 1: sender 0's frame dies to
    # interference (not noise), so the collision counter must attribute it.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (6.0, 0.0), 2: (5.0, 0.0)})
    medium.start_transmission(0, _frame(0, length=40))
    medium.start_transmission(1, _frame(1, length=40))
    engine.run()
    assert all(frame.src != 0 for frame, _ in nodes[2].received)
    assert medium.collisions >= 1


# ----------------------------------------------------------------------
# _prune_recent horizon
# ----------------------------------------------------------------------
def test_prune_recent_reclaims_after_idle_gaps():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    gap = 2.0 * _RECENT_HORIZON_S
    n = _RECENT_PRUNE_LEN + 1
    for _ in range(n):
        engine.schedule(gap, lambda: None)  # idle gap before each frame
        engine.run()
        medium.start_transmission(0, _frame(0))
        engine.run()
    # The final frame pushed the list past _RECENT_PRUNE_LEN, so the prune
    # fired at its end: every transmission older than the horizon (all of
    # them, given the gaps) is gone from both indexes, leaving only the
    # frame that triggered the prune.
    assert len(medium._recent) == 1
    assert len(medium._tx_by_sender[0]) == 1
    horizon = engine.now - _RECENT_HORIZON_S
    assert all(t.end >= horizon for t in medium._recent)
    assert all(t.end >= horizon for t in medium._tx_by_sender[0])
    # Frame accounting was unaffected.
    assert medium.transmissions == n
    assert len(nodes[1].received) == n


def test_prune_keeps_transmissions_inside_horizon():
    # Back-to-back traffic (no idle gaps): every finished transmission is
    # still inside the horizon, so pruning must not drop any of them.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    n = _RECENT_PRUNE_LEN + 10
    for _ in range(n):
        medium.start_transmission(0, _frame(0, length=10))
        engine.run()
    airtime_total = engine.now
    if airtime_total < _RECENT_HORIZON_S:
        assert len(medium._recent) == n
    else:  # pragma: no cover - only if airtime parameters grow a lot
        pytest.skip("frames too slow for a within-horizon burst")
