"""Unit tests for the network builder."""

import math

import pytest

from repro.core.estimator import EstimatorConfig
from repro.net.ctp.protocol import CtpProtocol
from repro.net.multihoplqi import MultiHopLqi
from repro.sim.network import PROTOCOLS, CollectionNetwork, SimConfig
from repro.topology.generators import grid
from repro.topology.testbeds import scaled_profile, MIRAGE


def tiny_topology():
    return grid(3, 2, spacing_m=4.0)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        SimConfig(protocol="nonsense")


def test_duration_must_exceed_warmup():
    with pytest.raises(ValueError):
        SimConfig(duration_s=100.0, warmup_s=200.0)


def test_builds_one_node_per_position():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    assert len(net.nodes) == 6


def test_sink_has_no_source_and_is_root():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    sink = net.nodes[0]
    assert sink.source is None
    assert sink.is_root
    assert sink.boot_time == 0.0


def test_ctp_nodes_have_estimators():
    net = CollectionNetwork(tiny_topology(), SimConfig(protocol="4b", duration_s=200.0, warmup_s=50.0))
    for node in net.nodes.values():
        assert isinstance(node.protocol, CtpProtocol)
        assert node.estimator is not None


def test_mhlqi_nodes_have_no_estimator():
    net = CollectionNetwork(
        tiny_topology(), SimConfig(protocol="mhlqi", duration_s=200.0, warmup_s=50.0)
    )
    for node in net.nodes.values():
        assert isinstance(node.protocol, MultiHopLqi)
        assert node.estimator is None


def test_boot_times_staggered():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    boots = [n.boot_time for n in net.nodes.values() if not n.is_root]
    assert all(0.0 <= b <= 30.0 for b in boots)
    assert len(set(boots)) > 1


def test_estimator_config_override():
    config = SimConfig(
        protocol="4b",
        duration_s=200.0,
        warmup_s=50.0,
        estimator_config=EstimatorConfig(table_size=3),
    )
    net = CollectionNetwork(tiny_topology(), config)
    assert net.nodes[1].estimator.table.capacity == 3


def test_interferers_built_from_profile():
    profile = scaled_profile(MIRAGE, 10)
    topo = profile.topology(seed=1)
    net = CollectionNetwork(topo, SimConfig(duration_s=200.0, warmup_s=50.0), profile=profile)
    assert len(net.interferers) == len(profile.interferers)


def test_interferers_disabled_by_config():
    profile = scaled_profile(MIRAGE, 10)
    topo = profile.topology(seed=1)
    net = CollectionNetwork(
        topo,
        SimConfig(duration_s=200.0, warmup_s=50.0, with_interferers=False),
        profile=profile,
    )
    assert net.interferers == []


def test_channel_overrides_applied():
    net = CollectionNetwork(
        tiny_topology(),
        SimConfig(duration_s=200.0, warmup_s=50.0),
        channel_overrides=dict(shadowing_sigma_db=0.0, temporal_sigma_db=0.0),
    )
    assert net.channel.shadowing_sigma_db == 0.0


def test_depth_map_follows_parents():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    # Force parents by hand: 0 ← 1 ← 2, others routeless.
    net.nodes[1].protocol.routing.route_info[0] = None
    net.nodes[1].protocol.routing.parent = 0
    net.nodes[2].protocol.routing.parent = 1
    depths = net.depth_map()
    assert depths[0] == 0
    assert depths[1] == 1
    assert depths[2] == 2
    assert depths[3] is None


def test_depth_map_detects_cycles():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    net.nodes[1].protocol.routing.parent = 2
    net.nodes[2].protocol.routing.parent = 1
    depths = net.depth_map()
    assert depths[1] is None
    assert depths[2] is None


def test_hardware_variation_applied():
    net = CollectionNetwork(tiny_topology(), SimConfig(duration_s=200.0, warmup_s=50.0))
    floors = {n.radio.noise_floor_dbm for n in net.nodes.values()}
    assert len(floors) > 1


def test_protocol_registry_complete():
    assert set(PROTOCOLS) == {
        "ctp",
        "ctp-unconstrained",
        "ctp-unidir",
        "ctp-white",
        "4b",
        "mhlqi",
        "geo",
    }


def test_unknown_medium_rejected():
    with pytest.raises(ValueError, match="unknown medium"):
        SimConfig(protocol="4b", medium="warp-drive")


def test_fast_medium_backend_selected():
    from repro.sim.medium_fast import FastRadioMedium

    net = CollectionNetwork(tiny_topology(), SimConfig(protocol="4b", medium="fast"))
    assert isinstance(net.medium, FastRadioMedium)


def test_default_medium_is_exact():
    from repro.sim.medium import RadioMedium
    from repro.sim.medium_fast import FastRadioMedium

    net = CollectionNetwork(tiny_topology(), SimConfig(protocol="4b"))
    assert type(net.medium) is RadioMedium
    assert not isinstance(net.medium, FastRadioMedium)
