"""Waypoint mobility: config plumbing, determinism, backend equivalence."""

import json

import pytest

from repro.sim.mobility import (
    MOBILITY_PRESETS,
    MobilityConfig,
    resolve_mobility,
)
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid


def _mobile_network(medium="fast", seed=3, mobility="pedestrian", **overrides):
    topo = grid(4, 4, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b",
        seed=seed,
        duration_s=180.0,
        warmup_s=60.0,
        medium=medium,
        mobility=mobility,
        **overrides,
    )
    return CollectionNetwork(topo, config)


# ----------------------------------------------------------------------
# MobilityConfig (unit)
# ----------------------------------------------------------------------
def test_config_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MobilityConfig(speed_min_mps=0.0)
    with pytest.raises(ValueError):
        MobilityConfig(speed_min_mps=2.0, speed_max_mps=1.0)
    with pytest.raises(ValueError):
        MobilityConfig(pause_mean_s=-1.0)
    with pytest.raises(ValueError):
        MobilityConfig(update_period_s=0.0)
    with pytest.raises(ValueError):
        MobilityConfig(fraction_mobile=0.0)
    with pytest.raises(ValueError):
        MobilityConfig(fraction_mobile=1.5)


def test_config_json_roundtrip(tmp_path):
    config = MobilityConfig(
        speed_min_mps=1.0,
        speed_max_mps=4.0,
        pause_mean_s=10.0,
        update_period_s=2.0,
        fraction_mobile=0.25,
    )
    assert MobilityConfig.from_json_dict(config.to_json_dict()) == config
    path = tmp_path / "mob.json"
    path.write_text(json.dumps(config.to_json_dict()))
    assert MobilityConfig.from_json_file(path) == config
    with pytest.raises(ValueError, match="unknown mobility config keys"):
        MobilityConfig.from_json_dict({"speed_min_mps": 1.0, "warp_factor": 9.0})


def test_resolve_mobility_sources(tmp_path):
    assert resolve_mobility("pedestrian") is MOBILITY_PRESETS["pedestrian"]
    config = MobilityConfig(speed_min_mps=2.0, speed_max_mps=3.0)
    assert resolve_mobility(config) is config
    path = tmp_path / "custom.json"
    path.write_text(json.dumps(config.to_json_dict()))
    assert resolve_mobility(str(path)) == config
    with pytest.raises(ValueError, match="unknown mobility preset"):
        resolve_mobility("teleporting")


def test_simconfig_rejects_non_mobility_object():
    with pytest.raises(ValueError, match="mobility must be"):
        SimConfig(mobility=42)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Driver behavior (integration)
# ----------------------------------------------------------------------
def test_roots_never_move_and_mobiles_do():
    net = _mobile_network()
    sink_pos = net.channel.positions[net.topology.sink]
    start = {nid: net.channel.positions[nid] for nid in net.topology.node_ids()}
    net.run()
    assert net.mobility is not None
    assert net.mobility.position_updates > 0
    assert net.mobility.waypoints_drawn > 0
    assert net.channel.positions[net.topology.sink] == sink_pos
    assert net.topology.sink not in net.mobility.mobile_ids
    moved = [
        nid
        for nid in net.mobility.mobile_ids
        if net.channel.positions[nid] != start[nid]
    ]
    assert moved, "pedestrian run should displace at least one mobile node"


def test_fraction_mobile_limits_roster():
    full = _mobile_network(mobility=MobilityConfig(fraction_mobile=1.0))
    partial = _mobile_network(mobility=MobilityConfig(fraction_mobile=0.3))
    assert full.mobility is not None and partial.mobility is not None
    assert len(full.mobility.mobile_ids) == len(full.topology.node_ids()) - 1
    assert 0 < len(partial.mobility.mobile_ids) < len(full.mobility.mobile_ids)
    assert set(partial.mobility.mobile_ids) <= set(full.mobility.mobile_ids)


def test_mobile_runs_are_deterministic():
    first = _mobile_network(seed=11)
    second = _mobile_network(seed=11)
    r1, r2 = first.run(), second.run()
    assert r1 == r2
    assert first.mobility is not None and second.mobility is not None
    assert first.mobility.position_updates == second.mobility.position_updates
    assert first.mobility.waypoints_drawn == second.mobility.waypoints_drawn
    assert {
        nid: first.channel.positions[nid] for nid in first.mobility.mobile_ids
    } == {nid: second.channel.positions[nid] for nid in second.mobility.mobile_ids}


def test_fast_vs_exact_equivalent_under_mobility():
    """Distribution equivalence on a mobile workload (DESIGN.md §9/§11).

    Bimodal fading must be off for this comparison: the exact backend
    remembers a pair's Gilbert-state membership forever, while the fast
    backend re-draws it when a pair leaves range and comes back — same
    marginal distribution, different pair identities, so only the
    bimodal-free channel admits a tight aggregate comparison.
    """
    topo = grid(4, 4, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    results = {}
    for backend in ("exact", "fast"):
        config = SimConfig(
            protocol="4b",
            seed=5,
            duration_s=180.0,
            warmup_s=60.0,
            medium=backend,
            mobility="pedestrian",
        )
        net = CollectionNetwork(topo, config, channel_overrides={"bimodal_fraction": 0.0})
        results[backend] = net.run()
    exact, fast = results["exact"], results["fast"]
    assert exact.accepted == fast.accepted  # offered load is backend-blind
    assert exact.unique_delivered > 0 and fast.unique_delivered > 0
    assert abs(exact.delivery_ratio - fast.delivery_ratio) <= 0.15
    assert abs(exact.avg_tree_depth - fast.avg_tree_depth) <= 1.5


@pytest.mark.parametrize("backend", ["exact", "fast"])
def test_mobility_with_reboot_storm_keeps_invariants(backend):
    """Crash/reboot churn layered on motion: the invariant checker must
    stay green on both backends (membership + position changes compose)."""
    net = _mobile_network(
        medium=backend, faults="reboot_storm", check_invariants=True
    )
    result = net.run()
    assert net.invariant_checker is not None
    assert result.accepted > 0
