"""Behavioral tests for the vectorized ``fast`` medium backend.

The fast backend is *distribution-equivalent* to the exact scalar path
(DESIGN.md §9): same candidate sets, same PRR quantization, same fault
semantics, same counters — but batched numpy draws instead of per-pair
``random.Random`` streams.  These tests pin the parts of the contract
that are exactly preserved (candidates, edge behaviors, determinism,
fault overlay) and bound the parts that are statistical (per-link PRR).
"""

import pytest

from repro.link.frame import BROADCAST, Frame, JamFrame
from repro.phy.channel import ChannelModel
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.medium_fast import FastRadioMedium
from repro.sim.rng import RngManager

GRID16 = {nid: (12.0 * (nid % 4), 12.0 * (nid // 4)) for nid in range(16)}


class Listener:
    def __init__(self, node_id, tx_power=0.0):
        self.node_id = node_id
        self.radio = Radio(node_id=node_id, tx_power_dbm=tx_power)
        self.received = []

    def on_frame_received(self, frame, info):
        self.received.append((frame, info))


def build(positions, seed=3, medium_cls=FastRadioMedium, **channel_kwargs):
    engine = Engine()
    rng = RngManager(seed)
    defaults = dict(shadowing_sigma_db=0.0, temporal_sigma_db=0.0)
    defaults.update(channel_kwargs)
    channel = ChannelModel(positions, rng.fork("ch"), **defaults)
    medium = medium_cls(engine, channel, rng)
    nodes = {}
    for nid in positions:
        node = Listener(nid)
        medium.attach(node)
        nodes[nid] = node
    medium.finalize()
    return engine, medium, nodes


def broadcast(medium, engine, sender, length=20):
    medium.start_transmission(sender, Frame(src=sender, dst=BROADCAST, length_bytes=length))
    engine.run()


# ----------------------------------------------------------------------
# Basic delivery behavior matches the exact backend's contract
# ----------------------------------------------------------------------
def test_close_link_delivers():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5.0, 0.0)})
    broadcast(medium, engine, 0)
    assert len(nodes[1].received) == 1
    frame, info = nodes[1].received[0]
    assert info.snr_db > 20.0 and info.white_bit


def test_far_link_never_delivers():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (500.0, 0.0)})
    for _ in range(20):
        broadcast(medium, engine, 0)
    assert nodes[1].received == []


def test_zero_candidate_sender_is_harmless():
    # Node 1 is beyond every budget: sender 0 has an empty candidate batch
    # and node 1 itself transmits into a zero-candidate neighborhood.
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5000.0, 0.0)})
    assert medium.candidate_receivers(1) == []
    broadcast(medium, engine, 1)
    broadcast(medium, engine, 0)
    assert nodes[0].received == [] and nodes[1].received == []
    assert medium.transmissions == 2
    assert medium.deliveries == 0


def test_self_reception_excluded():
    engine, medium, nodes = build(GRID16)
    for sid in nodes:
        assert all(rid != sid for rid, _ in medium.candidate_receivers(sid))
    broadcast(medium, engine, 5)
    assert nodes[5].received == []


def test_jam_frames_never_delivered():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, JamFrame(src=0, dst=BROADCAST, length_bytes=40))
    engine.run()
    assert nodes[1].received == []
    assert medium.deliveries == 0


def test_half_duplex_sender_cannot_receive():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=200))
    medium.start_transmission(1, Frame(src=1, dst=BROADCAST, length_bytes=20))
    engine.run()
    # Node 1 transmitted during node 0's frame: deaf for its duration.
    assert all(f.src != 0 for f, _ in nodes[1].received)


# ----------------------------------------------------------------------
# Candidate parity with the exact backend
# ----------------------------------------------------------------------
def test_candidate_sets_match_exact_backend():
    _, fast, _ = build(GRID16, seed=9, shadowing_sigma_db=3.2,
                       temporal_sigma_db=1.5, bimodal_fraction=0.3)
    _, exact, _ = build(GRID16, seed=9, medium_cls=RadioMedium,
                        shadowing_sigma_db=3.2, temporal_sigma_db=1.5,
                        bimodal_fraction=0.3)
    for sid in GRID16:
        f = fast.candidate_receivers(sid)
        e = exact.candidate_receivers(sid)
        assert [rid for rid, _ in f] == [rid for rid, _ in e]
        for (_, gf), (_, ge) in zip(f, e):
            assert gf == pytest.approx(ge, abs=1e-12)


# ----------------------------------------------------------------------
# Determinism: same seed → same run, different seed → different draws
# ----------------------------------------------------------------------
def _delivery_trace(seed):
    engine, medium, nodes = build(GRID16, seed=seed, shadowing_sigma_db=3.2,
                                  temporal_sigma_db=1.5, bimodal_fraction=0.3)
    for i in range(80):
        broadcast(medium, engine, i % len(nodes), length=36)
    return [
        (nid, f.src, info.rssi_dbm, info.lqi, info.white_bit)
        for nid in sorted(nodes)
        for f, info in nodes[nid].received
    ]


def test_same_seed_identical_trace():
    assert _delivery_trace(7) == _delivery_trace(7)


def test_different_seed_different_trace():
    assert _delivery_trace(7) != _delivery_trace(8)


# ----------------------------------------------------------------------
# Carrier sense (mean-field, spatially culled)
# ----------------------------------------------------------------------
def test_channel_clear_sees_nearby_transmission():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (3.0, 0.0), 2: (400.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=200))
    assert medium.channel_clear(1) is False  # 3 m: well above any CCA threshold
    assert medium.channel_clear(2) is True  # 400 m: carrier unhearable
    engine.run()
    assert medium.channel_clear(1) is True


# ----------------------------------------------------------------------
# Fault overlay: blackouts and dB offsets, identical semantics
# ----------------------------------------------------------------------
def test_fault_blackout_drops_and_counts():
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5.0, 0.0)})
    faults = medium.enable_faults()
    broadcast(medium, engine, 0)
    assert len(nodes[1].received) == 1  # no active fault: delivery intact
    faults.blackout_start(0, 1)
    broadcast(medium, engine, 0)
    broadcast(medium, engine, 0)
    assert len(nodes[1].received) == 1
    assert faults.blackout_drops == 2
    faults.blackout_end(0, 1)
    broadcast(medium, engine, 0)
    assert len(nodes[1].received) == 2


def test_fault_offset_shifts_link_gain():
    # 5 m at 0 dBm is ~37 dB of SNR margin; a −200 dB shift buries it.
    engine, medium, nodes = build({0: (0.0, 0.0), 1: (5.0, 0.0)})
    faults = medium.enable_faults()
    faults.shift(-200.0, 0, 1)
    for _ in range(10):
        broadcast(medium, engine, 0)
    assert nodes[1].received == []
    faults.shift(+200.0, 0, 1)  # cumulative: back to nominal
    broadcast(medium, engine, 0)
    assert len(nodes[1].received) == 1


def test_fault_offset_matches_exact_backend_rssi():
    # The dB offset must land in RxInfo identically on both backends: with
    # all fading off, RSSI is deterministic (mean gain + offset).
    for medium_cls in (RadioMedium, FastRadioMedium):
        engine, medium, nodes = build(
            {0: (0.0, 0.0), 1: (5.0, 0.0)}, medium_cls=medium_cls)
        base_rssi = None
        broadcast(medium, engine, 0)
        base_rssi = nodes[1].received[-1][1].rssi_dbm
        medium.enable_faults().shift(-7.5, 0, 1)
        broadcast(medium, engine, 0)
        shifted = nodes[1].received[-1][1].rssi_dbm
        assert shifted == pytest.approx(base_rssi - 7.5, abs=1e-9)


# ----------------------------------------------------------------------
# Distribution equivalence: per-link PRR within binomial tolerance
# ----------------------------------------------------------------------
def _link_prr(medium_cls, distance_m, n=600, seed=5, **channel_kwargs):
    engine, medium, nodes = build(
        {0: (0.0, 0.0), 1: (distance_m, 0.0)}, seed=seed,
        medium_cls=medium_cls, **channel_kwargs)
    for _ in range(n):
        broadcast(medium, engine, 0)
    return len(nodes[1].received) / n


@pytest.mark.parametrize("distance_m", [27.0, 29.2, 31.5])
def test_transition_region_prr_matches_exact(distance_m):
    # Fading off: both backends sample the same quantized PRR curve, so
    # the delivery fractions differ only by binomial noise.  With n = 600
    # and p in the transition region, 4·σ ≈ 0.08.
    p_exact = _link_prr(RadioMedium, distance_m)
    p_fast = _link_prr(FastRadioMedium, distance_m)
    assert abs(p_exact - p_fast) < 0.08


def test_faded_network_delivery_count_is_close():
    # Full channel model on a 16-node grid: aggregate deliveries from the
    # two backends agree to within a few percent (they are independent
    # samples of the same reception distribution).
    def total(medium_cls):
        engine, medium, nodes = build(
            GRID16, seed=13, medium_cls=medium_cls, shadowing_sigma_db=3.2,
            temporal_sigma_db=1.5, bimodal_fraction=0.3)
        for i in range(400):
            broadcast(medium, engine, i % len(nodes), length=36)
        return medium.deliveries

    exact_total = total(RadioMedium)
    fast_total = total(FastRadioMedium)
    assert exact_total > 0
    assert abs(fast_total - exact_total) / exact_total < 0.10
