"""Unit tests for deterministic RNG streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngManager, derive_seed


def test_same_key_same_stream_object():
    mgr = RngManager(1)
    assert mgr.stream("a", 1) is mgr.stream("a", 1)


def test_streams_are_deterministic_across_managers():
    a = RngManager(7).stream("mac", 3)
    b = RngManager(7).stream("mac", 3)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_keys_give_different_sequences():
    mgr = RngManager(7)
    a = [mgr.stream("mac", 1).random() for _ in range(5)]
    b = [mgr.stream("mac", 2).random() for _ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    a = RngManager(1).stream("x").random()
    b = RngManager(2).stream("x").random()
    assert a != b


def test_consuming_one_stream_does_not_affect_another():
    mgr1 = RngManager(7)
    mgr1.stream("noise").random()  # consume
    value1 = mgr1.stream("mac", 1).random()
    mgr2 = RngManager(7)
    value2 = mgr2.stream("mac", 1).random()
    assert value1 == value2


def test_fork_is_deterministic():
    a = RngManager(7).fork("sub").stream("x").random()
    b = RngManager(7).fork("sub").stream("x").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RngManager(7)
    fork = parent.fork("sub")
    assert parent.stream("x").random() != fork.stream("x").random()


def test_derive_seed_stable_value():
    # Pin the value: seeds must be stable across processes and versions
    # (simulations must be replayable from a recorded master seed).
    assert derive_seed(42, "mac", 3) == derive_seed(42, "mac", 3)
    assert derive_seed(42, "mac", 3) != derive_seed(42, "mac", 4)


def test_derive_seed_handles_huge_and_negative_ints():
    big = 2**63 + 17
    assert isinstance(derive_seed(big, "x"), int)
    assert isinstance(derive_seed(-5, "x", -3), int)


def test_string_int_key_parts_distinct():
    # "1" (str) and 1 (int) must not collide.
    assert derive_seed(0, "1") != derive_seed(0, 1)


@settings(max_examples=100, deadline=None)
@given(st.integers(), st.text(max_size=20), st.integers())
def test_property_derive_seed_in_64bit_range(seed, name, part):
    value = derive_seed(seed, name, part)
    assert 0 <= value < 2**64


def test_derive_seed_golden_values():
    """Exact pinned outputs: recorded master seeds must replay forever.

    If this test fails, the seed derivation changed and every recorded
    simulation (and every cached result) is silently invalidated — bump
    ``repro.runner.hashing.CACHE_SCHEMA_VERSION`` and say so in the
    changelog rather than letting old artifacts lie.
    """
    assert derive_seed(0) == 1786884285633530058
    assert derive_seed(42, "node", 3) == 3025732695171680509
    assert derive_seed(42, "node", 3, "phy") == 3960814292293960541
    assert derive_seed(1, "link", 0, 1) == 391915258420543110
    assert derive_seed(123456789, "interferer") == 18341706212044594796
