"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_schedule_and_run_single_event(engine):
    fired = []
    engine.schedule(1.5, fired.append, "a")
    engine.run()
    assert fired == ["a"]
    assert engine.now == 1.5


def test_events_fire_in_time_order(engine):
    order = []
    engine.schedule(3.0, order.append, 3)
    engine.schedule(1.0, order.append, 1)
    engine.schedule(2.0, order.append, 2)
    engine.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_fifo(engine):
    order = []
    for i in range(10):
        engine.schedule(1.0, order.append, i)
    engine.run()
    assert order == list(range(10))


def test_negative_delay_rejected(engine):
    with pytest.raises(ValueError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(engine):
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    handle.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent(engine):
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run()


def test_run_until_stops_at_boundary(engine):
    fired = []
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(5.0, fired.append, "late")
    engine.run_until(2.0)
    assert fired == ["early"]
    assert engine.now == 2.0
    engine.run_until(10.0)
    assert fired == ["early", "late"]


def test_run_until_includes_boundary_events(engine):
    fired = []
    engine.schedule(2.0, fired.append, "at")
    engine.run_until(2.0)
    assert fired == ["at"]


def test_run_until_advances_clock_without_events(engine):
    engine.run_until(42.0)
    assert engine.now == 42.0


def test_events_scheduled_during_execution(engine):
    order = []

    def first():
        order.append("first")
        engine.schedule(1.0, lambda: order.append("nested"))

    engine.schedule(1.0, first)
    engine.schedule(5.0, lambda: order.append("last"))
    engine.run()
    assert order == ["first", "nested", "last"]


def test_run_max_events(engine):
    for i in range(10):
        engine.schedule(float(i + 1), lambda: None)
    count = engine.run(max_events=3)
    assert count == 3
    assert engine.pending == 7


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False


def test_events_run_counter(engine):
    for i in range(5):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_run == 5


def test_zero_delay_event_fires(engine):
    fired = []
    engine.schedule(0.0, fired.append, 1)
    engine.run()
    assert fired == [1]


def test_callback_args_passed(engine):
    got = []
    engine.schedule(1.0, lambda a, b: got.append((a, b)), 1, 2)
    engine.run()
    assert got == [(1, 2)]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_property_arbitrary_delays_fire_in_order(delays):
    engine = Engine()
    fired = []
    for d in delays:
        engine.schedule(d, lambda d=d: fired.append(d))
    engine.run()
    assert fired == sorted(fired, key=lambda x: x)
    assert len(fired) == len(delays)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_canceled_events_never_fire(schedule):
    engine = Engine()
    fired = []
    for i, (delay, cancel) in enumerate(schedule):
        handle = engine.schedule(delay, fired.append, i)
        if cancel:
            handle.cancel()
    engine.run()
    expected = [i for i, (_, cancel) in enumerate(schedule) if not cancel]
    assert sorted(fired) == expected


# ----------------------------------------------------------------------
# Canceled-event bookkeeping (heap compaction)
# ----------------------------------------------------------------------
def test_pending_counts_live_events_only(engine):
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert engine.pending == 10
    for h in handles[:4]:
        h.cancel()
    assert engine.pending == 6


def test_mass_cancel_compacts_queue(engine):
    """Canceling most of a large queue must shrink it immediately, not
    leave dead entries to be popped one by one (the old leak)."""
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(200)]
    for h in handles[:150]:
        h.cancel()
    # Compaction keeps dead entries below ~half the queue (150 canceled
    # but never 150 retained), and pending tracks live events exactly.
    assert len(engine._queue) <= 100
    assert engine.pending == 50
    # Survivors still fire, in order.
    fired = []
    for i, h in enumerate(handles[150:]):
        h.fn = fired.append
        h.args = (i,)
    engine.run()
    assert fired == list(range(50))


def test_small_queue_not_compacted(engine):
    """Below the size floor we tolerate dead entries (compaction is O(n))."""
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles:
        h.cancel()
    assert len(engine._queue) == 10  # dead, but below COMPACT_MIN_QUEUE
    assert engine.pending == 0
    engine.run()
    assert engine.events_run == 0


def test_cancel_after_fire_is_harmless(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.schedule(2.0, lambda: None)
    engine.run()
    handle.cancel()  # late cancel of an executed event
    assert fired == ["x"]
    assert engine.pending == 0
    # Counter must not go stale/negative and later events still run.
    engine.schedule(1.0, fired.append, "y")
    engine.run()
    assert fired == ["x", "y"]


def test_interleaved_cancel_and_run(engine):
    fired = []
    keep = []
    for i in range(300):
        h = engine.schedule(float(i + 1), fired.append, i)
        if i % 3 == 0:
            keep.append(i)
        else:
            h.cancel()
    engine.run()
    assert fired == keep
    assert engine.pending == 0


def test_compaction_counter_and_profiler_surface(engine):
    profiler = engine.enable_profiling()
    assert engine.compactions == 0
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(200)]
    for h in handles[:150]:
        h.cancel()
    assert engine.compactions >= 1
    assert profiler.compactions == engine.compactions
    assert profiler.kernel_counts["engine.compact"] == engine.compactions
    summary = profiler.summary()
    assert summary["compactions"] == engine.compactions
