"""Unit tests for the SINR-based radio medium."""

import random

import pytest

from repro.link.frame import BROADCAST, Frame, JamFrame
from repro.phy.channel import ChannelModel, PathLossModel
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.rng import RngManager


class Listener:
    """Minimal medium participant that records receptions."""

    def __init__(self, node_id: int, tx_power: float = 0.0):
        self.node_id = node_id
        self.radio = Radio(node_id=node_id, tx_power_dbm=tx_power)
        self.received = []

    def on_frame_received(self, frame, info):
        self.received.append((frame, info))


def build_medium(positions, seed=3, **channel_kwargs):
    engine = Engine()
    rng = RngManager(seed)
    defaults = dict(shadowing_sigma_db=0.0, temporal_sigma_db=0.0)
    defaults.update(channel_kwargs)
    channel = ChannelModel(positions, rng.fork("ch"), **defaults)
    medium = RadioMedium(engine, channel, rng)
    nodes = {}
    for nid in positions:
        node = Listener(nid)
        medium.attach(node)
        nodes[nid] = node
    medium.finalize()
    return engine, medium, nodes


def test_close_link_delivers():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert len(nodes[1].received) == 1


def test_far_link_never_delivers():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (500.0, 0.0)})
    for _ in range(20):
        medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
    assert nodes[1].received == []


def test_candidate_list_prunes_unreachable():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0), 2: (800.0, 0.0)})
    candidates = {rid for rid, _ in medium.candidate_receivers(0)}
    assert 1 in candidates
    assert 2 not in candidates


def test_rx_info_reports_high_snr_close_in():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (2.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    _, info = nodes[1].received[0]
    # 2 m at 0 dBm: RSSI ≈ −64 dBm, SNR ≈ 34 dB.
    assert info.snr_db > 25.0
    assert info.white_bit


def test_intermediate_distance_gives_partial_prr():
    # Calibrate a distance whose SNR sits in the transition region (~ -1 dB):
    # 0 dBm − 55 − 30·log10(d) + 98 = −1  →  d ≈ 29.2 m.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (29.2, 0.0)})
    n = 300
    for _ in range(n):
        medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
    ratio = len(nodes[1].received) / n
    assert 0.1 < ratio < 0.95


def test_jam_frames_never_delivered():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (2.0, 0.0)})
    medium.start_transmission(0, JamFrame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert nodes[1].received == []


def test_overlapping_transmission_destroys_weaker_frame():
    # Receiver at 5 m from sender 0 but 1 m from sender 1: the frame from
    # sender 0 sees SINR ≈ −21 dB during the overlap and dies.  (DSSS
    # processing gain means an *equal-power* overlap, SINR ≈ 0 dB, is
    # survivable in this model — only the weaker side of an asymmetric
    # overlap is destroyed.)
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (6.0, 0.0), 2: (5.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=40))
    medium.start_transmission(1, Frame(src=1, dst=BROADCAST, length_bytes=40))
    engine.run()
    senders = {frame.src for frame, _ in nodes[2].received}
    assert 0 not in senders
    assert medium.collisions >= 1


def test_capture_effect_stronger_frame_survives():
    # Sender 0 is much closer to the receiver than sender 1: its frame
    # captures the channel despite the overlap.
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (28.0, 0.0), 2: (1.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=40))
    medium.start_transmission(1, Frame(src=1, dst=BROADCAST, length_bytes=40))
    engine.run()
    senders = {frame.src for frame, _ in nodes[2].received}
    assert senders == {0}


def test_half_duplex_sender_cannot_receive():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=40))
    medium.start_transmission(1, Frame(src=1, dst=BROADCAST, length_bytes=40))
    engine.run()
    # Node 0 was transmitting during node 1's frame: nothing received.
    assert nodes[0].received == []


def test_channel_clear_sees_active_transmission():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    assert medium.channel_clear(1)
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=100))
    assert not medium.channel_clear(1)
    engine.run()
    assert medium.channel_clear(1)


def test_channel_clear_ignores_distant_transmitters():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (400.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=100))
    # RSSI at 400 m ≈ −133 dBm, far below the −77 dBm CCA threshold.
    assert medium.channel_clear(1)


def test_is_transmitting():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    assert not medium.is_transmitting(0)
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=40))
    assert medium.is_transmitting(0)
    engine.run()
    assert not medium.is_transmitting(0)


def test_duplicate_attach_rejected():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    with pytest.raises(ValueError):
        medium.attach(Listener(0))


def test_transmission_counters():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert medium.transmissions == 1
    assert medium.deliveries == 1


def test_airtime_scales_with_length():
    engine, medium, nodes = build_medium({0: (0.0, 0.0), 1: (5.0, 0.0)})
    short = medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=10))
    engine.run()
    long = medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=100))
    assert long > short


def test_interference_only_participant_not_a_receiver():
    engine = Engine()
    rng = RngManager(3)
    channel = ChannelModel(
        {0: (0.0, 0.0), 1: (5.0, 0.0)}, rng.fork("ch"), shadowing_sigma_db=0.0, temporal_sigma_db=0.0
    )
    medium = RadioMedium(engine, channel, rng)
    sender = Listener(0)
    jammer = Listener(1)
    medium.attach(sender)
    medium.attach(jammer, receiver=False)
    medium.finalize()
    medium.start_transmission(0, Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert jammer.received == []
