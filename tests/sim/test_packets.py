"""Unit tests for cross-layer packet metadata."""

import pytest

from repro.sim.packets import RxInfo, TxResult


def test_rx_info_fields():
    info = RxInfo(timestamp=1.0, rssi_dbm=-70.0, snr_db=15.0, lqi=106, white_bit=True)
    assert info.lqi == 106
    assert info.white_bit


def test_rx_info_is_frozen():
    info = RxInfo(timestamp=1.0, rssi_dbm=-70.0, snr_db=15.0, lqi=106, white_bit=True)
    with pytest.raises(AttributeError):
        info.lqi = 50  # type: ignore[misc]


@pytest.mark.parametrize("lqi", [-1, 256, 1000])
def test_rx_info_rejects_out_of_range_lqi(lqi):
    with pytest.raises(ValueError):
        RxInfo(timestamp=0.0, rssi_dbm=-70.0, snr_db=10.0, lqi=lqi, white_bit=False)


@pytest.mark.parametrize("lqi", [0, 255])
def test_rx_info_accepts_boundary_lqi(lqi):
    RxInfo(timestamp=0.0, rssi_dbm=-70.0, snr_db=10.0, lqi=lqi, white_bit=False)


def test_tx_result_ack_bit_semantics():
    result = TxResult(timestamp=0.0, dest=3, sent=True, ack_bit=False)
    assert result.sent and not result.ack_bit


def test_tx_result_defaults():
    result = TxResult(timestamp=0.0, dest=3, sent=False, ack_bit=False)
    assert result.backoffs == 0
