"""SpatialGrid: radius queries match brute force, deterministically."""

import math
from random import Random

import pytest

from repro.sim.spatial import SpatialGrid


def brute_force(positions, x, y, radius, exclude=None):
    out = []
    for nid, (px, py) in positions.items():
        if nid == exclude:
            continue
        if (px - x) ** 2 + (py - y) ** 2 <= radius * radius:
            out.append(nid)
    return sorted(out)


def random_positions(n, seed):
    rng = Random(seed)
    return {nid: (rng.uniform(0, 300), rng.uniform(0, 300)) for nid in range(n)}


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("radius", [10.0, 45.0, 400.0])
def test_neighbors_match_brute_force(seed, radius):
    positions = random_positions(120, seed)
    index = SpatialGrid(positions, radius)
    for nid in positions:
        x, y = positions[nid]
        assert index.neighbors(nid) == brute_force(positions, x, y, radius, exclude=nid)


def test_neighbors_of_point_includes_exact_boundary():
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (10.0001, 0.0)}
    index = SpatialGrid(positions, 10.0)
    assert index.neighbors_of_point(0.0, 0.0, exclude=0) == [1]


def test_neighbors_sorted_and_exclude_self():
    positions = {5: (0.0, 0.0), 3: (1.0, 0.0), 9: (0.0, 1.0), 1: (1.0, 1.0)}
    index = SpatialGrid(positions, 5.0)
    assert index.neighbors(5) == [1, 3, 9]
    assert index.neighbors(5, exclude_self=False) == [1, 3, 5, 9]


def test_pairs_complete_and_ordered():
    positions = random_positions(40, 7)
    radius = 60.0
    index = SpatialGrid(positions, radius)
    pairs = list(index.pairs())
    assert pairs == sorted(pairs)
    expected = {
        (a, b)
        for a in positions
        for b in positions
        if a < b
        and math.dist(positions[a], positions[b]) <= radius
    }
    assert set(pairs) == expected


def test_negative_coordinates():
    positions = {0: (-5.0, -5.0), 1: (-6.0, -5.5), 2: (50.0, 50.0)}
    index = SpatialGrid(positions, 3.0)
    assert index.neighbors(0) == [1]


def test_zero_radius_rejected():
    with pytest.raises(ValueError):
        SpatialGrid({0: (0.0, 0.0)}, 0.0)


def test_len():
    assert len(SpatialGrid(random_positions(17, 1), 10.0)) == 17
