"""SpatialGrid: radius queries match brute force, deterministically."""

import math
from random import Random

import pytest

from repro.sim.spatial import SpatialGrid


def brute_force(positions, x, y, radius, exclude=None):
    out = []
    for nid, (px, py) in positions.items():
        if nid == exclude:
            continue
        if (px - x) ** 2 + (py - y) ** 2 <= radius * radius:
            out.append(nid)
    return sorted(out)


def random_positions(n, seed):
    rng = Random(seed)
    return {nid: (rng.uniform(0, 300), rng.uniform(0, 300)) for nid in range(n)}


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("radius", [10.0, 45.0, 400.0])
def test_neighbors_match_brute_force(seed, radius):
    positions = random_positions(120, seed)
    index = SpatialGrid(positions, radius)
    for nid in positions:
        x, y = positions[nid]
        assert index.neighbors(nid) == brute_force(positions, x, y, radius, exclude=nid)


def test_neighbors_of_point_includes_exact_boundary():
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (10.0001, 0.0)}
    index = SpatialGrid(positions, 10.0)
    assert index.neighbors_of_point(0.0, 0.0, exclude=0) == [1]


def test_neighbors_sorted_and_exclude_self():
    positions = {5: (0.0, 0.0), 3: (1.0, 0.0), 9: (0.0, 1.0), 1: (1.0, 1.0)}
    index = SpatialGrid(positions, 5.0)
    assert index.neighbors(5) == [1, 3, 9]
    assert index.neighbors(5, exclude_self=False) == [1, 3, 5, 9]


def test_pairs_complete_and_ordered():
    positions = random_positions(40, 7)
    radius = 60.0
    index = SpatialGrid(positions, radius)
    pairs = list(index.pairs())
    assert pairs == sorted(pairs)
    expected = {
        (a, b)
        for a in positions
        for b in positions
        if a < b
        and math.dist(positions[a], positions[b]) <= radius
    }
    assert set(pairs) == expected


def test_negative_coordinates():
    positions = {0: (-5.0, -5.0), 1: (-6.0, -5.5), 2: (50.0, 50.0)}
    index = SpatialGrid(positions, 3.0)
    assert index.neighbors(0) == [1]


def test_zero_radius_rejected():
    with pytest.raises(ValueError):
        SpatialGrid({0: (0.0, 0.0)}, 0.0)


def test_len():
    assert len(SpatialGrid(random_positions(17, 1), 10.0)) == 17


# ----------------------------------------------------------------------
# Incremental maintenance (add/remove/move)
# ----------------------------------------------------------------------
def test_add_remove_roundtrip_matches_fresh_build():
    positions = random_positions(60, 11)
    index = SpatialGrid(positions, 45.0)
    index.add(999, (150.0, 150.0))
    extended = {**positions, 999: (150.0, 150.0)}
    fresh = SpatialGrid(extended, 45.0)
    for nid in extended:
        assert index.neighbors(nid) == fresh.neighbors(nid)
    index.remove(999)
    back = SpatialGrid(positions, 45.0)
    for nid in positions:
        assert index.neighbors(nid) == back.neighbors(nid)


def test_add_duplicate_and_remove_unknown_raise():
    index = SpatialGrid({0: (0.0, 0.0)}, 5.0)
    with pytest.raises(ValueError):
        index.add(0, (1.0, 1.0))
    with pytest.raises(KeyError):
        index.remove(42)


def test_moved_grid_equals_fresh_build():
    """A long random walk of move() calls must leave no history behind:
    every query answers exactly like a grid built from the final layout."""
    positions = random_positions(80, 13)
    index = SpatialGrid(positions, 45.0)
    walk = Random(99)
    current = dict(positions)
    for _ in range(500):
        nid = walk.randrange(80)
        x = walk.uniform(-50, 350)  # crosses cell borders and goes negative
        y = walk.uniform(-50, 350)
        index.move(nid, x, y)
        current[nid] = (x, y)
    fresh = SpatialGrid(current, 45.0)
    for nid in current:
        assert index.position(nid) == current[nid]
        assert index.neighbors(nid) == fresh.neighbors(nid)


def test_duplicate_positions_coexist():
    index = SpatialGrid({0: (7.0, 7.0), 1: (7.0, 7.0), 2: (7.0, 7.0)}, 1.0)
    assert index.neighbors(0) == [1, 2]
    index.move(1, 7.0, 7.0)  # no-op move onto its own spot
    assert index.neighbors(0) == [1, 2]
    index.remove(1)
    assert index.neighbors(0) == [2]


def test_move_onto_cell_boundary():
    index = SpatialGrid({0: (4.0, 4.0), 1: (12.0, 4.0)}, 10.0)
    index.move(0, 10.0, 10.0)  # exactly on a cell corner (10/10 = cell 1)
    assert index.position(0) == (10.0, 10.0)
    assert index.neighbors(1) == [0]
    assert index.neighbors_of_point(10.0, 10.0, exclude=0) == [1]


# ----------------------------------------------------------------------
# Two-point queries (mobility fast path)
# ----------------------------------------------------------------------
def test_same_cell_detects_boundary_crossings():
    index = SpatialGrid({0: (5.0, 5.0)}, 10.0)
    assert index.same_cell(0, 9.9, 9.9)
    assert not index.same_cell(0, 10.0, 5.0)  # floor(10/10) = next cell
    assert not index.same_cell(0, 5.0, -0.1)


def test_neighbors_two_points_matches_two_single_queries():
    positions = random_positions(150, 17)
    index = SpatialGrid(positions, 45.0)
    probe = Random(5)
    checked = 0
    while checked < 25:
        x0 = probe.uniform(0, 300)
        y0 = probe.uniform(0, 300)
        x1 = x0 + probe.uniform(-3, 3)
        y1 = y0 + probe.uniform(-3, 3)
        if index._cell_key(x0, y0) != index._cell_key(x1, y1):
            continue
        checked += 1
        out0, out1 = index.neighbors_two_points(x0, y0, x1, y1, exclude=3)
        assert out0 == index.neighbors_of_point(x0, y0, exclude=3)
        assert out1 == index.neighbors_of_point(x1, y1, exclude=3)


def test_neighbors_two_points_rejects_cross_cell_pairs():
    index = SpatialGrid({0: (0.0, 0.0)}, 10.0)
    with pytest.raises(ValueError):
        index.neighbors_two_points(5.0, 5.0, 15.0, 5.0)
