"""Unit and integration tests for the tracing subsystem."""

import json

import pytest

from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.sim.trace import (
    NETWORK_NODE,
    JsonlSink,
    Tracer,
    TraceRecord,
    instrument_network,
    true_link_etx,
)
from repro.topology.generators import grid
from repro.workloads.collection import WorkloadConfig


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
def test_emit_and_filter():
    tracer = Tracer()
    tracer.emit(1.0, "tx", 3, "to 1 ack=1")
    tracer.emit(2.0, "tx", 4, "to 1 ack=0")
    tracer.emit(3.0, "boot", 3, "")
    assert tracer.count(kind="tx") == 2
    assert tracer.count(node=3) == 2
    assert tracer.count(kind="tx", node=3) == 1
    assert tracer.count(t0=1.5) == 2


def test_kind_whitelist():
    tracer = Tracer(kinds={"boot"})
    tracer.emit(1.0, "tx", 3, "")
    tracer.emit(2.0, "boot", 3, "")
    assert tracer.count() == 1


def test_capacity_bound():
    tracer = Tracer(max_records=2)
    for i in range(5):
        tracer.emit(float(i), "tx", 0, "")
    assert len(tracer.records) == 2
    assert tracer.dropped == 3
    assert "dropped" in tracer.render()


def test_filtered_and_dropped_counted_separately():
    tracer = Tracer(max_records=2, kinds={"tx"})
    for i in range(5):
        tracer.emit(float(i), "tx", 0)
    for i in range(4):
        tracer.emit(float(i), "boot", 0)
    assert tracer.dropped == 3  # capacity losses only
    assert tracer.filtered == 4  # whitelist exclusions only
    out = tracer.render()
    assert "dropped" in out and "excluded" in out


def test_tail_mode_keeps_most_recent():
    tracer = Tracer(max_records=3, keep="tail")
    for i in range(10):
        tracer.emit(float(i), "tx", 0, seq=i)
    assert [r.get("seq") for r in tracer.records] == [7, 8, 9]
    assert tracer.dropped == 7


def test_keep_validation():
    with pytest.raises(ValueError):
        Tracer(keep="middle")


def test_typed_fields_and_reserved_names():
    tracer = Tracer()
    tracer.emit(1.0, "tx", 3, dest=1, ack=1, backoffs=2)
    record = tracer.records[0]
    assert record.get("dest") == 1
    assert record.get("ack") == 1
    assert "dest=1" in record.detail
    with pytest.raises(ValueError):
        tracer.emit(1.0, "tx", 3, t=5.0)  # 't' is a reserved envelope key


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer(max_records=3)
    tracer.emit(1.0, "tx", 3, dest=1, ack=0)
    tracer.emit(2.0, "rx", 4, src=3, snr=7.5, white=1)
    for i in range(5):
        tracer.emit(3.0, "boot", i)
    path = tmp_path / "trace.jsonl"
    assert tracer.to_jsonl(path) == 3
    back = Tracer.from_jsonl(path)
    assert [r.to_dict() for r in back.records] == [r.to_dict() for r in tracer.records]
    assert back.dropped == tracer.dropped == 4
    # The file is valid JSONL with a _meta footer.
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[-1]["kind"] == "_meta"
    assert lines[-1]["dropped"] == 4


def test_streaming_sink_keeps_nothing_in_memory(tmp_path):
    path = tmp_path / "stream.jsonl"
    sink = JsonlSink(path)
    tracer = Tracer(max_records=0, sink=sink)
    for i in range(10):
        tracer.emit(float(i), "tx", 0, seq=i)
    tracer.close()
    assert len(tracer.records) == 0
    assert tracer.dropped == 0
    back = Tracer.from_jsonl(path)
    assert len(back.records) == 10
    assert [r.get("seq") for r in back.records] == list(range(10))


def test_sink_rotation(tmp_path):
    path = tmp_path / "rot.jsonl"
    sink = JsonlSink(path, max_bytes=200, max_files=2)
    tracer = Tracer(max_records=0, sink=sink)
    for i in range(50):
        tracer.emit(float(i), "tx", 0, seq=i)
    tracer.close()
    assert sink.rotations > 0
    segments = [p for p in (path.with_name("rot.jsonl.2"), path.with_name("rot.jsonl.1"), path)
                if p.exists()]
    assert len(segments) >= 2
    back = Tracer.from_jsonl(*segments)
    seqs = [r.get("seq") for r in back.records]
    assert seqs == sorted(seqs)
    assert seqs[-1] == 49  # newest survives; oldest segments may be deleted


def test_render_format():
    tracer = Tracer()
    tracer.emit(1.5, "parent-change", 7, "None -> 0")
    out = tracer.render()
    assert "node 7" in out
    assert "parent-change" in out
    assert "None -> 0" in out


def test_render_empty():
    assert Tracer().render() == "(no records)"


# ---------------------------------------------------------------------------
# Network instrumentation
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b",
        seed=2,
        duration_s=240.0,
        warmup_s=80.0,
        workload=WorkloadConfig(send_interval_s=5.0),
    )
    net = CollectionNetwork(topo, config)
    tracer = instrument_network(net)
    result = net.run()
    return net, tracer, result


def test_instrumentation_captures_boots(traced_run):
    net, tracer, _ = traced_run
    assert tracer.count(kind="boot") == len(net.nodes)


def test_instrumentation_captures_parent_changes(traced_run):
    _, tracer, _ = traced_run
    changes = tracer.filter(kind="parent-change")
    assert changes, "at least the initial parent acquisitions must appear"
    for r in changes:
        assert isinstance(r.get("old"), int) and isinstance(r.get("new"), int)
        assert r.get("new") != r.get("old")


def test_instrumentation_captures_deliveries(traced_run):
    _, tracer, result = traced_run
    assert tracer.count(kind="deliver") == result.unique_delivered + result.duplicates_at_root


def test_instrumentation_tx_matches_mac_counters(traced_run):
    net, tracer, _ = traced_run
    mac_total = sum(n.mac.stats.tx_unicast for n in net.nodes.values())
    assert tracer.count(kind="tx") == mac_total


def test_instrumentation_captures_phy_receptions(traced_run):
    _, tracer, _ = traced_run
    rx = tracer.filter(kind="rx")
    assert rx
    for r in rx[:50]:
        assert isinstance(r.get("src"), int)
        assert r.get("white") in (0, 1)
        assert isinstance(r.get("snr"), float)


def test_stats_records_match_in_process_counters(traced_run):
    """The acceptance criterion: end-of-run `stats` records reproduce the
    live stats dataclasses exactly, four-bit counters included."""
    net, tracer, _ = traced_run
    est_recs = [r for r in tracer.filter(kind="stats") if r.get("layer") == "est.estimator"]
    assert len(est_recs) == len(net.nodes)
    import dataclasses
    from repro.core.estimator import EstimatorStats

    for field in dataclasses.fields(EstimatorStats):
        trace_total = sum(r.get(field.name, 0) for r in est_recs)
        live_total = sum(
            getattr(n.estimator.stats, field.name)
            for n in net.nodes.values()
            if n.estimator is not None
        )
        assert trace_total == live_total, field.name
    mac_recs = [r for r in tracer.filter(kind="stats") if r.get("layer") == "link.mac"]
    assert sum(r.get("tx_unicast", 0) for r in mac_recs) == sum(
        n.mac.stats.tx_unicast for n in net.nodes.values()
    )
    medium_recs = [
        r for r in tracer.filter(kind="stats", node=NETWORK_NODE)
        if r.get("layer") == "phy.medium"
    ]
    assert len(medium_recs) == 1
    assert medium_recs[0].get("transmissions") == net.medium.transmissions


def test_stats_records_survive_jsonl_round_trip(traced_run, tmp_path):
    net, tracer, _ = traced_run
    path = tmp_path / "run.jsonl"
    tracer.to_jsonl(path)
    back = Tracer.from_jsonl(path)
    orig = [r for r in tracer.filter(kind="stats") if r.get("layer") == "est.estimator"]
    loaded = [r for r in back.filter(kind="stats") if r.get("layer") == "est.estimator"]
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in orig]


def test_true_link_etx_ground_truth(traced_run):
    net, _, _ = traced_run
    nodes = sorted(net.nodes)
    etx = true_link_etx(net, nodes[1], nodes[0])
    assert etx >= 1.0


def test_etx_sampling_emits_records():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b", seed=2, duration_s=240.0, warmup_s=80.0,
        workload=WorkloadConfig(send_interval_s=5.0),
    )
    net = CollectionNetwork(topo, config)
    tracer = instrument_network(net, etx_sample_s=60.0)
    net.run()
    samples = tracer.filter(kind="etx")
    assert samples
    for r in samples:
        assert isinstance(r.get("neighbor"), int)
        est = r.get("est")
        assert est is None or est >= 1.0


def test_instrumentation_does_not_change_results():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)

    def run(traced: bool):
        config = SimConfig(
            protocol="4b", seed=2, duration_s=240.0, warmup_s=80.0,
            workload=WorkloadConfig(send_interval_s=5.0),
        )
        net = CollectionNetwork(topo, config)
        if traced:
            instrument_network(net)
        return net.run()

    plain = run(False)
    traced = run(True)
    assert plain.cost == traced.cost
    assert plain.unique_delivered == traced.unique_delivered
