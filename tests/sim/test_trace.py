"""Unit and integration tests for the tracing subsystem."""

import pytest

from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.sim.trace import Tracer, TraceRecord, instrument_network
from repro.topology.generators import grid
from repro.workloads.collection import WorkloadConfig


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
def test_emit_and_filter():
    tracer = Tracer()
    tracer.emit(1.0, "tx", 3, "to 1 ack=1")
    tracer.emit(2.0, "tx", 4, "to 1 ack=0")
    tracer.emit(3.0, "boot", 3, "")
    assert tracer.count(kind="tx") == 2
    assert tracer.count(node=3) == 2
    assert tracer.count(kind="tx", node=3) == 1
    assert tracer.count(t0=1.5) == 2


def test_kind_whitelist():
    tracer = Tracer(kinds={"boot"})
    tracer.emit(1.0, "tx", 3, "")
    tracer.emit(2.0, "boot", 3, "")
    assert tracer.count() == 1


def test_capacity_bound():
    tracer = Tracer(max_records=2)
    for i in range(5):
        tracer.emit(float(i), "tx", 0, "")
    assert len(tracer.records) == 2
    assert tracer.dropped == 3
    assert "dropped" in tracer.render()


def test_render_format():
    tracer = Tracer()
    tracer.emit(1.5, "parent-change", 7, "None -> 0")
    out = tracer.render()
    assert "node 7" in out
    assert "parent-change" in out
    assert "None -> 0" in out


def test_render_empty():
    assert Tracer().render() == "(no records)"


# ---------------------------------------------------------------------------
# Network instrumentation
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol="4b",
        seed=2,
        duration_s=240.0,
        warmup_s=80.0,
        workload=WorkloadConfig(send_interval_s=5.0),
    )
    net = CollectionNetwork(topo, config)
    tracer = instrument_network(net)
    result = net.run()
    return net, tracer, result


def test_instrumentation_captures_boots(traced_run):
    net, tracer, _ = traced_run
    assert tracer.count(kind="boot") == len(net.nodes)


def test_instrumentation_captures_parent_changes(traced_run):
    _, tracer, _ = traced_run
    changes = tracer.filter(kind="parent-change")
    assert changes, "at least the initial parent acquisitions must appear"
    assert all("->" in r.detail for r in changes)


def test_instrumentation_captures_deliveries(traced_run):
    _, tracer, result = traced_run
    assert tracer.count(kind="deliver") == result.unique_delivered + result.duplicates_at_root


def test_instrumentation_tx_matches_mac_counters(traced_run):
    net, tracer, _ = traced_run
    mac_total = sum(n.mac.stats.tx_unicast for n in net.nodes.values())
    assert tracer.count(kind="tx") == mac_total


def test_instrumentation_does_not_change_results():
    topo = grid(3, 3, spacing_m=6.0, rng=RngManager(5).stream("t"), jitter_m=0.5)

    def run(traced: bool):
        config = SimConfig(
            protocol="4b", seed=2, duration_s=240.0, warmup_s=80.0,
            workload=WorkloadConfig(send_interval_s=5.0),
        )
        net = CollectionNetwork(topo, config)
        if traced:
            instrument_network(net)
        return net.run()

    plain = run(False)
    traced = run(True)
    assert plain.cost == traced.cost
    assert plain.unique_delivered == traced.unique_delivered
