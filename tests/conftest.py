"""Shared fixtures and tiny fakes used across the suite."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

import pytest

from repro.link.frame import BROADCAST, Frame
from repro.phy.radio import CC2420, Radio
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng_mgr() -> RngManager:
    return RngManager(12345)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(999)


def make_rx_info(
    timestamp: float = 0.0,
    snr_db: float = 10.0,
    lqi: int = 106,
    white_bit: bool = True,
    rssi_dbm: float = -70.0,
) -> RxInfo:
    return RxInfo(
        timestamp=timestamp,
        rssi_dbm=rssi_dbm,
        snr_db=snr_db,
        lqi=lqi,
        white_bit=white_bit,
    )


class PerfectMedium:
    """A loss-free, instantaneous-ish medium for MAC/estimator unit tests.

    Frames are delivered to every *other* attached participant after their
    airtime; per-link delivery can be overridden with ``drop(src, dst)``.
    """

    def __init__(self, engine: Engine, rx_info_factory: Optional[Callable[[], RxInfo]] = None):
        self.engine = engine
        self._participants = {}
        self._drops = set()
        self._busy_nodes = set()
        self.rx_info_factory = rx_info_factory or (lambda: make_rx_info())
        self.log: List[Tuple[float, int, Frame]] = []

    def attach(self, participant, receiver: bool = True) -> None:
        self._participants[participant.node_id] = participant

    def finalize(self) -> None:
        pass

    def drop(self, src: int, dst: int) -> None:
        self._drops.add((src, dst))

    def undrop(self, src: int, dst: int) -> None:
        self._drops.discard((src, dst))

    def set_busy(self, node_id: int, busy: bool = True) -> None:
        if busy:
            self._busy_nodes.add(node_id)
        else:
            self._busy_nodes.discard(node_id)

    def channel_clear(self, node_id: int) -> bool:
        return node_id not in self._busy_nodes

    def is_transmitting(self, node_id: int) -> bool:
        return False

    def start_transmission(self, sender_id: int, frame: Frame) -> float:
        sender = self._participants[sender_id]
        duration = sender.radio.params.airtime(frame.length_bytes)
        self.log.append((self.engine.now, sender_id, frame))
        self.engine.schedule(duration, self._deliver, sender_id, frame)
        return duration

    def _deliver(self, sender_id: int, frame: Frame) -> None:
        for nid, participant in self._participants.items():
            if nid == sender_id or (sender_id, nid) in self._drops:
                continue
            handler = getattr(participant, "on_frame_received", None)
            if handler is not None:
                info = self.rx_info_factory()
                # Refresh the timestamp so probes see simulated time.
                info = RxInfo(
                    timestamp=self.engine.now,
                    rssi_dbm=info.rssi_dbm,
                    snr_db=info.snr_db,
                    lqi=info.lqi,
                    white_bit=info.white_bit,
                )
                handler(frame, info)


def make_radio(node_id: int, tx_power_dbm: float = 0.0) -> Radio:
    return Radio(node_id=node_id, params=CC2420, tx_power_dbm=tx_power_dbm)


@pytest.fixture
def perfect_medium(engine) -> PerfectMedium:
    return PerfectMedium(engine)
