"""Unit tests for the ASCII renderers."""

import pytest

from repro.analysis.render import boxplot, routing_tree, scatter, table, timeseries


def test_table_alignment_and_content():
    out = table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "long-name" in out and "22" in out


def test_table_no_title():
    out = table(["x"], [["1"]])
    assert out.splitlines()[0].startswith("x")


def test_scatter_contains_markers_and_legend():
    out = scatter({"alpha": (1.0, 2.0), "beta": (3.0, 4.0)}, title="S")
    assert "A = alpha" in out
    assert "B = beta" in out
    assert "S" in out


def test_scatter_diagonal_reference():
    out = scatter({"p": (1.0, 1.0), "q": (3.0, 2.0)}, diagonal=True)
    assert "." in out


def test_scatter_empty():
    assert scatter({}) == "(no points)"


def test_scatter_single_point_no_crash():
    out = scatter({"only": (2.0, 2.0)})
    assert "only" in out


def test_boxplot_stats():
    out = boxplot({"g": [0.0, 0.25, 0.5, 0.75, 1.0]}, fmt="{:.2f}")
    assert "min=0.00" in out
    assert "med=0.50" in out
    assert "max=1.00" in out
    assert "#" in out


def test_boxplot_multiple_groups_aligned():
    out = boxplot({"a": [1.0, 2.0], "long-name": [2.0, 3.0]})
    lines = [l for l in out.splitlines() if "[" in l]
    assert len(lines) == 2
    assert lines[0].index("[") == lines[1].index("[")


def test_boxplot_handles_empty_group():
    out = boxplot({"empty": [], "ok": [1.0]})
    assert "(no data)" in out


def test_boxplot_all_empty():
    assert boxplot({"e": []}) == "(no data)"


def test_timeseries_renders_marks():
    series = {"s": [(0.0, 1.0), (10.0, 2.0), (20.0, 1.5)]}
    out = timeseries(series, title="TS")
    assert "*" in out
    assert "* = s" in out


def test_timeseries_skips_none_values():
    series = {"s": [(0.0, 1.0), (10.0, None), (20.0, 2.0)]}
    out = timeseries(series)
    assert out  # no crash; gaps are simply not drawn


def test_timeseries_empty():
    assert timeseries({"s": [(0.0, None)]}) == "(no data)"


def test_routing_tree_structure():
    parents = {0: None, 1: 0, 2: 0, 3: 1}
    depths = {0: 0, 1: 1, 2: 1, 3: 2}
    out = routing_tree(parents, depths, root=0)
    lines = out.splitlines()
    assert lines[0].startswith("0")
    assert any(l.startswith("  1") for l in lines)
    assert any(l.startswith("    3") for l in lines)
    assert "depth histogram: 1:2  2:1" in out


def test_routing_tree_reports_disconnected():
    parents = {0: None, 1: 0, 2: None}
    depths = {0: 0, 1: 1, 2: None}
    out = routing_tree(parents, depths, root=0)
    assert "disconnected: [2]" in out


def test_routing_tree_survives_cycles():
    parents = {0: None, 1: 2, 2: 1}
    depths = {0: 0, 1: None, 2: None}
    out = routing_tree(parents, depths, root=0)
    assert "disconnected" in out
