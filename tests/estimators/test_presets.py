"""Unit tests for the estimator presets (the Figure 6 design space)."""

import pytest

from repro.estimators.presets import (
    PRESETS,
    ctp_stock,
    ctp_unconstrained,
    ctp_unidir_ack,
    ctp_white_compare,
    four_bit,
)
from repro.sim.network import PROTOCOLS


def test_registry_covers_all_ctp_protocols():
    # "mhlqi" has no estimator; "geo" uses the 4B preset directly.
    assert set(PRESETS) == set(PROTOCOLS) - {"mhlqi", "geo"}


def test_stock_is_bidirectional_beacon_only():
    config = ctp_stock()
    assert not config.use_ack_stream
    assert config.bidirectional_beacons
    assert config.send_footers
    assert config.use_standard_replacement
    assert not config.use_white_compare
    assert config.table_size == 10


def test_unconstrained_has_no_table_limit():
    config = ctp_unconstrained()
    assert config.table_size is None
    assert config.bidirectional_beacons


def test_unidir_adds_only_the_ack_bit():
    config = ctp_unidir_ack()
    assert config.use_ack_stream
    assert not config.bidirectional_beacons
    assert not config.use_white_compare


def test_white_compare_adds_only_network_bits():
    config = ctp_white_compare()
    assert not config.use_ack_stream
    assert config.bidirectional_beacons
    assert config.use_white_compare
    assert config.require_white_bit


def test_four_bit_uses_everything():
    config = four_bit()
    assert config.use_ack_stream
    assert config.use_white_compare
    assert config.use_standard_replacement
    assert not config.bidirectional_beacons  # ack bit measures both directions
    assert config.table_size == 10


def test_paper_window_sizes():
    config = four_bit()
    assert config.ku == 5
    assert config.kb == 2


def test_table_size_parameterizable():
    assert four_bit(table_size=20).table_size == 20
    assert ctp_stock(table_size=None).table_size is None
