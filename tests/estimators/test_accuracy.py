"""Tests for the estimator-accuracy harness — and, through it, the paper's
Section 2 claims about each layer's estimation errors."""

import math

import pytest

from repro.estimators.accuracy import (
    AccuracyScenario,
    evaluate,
    step_scenario,
    steady_scenario,
    true_etx,
)
from repro.estimators.presets import ctp_stock, four_bit


def test_true_etx():
    assert true_etx(1.0) == 1.0
    assert true_etx(0.5) == 4.0
    assert math.isinf(true_etx(0.0))


def test_perfect_link_estimated_perfectly():
    result = evaluate(four_bit(), steady_scenario(1.0, duration_s=300.0, warmup_s=60.0))
    assert result.mean_relative_error() < 0.05
    assert result.availability() == 1.0


def test_4b_accurate_on_lossy_link_with_data():
    """With data traffic the ack bit measures the true bidirectional ETX.

    ku = 5 windows on a p² ≈ 0.49 link are inherently noisy (5/a with
    a ~ Binomial(5, 0.49), plus the consecutive-failure rule on zero-ack
    windows), so we check that the estimate brackets the truth rather than
    demanding tightness the real estimator doesn't have.
    """
    result = evaluate(
        four_bit(), steady_scenario(0.7, duration_s=900.0, warmup_s=300.0, data_rate_pps=2.0)
    )
    assert result.mean_relative_error() < 0.6
    estimates = sorted(
        est for t, est, _ in result.samples if est is not None and t >= 300.0
    )
    median = estimates[len(estimates) // 2]
    assert median == pytest.approx(true_etx(0.7), rel=0.4)


def test_beacon_only_unidirectional_is_biased_low():
    """A unidirectional beacon-only estimator can at best learn 1/p and is
    therefore structurally below the 1/p² ground truth on lossy links."""
    import dataclasses

    config = dataclasses.replace(four_bit(), use_ack_stream=False)
    scenario = steady_scenario(0.6, duration_s=900.0, warmup_s=300.0, data_rate_pps=0.0,
                               beacon_period_s=5.0)
    result = evaluate(config, scenario)
    estimates = [est for t, est, _ in result.samples if est is not None and t >= 300.0]
    assert estimates
    mean_est = sum(estimates) / len(estimates)
    assert mean_est < true_etx(0.6) * 0.75  # visibly biased low
    assert mean_est == pytest.approx(1 / 0.6, rel=0.35)  # near the 1/p it can see


def test_4b_with_data_beats_beacon_only_on_accuracy():
    import dataclasses

    scenario = steady_scenario(0.7, duration_s=900.0, warmup_s=300.0, data_rate_pps=2.0,
                               beacon_period_s=5.0)
    hybrid = evaluate(four_bit(), scenario, label="4b")
    beacon_only = evaluate(
        dataclasses.replace(four_bit(), use_ack_stream=False), scenario, label="beacon-only"
    )
    assert hybrid.mean_relative_error() < beacon_only.mean_relative_error()


def test_step_detection_with_data_is_fast():
    result = evaluate(
        four_bit(),
        step_scenario(high=0.9, low=0.3, at_s=300.0, data_rate_pps=2.0, duration_s=700.0),
    )
    assert result.detection_delay_s is not None
    assert result.detection_delay_s < 60.0


def test_step_detection_beacon_only_is_slow_or_absent():
    import dataclasses

    config = dataclasses.replace(four_bit(), use_ack_stream=False)
    scenario = step_scenario(
        high=0.9, low=0.3, at_s=300.0, data_rate_pps=2.0, duration_s=700.0, beacon_period_s=30.0
    )
    with_data = evaluate(four_bit(), scenario)
    without_ack = evaluate(config, scenario)
    if without_ack.detection_delay_s is not None:
        assert with_data.detection_delay_s < without_ack.detection_delay_s
    # A beacon-only estimator on a 30 s probe period cannot beat data-rate
    # detection; with its 1/p ceiling it may never cross the midpoint at all.


def test_quiet_network_beacons_still_provide_estimates():
    result = evaluate(
        four_bit(), steady_scenario(0.9, duration_s=600.0, warmup_s=200.0, data_rate_pps=0.0)
    )
    assert result.availability() > 0.9


def test_no_step_means_no_detection_delay():
    result = evaluate(four_bit(), steady_scenario(0.8, duration_s=300.0, warmup_s=60.0))
    assert result.detection_delay_s is None
