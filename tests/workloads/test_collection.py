"""Unit tests for the collection workload."""

import random

import pytest

from repro.sim.engine import Engine
from repro.workloads.collection import CollectionSource, SinkRecorder, WorkloadConfig


def make_source(engine, accept=True, **config):
    accepted = []

    def send():
        accepted.append(engine.now)
        return accept

    source = CollectionSource(
        engine, 3, send, random.Random(4), WorkloadConfig(**config)
    )
    return source, accepted


def test_sends_at_configured_rate(engine):
    source, sends = make_source(engine, send_interval_s=10.0, app_start_delay_s=0.0)
    source.start()
    engine.run_until(1000.0)
    # ~100 sends expected over 1000 s at 1/10 s.
    assert 90 <= len(sends) <= 110
    assert source.attempted == len(sends)
    assert source.accepted == len(sends)


def test_jitter_desynchronizes_sends(engine):
    source, sends = make_source(
        engine, send_interval_s=10.0, jitter_fraction=0.1, app_start_delay_s=0.0
    )
    source.start()
    engine.run_until(500.0)
    gaps = {round(b - a, 3) for a, b in zip(sends, sends[1:])}
    assert len(gaps) > 3  # not a metronome
    assert all(9.0 <= g <= 11.0 for g in gaps)


def test_rejected_sends_counted(engine):
    source, sends = make_source(engine, accept=False, send_interval_s=5.0, app_start_delay_s=0.0)
    source.start()
    engine.run_until(100.0)
    assert source.accepted == 0
    assert source.attempted > 0


def test_stop_halts_generation(engine):
    source, sends = make_source(engine, send_interval_s=5.0, app_start_delay_s=0.0)
    source.start()
    engine.run_until(50.0)
    count = len(sends)
    source.stop()
    engine.run_until(200.0)
    assert len(sends) <= count + 1  # at most one in-flight tick


def test_start_idempotent(engine):
    source, sends = make_source(engine, send_interval_s=10.0, app_start_delay_s=0.0)
    source.start()
    source.start()
    engine.run_until(100.0)
    assert len(sends) <= 12


def test_app_start_delay_respected(engine):
    source, sends = make_source(engine, send_interval_s=10.0, app_start_delay_s=30.0)
    source.start()
    engine.run_until(29.0)
    assert sends == []


# ---------------------------------------------------------------------------
# SinkRecorder
# ---------------------------------------------------------------------------
def test_sink_deduplicates():
    sink = SinkRecorder()
    sink.on_deliver(5, 0, 2, 1.0)
    sink.on_deliver(5, 0, 3, 2.0)  # duplicate (different path length)
    sink.on_deliver(5, 1, 2, 3.0)
    assert sink.unique_delivered == 2
    assert sink.duplicates == 1


def test_sink_per_origin_counts():
    sink = SinkRecorder()
    for seq in range(4):
        sink.on_deliver(7, seq, 1, float(seq))
    sink.on_deliver(8, 0, 1, 9.0)
    assert sink.unique_per_origin == {7: 4, 8: 1}


def test_sink_mean_hops():
    sink = SinkRecorder()
    sink.on_deliver(1, 0, 0, 0.0)  # thl 0 → 1 hop
    sink.on_deliver(2, 0, 2, 0.0)  # thl 2 → 3 hops
    assert sink.mean_hops() == 2.0


def test_sink_mean_hops_empty_is_nan():
    import math

    assert math.isnan(SinkRecorder().mean_hops())
