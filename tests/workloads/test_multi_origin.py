"""Additional sink-recorder behaviour with many origins and paths."""

import random

from repro.workloads.collection import SinkRecorder


def test_anycast_dedup_across_sinks():
    """With multiple basestations, both may hear the same packet (one
    forwarder's broadcast region can cover two roots); a shared recorder
    must count it once."""
    sink = SinkRecorder()
    sink.on_deliver(4, 7, 1, 10.0)   # arrives at root A
    sink.on_deliver(4, 7, 2, 10.2)   # same packet reaches root B later
    assert sink.unique_delivered == 1
    assert sink.duplicates == 1


def test_records_keep_first_arrival():
    sink = SinkRecorder()
    sink.on_deliver(4, 7, 3, 10.0)
    sink.on_deliver(4, 7, 1, 10.2)
    assert len(sink.records) == 1
    assert sink.records[0].thl == 3
    assert sink.records[0].time == 10.0


def test_interleaved_origins():
    sink = SinkRecorder()
    rng = random.Random(3)
    expected = {}
    for _ in range(300):
        origin = rng.randrange(5)
        seq = rng.randrange(40)
        before = (origin, seq) in {(r.origin, r.seq) for r in sink.records}
        sink.on_deliver(origin, seq, 1, 0.0)
        if not before:
            expected[origin] = expected.get(origin, 0) + 1
    assert sink.unique_per_origin == expected
    assert sink.unique_delivered == sum(expected.values())
