"""Failure injection: node death mid-run.

The paper's estimator drops the minimum-transmission-rate assumption
because the ack bit detects broken links at data rate (Section 3.3).
These tests kill a relay mid-run and verify the network recovers.
"""

import pytest

from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import Topology
from repro.workloads.collection import WorkloadConfig


def bottleneck_topology() -> Topology:
    """Sources that reach the root through either of two relays.

    Root at origin; relays R1/R2 at 10 m; sources at ~20 m (too far for a
    direct link at 0 dBm in the deterministic channel used below).
    """
    positions = {
        0: (0.0, 0.0),
        1: (10.0, 2.0),   # relay R1
        2: (10.0, -2.0),  # relay R2
        3: (19.0, 2.0),
        4: (19.0, -2.0),
        5: (21.0, 0.0),
    }
    return Topology(name="bottleneck", positions=positions, sink=0)


def run_with_death(protocol: str, kill_at: float, duration: float = 600.0, seed: int = 5):
    config = SimConfig(
        protocol=protocol,
        seed=seed,
        duration_s=duration,
        warmup_s=120.0,
        workload=WorkloadConfig(send_interval_s=2.0, boot_stagger_s=5.0),
        with_interferers=False,
    )
    net = CollectionNetwork(
        bottleneck_topology(),
        config,
        channel_overrides=dict(shadowing_sigma_db=0.0, temporal_sigma_db=0.0, bimodal_fraction=0.0),
    )

    victim = net.nodes[1]

    def kill():
        victim.mac.enabled = False
        if victim.source is not None:
            victim.source.stop()

    net.engine.schedule_at(kill_at, kill)
    result = net.run()
    return net, result


def test_4b_reroutes_after_relay_death():
    net, result = run_with_death("4b", kill_at=300.0)
    # Sources behind the dead relay must end the run routed via relay 2.
    for source in (3, 4, 5):
        depths = result.final_depths
        assert depths[source] is not None, f"node {source} lost its route permanently"
        parents = result.final_parents
        assert parents[source] != 1 or parents[source] is None
    # Delivery counts packets offered while the victim was still relaying;
    # recovery keeps the total high.
    assert result.delivery_ratio > 0.90


def test_4b_recovery_is_fast():
    """After the death, the ack bit should push the dead link's ETX up and
    reroute within tens of seconds — count the post-death outage."""
    net, result = run_with_death("4b", kill_at=300.0, duration=700.0)
    deliveries = [r.time for r in net.sink.records if r.origin in (3, 4, 5)]
    after = sorted(t for t in deliveries if t > 300.0)
    assert after, "no recovery at all"
    outage = after[0] - 300.0
    assert outage < 60.0, f"recovery took {outage:.0f}s"


def test_dead_node_stops_transmitting():
    net, _ = run_with_death("4b", kill_at=300.0)
    assert net.nodes[1].mac.enabled is False
    # Nothing the victim "sent" after death reached the air: every recent
    # transmission from node 1 predates the kill (plus one in-flight frame).
    recent_from_victim = [tx.start for tx in net.medium._recent if tx.sender == 1]
    assert all(t <= 300.1 for t in recent_from_victim)


def test_mhlqi_recovers_more_slowly_or_worse():
    _, fourbit = run_with_death("4b", kill_at=300.0)
    _, mhlqi = run_with_death("mhlqi", kill_at=300.0)
    # MultiHopLQI waits out beacon timeouts (5 × 32 s); 4B notices at data
    # rate.  MultiHopLQI must not do *better*.
    assert mhlqi.delivery_ratio <= fourbit.delivery_ratio + 0.01
