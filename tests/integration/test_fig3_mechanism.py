"""Integration test of the Figure 3 mechanism at reduced duration."""

import pytest

from repro.experiments.fig3_lqi_blind import Fig3Settings, run


@pytest.fixture(scope="module")
def short_result():
    return run(Fig3Settings(duration_s=600.0, burst_window=(200.0, 400.0)))


def test_prr_collapses_during_burst(short_result):
    stats = short_result.window_stats()
    assert stats["prr_outside"] > 0.85
    assert stats["prr_inside"] < stats["prr_outside"] - 0.15


def test_lqi_of_received_packets_stays_high(short_result):
    stats = short_result.window_stats()
    assert stats["lqi_inside"] > 95.0
    assert abs(stats["lqi_outside"] - stats["lqi_inside"]) < 5.0


def test_blindness_predicate(short_result):
    assert short_result.blindness_holds()


def test_unacked_count_inflects_during_burst(short_result):
    t0, t1 = short_result.settings.burst_window
    series = short_result.unacked_series
    window_span = t1 - t0

    def rate(lo, hi):
        points = [(t, v) for t, v in series if lo <= t <= hi]
        if len(points) < 2:
            return 0.0
        return (points[-1][1] - points[0][1]) / (points[-1][0] - points[0][0])

    inside = rate(t0, t1)
    before = rate(0.0, t0)
    # MultiHopLQI keeps transmitting on the degraded link, so unacked
    # packets accumulate much faster during the episode.
    assert inside > before * 2 + 1e-9


def test_mhlqi_keeps_hammering_but_mostly_delivers(short_result):
    # Retransmissions absorb a 0.6-PRR episode; the cost shows the waste.
    assert short_result.delivery_ratio > 0.9
    assert short_result.cost > 2.0


def test_render_produces_all_panels(short_result):
    out = short_result.render()
    assert "PRR" in out
    assert "LQI" in out
    assert "unack" in out.lower()


def test_4b_contrast_lower_cost():
    fourbit = run(
        Fig3Settings(duration_s=600.0, burst_window=(200.0, 400.0), protocol="4b")
    )
    assert fourbit.delivery_ratio > 0.97
    assert fourbit.cost < 2.0
