"""Integration: the CTP stack running over trace-driven links.

Demonstrates the substrate swap the architecture permits — the same
estimator and network layer run over a scripted medium with no SINR model
at all.
"""

import random

import pytest

from repro.core.estimator import HybridLinkEstimator
from repro.estimators.presets import four_bit
from repro.link.mac import Mac
from repro.net.ctp.protocol import CtpProtocol
from repro.phy.trace_link import LinkTrace, TraceMedium
from repro.sim.engine import Engine
from repro.sim.rng import RngManager

from tests.conftest import make_radio


def build_chain(prrs, seed=5):
    """A chain 0 ← 1 ← 2 ... with the given per-hop PRRs (both directions)."""
    engine = Engine()
    rng = RngManager(seed)
    medium = TraceMedium(engine, rng)
    stacks = {}
    n = len(prrs) + 1
    for nid in range(n):
        mac = Mac(engine, medium, make_radio(nid), rng.stream("mac", nid))
        medium.attach(mac)
        estimator = HybridLinkEstimator(mac, four_bit(), rng.stream("est", nid))
        protocol = CtpProtocol(engine, estimator, nid, nid == 0, rng.stream("net", nid))
        stacks[nid] = protocol
    for i, prr in enumerate(prrs):
        medium.set_symmetric_link(i, i + 1, LinkTrace.constant(prr))
    return engine, medium, stacks


def test_two_hop_chain_delivers():
    engine, medium, stacks = build_chain([1.0, 1.0])
    delivered = []
    stacks[0].forwarding.on_deliver = lambda *a: delivered.append(a)
    for stack in stacks.values():
        stack.start()
    engine.run_until(30.0)  # routes form
    for i in range(10):
        stacks[2].send_from_app()
        engine.run_until(engine.now + 2.0)
    engine.run_until(engine.now + 10.0)
    assert len(delivered) == 10
    assert all(origin == 2 for origin, *_ in delivered)


def test_lossy_middle_hop_still_delivers_with_retransmissions():
    engine, medium, stacks = build_chain([1.0, 0.7])
    delivered = []
    stacks[0].forwarding.on_deliver = lambda *a: delivered.append(a)
    for stack in stacks.values():
        stack.start()
    engine.run_until(30.0)
    for i in range(20):
        stacks[2].send_from_app()
        engine.run_until(engine.now + 2.0)
    engine.run_until(engine.now + 20.0)
    assert len(delivered) >= 18
    # The estimator measured the lossy hop: ETX distinctly above 1.
    etx = stacks[2].estimator.link_quality(1)
    assert etx > 1.2


def test_estimator_tracks_scripted_degradation():
    engine, medium, stacks = build_chain([1.0])
    node = stacks[1]
    node.start()
    stacks[0].start()
    engine.run_until(20.0)
    good = node.estimator.link_quality(0)
    # Degrade the link mid-run and keep data flowing.
    medium.set_symmetric_link(0, 1, LinkTrace.constant(0.4))
    for _ in range(30):
        node.send_from_app()
        engine.run_until(engine.now + 2.0)
    degraded = node.estimator.link_quality(0)
    assert good < 1.5
    assert degraded > good * 1.3
