"""Integration tests: full protocol stacks on small simulated networks."""

import math

import pytest

from repro.sim.network import CollectionNetwork, PROTOCOLS, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid
from repro.workloads.collection import WorkloadConfig


def dense_grid():
    """5×4 grid, 6 m spacing: every link is strong at 0 dBm."""
    return grid(5, 4, spacing_m=6.0, rng=RngManager(7).stream("topo"), jitter_m=1.0)


def run_protocol(protocol: str, seed: int = 3, duration: float = 300.0, **kwargs):
    config = SimConfig(
        protocol=protocol,
        seed=seed,
        duration_s=duration,
        warmup_s=duration / 3,
        workload=WorkloadConfig(send_interval_s=5.0),
        **kwargs,
    )
    net = CollectionNetwork(dense_grid(), config)
    return net, net.run()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_every_protocol_collects_on_easy_network(protocol):
    _, result = run_protocol(protocol)
    assert result.delivery_ratio > 0.85, result.summary_row()
    assert result.cost >= 1.0
    assert result.unique_delivered > 100


def test_4b_near_perfect_on_easy_network():
    _, result = run_protocol("4b")
    assert result.delivery_ratio > 0.99
    assert result.cost < 2.0
    assert 1.0 <= result.avg_tree_depth < 2.5


def test_same_seed_reproduces_exactly():
    _, a = run_protocol("4b", seed=11)
    _, b = run_protocol("4b", seed=11)
    assert a.cost == b.cost
    assert a.unique_delivered == b.unique_delivered
    assert a.final_parents == b.final_parents


def test_different_seeds_differ():
    _, a = run_protocol("4b", seed=11)
    _, b = run_protocol("4b", seed=12)
    assert (a.total_data_tx, a.unique_delivered) != (b.total_data_tx, b.unique_delivered)


def test_cost_at_least_mean_hops():
    """Every delivered packet takes ≥1 transmission per hop, so cost (which
    also pays for losses and retransmissions) lower-bounds at mean hops."""
    _, result = run_protocol("4b")
    assert result.cost >= result.mean_packet_hops - 1e-9


def test_parent_pointers_form_tree_to_root():
    net, result = run_protocol("4b")
    depths = result.final_depths
    connected = [d for nid, d in depths.items() if nid != 0 and d is not None]
    assert len(connected) >= len(net.nodes) - 2  # near-total connectivity
    assert all(d >= 1 for d in connected)


def test_current_parent_is_pinned_in_estimator():
    """Integration of the pin bit: at any sampled moment, each CTP node's
    current parent entry is pinned in its estimator table."""
    net, _ = run_protocol("4b")
    for node in net.nodes.values():
        if node.is_root:
            continue
        parent = node.protocol.parent
        if parent is None:
            continue
        entry = node.estimator.table.find(parent)
        assert entry is not None, "pinned parent must be in the table"
        assert entry.pinned


def test_mhlqi_cost_counts_all_data_transmissions():
    net, result = run_protocol("mhlqi")
    mac_tx = sum(n.mac.stats.tx_unicast for n in net.nodes.values())
    assert result.total_data_tx == mac_tx


def test_duplicates_are_rare_on_easy_network():
    _, result = run_protocol("4b")
    assert result.duplicates_at_root <= result.unique_delivered * 0.05


def test_table_capacity_respected_throughout():
    net, _ = run_protocol("4b")
    for node in net.nodes.values():
        if node.estimator is not None:
            assert len(node.estimator.table) <= 10


def test_unconstrained_table_grows_beyond_ten():
    net, _ = run_protocol("ctp-unconstrained")
    sizes = [len(n.estimator.table) for n in net.nodes.values()]
    assert max(sizes) > 10
