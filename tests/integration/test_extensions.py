"""Integration tests for the extensions: multi-sink anycast collection,
geographic routing, and CC1000-class radios."""

import pytest

from repro.phy.radio import CC1000
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid
from repro.workloads.collection import WorkloadConfig


def dense_grid():
    return grid(5, 4, spacing_m=6.0, rng=RngManager(7).stream("topo"), jitter_m=1.0)


def run(protocol="4b", duration=300.0, **kwargs):
    config = SimConfig(
        protocol=protocol,
        seed=3,
        duration_s=duration,
        warmup_s=duration / 3,
        workload=WorkloadConfig(send_interval_s=5.0),
        **kwargs,
    )
    net = CollectionNetwork(dense_grid(), config)
    return net, net.run()


# ---------------------------------------------------------------------------
# Multi-sink anycast (the paper's traffic model: "one of possibly many
# basestations")
# ---------------------------------------------------------------------------
def test_multi_sink_delivers_everything():
    net, result = run(extra_sinks=(19,))
    assert result.delivery_ratio > 0.99


def test_multi_sink_lowers_depth():
    _, single = run()
    _, multi = run(extra_sinks=(19,))  # opposite corner
    assert multi.avg_tree_depth < single.avg_tree_depth


def test_multi_sink_roots_have_no_sources():
    net, _ = run(extra_sinks=(19,))
    assert net.nodes[19].source is None
    assert net.nodes[19].is_root
    assert set(net.roots) == {0, 19}


def test_multi_sink_depth_map_has_two_zeros():
    net, result = run(extra_sinks=(19,))
    assert result.final_depths[0] == 0
    assert result.final_depths[19] == 0


# ---------------------------------------------------------------------------
# Geographic routing
# ---------------------------------------------------------------------------
def test_geo_collects_on_easy_network():
    _, result = run(protocol="geo")
    assert result.delivery_ratio > 0.97
    assert result.cost < 2.5


def test_geo_parents_make_geographic_progress():
    net, _ = run(protocol="geo")
    topo = net.topology
    sink = topo.sink
    for node in net.nodes.values():
        if node.is_root or node.parent is None:
            continue
        me = topo.distance(node.node_id, sink)
        hop = topo.distance(node.parent, sink)
        assert hop < me, "every geographic hop must reduce distance to sink"


def test_geo_next_hop_pinned():
    net, _ = run(protocol="geo")
    for node in net.nodes.values():
        if node.is_root or node.parent is None:
            continue
        entry = node.estimator.table.find(node.parent)
        assert entry is not None and entry.pinned


# ---------------------------------------------------------------------------
# CC1000 radio (no LQI → white bit never set)
# ---------------------------------------------------------------------------
def test_cc1000_collects_with_scaled_timing():
    _, result = run(radio_params=CC1000, white_bit="never", duration=300.0)
    assert result.delivery_ratio > 0.95
    assert result.cost < 5.0


def test_cc1000_white_bit_never_fires():
    net, _ = run(radio_params=CC1000, white_bit="never")
    for node in net.nodes.values():
        if node.estimator is not None:
            assert node.estimator.stats.rejected_no_white >= 0
            assert node.estimator.stats.inserts_compare == 0


def test_cc1000_slower_airtime():
    from repro.phy.radio import CC2420

    assert CC1000.airtime(40) > 10 * CC2420.airtime(40)


def test_invalid_white_bit_policy_rejected():
    with pytest.raises(ValueError):
        SimConfig(white_bit="sometimes")
