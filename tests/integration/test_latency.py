"""End-to-end latency instrumentation (the conclusion's transport angle)."""

import math

import pytest

from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid, line
from repro.workloads.collection import WorkloadConfig


def run(topology, protocol="4b", duration=300.0):
    config = SimConfig(
        protocol=protocol,
        seed=3,
        duration_s=duration,
        warmup_s=duration / 3,
        workload=WorkloadConfig(send_interval_s=5.0),
    )
    net = CollectionNetwork(topology, config)
    return net, net.run()


def dense():
    return grid(4, 3, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=1.0)


def test_latency_measured_for_every_delivery():
    net, result = run(dense())
    assert len(net.sink.latencies()) == result.unique_delivered


def test_latencies_positive_and_subsecond_on_one_hop_network():
    _, result = run(dense())
    assert result.latency_mean_s > 0.0
    # One or two hops of CSMA + queueing on an idle CC2420 network.
    assert result.latency_mean_s < 0.5
    assert result.latency_p95_s >= result.latency_mean_s * 0.5


def test_longer_chains_have_higher_latency():
    _, short = run(dense())
    chain = line(6, spacing_m=14.0)  # forced multihop at 0 dBm
    _, long = run(chain)
    assert long.mean_packet_hops > short.mean_packet_hops
    assert long.latency_mean_s > short.latency_mean_s


def test_latency_for_mhlqi_too():
    _, result = run(dense(), protocol="mhlqi")
    assert not math.isnan(result.latency_mean_s)
    assert result.latency_mean_s > 0.0
