"""Unit tests for the experiment harness."""

import dataclasses
import math

import pytest

from repro.experiments.common import (
    BENCH_SCALE,
    FULL_SCALE,
    ExperimentScale,
    improvement,
    run_averaged,
    run_one,
)

#: One micro-run shared by the harness tests (seconds, not minutes).
MICRO = ExperimentScale(n_nodes=12, duration_s=180.0, warmup_s=60.0, seeds=(1, 2))


def test_full_scale_uses_paper_size():
    assert FULL_SCALE.profile().n_nodes == 85
    assert FULL_SCALE.duration_s >= 1800.0


def test_bench_scale_is_reduced():
    assert BENCH_SCALE.profile().n_nodes < FULL_SCALE.profile().n_nodes
    assert BENCH_SCALE.duration_s < FULL_SCALE.duration_s


def test_scale_profile_resizes():
    assert MICRO.profile().n_nodes == 12


def test_scale_full_size_passthrough():
    scale = ExperimentScale(n_nodes=85)
    assert scale.profile().name == "mirage-85"


def test_run_one_produces_result():
    result = run_one(MICRO, "4b", seed=1)
    assert result.protocol == "4b"
    assert result.n_nodes == 12
    assert result.unique_delivered > 0


def test_run_one_reproducible():
    a = run_one(MICRO, "4b", seed=1)
    b = run_one(MICRO, "4b", seed=1)
    assert a.cost == b.cost


def test_run_averaged_pools_seeds():
    averaged = run_averaged(MICRO, "4b")
    assert len(averaged.runs) == 2
    assert averaged.label == "4b"
    per_seed = [r.cost for r in averaged.runs]
    assert averaged.cost == pytest.approx(sum(per_seed) / 2)
    # Pooled per-node delivery spans both seeds.
    assert len(averaged.pooled_node_delivery) == 2 * 11


def test_run_averaged_custom_label():
    averaged = run_averaged(MICRO, "4b", label="Four-Bit")
    assert "Four-Bit" in averaged.summary_row()


def test_improvement():
    assert improvement(2.0, 1.0) == pytest.approx(0.5)
    assert improvement(2.0, 2.5) == pytest.approx(-0.25)
    assert math.isnan(improvement(0.0, 1.0))
    assert math.isnan(improvement(math.inf, 1.0))


def test_tx_power_passed_through():
    low = run_one(MICRO, "4b", seed=1, tx_power_dbm=-10.0)
    assert low.unique_delivered > 0  # network still functions at −10 dBm
