"""Micro-scale end-to-end runs of every figure module.

These guard the experiment *plumbing* (construction, instrumentation,
rendering) at a few seconds per figure; the scientific assertions live in
the benchmark suite and EXPERIMENTS.md.
"""

import dataclasses

import pytest

from repro.experiments.common import ExperimentScale

MICRO = ExperimentScale(n_nodes=12, duration_s=180.0, warmup_s=60.0, seeds=(1,))


def test_fig2_micro():
    from repro.experiments.fig2_trees import run

    result = run(MICRO)
    assert set(result.results) == {"ctp", "mhlqi", "ctp-unconstrained"}
    out = result.render()
    assert "Figure 2" in out and "depth histogram" in out


def test_fig6_micro():
    from repro.experiments.fig6_design_space import run

    result = run(MICRO)
    assert len(result.results) == 5
    assert "Cost = Depth" in result.render()


def test_fig7_fig8_micro_share_runs():
    from repro.experiments.fig7_power_sweep import run as run7
    from repro.experiments.fig8_delivery import run as run8

    sweep = run7(MICRO, powers=(0.0,))
    delivery = run8(MICRO, powers=(0.0,), sweep=sweep)
    assert delivery.sweep is sweep  # no re-simulation
    assert delivery.distribution("4b", 0.0)
    assert "Figure 7" in sweep.render()
    assert "Figure 8" in delivery.render()


def test_headline_micro():
    from repro.experiments.headline import run

    result = run(dataclasses.replace(MICRO, duration_s=180.0))
    assert set(result.results) == {"mirage", "tutornet"}
    assert "Headline" in result.render()


def test_fig3_micro():
    from repro.experiments.fig3_lqi_blind import Fig3Settings, run

    result = run(Fig3Settings(duration_s=300.0, burst_window=(100.0, 200.0)))
    assert result.prr_series and result.lqi_series and result.unacked_series
    assert "Figure 3" in result.render()
