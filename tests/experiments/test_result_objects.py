"""Unit tests for experiment result objects, on synthetic data (no sims)."""

import math

import pytest

from repro.experiments.ablation import AblationResult, BASELINE
from repro.experiments.common import AveragedResult
from repro.experiments.fig2_trees import Fig2Result
from repro.experiments.fig3_lqi_blind import Fig3Result, Fig3Settings
from repro.experiments.fig6_design_space import Fig6Result
from repro.experiments.fig7_power_sweep import Fig7Result
from repro.experiments.fig8_delivery import Fig8Result
from repro.experiments.headline import HeadlineResult
from repro.metrics.collection_stats import CollectionResult


def avg(protocol, cost, depth=1.5, delivery=0.99, label=None, node_delivery=None):
    run = CollectionResult(
        protocol=protocol,
        seed=1,
        duration_s=100.0,
        n_nodes=5,
        offered=100,
        accepted=100,
        unique_delivered=int(delivery * 100),
        duplicates_at_root=0,
        total_data_tx=int(cost * delivery * 100),
        beacons_sent=10,
        mean_packet_hops=depth,
        avg_tree_depth=depth,
        disconnected_fraction=0.0,
        per_node_delivery={1: delivery},
        final_parents={0: None, 1: 0},
        final_depths={0: 0, 1: 1},
    )
    return AveragedResult(
        protocol=protocol,
        label=label or protocol,
        cost=cost,
        avg_tree_depth=depth,
        delivery_ratio=delivery,
        pooled_node_delivery=node_delivery or [delivery],
        runs=[run],
    )


# ---------------------------------------------------------------------------
def test_fig2_ordering_predicates():
    good = Fig2Result(
        results={
            "ctp": avg("ctp", 3.14, depth=2.8),
            "mhlqi": avg("mhlqi", 2.28, depth=1.9),
            "ctp-unconstrained": avg("ctp-unconstrained", 1.86, depth=1.7),
        }
    )
    assert good.cost_ordering_holds()
    assert good.depth_gap_holds()
    bad = Fig2Result(
        results={
            "ctp": avg("ctp", 1.0, depth=1.0),
            "mhlqi": avg("mhlqi", 2.0),
            "ctp-unconstrained": avg("ctp-unconstrained", 3.0, depth=2.0),
        }
    )
    assert not bad.cost_ordering_holds()
    assert not bad.depth_gap_holds()


def test_fig2_render_contains_trees():
    result = Fig2Result(
        results={
            "ctp": avg("ctp", 3.14),
            "mhlqi": avg("mhlqi", 2.28),
            "ctp-unconstrained": avg("ctp-unconstrained", 1.86),
        }
    )
    out = result.render()
    assert "ctp" in out and "depth histogram" in out


# ---------------------------------------------------------------------------
def test_fig3_window_stats_and_blindness():
    settings = Fig3Settings(duration_s=100.0, burst_window=(40.0, 60.0))
    result = Fig3Result(
        settings=settings,
        prr_series=[(20.0, 0.9), (50.0, 0.6), (80.0, 0.9)],
        lqi_series=[(20.0, 105.0), (50.0, 104.0), (80.0, 106.0)],
        unacked_series=[(20.0, 1.0), (50.0, 30.0), (80.0, 35.0)],
        delivery_ratio=0.95,
        cost=2.5,
    )
    stats = result.window_stats()
    assert stats["prr_inside"] == pytest.approx(0.6)
    assert stats["prr_outside"] == pytest.approx(0.9)
    assert result.blindness_holds()


def test_fig3_blindness_fails_if_lqi_drops_too():
    settings = Fig3Settings(duration_s=100.0, burst_window=(40.0, 60.0))
    result = Fig3Result(
        settings=settings,
        prr_series=[(20.0, 0.9), (50.0, 0.6)],
        lqi_series=[(20.0, 105.0), (50.0, 80.0)],  # LQI saw it: not blind
        unacked_series=[],
        delivery_ratio=0.95,
        cost=2.5,
    )
    assert not result.blindness_holds()


# ---------------------------------------------------------------------------
def _fig6(ctp=3.0, unidir=2.0, white=2.5, fourbit=1.6, mhlqi=2.2):
    return Fig6Result(
        results={
            "ctp": avg("ctp", ctp),
            "ctp-unidir": avg("ctp-unidir", unidir),
            "ctp-white": avg("ctp-white", white),
            "4b": avg("4b", fourbit),
            "mhlqi": avg("mhlqi", mhlqi),
        }
    )


def test_fig6_predicates():
    result = _fig6()
    assert result.ack_bit_helps()
    assert result.white_compare_helps()
    assert result.fourbit_beats_mhlqi()
    assert result.fourbit_best()
    assert result.cost_reduction_vs_mhlqi() == pytest.approx((2.2 - 1.6) / 2.2)


def test_fig6_detects_regressions():
    assert not _fig6(fourbit=2.5).fourbit_beats_mhlqi()
    assert not _fig6(unidir=3.5).ack_bit_helps()


# ---------------------------------------------------------------------------
def _fig7():
    return Fig7Result(
        results={
            ("4b", 0.0): avg("4b", 1.6, depth=1.5),
            ("mhlqi", 0.0): avg("mhlqi", 2.2, depth=1.7),
            ("4b", -10.0): avg("4b", 2.5, depth=2.2),
            ("mhlqi", -10.0): avg("mhlqi", 3.4, depth=2.4),
            ("4b", -20.0): avg("4b", 5.2, depth=4.0),
            ("mhlqi", -20.0): avg("mhlqi", 7.4, depth=5.0),
        },
        powers=(0.0, -10.0, -20.0),
    )


def test_fig7_trend_predicates():
    result = _fig7()
    assert result.cost_increases_with_lower_power("4b")
    assert result.depth_increases_with_lower_power("mhlqi")
    assert result.fourbit_wins_everywhere()
    assert result.cost_reduction_at(0.0) == pytest.approx((2.2 - 1.6) / 2.2)
    assert result.excess_over_depth("4b", 0.0) == pytest.approx((1.6 - 1.5) / 1.5)


def test_fig8_quantile_predicates():
    sweep = Fig7Result(
        results={
            ("4b", 0.0): avg("4b", 1.6, node_delivery=[0.99, 1.0, 0.995]),
            ("mhlqi", 0.0): avg("mhlqi", 2.2, node_delivery=[0.64, 0.96, 0.99]),
        },
        powers=(0.0,),
    )
    result = Fig8Result(sweep=sweep)
    assert result.fourbit_tighter(0.0)
    assert result.fourbit_median_high(0.0)
    assert "Figure 8" in result.render()


# ---------------------------------------------------------------------------
def test_headline_predicates():
    result = HeadlineResult(
        results={
            "mirage": {"4b": avg("4b", 1.6, delivery=0.999), "mhlqi": avg("mhlqi", 2.2, delivery=0.93)},
            "tutornet": {"4b": avg("4b", 1.8, delivery=0.99), "mhlqi": avg("mhlqi", 3.2, delivery=0.85)},
        }
    )
    assert result.fourbit_wins("mirage")
    assert result.gap_larger_on_noisier_testbed()
    assert result.cost_reduction("tutornet") > result.cost_reduction("mirage")
    assert "paper" in result.render()


def test_ablation_render_marks_baseline():
    result = AblationResult(
        results={
            BASELINE: avg("4b", 1.6, label=BASELINE),
            "no-pin": avg("4b", 1.9, label="no-pin"),
        }
    )
    out = result.render()
    assert BASELINE in out and "no-pin" in out and "+19%" in out
