"""Unit tests for white-bit derivations."""

import pytest

from repro.phy.modulation import prr_from_snr
from repro.phy.white_bit import (
    DEFAULT_WHITE_BIT,
    LqiWhiteBit,
    NeverWhiteBit,
    SnrWhiteBit,
    WhiteBitPolicy,
)


def test_lqi_policy_threshold():
    policy = LqiWhiteBit(threshold=105)
    assert policy.evaluate(snr_db=0.0, lqi=105)
    assert policy.evaluate(snr_db=0.0, lqi=110)
    assert not policy.evaluate(snr_db=30.0, lqi=104)


def test_default_policy_is_lqi_105():
    assert isinstance(DEFAULT_WHITE_BIT, LqiWhiteBit)
    assert DEFAULT_WHITE_BIT.threshold == 105


def test_snr_policy_threshold():
    policy = SnrWhiteBit(threshold_db=8.0)
    assert policy.evaluate(snr_db=8.0, lqi=0)
    assert not policy.evaluate(snr_db=7.9, lqi=255)


def test_snr_policy_from_prr_target():
    policy = SnrWhiteBit.from_prr_target(target_prr=0.999, length_bytes=100)
    # At the derived threshold, a 100-byte frame succeeds ≥99.9% of the time.
    assert prr_from_snr(policy.threshold_db, 100) >= 0.99


def test_never_policy():
    policy = NeverWhiteBit()
    assert not policy.evaluate(snr_db=100.0, lqi=255)


def test_base_policy_is_abstract():
    with pytest.raises(NotImplementedError):
        WhiteBitPolicy().evaluate(0.0, 0)


def test_white_bit_contract_set_implies_quality():
    """A set white bit implies high channel quality: at the SNR-derived
    threshold the per-symbol decode error probability is tiny."""
    policy = SnrWhiteBit.from_prr_target(0.999, 100)
    from repro.phy.modulation import oqpsk_dsss_ber

    assert oqpsk_dsss_ber(policy.threshold_db) < 1e-5
