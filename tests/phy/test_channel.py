"""Unit tests for the channel model."""

import math

import pytest

from repro.phy.channel import ChannelModel, PathLossModel
from repro.sim.rng import RngManager


def make_channel(**kwargs) -> ChannelModel:
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (0.0, 25.0)}
    defaults = dict(shadowing_sigma_db=3.0, temporal_sigma_db=1.0, temporal_tau_s=10.0)
    defaults.update(kwargs)
    return ChannelModel(positions, RngManager(5), **defaults)


def test_pathloss_log_distance():
    pl = PathLossModel(pl_d0_db=55.0, exponent=3.0)
    assert pl.loss_db(1.0) == pytest.approx(55.0)
    assert pl.loss_db(10.0) == pytest.approx(85.0)
    assert pl.loss_db(100.0) == pytest.approx(115.0)


def test_pathloss_clamps_below_reference_distance():
    pl = PathLossModel()
    assert pl.loss_db(0.01) == pl.loss_db(1.0)


def test_distance():
    ch = make_channel()
    assert ch.distance(0, 1) == pytest.approx(10.0)
    assert ch.distance(0, 2) == pytest.approx(25.0)


def test_mean_gain_symmetric():
    ch = make_channel()
    assert ch.mean_gain_db(0, 1) == ch.mean_gain_db(1, 0)


def test_mean_gain_deterministic_per_seed():
    a = make_channel().mean_gain_db(0, 1)
    b = make_channel().mean_gain_db(0, 1)
    assert a == b


def test_farther_pairs_have_lower_gain_without_shadowing():
    ch = make_channel(shadowing_sigma_db=0.0)
    assert ch.mean_gain_db(0, 1) > ch.mean_gain_db(0, 2)


def test_no_shadowing_matches_pure_pathloss():
    ch = make_channel(shadowing_sigma_db=0.0)
    assert ch.mean_gain_db(0, 1) == pytest.approx(-ch.pathloss.loss_db(10.0))


def test_gain_symmetric_in_time():
    ch = make_channel()
    assert ch.gain_db(0, 1, 5.0) == ch.gain_db(1, 0, 5.0)


def test_temporal_component_frozen_for_tiny_dt():
    ch = make_channel()
    a = ch.temporal_db(0, 1, 100.0)
    b = ch.temporal_db(0, 1, 100.0005)  # well below 1% of tau
    assert a == b


def test_temporal_component_varies_over_long_times():
    ch = make_channel(temporal_sigma_db=2.0)
    samples = {round(ch.temporal_db(0, 1, t), 6) for t in range(0, 2000, 50)}
    assert len(samples) > 5


def test_temporal_disabled_when_sigma_zero():
    ch = make_channel(temporal_sigma_db=0.0)
    assert ch.temporal_db(0, 1, 123.0) == 0.0


def test_temporal_process_roughly_bounded():
    # OU with sigma=2: excursions beyond 5 sigma are effectively impossible.
    ch = make_channel(temporal_sigma_db=2.0)
    values = [ch.temporal_db(0, 1, t * 7.0) for t in range(500)]
    assert max(abs(v) for v in values) < 10.0


def test_add_position_rejects_duplicates():
    ch = make_channel()
    with pytest.raises(ValueError):
        ch.add_position(0, (5.0, 5.0))


def test_add_position_extends_model():
    ch = make_channel()
    ch.add_position(99, (3.0, 4.0))
    assert ch.distance(0, 99) == pytest.approx(5.0)


def test_bimodal_disabled_by_default():
    ch = make_channel()
    assert ch._fade_db(0, 1, 50.0) == 0.0


def test_bimodal_fraction_one_fades_sometimes():
    ch = make_channel(
        bimodal_fraction=1.0, fade_depth_db=20.0, fade_dwell_s=10.0, good_dwell_s=10.0
    )
    values = {ch._fade_db(0, 1, float(t)) for t in range(0, 500, 5)}
    assert values == {0.0, -20.0}


def test_bimodal_fraction_zero_pairs_never_fade():
    ch = make_channel(bimodal_fraction=0.0)
    assert all(ch._fade_db(0, 1, float(t)) == 0.0 for t in range(0, 100, 10))


def test_bimodal_state_included_in_gain():
    always_faded = make_channel(
        bimodal_fraction=1.0,
        fade_depth_db=30.0,
        fade_dwell_s=1e9,
        good_dwell_s=1e-6,
        temporal_sigma_db=0.0,
    )
    # With a near-certain fade state the gain sits ~30 dB below the mean.
    gain = always_faded.gain_db(0, 1, 1000.0)
    mean = always_faded.mean_gain_db(0, 1)
    assert gain <= mean  # faded or (vanishingly unlikely) equal


def test_instantaneous_extra_combines_components():
    ch = make_channel(temporal_sigma_db=1.0, bimodal_fraction=0.0)
    extra = ch.instantaneous_extra_db(0, 1, 50.0)
    assert extra == pytest.approx(ch.temporal_db(0, 1, 50.0))
