"""Unit tests for hardware variation and burst interferers."""

import random

import pytest

from repro.phy.channel import ChannelModel
from repro.phy.noise import (
    BurstParams,
    MarkovInterferer,
    WindowedInterferer,
    apply_hardware_variation,
)
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.rng import RngManager


def test_hardware_variation_sets_offsets():
    radios = [Radio(node_id=i) for i in range(20)]
    apply_hardware_variation(radios, random.Random(1), tx_power_sigma_db=1.0)
    offsets = {r.tx_power_offset_db for r in radios}
    floors = {r.noise_floor_dbm for r in radios}
    assert len(offsets) > 1
    assert len(floors) > 1


def test_hardware_variation_centered_on_nominal():
    radios = [Radio(node_id=i) for i in range(500)]
    apply_hardware_variation(radios, random.Random(2), nominal_noise_floor_dbm=-98.0)
    mean_floor = sum(r.noise_floor_dbm for r in radios) / len(radios)
    assert mean_floor == pytest.approx(-98.0, abs=0.5)


def _medium_with_interferer_slot():
    engine = Engine()
    rng = RngManager(4)
    channel = ChannelModel({0: (0.0, 0.0)}, rng, temporal_sigma_db=0.0)
    channel.add_position(1000, (1.0, 0.0))
    medium = RadioMedium(engine, channel, rng)
    return engine, medium


def test_windowed_interferer_bursts_only_inside_windows():
    engine, medium = _medium_with_interferer_slot()
    source = WindowedInterferer(
        engine,
        medium,
        1000,
        -5.0,
        random.Random(1),
        burst=BurstParams(burst_min_s=0.001, burst_max_s=0.002, gap_mean_s=0.005),
        windows=[(10.0, 12.0)],
    )
    source.start()
    engine.run_until(9.9)
    assert source.bursts_sent == 0
    engine.run_until(12.5)
    assert source.bursts_sent > 10


def test_windowed_interferer_rejects_bad_window():
    engine, medium = _medium_with_interferer_slot()
    source = WindowedInterferer(
        engine, medium, 1000, -5.0, random.Random(1), windows=[(5.0, 5.0)]
    )
    with pytest.raises(ValueError):
        source.start()


def test_markov_interferer_eventually_bursts():
    engine, medium = _medium_with_interferer_slot()
    source = MarkovInterferer(
        engine,
        medium,
        1000,
        -5.0,
        random.Random(2),
        off_mean_s=5.0,
        on_mean_s=5.0,
        burst=BurstParams(burst_min_s=0.001, burst_max_s=0.002, gap_mean_s=0.01),
    )
    source.start()
    engine.run_until(120.0)
    assert source.bursts_sent > 0


def test_interferer_never_receives():
    engine, medium = _medium_with_interferer_slot()
    source = WindowedInterferer(
        engine, medium, 1000, -5.0, random.Random(1), windows=[(0.0, 1.0)]
    )
    with pytest.raises(AssertionError):
        source.on_frame_received(None, None)


def test_interferer_duty_cycle_statistics():
    engine, medium = _medium_with_interferer_slot()
    burst = BurstParams(burst_min_s=0.002, burst_max_s=0.002, gap_mean_s=0.008)
    source = WindowedInterferer(
        engine, medium, 1000, -5.0, random.Random(3), burst=burst, windows=[(0.0, 100.0)]
    )
    source.start()
    engine.run_until(100.0)
    # Expected burst rate ≈ 1 / (0.002 + 0.008) = 100/s over 100 s.
    assert 6000 < source.bursts_sent < 14000
