"""Unit tests for the LQI model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.lqi import DEFAULT_LQI_MODEL, LQI_MAX, LQI_MIN, LqiModel


def test_mean_lqi_saturates_high():
    model = LqiModel()
    assert model.mean_lqi(20.0) > LQI_MAX - 2


def test_mean_lqi_low_at_poor_snr():
    model = LqiModel()
    assert model.mean_lqi(-10.0) < LQI_MIN + 5


def test_mean_lqi_monotone():
    model = LqiModel()
    values = [model.mean_lqi(s) for s in range(-10, 25)]
    assert all(a <= b for a, b in zip(values, values[1:]))


def test_sample_within_hardware_range():
    model = LqiModel(noise_sigma=10.0)  # exaggerate noise to stress clamping
    rng = random.Random(1)
    for snr in (-20.0, 0.0, 5.0, 30.0):
        for _ in range(50):
            assert LQI_MIN <= model.sample(snr, rng) <= LQI_MAX


def test_sample_is_integer():
    rng = random.Random(2)
    assert isinstance(DEFAULT_LQI_MODEL.sample(8.0, rng), int)


def test_sample_deterministic_given_rng():
    a = DEFAULT_LQI_MODEL.sample(8.0, random.Random(7))
    b = DEFAULT_LQI_MODEL.sample(8.0, random.Random(7))
    assert a == b


def test_clean_channel_lqi_clears_white_threshold():
    """Packets received through a clean channel (SNR ≥ 12 dB) must mostly
    exceed the 105 LQI white-bit threshold — the saturation property the
    Figure 3 blindness relies on."""
    rng = random.Random(3)
    samples = [DEFAULT_LQI_MODEL.sample(14.0, rng) for _ in range(200)]
    high = sum(1 for s in samples if s >= 105)
    assert high / len(samples) > 0.9


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-30, max_value=40, allow_nan=False), st.integers(0, 2**32))
def test_property_samples_in_range(snr, seed):
    value = DEFAULT_LQI_MODEL.sample(snr, random.Random(seed))
    assert LQI_MIN <= value <= LQI_MAX
