"""Array kernels for the fast medium: parity with the scalar channel code."""

import math

import numpy as np
import pytest
from numpy.random import PCG64, Generator

from repro.phy.modulation import prr_fast
from repro.phy.vector import (
    PRR_TABLE_SNR_MAX_CENTI,
    PRR_TABLE_SNR_MIN_CENTI,
    dbm_to_mw,
    gilbert_advance,
    mean_field_extra_db,
    ou_advance,
    prr_lookup,
    prr_table,
)


# ----------------------------------------------------------------------
# PRR table/gather: bit-identical to the scalar fast path
# ----------------------------------------------------------------------
def test_prr_lookup_matches_scalar_prr_fast():
    table = prr_table("oqpsk-dsss", 44)
    snrs = np.asarray([-12.0, -8.0, -7.99, -3.2, 0.0, 1.234, 7.77, 24.99, 25.0, 30.0])
    vec = prr_lookup(table, snrs)
    for snr, p in zip(snrs.tolist(), vec.tolist()):
        assert p == prr_fast("oqpsk-dsss", snr, 44)  # exact equality


def test_prr_lookup_dense_sweep_bit_identical():
    table = prr_table("oqpsk-dsss", 28)
    centi = np.arange(PRR_TABLE_SNR_MIN_CENTI - 50, PRR_TABLE_SNR_MAX_CENTI + 50, 7)
    snrs = centi / 100.0
    vec = prr_lookup(table, snrs)
    for snr, p in zip(snrs.tolist(), vec.tolist()):
        assert p == prr_fast("oqpsk-dsss", snr, 28)


def test_prr_table_monotone_and_bounded():
    table = prr_table("oqpsk-dsss", 44)
    assert table.size == PRR_TABLE_SNR_MAX_CENTI - PRR_TABLE_SNR_MIN_CENTI + 1
    assert np.all(table >= 0.0) and np.all(table <= 1.0)
    assert np.all(np.diff(table) >= -1e-12)  # PRR never decreases with SNR


# ----------------------------------------------------------------------
# OU advance: marginal statistics and freeze behavior
# ----------------------------------------------------------------------
def test_ou_advance_freeze_keeps_state():
    x = np.asarray([1.0, -2.0])
    t_last = np.asarray([10.0, 10.0])
    gen = Generator(PCG64(1))
    out = ou_advance(x, t_last, np.arange(2), 10.0005, 60.0, 1.5, 0.6, gen)
    assert out.tolist() == [1.0, -2.0]  # within freeze window: untouched
    assert t_last.tolist() == [10.0, 10.0]


def test_ou_advance_long_horizon_stationary_std():
    n = 20000
    x = np.zeros(n)
    t_last = np.zeros(n)
    gen = Generator(PCG64(2))
    out = ou_advance(x, t_last, np.arange(n), 1000.0, 60.0, 1.5, 0.01, gen)
    # dt >> tau: the state is a fresh N(0, sigma) draw.
    assert abs(float(np.std(out)) - 1.5) < 0.05
    assert abs(float(np.mean(out))) < 0.05


def test_ou_advance_short_step_decay():
    n = 20000
    x = np.full(n, 3.0)
    t_last = np.zeros(n)
    gen = Generator(PCG64(3))
    dt = 6.0
    out = ou_advance(x, t_last, np.arange(n), dt, 60.0, 1.5, 0.01, gen)
    assert abs(float(np.mean(out)) - 3.0 * math.exp(-dt / 60.0)) < 0.05


# ----------------------------------------------------------------------
# Gilbert advance: stationary occupancy and short-dt stickiness
# ----------------------------------------------------------------------
def test_gilbert_advance_stationary_fraction():
    n = 20000
    faded = np.zeros(n, dtype=bool)
    t_last = np.zeros(n)
    gen = Generator(PCG64(4))
    out = gilbert_advance(faded, t_last, np.arange(n), 1e6, 80.0, 240.0, gen)
    pi_f = 80.0 / (80.0 + 240.0)
    assert abs(float(np.mean(out)) - pi_f) < 0.02


def test_gilbert_advance_short_dt_sticky():
    n = 20000
    faded = np.ones(n, dtype=bool)
    t_last = np.zeros(n)
    gen = Generator(PCG64(5))
    out = gilbert_advance(faded, t_last, np.arange(n), 0.01, 80.0, 240.0, gen)
    assert float(np.mean(out)) > 0.99  # dwell times are minutes, dt is 10 ms


# ----------------------------------------------------------------------
# Mean-field corrections and unit helpers
# ----------------------------------------------------------------------
def test_mean_field_extra_matches_closed_forms():
    ou, bim = mean_field_extra_db(1.5, 0.3, 15.0, 80.0, 240.0)
    assert ou == pytest.approx(1.5 * 1.5 * math.log(10.0) / 20.0)
    pi_f = 80.0 / 320.0
    factor = (1 - pi_f) + pi_f * 10 ** (-1.5)
    assert bim == pytest.approx(10.0 * math.log10(factor))
    ou0, bim0 = mean_field_extra_db(0.0, 0.0, 15.0, 80.0, 240.0)
    assert ou0 == 0.0 and bim0 == 0.0


def test_dbm_to_mw():
    assert dbm_to_mw(0.0) == pytest.approx(1.0)
    assert dbm_to_mw(-30.0) == pytest.approx(1e-3)
    vals = dbm_to_mw(np.asarray([10.0, -math.inf]))
    assert vals[0] == pytest.approx(10.0)
    assert vals[1] == 0.0
