"""Unit and property tests for the SNR→BER→PRR model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.modulation import (
    oqpsk_dsss_ber,
    prr_from_snr,
    prr_from_snr_fast,
    snr_for_prr,
)


def test_ber_high_snr_is_tiny():
    assert oqpsk_dsss_ber(15.0) < 1e-9


def test_ber_low_snr_is_large():
    assert oqpsk_dsss_ber(-5.0) > 0.05


def test_ber_monotone_decreasing():
    snrs = [-5 + 0.5 * i for i in range(40)]
    bers = [oqpsk_dsss_ber(s) for s in snrs]
    assert all(a >= b for a, b in zip(bers, bers[1:]))


def test_prr_bounds():
    assert prr_from_snr(20.0, 40) == pytest.approx(1.0, abs=1e-9)
    assert prr_from_snr(-10.0, 40) < 1e-3


def test_prr_monotone_in_snr():
    prrs = [prr_from_snr(s, 40) for s in [-2, 0, 2, 4, 6, 8]]
    assert all(a <= b for a, b in zip(prrs, prrs[1:]))


def test_longer_frames_are_harder():
    snr = 3.0
    assert prr_from_snr(snr, 120) < prr_from_snr(snr, 20)


def test_prr_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        prr_from_snr(5.0, 0)


def test_transition_region_location():
    # The O-QPSK/DSSS transition for ~40-byte frames sits in the −3..+1 dB
    # band (Zuniga & Krishnamachari, Fig. 2 of the TOSN paper).
    assert prr_from_snr(-3.0, 40) < 0.05
    assert prr_from_snr(-1.5, 40) < 0.6
    assert prr_from_snr(1.0, 40) > 0.95


def test_snr_for_prr_inverts():
    for target in (0.1, 0.5, 0.9, 0.99):
        snr = snr_for_prr(target, 40)
        assert prr_from_snr(snr, 40) == pytest.approx(target, abs=0.02)


def test_snr_for_prr_rejects_degenerate_targets():
    with pytest.raises(ValueError):
        snr_for_prr(0.0, 40)
    with pytest.raises(ValueError):
        snr_for_prr(1.0, 40)


def test_fast_path_matches_exact():
    for snr in [-6.0, -1.3, 0.0, 2.2, 3.7, 5.5, 9.1]:
        assert prr_from_snr_fast(snr, 46) == pytest.approx(
            prr_from_snr(snr, 46), abs=5e-3
        )


def test_fast_path_short_circuits():
    assert prr_from_snr_fast(20.0, 46) == 1.0
    assert prr_from_snr_fast(-15.0, 46) == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=-10, max_value=25, allow_nan=False),
    st.integers(min_value=1, max_value=200),
)
def test_property_prr_in_unit_interval(snr, length):
    value = prr_from_snr(snr, length)
    assert 0.0 <= value <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=-8, max_value=15, allow_nan=False),
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    st.integers(min_value=1, max_value=150),
)
def test_property_prr_monotone(snr, delta, length):
    assert prr_from_snr(snr + delta, length) >= prr_from_snr(snr, length)
