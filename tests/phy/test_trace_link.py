"""Unit tests for trace-driven links."""

import pytest

from repro.link.frame import BROADCAST, Frame, JamFrame
from repro.link.mac import Mac
from repro.phy.trace_link import LinkTrace, TraceMedium
from repro.sim.engine import Engine
from repro.sim.rng import RngManager

from tests.conftest import make_radio


def test_constant_trace():
    trace = LinkTrace.constant(0.7)
    assert trace.prr_at(0.0) == 0.7
    assert trace.prr_at(1e6) == 0.7


def test_piecewise_trace_lookup():
    trace = LinkTrace([(0.0, 1.0), (10.0, 0.2), (20.0, 0.9)])
    assert trace.prr_at(5.0) == 1.0
    assert trace.prr_at(10.0) == 0.2
    assert trace.prr_at(15.0) == 0.2
    assert trace.prr_at(25.0) == 0.9


def test_trace_before_first_segment():
    trace = LinkTrace([(5.0, 0.5)])
    assert trace.prr_at(0.0) == 0.5


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        LinkTrace([])


def test_unsorted_trace_rejected():
    with pytest.raises(ValueError):
        LinkTrace([(10.0, 0.5), (0.0, 1.0)])


def test_out_of_range_prr_rejected():
    with pytest.raises(ValueError):
        LinkTrace([(0.0, 1.5)])


def test_square_wave():
    trace = LinkTrace.square_wave(high=1.0, low=0.0, period_s=10.0, duty=0.5, end_s=30.0)
    assert trace.prr_at(2.0) == 1.0
    assert trace.prr_at(7.0) == 0.0
    assert trace.prr_at(12.0) == 1.0
    assert trace.prr_at(17.0) == 0.0


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("time,prr\n0.0,1.0\n10.0,0.25\n")
    trace = LinkTrace.from_csv(str(path))
    assert trace.prr_at(5.0) == 1.0
    assert trace.prr_at(11.0) == 0.25


def _build_pair(prr: float):
    engine = Engine()
    medium = TraceMedium(engine, RngManager(3))
    macs = {}
    for nid in (0, 1):
        mac = Mac(engine, medium, make_radio(nid), RngManager(3).stream("mac", nid))
        medium.attach(mac)
        macs[nid] = mac
    medium.set_symmetric_link(0, 1, LinkTrace.constant(prr))
    return engine, medium, macs


def test_trace_medium_perfect_link_delivers():
    engine, medium, macs = _build_pair(1.0)
    received = []
    macs[1].on_receive = lambda frame, info: received.append(frame)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert len(received) == 1


def test_trace_medium_dead_link_drops():
    engine, medium, macs = _build_pair(0.0)
    received = []
    macs[1].on_receive = lambda frame, info: received.append(frame)
    for _ in range(5):
        macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
    assert received == []


def test_trace_medium_intermediate_link_statistics():
    engine, medium, macs = _build_pair(0.5)
    received = []
    macs[1].on_receive = lambda frame, info: received.append(frame)
    n = 400
    for _ in range(n):
        macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
        engine.run()
    assert 0.4 < len(received) / n < 0.6


def test_trace_medium_ignores_jam_frames():
    engine, medium, macs = _build_pair(1.0)
    received = []
    macs[1].on_receive = lambda frame, info: received.append(frame)
    medium.start_transmission(0, JamFrame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert received == []


def test_trace_medium_rx_info_consistent_with_prr():
    """High-PRR links must report white-bit-worthy SNR/LQI."""
    engine, medium, macs = _build_pair(0.999)
    infos = []
    macs[1].on_receive = lambda frame, info: infos.append(info)
    macs[0].send(Frame(src=0, dst=BROADCAST, length_bytes=20))
    engine.run()
    assert infos and infos[0].snr_db > 4.0


def test_trace_medium_unicast_ack_roundtrip():
    engine, medium, macs = _build_pair(1.0)
    results = []
    macs[0].on_send_done = lambda frame, result: results.append(result)
    macs[0].send(Frame(src=0, dst=1, length_bytes=20))
    engine.run()
    assert len(results) == 1
    assert results[0].ack_bit
