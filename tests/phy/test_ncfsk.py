"""Unit tests for the NC-FSK (CC1000) modulation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.modulation import BER_MODELS, ncfsk_ber, oqpsk_dsss_ber, prr, prr_fast
from repro.phy.radio import CC1000, CC2420


def test_registry_contains_both_models():
    assert set(BER_MODELS) == {"oqpsk-dsss", "ncfsk"}


def test_ncfsk_worse_than_dsss_at_same_snr():
    """NC-FSK needs ~10 dB more SNR: the Mica2's famously gray links."""
    for snr in (0.0, 3.0, 6.0):
        assert ncfsk_ber(snr) > oqpsk_dsss_ber(snr)


def test_ncfsk_transition_region():
    assert prr("ncfsk", 5.0, 40) < 0.2
    assert prr("ncfsk", 15.0, 40) > 0.95


def test_ncfsk_monotone():
    bers = [ncfsk_ber(s) for s in range(-5, 25)]
    assert all(a >= b for a, b in zip(bers, bers[1:]))


def test_ncfsk_bounds():
    assert 0.0 <= ncfsk_ber(-30.0) <= 0.5
    assert ncfsk_ber(40.0) < 1e-12


def test_prr_unknown_modulation_raises():
    with pytest.raises(KeyError):
        prr("qam4096", 10.0, 40)


def test_prr_fast_matches_exact_for_ncfsk():
    for snr in (6.0, 9.5, 12.2):
        assert prr_fast("ncfsk", snr, 50) == pytest.approx(prr("ncfsk", snr, 50), abs=5e-3)


def test_radio_params_declare_modulation():
    assert CC2420.modulation == "oqpsk-dsss"
    assert CC1000.modulation == "ncfsk"


def test_cc1000_bitrate_and_overhead():
    assert CC1000.bitrate_bps == 19_200.0
    # 40-byte frame: (40 + 10) · 8 / 19200 ≈ 20.8 ms.
    assert CC1000.airtime(40) == pytest.approx(0.02083, rel=0.01)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=-10, max_value=30, allow_nan=False), st.integers(1, 200))
def test_property_ncfsk_prr_in_unit_interval(snr, length):
    assert 0.0 <= prr("ncfsk", snr, length) <= 1.0
