"""Unit tests for the synthetic testbed profiles."""

import pytest

from repro.topology.testbeds import MIRAGE, PROFILES, TUTORNET, scaled_profile


def test_mirage_size_matches_paper():
    assert MIRAGE.n_nodes == 85
    assert MIRAGE.topology(seed=1).size == 85


def test_tutornet_size_matches_paper():
    assert TUTORNET.n_nodes == 94
    assert TUTORNET.topology(seed=1).size == 94


def test_profiles_registry():
    assert PROFILES["mirage"] is MIRAGE
    assert PROFILES["tutornet"] is TUTORNET


def test_topology_reproducible_per_seed():
    a = MIRAGE.topology(seed=5)
    b = MIRAGE.topology(seed=5)
    assert a.positions == b.positions
    assert MIRAGE.topology(seed=6).positions != a.positions


def test_tutornet_noisier_than_mirage():
    """The paper's Tutornet results are worse across the board; our profile
    encodes that as a harsher channel."""
    assert TUTORNET.shadowing_sigma_db >= MIRAGE.shadowing_sigma_db
    assert TUTORNET.temporal_sigma_db >= MIRAGE.temporal_sigma_db
    assert TUTORNET.bimodal_fraction >= MIRAGE.bimodal_fraction
    assert len(TUTORNET.interferers) >= len(MIRAGE.interferers)


def test_sink_in_corner():
    topo = MIRAGE.topology(seed=1)
    assert topo.positions[topo.sink] == (0.0, 0.0)


def test_scaled_profile_preserves_density():
    small = scaled_profile(MIRAGE, 30)
    assert small.n_nodes == 30
    base_density = MIRAGE.n_nodes / (MIRAGE.width_m * MIRAGE.height_m)
    new_density = small.n_nodes / (small.width_m * small.height_m)
    assert new_density == pytest.approx(base_density, rel=0.01)


def test_scaled_profile_moves_interferers():
    small = scaled_profile(MIRAGE, 30)
    for orig, scaled in zip(MIRAGE.interferers, small.interferers):
        assert scaled.position[0] < orig.position[0]
        assert scaled.power_dbm == orig.power_dbm


def test_scaled_profile_topology_builds():
    small = scaled_profile(TUTORNET, 25)
    assert small.topology(seed=2).size == 25
