"""Unit tests for topology generators."""

import math
import random

import pytest

from repro.topology.generators import Topology, grid, line, pair, random_uniform


def test_grid_size_and_spacing():
    topo = grid(4, 3, spacing_m=5.0)
    assert topo.size == 12
    assert topo.positions[0] == (0.0, 0.0)
    assert topo.positions[1] == (5.0, 0.0)
    assert topo.positions[4] == (0.0, 5.0)


def test_grid_corner_sink():
    topo = grid(4, 3, spacing_m=5.0, sink="corner")
    assert topo.sink == 0


def test_grid_center_sink():
    topo = grid(5, 5, spacing_m=1.0, sink="center")
    assert topo.sink == 12  # middle of a 5×5


def test_grid_jitter_requires_rng():
    with pytest.raises(ValueError):
        grid(2, 2, spacing_m=5.0, jitter_m=1.0)


def test_grid_jitter_bounded():
    topo = grid(5, 5, spacing_m=10.0, rng=random.Random(1), jitter_m=1.0)
    for nid, (x, y) in topo.positions.items():
        i, j = nid % 5, nid // 5
        assert abs(x - i * 10.0) <= 1.0
        assert abs(y - j * 10.0) <= 1.0


@pytest.mark.parametrize("nx,ny", [(0, 3), (3, 0), (-1, 2)])
def test_grid_rejects_bad_dimensions(nx, ny):
    with pytest.raises(ValueError):
        grid(nx, ny, spacing_m=1.0)


def test_random_uniform_count_and_bounds():
    topo = random_uniform(40, 30.0, 20.0, random.Random(3))
    assert topo.size == 40
    for x, y in topo.positions.values():
        assert 0.0 <= x <= 30.0
        assert 0.0 <= y <= 20.0


def test_random_uniform_min_separation():
    topo = random_uniform(30, 50.0, 50.0, random.Random(3), min_separation_m=2.0)
    ids = topo.node_ids()
    for i in ids:
        for j in ids:
            if i < j and not (0 in (i, j)):  # sink was re-anchored
                assert topo.distance(i, j) >= 2.0


def test_random_uniform_sink_anchored_at_corner():
    topo = random_uniform(10, 30.0, 20.0, random.Random(3), sink="corner")
    assert topo.positions[0] == (0.0, 0.0)
    assert topo.sink == 0


def test_random_uniform_sink_center():
    topo = random_uniform(10, 30.0, 20.0, random.Random(3), sink="center")
    assert topo.positions[0] == (15.0, 10.0)


def test_random_uniform_reproducible():
    a = random_uniform(20, 30.0, 20.0, random.Random(9))
    b = random_uniform(20, 30.0, 20.0, random.Random(9))
    assert a.positions == b.positions


def test_random_uniform_impossible_separation():
    with pytest.raises(RuntimeError):
        random_uniform(100, 2.0, 2.0, random.Random(1), min_separation_m=5.0)


def test_random_uniform_rejects_tiny_n():
    with pytest.raises(ValueError):
        random_uniform(1, 10.0, 10.0, random.Random(1))


def test_random_uniform_bad_sink_anchor():
    with pytest.raises(ValueError):
        random_uniform(5, 10.0, 10.0, random.Random(1), sink="edge")


def test_line():
    topo = line(5, spacing_m=3.0)
    assert topo.size == 5
    assert topo.distance(0, 4) == pytest.approx(12.0)


def test_pair():
    topo = pair(7.5)
    assert topo.size == 2
    assert topo.distance(0, 1) == pytest.approx(7.5)


def test_topology_rejects_missing_sink():
    with pytest.raises(ValueError):
        Topology(name="bad", positions={1: (0, 0)}, sink=0)


def test_bounding_box():
    topo = grid(3, 2, spacing_m=4.0)
    assert topo.bounding_box() == (0.0, 0.0, 8.0, 4.0)
