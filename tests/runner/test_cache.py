"""On-disk result cache: round-trip, corruption, clearing."""

import pickle

from repro.runner.cache import MISS, ResultCache


def test_miss_then_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    digest = "ab" + "0" * 30
    assert cache.get(digest) is MISS
    assert digest not in cache
    cache.put(digest, {"cost": 1.5, "runs": [1, 2, 3]})
    assert cache.get(digest) == {"cost": 1.5, "runs": [1, 2, 3]}
    assert digest in cache
    assert len(cache) == 1


def test_cached_none_is_not_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("cd" + "0" * 30, None)
    assert cache.get("cd" + "0" * 30) is None


def test_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    digest = "ef" + "0" * 30
    cache.put(digest, [1, 2])
    path = cache.path_for(digest)
    path.write_bytes(b"\x80\x04 definitely not a pickle")
    assert cache.get(digest) is MISS
    # Overwriting repairs the entry.
    cache.put(digest, [3])
    assert cache.get(digest) == [3]


def test_put_is_atomic_no_temp_litter(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("01" + "0" * 30, list(range(100)))
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".pkl"]
    assert leftovers == []


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(f"{i:02d}" + "0" * 30, i)
    assert len(cache) == 5
    assert cache.clear() == 5
    assert len(cache) == 0
    assert cache.get("00" + "0" * 30) is MISS


def test_empty_cache_is_still_a_cache(tmp_path):
    """`len(cache) == 0` makes the object falsy; constructors must not use
    `cache or None` (regression: the CLI silently dropped fresh caches)."""
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    assert (cache or None) is None  # this is WHY identity checks are required

    from repro.runner.runner import ExperimentRunner

    runner = ExperimentRunner(cache=cache)
    assert runner.cache is cache


def test_torn_write_is_a_miss_not_a_phantom_hit(tmp_path):
    """Regression: ``__contains__`` used to be a bare ``path.exists()``, so a
    truncated entry (power loss mid-write before the atomic rename landed,
    or a partially copied cache dir) answered "present" while ``get``
    answered MISS — sweeps then recorded cache hits with no result and
    campaigns resumed with holes.  Membership must mean *readable*."""
    cache = ResultCache(tmp_path)
    digest = "aa" + "0" * 30
    cache.put(digest, {"objective": 1.0})
    assert digest in cache

    # Tear the entry: keep the file, destroy the payload.
    path = cache.path_for(digest)
    path.write_bytes(path.read_bytes()[: max(1, len(path.read_bytes()) // 2)])

    assert cache.get(digest) is MISS
    assert digest not in cache  # membership and get() agree

    # The runner treats the torn entry as never-ran and re-executes.
    from repro.runner.runner import ExperimentRunner, Task

    runner = ExperimentRunner(cache=cache, telemetry=None)
    task = Task(fn=_double, arg=21)
    cache.put(task.digest(), 42)
    torn = cache.path_for(task.digest())
    torn.write_bytes(b"\x80")
    (result,) = runner.run([task])
    assert result == 42
    assert runner.stats.executed == 1 and runner.stats.cache_hits == 0
    assert cache.get(task.digest()) == 42  # and the entry healed


def _double(x):
    return x * 2
