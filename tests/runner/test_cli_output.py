"""Stream-discipline tests for the sweep CLI: `--json -` must own stdout."""

import json

import pytest

from repro.runner.__main__ import main

ARGS = [
    "--protocols", "4b",
    "--powers", "0",
    "--seeds", "1",
    "--nodes", "8",
    "--minutes", "2.5",
    "--warmup", "1",
    "--no-cache",
]


def test_json_stdout_is_pure(capsys):
    assert main(ARGS + ["--json", "-", "--profile-events"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # nothing but JSON on stdout
    assert payload["cells"]
    assert payload["runner"]["executed"] == 1
    assert payload["runner"]["profile"]["events"] > 0
    assert payload["cells"][0]["profile"]["runs"] == 1
    # Humans still get their rows — on stderr.
    assert "cost=" in captured.err
    assert "[runner]" in captured.err
    assert "[profile]" in captured.err


def test_quiet_suppresses_everything_but_json(capsys):
    assert main(ARGS + ["--quiet", "--json", "-"]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)
    assert "cost=" not in captured.err
    assert "[runner]" not in captured.err


def test_default_rows_on_stdout(capsys):
    assert main(ARGS) == 0
    captured = capsys.readouterr()
    assert "cost=" in captured.out  # human mode keeps rows on stdout
    assert "[runner]" in captured.err  # but stats always go to stderr


def test_json_file_keeps_stdout_clean(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    assert main(ARGS + ["--quiet", "--json", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    payload = json.loads(out_path.read_text())
    assert payload["cells"]


def test_mobility_flag_runs_and_rejects_unknown(tmp_path, capsys):
    assert main(ARGS + ["--quiet", "--mobility", "pedestrian", "--medium", "fast"]) == 0
    capsys.readouterr()
    # A MobilityConfig JSON file works too (content, not path, is digested).
    config = tmp_path / "mob.json"
    config.write_text(
        '{"speed_min_mps": 1.0, "speed_max_mps": 2.0, "pause_mean_s": 5.0,'
        ' "update_period_s": 2.0, "fraction_mobile": 0.5}'
    )
    assert main(ARGS + ["--quiet", "--mobility", str(config), "--medium", "fast"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(ARGS + ["--mobility", "warp-drive"])
    assert "--mobility" in capsys.readouterr().err
