"""ExperimentRunner: serial/parallel equivalence, caching, crash isolation.

The worker functions live at module top level so the process pool can
pickle them by reference.
"""

import time

import pytest

from repro.experiments.common import ExperimentScale, RunSpec, run_specs
from repro.runner import (
    ExperimentRunner,
    ResultCache,
    RunnerError,
    Task,
)

MICRO = ExperimentScale(n_nodes=10, duration_s=120.0, warmup_s=30.0, seeds=(1, 2))


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad input {x}")


def _boom_if_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def _sleep_then_return(seconds):
    time.sleep(seconds)
    return seconds


def _tasks(fn, args):
    return [Task(fn, a, label=f"{fn.__name__}({a})") for a in args]


# ----------------------------------------------------------------------
# Core semantics
# ----------------------------------------------------------------------
def test_serial_results_in_order():
    runner = ExperimentRunner()
    assert runner.run(_tasks(_square, [1, 2, 3])) == [1, 4, 9]
    assert runner.stats.executed == 3
    assert runner.stats.cache_hits == 0


def test_parallel_results_in_order():
    runner = ExperimentRunner(workers=2)
    assert runner.run(_tasks(_square, list(range(10)))) == [x * x for x in range(10)]
    assert runner.stats.executed == 10


def test_in_batch_dedup_executes_once():
    runner = ExperimentRunner()
    results = runner.run(_tasks(_square, [7, 7, 7]))
    assert results == [49, 49, 49]
    assert runner.stats.executed == 1
    assert runner.stats.total == 3


def test_chunked_submission_handles_more_tasks_than_chunk():
    runner = ExperimentRunner(workers=2, chunk_size=3)
    args = list(range(20))
    assert runner.run(_tasks(_square, args)) == [x * x for x in args]


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_second_run_is_all_cache_hits(tmp_path):
    cache = ResultCache(tmp_path)
    first = ExperimentRunner(cache=cache)
    assert first.run(_tasks(_square, [2, 3])) == [4, 9]
    assert first.stats.executed == 2

    second = ExperimentRunner(cache=cache)
    assert second.run(_tasks(_square, [2, 3])) == [4, 9]
    assert second.stats.executed == 0
    assert second.stats.cache_hits == 2
    assert second.stats.hit_rate == 1.0


def test_cache_key_includes_function_identity(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(cache=cache)
    runner.run(_tasks(_square, [2]))
    # Same argument, different function → not a hit.
    assert runner.run([Task(_sleep_then_return, 0)]) == [0]
    assert runner.stats.cache_hits == 0


def test_failures_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(cache=cache, strict=False)
    assert runner.run(_tasks(_boom, [1])) == [None]
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
def test_strict_raises_after_sweep_completes():
    runner = ExperimentRunner()
    with pytest.raises(RunnerError) as err:
        runner.run(_tasks(_boom_if_odd, [0, 1, 2, 3]))
    assert len(err.value.failures) == 2
    # The even runs still executed before the error surfaced.
    assert runner.stats.executed == 2
    assert "odd input 1" in str(err.value)


def test_non_strict_yields_none_slots():
    runner = ExperimentRunner(strict=False)
    assert runner.run(_tasks(_boom_if_odd, [0, 1, 2, 3])) == [0, None, 2, None]
    assert [f.label for f in runner.stats.failures] == [
        "_boom_if_odd(1)",
        "_boom_if_odd(3)",
    ]


def test_parallel_failures_isolated():
    runner = ExperimentRunner(workers=2, strict=False)
    results = runner.run(_tasks(_boom_if_odd, list(range(8))))
    assert results == [0, None, 2, None, 4, None, 6, None]


def test_timeout_kills_run_not_sweep():
    runner = ExperimentRunner(timeout_s=0.2, strict=False)
    results = runner.run(
        [Task(_sleep_then_return, 2.0, label="slow"), Task(_square, 4, label="fast")]
    )
    assert results == [None, 16]
    assert runner.stats.failures[0].label == "slow"
    assert "timed out" in runner.stats.failures[0].error


# ----------------------------------------------------------------------
# Serial vs parallel equivalence on real simulator runs (the ISSUE's
# correctness bar: parallel output must be numerically identical).
# ----------------------------------------------------------------------
def test_simulation_serial_parallel_equivalence():
    specs = [
        RunSpec.build(MICRO, proto, seed)
        for proto in ("4b", "mhlqi")
        for seed in MICRO.seeds
    ]
    serial = run_specs(specs, ExperimentRunner(workers=1))
    parallel = run_specs(specs, ExperimentRunner(workers=2))
    assert serial == parallel  # dataclass equality: every field, every float


def test_simulation_cache_returns_identical_result(tmp_path):
    spec = RunSpec.build(MICRO, "4b", 1)
    cache = ResultCache(tmp_path)
    fresh = run_specs([spec], ExperimentRunner(cache=cache))[0]
    cached_runner = ExperimentRunner(cache=cache)
    cached = run_specs([spec], cached_runner)[0]
    assert cached_runner.stats.cache_hits == 1
    assert cached == fresh


def test_totals_accumulate_across_batches():
    runner = ExperimentRunner()
    runner.run(_tasks(_square, [1, 2]))
    runner.run(_tasks(_square, [3]))
    assert runner.totals.total == 3
    assert runner.totals.executed == 3
    assert runner.stats.total == 1  # per-batch stats reset


def test_fast_medium_serial_parallel_equivalence_with_faults():
    # The vectorized backend must stay a pure function of the seed across
    # process boundaries, fault injection included: a worker process and
    # the parent must produce numerically identical runs.
    specs = [
        RunSpec.build(MICRO, "4b", seed, medium="fast", faults="flaky_burst")
        for seed in MICRO.seeds
    ]
    serial = run_specs(specs, ExperimentRunner(workers=1))
    parallel = run_specs(specs, ExperimentRunner(workers=2))
    assert serial == parallel
