"""Canonical hashing: stability, order-independence, type distinctions."""

import dataclasses

import pytest

from repro.runner.hashing import CACHE_SCHEMA_VERSION, canonical_bytes, config_digest


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: float


@dataclasses.dataclass(frozen=True)
class Other:
    x: int
    y: float


def test_digest_is_stable_across_calls():
    value = {"a": [1, 2.5, "s"], "b": (None, True)}
    assert config_digest(value) == config_digest(value)


def test_dict_key_order_does_not_matter():
    assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})


def test_distinct_values_distinct_digests():
    digests = {
        config_digest(v)
        for v in (None, True, False, 0, 1, "1", 1.0, (1,), [1], {"a": 1}, b"1")
    }
    assert len(digests) == 11  # bool != int, str != int, int != float, etc.


def test_nested_structure_matters():
    assert config_digest([1, [2, 3]]) != config_digest([[1, 2], 3])
    assert config_digest(("ab", "c")) != config_digest(("a", "bc"))


def test_dataclass_identity_includes_type_and_fields():
    assert config_digest(Point(1, 2.0)) == config_digest(Point(1, 2.0))
    assert config_digest(Point(1, 2.0)) != config_digest(Point(1, 3.0))
    # Same field values, different class → different digest.
    assert config_digest(Point(1, 2.0)) != config_digest(Other(1, 2.0))


def test_schema_version_salts_digest():
    value = {"a": 1}
    assert config_digest(value, schema_version=CACHE_SCHEMA_VERSION) != config_digest(
        value, schema_version=CACHE_SCHEMA_VERSION + 1
    )


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        canonical_bytes(object())
    with pytest.raises(TypeError):
        config_digest({"fn": lambda: None})


def test_canonical_bytes_golden():
    """Pin the encoding itself: a silent change would orphan every cache."""
    assert canonical_bytes(None) == b"n"
    assert canonical_bytes(True) == b"b1"
    assert canonical_bytes(False) == b"b0"
    assert canonical_bytes(0).startswith(b"i")
    assert canonical_bytes("x").startswith(b"s")
