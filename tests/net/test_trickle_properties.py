"""Property-based invariants of the Trickle timer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ctp.trickle import TrickleTimer
from repro.sim.engine import Engine


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, 2**31),
    st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
    st.integers(1, 6),
)
def test_property_gaps_bounded_by_interval_dynamics(seed, i_min, doublings):
    """Every inter-fire gap lies in [I/2 of the previous interval, I_max]."""
    i_max = i_min * (2**doublings)
    engine = Engine()
    fires = []
    timer = TrickleTimer(engine, lambda: fires.append(engine.now), random.Random(seed),
                         i_min_s=i_min, i_max_s=i_max)
    timer.start()
    engine.run_until(i_max * 20)
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    assert fires, "the timer must fire"
    assert all(gap <= i_max + 1e-9 for gap in gaps)
    assert all(gap >= i_min / 2 - 1e-9 for gap in gaps)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31), st.lists(st.floats(1.0, 50.0, allow_nan=False), min_size=1, max_size=5))
def test_property_reset_always_fires_within_i_min(seed, reset_times):
    engine = Engine()
    fires = []
    timer = TrickleTimer(engine, lambda: fires.append(engine.now), random.Random(seed),
                         i_min_s=1.0, i_max_s=64.0)
    timer.start()
    for t in sorted(reset_times):
        engine.run_until(max(t, engine.now))
        timer.reset()
        count = len(fires)
        engine.run_until(engine.now + 1.0)
        assert len(fires) > count, "a reset must produce a fire within i_min"


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31))
def test_property_stop_is_final_until_restart(seed):
    engine = Engine()
    fires = []
    timer = TrickleTimer(engine, lambda: fires.append(engine.now), random.Random(seed))
    timer.start()
    engine.run_until(0.2)
    timer.stop()
    count = len(fires)
    engine.run_until(100.0)
    assert len(fires) == count
