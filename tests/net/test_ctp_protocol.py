"""Unit tests for the CTP protocol facade (estimator-client dispatch)."""

import random

import pytest

from repro.core.estimator import EstimatorConfig, HybridLinkEstimator
from repro.link.mac import Mac
from repro.net.ctp.frames import make_data_frame, make_routing_frame
from repro.net.ctp.protocol import CtpConfig, CtpProtocol
from repro.phy.radio import CC1000, CC2420

from tests.conftest import PerfectMedium, make_radio, make_rx_info


def build(engine, medium, node_id=3, is_root=False):
    mac = Mac(engine, medium, make_radio(node_id), random.Random(1))
    medium.attach(mac)
    estimator = HybridLinkEstimator(mac, EstimatorConfig(), random.Random(2))
    protocol = CtpProtocol(engine, estimator, node_id, is_root, random.Random(3))
    return protocol, estimator


def test_facade_wires_estimator_client(engine, perfect_medium):
    protocol, estimator = build(engine, perfect_medium)
    assert estimator.client is protocol
    assert estimator.compare_provider is protocol.routing


def test_routing_frames_dispatch_to_routing(engine, perfect_medium):
    protocol, _ = build(engine, perfect_medium)
    frame = make_routing_frame(src=7, parent=0, path_etx=1.0)
    protocol.on_receive(frame, make_rx_info(), 7)
    assert 7 in protocol.routing.route_info


def test_data_frames_dispatch_to_forwarding(engine, perfect_medium):
    protocol, _ = build(engine, perfect_medium, is_root=True)
    delivered = []
    protocol.forwarding.on_deliver = lambda *a: delivered.append(a)
    frame = make_data_frame(src=7, dst=3, origin=9, origin_seq=4, thl=1, etx_at_sender=2.0)
    protocol.on_receive(frame, make_rx_info(), 7)
    assert delivered == [(9, 4, 1, engine.now, 0.0)]


def test_send_done_dispatches_only_data(engine, perfect_medium):
    protocol, _ = build(engine, perfect_medium)
    beacon = make_routing_frame(src=3, parent=0, path_etx=1.0)
    # Must be a no-op (no crash, no queue interaction).
    protocol.on_send_done(beacon, sent=True, acked=False)


def test_properties_delegate(engine, perfect_medium):
    protocol, _ = build(engine, perfect_medium, is_root=True)
    assert protocol.is_root
    assert protocol.parent is None
    assert protocol.path_etx() == 0.0


def test_scaled_config_matches_cc2420_defaults():
    scaled = CtpConfig.scaled_for(CC2420)
    stock = CtpConfig()
    assert scaled.forwarding.retry_min_s == pytest.approx(stock.forwarding.retry_min_s, rel=0.15)
    assert scaled.forwarding.retry_max_s == pytest.approx(stock.forwarding.retry_max_s, rel=0.15)
    assert scaled.routing.beacon_i_min_s == pytest.approx(stock.routing.beacon_i_min_s, rel=0.15)


def test_scaled_config_stretches_for_cc1000():
    scaled = CtpConfig.scaled_for(CC1000)
    stock = CtpConfig()
    assert scaled.forwarding.retry_min_s > 10 * stock.forwarding.retry_min_s
    assert scaled.routing.beacon_i_min_s > 1.0
