"""Unit tests for the CTP routing engine (parent selection + 2 network bits)."""

import math
import random

import pytest

from repro.net.ctp.frames import NO_PARENT, make_routing_frame
from repro.net.ctp.routing import CtpRoutingConfig, CtpRoutingEngine
from repro.sim.engine import Engine

from tests.conftest import make_rx_info
from tests.net.helpers import FakeEstimator


def make_engine(engine, qualities=None, is_root=False, node_id=10, **config):
    estimator = FakeEstimator(qualities)
    routing = CtpRoutingEngine(
        engine,
        estimator,
        node_id=node_id,
        is_root=is_root,
        rng=random.Random(5),
        config=CtpRoutingConfig(**config),
    )
    return routing, estimator


def hear(routing, src, parent, path_etx, pull=False):
    frame = make_routing_frame(src=src, parent=parent, path_etx=path_etx, pull=pull)
    routing.on_beacon_received(frame, make_rx_info(), src)


def test_root_path_etx_zero(engine):
    routing, _ = make_engine(engine, is_root=True)
    assert routing.path_etx() == 0.0


def test_no_route_is_infinite(engine):
    routing, _ = make_engine(engine)
    assert math.isinf(routing.path_etx())
    assert routing.parent is None


def test_selects_min_cost_parent(engine):
    routing, est = make_engine(engine, qualities={1: 1.0, 2: 1.0})
    hear(routing, 1, parent=0, path_etx=2.0)
    hear(routing, 2, parent=0, path_etx=0.0)
    assert routing.parent == 2
    assert routing.path_etx() == pytest.approx(1.0)


def test_parent_is_pinned(engine):
    routing, est = make_engine(engine, qualities={1: 1.0})
    hear(routing, 1, parent=0, path_etx=0.0)
    assert est.pinned == {1}


def test_switch_unpins_old_parent(engine):
    routing, est = make_engine(engine, qualities={1: 1.0, 2: 1.0})
    hear(routing, 1, parent=0, path_etx=5.0)
    assert routing.parent == 1
    hear(routing, 2, parent=0, path_etx=0.0)
    assert routing.parent == 2
    assert est.pinned == {2}


def test_hysteresis_prevents_marginal_switch(engine):
    routing, est = make_engine(engine, qualities={1: 1.0, 2: 1.0}, parent_switch_threshold=1.5)
    hear(routing, 1, parent=0, path_etx=1.0)
    assert routing.parent == 1  # cost 2.0
    hear(routing, 2, parent=0, path_etx=0.0)  # cost 1.0, gain 1.0 < 1.5
    assert routing.parent == 1
    hear(routing, 2, parent=0, path_etx=0.0)
    est.set_quality(1, 3.0)  # old parent degrades: cost 4.0 vs 1.0
    routing.update_route()
    assert routing.parent == 2


def test_high_etx_links_unusable(engine):
    routing, _ = make_engine(engine, qualities={1: 50.0}, max_link_etx=10.0)
    hear(routing, 1, parent=0, path_etx=0.0)
    assert routing.parent is None


def test_neighbor_advertising_me_as_parent_skipped(engine):
    routing, _ = make_engine(engine, qualities={1: 1.0}, node_id=10)
    hear(routing, 1, parent=10, path_etx=3.0)  # immediate loop
    assert routing.parent is None


def test_root_never_selects_parent(engine):
    routing, _ = make_engine(engine, qualities={1: 1.0}, is_root=True)
    hear(routing, 1, parent=0, path_etx=0.0)
    assert routing.parent is None


def test_compare_bit_true_when_better_than_current_route(engine):
    routing, _ = make_engine(engine, qualities={1: 2.0}, compare_new_link_etx=1.0)
    hear(routing, 1, parent=0, path_etx=4.0)  # my cost: 6.0
    frame = make_routing_frame(src=9, parent=0, path_etx=2.0)  # 2+1 < 6
    assert routing.compare_bit(frame, make_rx_info())
    assert routing.stats.compare_true == 1


def test_compare_bit_false_when_worse(engine):
    routing, _ = make_engine(engine, qualities={1: 1.0})
    hear(routing, 1, parent=0, path_etx=0.0)  # my cost 1.0
    frame = make_routing_frame(src=9, parent=0, path_etx=3.0)
    assert not routing.compare_bit(frame, make_rx_info())


def test_compare_bit_true_when_no_route(engine):
    routing, _ = make_engine(engine)
    frame = make_routing_frame(src=9, parent=0, path_etx=7.0)
    assert routing.compare_bit(frame, make_rx_info())


def test_compare_bit_false_for_unrouted_beacon(engine):
    routing, _ = make_engine(engine)
    frame = make_routing_frame(src=9, parent=NO_PARENT, path_etx=math.inf)
    assert not routing.compare_bit(frame, make_rx_info())


def test_compare_bit_false_for_non_routing_frames(engine):
    from repro.link.frame import NetworkFrame

    routing, _ = make_engine(engine)
    assert not routing.compare_bit(NetworkFrame(src=1, dst=2, length_bytes=5), make_rx_info())


def test_beacons_carry_route_state(engine):
    routing, est = make_engine(engine, qualities={1: 1.5})
    routing.start()
    hear(routing, 1, parent=0, path_etx=0.0)
    engine.run_until(0.5)
    assert est.sent, "a beacon should have gone out"
    latest = est.sent[-1]
    assert latest.parent == 1
    assert latest.path_etx == pytest.approx(1.5)


def test_routeless_beacons_set_pull(engine):
    routing, est = make_engine(engine)
    routing.start()
    engine.run_until(0.5)
    assert est.sent
    assert est.sent[-1].pull


def test_beacon_retry_when_mac_busy(engine):
    routing, est = make_engine(engine)
    est.accept_sends = False
    routing.start()
    engine.run_until(0.2)
    est.accept_sends = True
    engine.run_until(1.0)
    assert est.sent  # the retry got through


def test_pull_beacon_resets_trickle(engine):
    routing, _ = make_engine(engine, qualities={1: 1.0}, is_root=True)
    before = routing.trickle.resets
    hear(routing, 1, parent=0, path_etx=2.0, pull=True)
    assert routing.trickle.resets == before + 1


def test_loop_signal_resets_trickle_and_sets_pull(engine):
    routing, est = make_engine(engine, qualities={1: 1.0})
    hear(routing, 1, parent=0, path_etx=0.0)
    routing.start()
    before = routing.trickle.resets
    routing.signal_loop_suspected()
    assert routing.trickle.resets == before + 1
    assert routing.stats.loop_signals == 1


def test_first_route_triggers_callback(engine):
    routing, _ = make_engine(engine)
    found = []
    routing.on_route_found = lambda: found.append(True)
    hear(routing, 1, parent=0, path_etx=0.0)
    assert not found  # neighbor not in estimator table → unusable
    routing.estimator.set_quality(1, 1.0)
    routing.update_route()
    assert found == [True]
