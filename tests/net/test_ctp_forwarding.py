"""Unit tests for the CTP forwarding engine."""

import math
import random

import pytest

from repro.net.ctp.forwarding import CtpForwardingConfig, CtpForwardingEngine
from repro.net.ctp.frames import make_data_frame
from repro.net.ctp.routing import CtpRoutingConfig, CtpRoutingEngine

from tests.net.helpers import FakeEstimator
from tests.conftest import make_rx_info


def build(engine, qualities=None, is_root=False, node_id=10, **fwd_config):
    estimator = FakeEstimator(qualities)
    routing = CtpRoutingEngine(
        engine, estimator, node_id=node_id, is_root=is_root, rng=random.Random(5)
    )
    forwarding = CtpForwardingEngine(
        engine,
        estimator,
        routing,
        node_id=node_id,
        rng=random.Random(6),
        config=CtpForwardingConfig(**fwd_config),
    )
    return forwarding, routing, estimator


def give_route(routing, neighbor=1, path_etx=0.0):
    from repro.net.ctp.frames import make_routing_frame

    routing.on_beacon_received(
        make_routing_frame(src=neighbor, parent=0, path_etx=path_etx), make_rx_info(), neighbor
    )


def data_sent(est):
    from repro.net.ctp.frames import CtpDataFrame

    return [f for f in est.sent if isinstance(f, CtpDataFrame)]


def data(origin=50, seq=0, thl=0, etx=10.0):
    return make_data_frame(
        src=99, dst=10, origin=origin, origin_seq=seq, thl=thl, etx_at_sender=etx
    )


def test_app_send_transmits_to_parent(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing)
    assert fwd.send_from_app()
    engine.run_until(1.0)
    sent = data_sent(est)
    assert len(sent) == 1
    assert sent[0].dst == 1
    assert sent[0].origin == 10


def test_ack_dequeues_and_counts(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing)
    fwd.send_from_app()
    engine.run_until(1.0)
    fwd.on_send_done(data_sent(est)[0], sent=True, acked=True)
    engine.run_until(2.0)
    assert fwd.queue_length == 0
    assert fwd.stats.tx_acked == 1


def test_noack_retries_until_limit(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0}, max_retries=3)
    give_route(routing)
    fwd.send_from_app()
    engine.run_until(1.0)
    seen = 0
    for _ in range(10):
        pending = data_sent(est)
        if len(pending) <= seen:
            break
        seen = len(pending)
        fwd.on_send_done(pending[-1], sent=True, acked=False)
        engine.run_until(engine.now + 1.0)
    assert fwd.stats.drops_retries == 1
    assert fwd.queue_length == 0
    # 1 initial + 3 retries
    assert fwd.stats.tx_attempts == 4


def test_no_route_waits(engine):
    fwd, routing, est = build(engine)
    fwd.send_from_app()
    engine.run_until(5.0)
    assert est.sent == []
    assert fwd.queue_length == 1


def test_route_found_pumps_queue(engine):
    fwd, routing, est = build(engine, qualities={})
    fwd.send_from_app()
    engine.run_until(2.0)
    assert data_sent(est) == []
    est.set_quality(1, 1.0)
    give_route(routing)  # triggers on_route_found → pump
    engine.run_until(4.0)
    assert len(data_sent(est)) == 1


def test_queue_overflow_drops(engine):
    fwd, routing, est = build(engine, queue_size=2)
    assert fwd.send_from_app()
    assert fwd.send_from_app()
    assert not fwd.send_from_app()
    assert fwd.stats.drops_queue_full == 1


def test_root_delivers_up(engine):
    fwd, routing, est = build(engine, is_root=True, node_id=0)
    delivered = []
    fwd.on_deliver = lambda *args: delivered.append(args)
    fwd.on_data_received(data(origin=50, seq=3, thl=2))
    assert delivered == [(50, 3, 2, engine.now, 0.0)]
    assert fwd.stats.delivered_at_root == 1


def test_forwarding_increments_thl(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing)
    fwd.on_data_received(data(origin=50, seq=1, thl=4))
    engine.run_until(1.0)
    assert data_sent(est)[0].thl == 5
    assert fwd.stats.forwarded == 1


def test_duplicate_suppression(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing)
    fwd.on_data_received(data(origin=50, seq=1))
    fwd.on_data_received(data(origin=50, seq=1))
    assert fwd.stats.duplicates_suppressed == 1
    assert fwd.stats.forwarded == 1


def test_dup_cache_bounded(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0}, dup_cache_size=4, queue_size=100)
    give_route(routing)
    for seq in range(10):
        fwd.on_data_received(data(origin=50, seq=seq))
    # Oldest entries were evicted from the cache; a replay of seq 0 forwards.
    fwd.on_data_received(data(origin=50, seq=0))
    assert fwd.stats.duplicates_suppressed == 0
    assert fwd.stats.forwarded == 11


def test_thl_limit_drops(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0}, max_thl=5)
    give_route(routing)
    fwd.on_data_received(data(origin=50, seq=1, thl=5))
    assert fwd.stats.drops_thl == 1
    assert fwd.queue_length == 0


def test_gradient_violation_signals_loop(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing, path_etx=4.0)  # my cost: 5.0
    before = routing.stats.loop_signals
    fwd.on_data_received(data(origin=50, seq=1, etx=3.0))  # sender below me
    assert routing.stats.loop_signals == before + 1


def test_consistent_gradient_no_signal(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing, path_etx=4.0)  # my cost: 5.0
    fwd.on_data_received(data(origin=50, seq=1, etx=8.0))
    assert routing.stats.loop_signals == 0


def test_data_frames_carry_current_cost(engine):
    fwd, routing, est = build(engine, qualities={1: 2.0})
    give_route(routing, path_etx=3.0)  # my cost 5.0
    fwd.send_from_app()
    engine.run_until(1.0)
    assert data_sent(est)[0].etx_at_sender == pytest.approx(5.0)


def test_generated_counter(engine):
    fwd, routing, est = build(engine, qualities={1: 1.0})
    give_route(routing)
    fwd.send_from_app()
    fwd.send_from_app()
    assert fwd.stats.generated == 2
