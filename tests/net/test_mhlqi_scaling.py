"""Tests for MultiHopLQI timing auto-scaling."""

import pytest

from repro.net.multihoplqi import MhlqiConfig
from repro.phy.radio import CC1000, CC2420


def test_scaled_matches_cc2420_defaults():
    scaled = MhlqiConfig.scaled_for(CC2420)
    stock = MhlqiConfig()
    assert scaled.retry_min_s == pytest.approx(stock.retry_min_s, rel=0.25)
    assert scaled.retry_max_s == pytest.approx(stock.retry_max_s, rel=0.25)


def test_scaled_stretches_for_cc1000():
    scaled = MhlqiConfig.scaled_for(CC1000)
    assert scaled.retry_min_s > 0.15
    assert scaled.retry_max_s > scaled.retry_min_s
    assert scaled.pace_max_s > scaled.pace_min_s


def test_scaling_preserves_ordering_invariants():
    for params in (CC2420, CC1000):
        cfg = MhlqiConfig.scaled_for(params)
        assert cfg.retry_min_s < cfg.retry_max_s
        assert cfg.pace_min_s < cfg.pace_max_s
        assert cfg.retry_min_s > cfg.pace_max_s  # retries back off longer than pacing
