"""Fakes for network-layer unit tests."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.interfaces import LinkEstimator
from repro.link.frame import NetworkFrame


class FakeEstimator(LinkEstimator):
    """Scriptable link estimator: fixed table and qualities, recorded sends."""

    def __init__(self, qualities: Optional[Dict[int, float]] = None) -> None:
        self.qualities: Dict[int, float] = dict(qualities or {})
        self.pinned: set = set()
        self.sent: List[NetworkFrame] = []
        self.accept_sends = True

    # -- test controls ---------------------------------------------------
    def set_quality(self, neighbor: int, etx: float) -> None:
        self.qualities[neighbor] = etx

    # -- LinkEstimator ----------------------------------------------------
    def link_quality(self, neighbor: int) -> float:
        return self.qualities.get(neighbor, float("inf"))

    def neighbors(self) -> List[int]:
        return list(self.qualities)

    def pin(self, neighbor: int) -> bool:
        if neighbor in self.qualities:
            self.pinned.add(neighbor)
            return True
        return False

    def unpin(self, neighbor: int) -> bool:
        self.pinned.discard(neighbor)
        return True

    def clear_pins(self) -> None:
        self.pinned.clear()

    def send(self, frame: NetworkFrame) -> bool:
        if not self.accept_sends:
            return False
        self.sent.append(frame)
        return True
