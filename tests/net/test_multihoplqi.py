"""Unit tests for the MultiHopLQI baseline."""

import math
import random

import pytest

from repro.link.frame import BROADCAST
from repro.link.mac import Mac
from repro.net.multihoplqi import (
    LqiBeaconFrame,
    LqiDataFrame,
    MhlqiConfig,
    MultiHopLqi,
    adjust_lqi,
)
from repro.sim.packets import TxResult

from tests.conftest import PerfectMedium, make_radio, make_rx_info


def build_node(engine, medium, node_id=5, is_root=False, **config):
    mac = Mac(engine, medium, make_radio(node_id), random.Random(node_id))
    medium.attach(mac)
    protocol = MultiHopLqi(
        engine, mac, node_id, is_root, random.Random(node_id + 100), MhlqiConfig(**config)
    )
    return protocol, mac


def hear_beacon(protocol, src, path_cost, lqi=110, t=0.0):
    frame = LqiBeaconFrame(
        src=src, dst=BROADCAST, length_bytes=14, carries_route_info=True, path_cost=path_cost
    )
    protocol._mac_receive(frame, make_rx_info(timestamp=t, lqi=lqi))


# ---------------------------------------------------------------------------
# adjust_lqi — the TinyOS cost mapping
# ---------------------------------------------------------------------------
def test_adjust_lqi_best_case():
    assert adjust_lqi(110) == 125


def test_adjust_lqi_worst_case():
    assert adjust_lqi(50) == 8000


def test_adjust_lqi_clamps_outside_range():
    assert adjust_lqi(200) == adjust_lqi(110)
    assert adjust_lqi(10) == adjust_lqi(50)


def test_adjust_lqi_monotone_decreasing_in_lqi():
    costs = [adjust_lqi(lqi) for lqi in range(50, 111)]
    assert all(a >= b for a, b in zip(costs, costs[1:]))


# ---------------------------------------------------------------------------
# Route maintenance
# ---------------------------------------------------------------------------
def test_adopts_first_routed_beacon(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=110)
    assert protocol.parent == 1
    assert protocol.path_cost == pytest.approx(125.0)


def test_ignores_unrouted_beacons(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium)
    hear_beacon(protocol, src=1, path_cost=math.inf)
    assert protocol.parent is None


def test_root_ignores_beacons(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium, is_root=True)
    hear_beacon(protocol, src=1, path_cost=0.0)
    assert protocol.parent is None
    assert protocol.path_cost == 0.0


def test_switch_requires_large_gain(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium, switch_factor=0.75)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=100)  # cost = 420
    parent_cost = protocol.path_cost
    # A mildly better candidate (343 ≥ 0.75 × 420) must NOT win...
    hear_beacon(protocol, src=2, path_cost=0.0, lqi=102)
    assert protocol.parent == 1
    # ...but a much better one (cost < 0.75 × current) must.
    hear_beacon(protocol, src=3, path_cost=0.0, lqi=110)
    assert protocol.parent == 3
    assert protocol.path_cost < 0.75 * parent_cost


def test_parent_beacon_refreshes_cost(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=110)
    hear_beacon(protocol, src=1, path_cost=500.0, lqi=110)
    assert protocol.parent == 1
    assert protocol.path_cost == pytest.approx(625.0)


def test_parent_timeout_detaches(engine, perfect_medium):
    protocol, _ = build_node(
        engine, perfect_medium, beacon_period_s=10.0, parent_timeout_periods=2
    )
    hear_beacon(protocol, src=1, path_cost=0.0, t=0.0)
    engine.run_until(50.0)  # no parent beacons for 5 periods
    protocol._check_parent_timeout()
    assert protocol.parent is None
    assert math.isinf(protocol.path_cost)


def test_beacons_sent_periodically(engine, perfect_medium):
    protocol, mac = build_node(engine, perfect_medium, is_root=True, beacon_period_s=10.0)
    protocol.start()
    engine.run_until(60.0)
    assert 4 <= protocol.stats.beacons_sent <= 8


# ---------------------------------------------------------------------------
# Datapath
# ---------------------------------------------------------------------------
def test_data_unicast_to_parent(engine, perfect_medium):
    protocol, mac = build_node(engine, perfect_medium)
    # Attach a sink so the unicast has a receiver that acks.
    root, root_mac = build_node(engine, perfect_medium, node_id=1, is_root=True)
    delivered = []
    root.on_deliver = lambda *args: delivered.append(args)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=110)
    protocol.send_from_app()
    engine.run_until(2.0)
    assert delivered and delivered[0][0] == 5
    assert protocol.stats.tx_acked == 1


def test_retransmits_then_drops(engine, perfect_medium):
    protocol, mac = build_node(engine, perfect_medium, max_retries=2)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=110)
    perfect_medium.drop(5, 1)  # node 1 never receives (and never acks)
    # Need node 1 attached so candidate exists? PerfectMedium delivers to
    # attached others; with the drop in place nothing arrives.
    build_node(engine, perfect_medium, node_id=1, is_root=True)
    protocol.send_from_app()
    engine.run_until(10.0)
    assert protocol.stats.drops_retries == 1
    assert protocol.stats.tx_attempts == 3  # 1 + 2 retries
    assert protocol.stats.tx_unacked == 3


def test_duplicate_suppression(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium)
    hear_beacon(protocol, src=1, path_cost=0.0)
    frame = LqiDataFrame(src=9, dst=5, length_bytes=36, origin=50, origin_seq=1, thl=0)
    protocol._on_data(frame)
    protocol._on_data(frame)
    assert protocol.stats.duplicates_suppressed == 1


def test_thl_limit(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium, max_thl=3)
    hear_beacon(protocol, src=1, path_cost=0.0)
    frame = LqiDataFrame(src=9, dst=5, length_bytes=36, origin=50, origin_seq=1, thl=3)
    protocol._on_data(frame)
    assert protocol.stats.drops_thl == 1


def test_queue_overflow(engine, perfect_medium):
    protocol, _ = build_node(engine, perfect_medium, queue_size=1)
    assert protocol.send_from_app()
    assert not protocol.send_from_app()
    assert protocol.stats.drops_queue_full == 1


def test_no_feedback_into_route_cost(engine, perfect_medium):
    """The defining blindness: transmission failures never change the
    route cost (no ack bit)."""
    protocol, mac = build_node(engine, perfect_medium, max_retries=5)
    build_node(engine, perfect_medium, node_id=1, is_root=True)
    hear_beacon(protocol, src=1, path_cost=0.0, lqi=110)
    cost_before = protocol.path_cost
    perfect_medium.drop(5, 1)
    protocol.send_from_app()
    engine.run_until(10.0)
    assert protocol.path_cost == cost_before
    assert protocol.parent == 1
