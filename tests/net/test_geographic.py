"""Unit tests for greedy geographic routing on the four-bit interfaces."""

import math
import random

import pytest

from repro.net.geographic import GeoBeaconFrame, GeoConfig, GreedyGeoRouting
from repro.sim.engine import Engine

from tests.conftest import make_rx_info
from tests.net.helpers import FakeEstimator

SINK = (0.0, 0.0)


def build(engine, position, qualities=None, is_root=False, **config):
    estimator = FakeEstimator(qualities)
    routing = GreedyGeoRouting(
        engine,
        estimator,
        node_id=10,
        position=position,
        sink_position=SINK,
        is_root=is_root,
        rng=random.Random(3),
        config=GeoConfig(**config),
    )
    return routing, estimator


def hear(routing, src, position):
    frame = GeoBeaconFrame(
        src=src, dst=0xFFFF, length_bytes=15, carries_route_info=True, position=position
    )
    routing.on_beacon_received(frame, make_rx_info(), src)


def test_picks_neighbor_closest_to_sink(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0, 2: 1.0})
    hear(routing, 1, (12.0, 0.0))
    hear(routing, 2, (8.0, 0.0))
    assert routing.parent == 2


def test_requires_progress(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0})
    hear(routing, 1, (25.0, 0.0))  # farther from the sink than we are
    assert routing.parent is None


def test_progress_margin(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0}, progress_margin_m=2.0)
    hear(routing, 1, (19.0, 0.0))  # only 1 m of progress
    assert routing.parent is None


def test_bad_links_excluded(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 9.0}, max_link_etx=4.0)
    hear(routing, 1, (5.0, 0.0))
    assert routing.parent is None


def test_neighbor_without_position_excluded(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0, 2: 1.0})
    hear(routing, 2, (10.0, 0.0))
    # Neighbor 1 is in the estimator table but never beaconed a position.
    assert routing.parent == 2


def test_next_hop_pinned(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0})
    hear(routing, 1, (10.0, 0.0))
    assert est.pinned == {1}


def test_switch_unpins_old(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0, 2: 1.0})
    hear(routing, 1, (15.0, 0.0))
    hear(routing, 2, (5.0, 0.0))
    assert routing.parent == 2
    assert est.pinned == {2}


def test_root_does_not_route(engine):
    routing, est = build(engine, position=(0.0, 0.0), qualities={1: 1.0}, is_root=True)
    hear(routing, 1, (5.0, 0.0))
    assert routing.parent is None
    assert routing.path_etx() == 0.0


def test_path_cost_is_remaining_distance(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0})
    assert math.isinf(routing.path_etx())
    hear(routing, 1, (10.0, 0.0))
    assert routing.path_etx() == pytest.approx(20.0)


def test_compare_bit_no_route_wants_progress(engine):
    routing, est = build(engine, position=(20.0, 0.0))
    closer = GeoBeaconFrame(src=9, dst=0xFFFF, length_bytes=15, position=(10.0, 0.0))
    farther = GeoBeaconFrame(src=9, dst=0xFFFF, length_bytes=15, position=(30.0, 0.0))
    assert routing.compare_bit(closer, make_rx_info())
    assert not routing.compare_bit(farther, make_rx_info())


def test_compare_bit_against_current_next_hop(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0})
    hear(routing, 1, (10.0, 0.0))
    better = GeoBeaconFrame(src=9, dst=0xFFFF, length_bytes=15, position=(4.0, 0.0))
    worse = GeoBeaconFrame(src=9, dst=0xFFFF, length_bytes=15, position=(12.0, 0.0))
    assert routing.compare_bit(better, make_rx_info())
    assert not routing.compare_bit(worse, make_rx_info())


def test_compare_bit_ignores_foreign_frames(engine):
    from repro.link.frame import NetworkFrame

    routing, est = build(engine, position=(20.0, 0.0))
    assert not routing.compare_bit(NetworkFrame(src=1, dst=2, length_bytes=5), make_rx_info())


def test_route_found_callback(engine):
    routing, est = build(engine, position=(20.0, 0.0), qualities={1: 1.0})
    found = []
    routing.on_route_found = lambda: found.append(True)
    hear(routing, 1, (10.0, 0.0))
    assert found == [True]


def test_beacons_carry_own_position(engine):
    routing, est = build(engine, position=(20.0, 3.0), qualities={})
    routing.start()
    engine.run_until(3.0)
    assert est.sent
    assert est.sent[0].position == (20.0, 3.0)
