"""Unit tests for the Trickle beacon timer."""

import random

import pytest

from repro.net.ctp.trickle import TrickleTimer
from repro.sim.engine import Engine


def make_timer(engine, i_min=1.0, i_max=16.0, seed=3):
    fires = []
    timer = TrickleTimer(
        engine, lambda: fires.append(engine.now), random.Random(seed), i_min_s=i_min, i_max_s=i_max
    )
    return timer, fires


def test_first_fire_within_initial_interval(engine):
    timer, fires = make_timer(engine)
    timer.start()
    engine.run_until(1.0)
    assert len(fires) == 1
    assert 0.5 <= fires[0] <= 1.0


def test_interval_doubles_until_max(engine):
    timer, fires = make_timer(engine, i_min=1.0, i_max=8.0)
    timer.start()
    engine.run_until(100.0)
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    # Jitter picks within [I/2, I]; consecutive gaps are bounded by I_max.
    assert max(gaps) <= 8.0
    # Late gaps are wide (interval saturated at I_max).
    assert gaps[-1] > 2.0


def test_steady_state_rate_bounded(engine):
    timer, fires = make_timer(engine, i_min=1.0, i_max=8.0)
    timer.start()
    engine.run_until(200.0)
    late = [t for t in fires if t > 100.0]
    # At I_max=8 with jitter in [4, 8], expect roughly 100/6 ≈ 16 fires.
    assert 10 <= len(late) <= 30


def test_reset_snaps_back_to_fast(engine):
    timer, fires = make_timer(engine, i_min=1.0, i_max=64.0)
    timer.start()
    engine.run_until(100.0)
    count_before = len(fires)
    timer.reset()
    engine.run_until(101.0)
    assert len(fires) > count_before  # a fire within i_min of the reset
    assert timer.resets == 1


def test_reset_before_start_starts_timer(engine):
    timer, fires = make_timer(engine)
    timer.reset()
    engine.run_until(1.0)
    assert len(fires) == 1


def test_stop_prevents_fires(engine):
    timer, fires = make_timer(engine)
    timer.start()
    timer.stop()
    engine.run_until(50.0)
    assert fires == []


def test_start_idempotent(engine):
    timer, fires = make_timer(engine)
    timer.start()
    timer.start()
    engine.run_until(1.0)
    assert len(fires) == 1


def test_invalid_bounds_rejected(engine):
    with pytest.raises(ValueError):
        TrickleTimer(engine, lambda: None, random.Random(1), i_min_s=0.0, i_max_s=1.0)
    with pytest.raises(ValueError):
        TrickleTimer(engine, lambda: None, random.Random(1), i_min_s=2.0, i_max_s=1.0)


def test_fire_counter(engine):
    timer, fires = make_timer(engine)
    timer.start()
    engine.run_until(40.0)
    assert timer.fires == len(fires)
