"""Unit tests for the ``repro.bench`` result format and regression gate."""

import pytest

from repro.bench.compare import compare_results, render_reports
from repro.bench.core import (
    SCHEMA_VERSION,
    BenchResult,
    find_baseline,
    load_result,
    write_result,
)


def make_result(name="micro_x", events=1000.0, check=None, env=None, **metrics):
    metrics.setdefault("events_per_s", events)
    return BenchResult(
        name=name,
        kind="micro",
        metrics=metrics,
        latency_s={"p50": 1e-5, "p95": 5e-5},
        check=check or {"deliveries": 42, "collisions": 3},
        wall_s=1.0,
        env=env or {"python": "3.11.0", "machine": "x86_64"},
    )


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------
def test_write_load_round_trip(tmp_path):
    result = make_result()
    path = write_result(result, tmp_path)
    assert path.name == "BENCH_micro_x.json"
    loaded = load_result(path)
    assert loaded.name == result.name
    assert loaded.metrics == result.metrics
    assert loaded.latency_s == result.latency_s
    assert loaded.check == result.check
    assert loaded.schema == SCHEMA_VERSION


def test_load_rejects_unknown_schema(tmp_path):
    path = write_result(make_result(), tmp_path)
    text = path.read_text().replace(f'"schema": {SCHEMA_VERSION}', '"schema": 999')
    path.write_text(text)
    with pytest.raises(ValueError, match="schema"):
        load_result(path)


def test_find_baseline_resolves_dir_and_file(tmp_path):
    path = write_result(make_result(), tmp_path)
    assert find_baseline("micro_x", tmp_path) == path
    assert find_baseline("micro_x", path) == path
    assert find_baseline("missing", tmp_path) is None


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def test_no_regression_when_faster():
    report = compare_results(make_result(events=1000.0), make_result(events=2000.0))
    assert not report.regressed
    (delta,) = report.deltas
    assert delta.ratio == pytest.approx(2.0)


def test_regression_below_threshold():
    # 40% drop against the default 30% threshold: regressed.
    report = compare_results(make_result(events=1000.0), make_result(events=600.0))
    assert report.regressed


def test_threshold_is_respected():
    # The same 40% drop passes a 50% threshold.
    report = compare_results(
        make_result(events=1000.0), make_result(events=600.0), threshold=0.5
    )
    assert not report.regressed


def test_latency_never_gates():
    old = make_result()
    new = make_result()
    new.latency_s = {"p50": 1e-2, "p95": 1e-1}  # thousandfold latency blowup
    report = compare_results(old, new)
    assert not report.regressed
    assert len(report.latency_deltas) == 2


def test_check_mismatch_is_flagged():
    old = make_result(check={"deliveries": 42, "collisions": 3})
    new = make_result(check={"deliveries": 41, "collisions": 3})
    report = compare_results(old, new)
    assert report.check_mismatches == ["deliveries"]
    assert "simulated behavior changed" in report.render()


def test_identical_checks_are_silent():
    report = compare_results(make_result(), make_result())
    assert report.check_mismatches == []


def test_env_fingerprint_change_noted():
    old = make_result(env={"python": "3.11.0", "machine": "x86_64"})
    new = make_result(env={"python": "3.12.1", "machine": "x86_64"})
    report = compare_results(old, new)
    assert report.env_changed
    assert "different host/python" in report.render()


def test_different_scenarios_refuse_comparison():
    with pytest.raises(ValueError, match="different scenarios"):
        compare_results(make_result(name="a"), make_result(name="b"))


def test_render_reports_footer():
    ok = [compare_results(make_result(), make_result())]
    assert "OK: no regressions" in render_reports(ok, 0.3)
    bad = [compare_results(make_result(events=1000.0), make_result(events=100.0))]
    assert "FAIL: regression in micro_x" in render_reports(bad, 0.3)
