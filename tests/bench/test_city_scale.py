"""PR-8 acceptance gates: city-scale throughput and mobility overhead.

The authoritative evidence is the committed baseline triple under
``benchmarks/baselines`` — all three captured back-to-back on the same
machine on the identical pinned workload, so the events/s ratios are
apples-to-apples and re-reading them here cannot flake on CI load.  Live
quick-mode runs back them up with deliberately conservative bounds, and
an operation-count gate pins the O(k) position-update contract without
timing anything.
"""

import json
from pathlib import Path

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def _load(relpath):
    return json.loads((BASELINES / relpath).read_text())


def test_committed_city_fast_speedup_is_5x():
    exact = _load("BENCH_macro_grid1000_exact.json")
    fast = _load("BENCH_macro_grid1000.json")
    ratio = fast["metrics"]["events_per_s"] / exact["metrics"]["events_per_s"]
    assert ratio >= 5.0, f"committed city-scale speedup regressed: {ratio:.1f}x"


def test_committed_mobile_rate_is_half_of_static():
    static = _load("BENCH_macro_grid1000.json")
    mobile = _load("BENCH_macro_grid1000_mobile.json")
    ratio = mobile["metrics"]["events_per_s"] / static["metrics"]["events_per_s"]
    assert ratio >= 0.5, f"committed mobile/static ratio regressed: {ratio:.2f}"


def test_committed_city_baselines_ran_identical_workload():
    exact = _load("BENCH_macro_grid1000_exact.json")
    fast = _load("BENCH_macro_grid1000.json")
    mobile = _load("BENCH_macro_grid1000_mobile.json")
    # Engine-level offered load is seed-deterministic and backend-
    # independent; equal counters prove the timings measured the same
    # workload.  (Mobility adds its own tick events, so `events` is only
    # compared between the static pair.)
    for key in ("events", "data_tx", "transmissions"):
        assert exact["check"][key] == fast["check"][key]
    for key in ("data_tx", "transmissions"):
        assert mobile["check"][key] == fast["check"][key]
    assert mobile["check"]["position_updates"] > 0


def test_live_quick_mobile_overhead_floor():
    # Conservative live bound (committed full-mode ratio ~0.53): catches
    # a catastrophic incremental-path regression without flaking on a
    # loaded machine.  The exact backend is deliberately absent here —
    # its O(N^2) finalize at 1000 nodes is too slow for tier-1.
    from repro.bench.scenarios import run_scenario

    static = run_scenario("macro_grid1000", quick=True)
    mobile = run_scenario("macro_grid1000_mobile", quick=True)
    assert mobile.check["data_tx"] == static.check["data_tx"]
    assert mobile.check["position_updates"] > 0
    ratio = mobile.metrics["events_per_s"] / static.metrics["events_per_s"]
    assert ratio >= 0.2, f"live quick mobile/static ratio collapsed: {ratio:.2f}"


def test_position_update_touches_only_neighborhood():
    """O(k) gate, counted not timed: one position update may only bump
    the sender epochs of nodes inside the mover's old/new radius — never
    a fixed fraction of the whole deployment."""
    from repro.sim.engine import Engine
    from repro.sim.medium_fast import FastRadioMedium
    from repro.sim.rng import RngManager
    from repro.phy.channel import ChannelModel
    from repro.topology.generators import city_grid

    topo = city_grid(2000, blocks=14, block_m=220.0, rng=RngManager(5).stream("t"))
    engine = Engine()
    rng = RngManager(7)
    channel = ChannelModel(topo.positions, rng.fork("channel"), shadowing_sigma_db=3.0)
    medium = FastRadioMedium(engine, channel, rng)

    class _Stub:
        def __init__(self, nid, radio):
            self.node_id = nid
            self.radio = radio

    from repro.phy.radio import Radio

    for nid in topo.node_ids():
        medium.attach(_Stub(nid, Radio(node_id=nid)))
    medium.finalize()

    mover = topo.node_ids()[0]
    x, y = channel.positions[mover]
    before = dict(medium._sender_epoch)
    medium.update_position(mover, x + 3.0, y + 1.0)
    bumped = [
        nid
        for nid, epoch in medium._sender_epoch.items()
        if epoch != before.get(nid)
    ]
    neighborhood = set(medium._grid.neighbors(mover)) | {mover}
    assert set(bumped) <= neighborhood
    # O(k), not O(N): the touched set is the local neighborhood.
    assert len(bumped) < len(topo.node_ids()) / 10
