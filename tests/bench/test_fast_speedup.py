"""PR-6 acceptance gate: the fast backend's committed ≥10× speedup.

The authoritative evidence is the committed baseline pair under
``benchmarks/baselines`` — both captured on the same machine in the same
session, on the identical pinned workload (their ``check`` counters must
agree), so the events/s ratio is apples-to-apples and re-reading it here
cannot flake on CI load.  A live quick-mode smoke run backs it up with a
deliberately conservative bound.
"""

import json
from pathlib import Path

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def _load(relpath):
    return json.loads((BASELINES / relpath).read_text())


def test_committed_fast_baseline_is_10x_pre_pr6():
    exact = _load("pre_pr6/BENCH_macro_grid100.json")
    fast = _load("BENCH_macro_grid100_fast.json")
    ratio = fast["metrics"]["events_per_s"] / exact["metrics"]["events_per_s"]
    assert ratio >= 10.0, f"committed speedup regressed: {ratio:.1f}x"


def test_committed_baselines_ran_identical_workload():
    exact = _load("pre_pr6/BENCH_macro_grid100.json")
    fast = _load("BENCH_macro_grid100_fast.json")
    # Engine-level event structure is seed-deterministic and backend-
    # independent; only the reception draws differ.  Equal counters prove
    # the two timings measured the same offered load.
    for key in ("events", "data_tx", "transmissions"):
        assert exact["check"][key] == fast["check"][key]


def test_standing_exact_baseline_matches_pre_pr6_workload():
    pre = _load("pre_pr6/BENCH_macro_grid100.json")
    standing = _load("BENCH_macro_grid100.json")
    assert pre["check"] == standing["check"]


def test_live_quick_speedup_floor():
    # Conservative live bound (measured ~7x in quick mode, ~11x full):
    # catches a catastrophic fast-path regression without flaking on a
    # loaded machine.
    from repro.bench.scenarios import run_scenario

    exact = run_scenario("macro_grid100", quick=True)
    fast = run_scenario("macro_grid100_fast", quick=True)
    assert fast.check["events"] == exact.check["events"]
    ratio = fast.metrics["events_per_s"] / exact.metrics["events_per_s"]
    assert ratio >= 2.0, f"live quick-mode speedup collapsed: {ratio:.1f}x"
