"""Shared builder for small faulted collection networks."""

from __future__ import annotations

from typing import Optional, Union

from repro.faults.schedule import FaultSchedule
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import grid


def build_network(
    faults: Optional[Union[str, FaultSchedule]] = None,
    duration_s: float = 180.0,
    warmup_s: float = 60.0,
    seed: int = 3,
    side: int = 4,
    protocol: str = "4b",
    **config_overrides,
) -> CollectionNetwork:
    """A jittered ``side x side`` grid running 4B collection."""
    topo = grid(side, side, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    config = SimConfig(
        protocol=protocol,
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
        faults=faults,
        **config_overrides,
    )
    return CollectionNetwork(topo, config)
