"""Tests for the named fault presets and spec resolution."""

import pytest

from repro.faults.presets import PRESET_NAMES, resolve_schedule
from repro.faults.schedule import FaultSchedule, NodeCrash, NodeReboot
from repro.sim.rng import RngManager

NODE_IDS = list(range(16))
ROOTS = [0]
POSITIONS = {nid: (6.0 * (nid % 4), 6.0 * (nid // 4)) for nid in NODE_IDS}


def _resolve(spec, seed=3, duration_s=300.0, warmup_s=60.0, drain_s=30.0):
    return resolve_schedule(
        spec,
        duration_s=duration_s,
        warmup_s=warmup_s,
        drain_s=drain_s,
        node_ids=NODE_IDS,
        roots=ROOTS,
        positions=POSITIONS,
        rng=RngManager(seed),
    )


def test_preset_names_sorted_and_complete():
    assert PRESET_NAMES == ("flaky_burst", "reboot_storm", "table_pressure")


@pytest.mark.parametrize("name", PRESET_NAMES)
def test_presets_resolve_and_validate(name):
    schedule = _resolve(name)
    assert isinstance(schedule, FaultSchedule)
    assert schedule.name == name
    assert len(schedule) > 0
    # Construction re-validates every event; also check the active window.
    for event in schedule.events:
        at = getattr(event, "at_s", getattr(event, "start_s", None))
        assert at is not None
        assert at >= 60.0  # never before warmup


@pytest.mark.parametrize("name", PRESET_NAMES)
def test_presets_deterministic_in_master_seed(name):
    assert _resolve(name, seed=5) == _resolve(name, seed=5)
    assert _resolve(name, seed=5).digest() != _resolve(name, seed=6).digest()


def test_reboot_storm_never_touches_roots():
    schedule = _resolve("reboot_storm", seed=9)
    for event in schedule.events:
        assert isinstance(event, NodeCrash)
        assert event.node not in ROOTS
        assert event.reboot_at_s is not None and event.reboot_at_s > event.at_s


def test_reboot_storm_sorted_by_time():
    times = [e.at_s for e in _resolve("reboot_storm", seed=9).events]
    assert times == sorted(times)


def test_resolve_passes_schedule_through():
    schedule = FaultSchedule(events=(NodeReboot(at_s=80.0, node=4),), name="custom")
    assert _resolve(schedule) is schedule


def test_resolve_loads_json_file(tmp_path):
    schedule = FaultSchedule(events=(NodeReboot(at_s=80.0, node=4),), name="from-file")
    path = tmp_path / "faults.json"
    schedule.to_json_file(path)
    assert _resolve(str(path)) == schedule


def test_resolve_rejects_unknown_spec():
    with pytest.raises(ValueError, match="unknown fault spec"):
        _resolve("not_a_preset_or_file")
