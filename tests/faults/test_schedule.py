"""Unit tests for fault events and the FaultSchedule JSON round trip."""

import pytest

from repro.faults.schedule import (
    EVENT_TYPES,
    FaultSchedule,
    InterferenceBurst,
    LinkBlackout,
    NodeCrash,
    NodeReboot,
    QualityShift,
)


def _sample_schedule() -> FaultSchedule:
    return FaultSchedule(
        events=(
            NodeCrash(at_s=90.0, node=5, reboot_at_s=110.0),
            NodeCrash(at_s=95.0, node=7),  # permanent death
            NodeReboot(at_s=130.0, node=7),
            LinkBlackout(start_s=100.0, end_s=120.0, node_a=3),
            LinkBlackout(start_s=140.0, end_s=150.0),  # whole network
            QualityShift(at_s=105.0, delta_db=-4.0, node_a=2, node_b=6),
            InterferenceBurst(start_s=115.0, end_s=135.0, x=12.0, y=9.0, power_dbm=-3.0),
        ),
        name="sample",
    )


def test_json_dict_roundtrip_is_identity():
    schedule = _sample_schedule()
    assert FaultSchedule.from_json_dict(schedule.to_json_dict()) == schedule


def test_json_file_roundtrip(tmp_path):
    schedule = _sample_schedule()
    path = tmp_path / "scenario.json"
    schedule.to_json_file(path)
    assert FaultSchedule.from_json_file(path) == schedule


def test_digest_stable_and_sensitive():
    a = _sample_schedule()
    b = _sample_schedule()
    assert a.digest() == b.digest()
    shifted = FaultSchedule(
        events=a.events[:-1] + (InterferenceBurst(115.0, 135.0, 12.0, 9.5, -3.0),),
        name="sample",
    )
    assert shifted.digest() != a.digest()


def test_event_order_is_part_of_identity():
    crash = NodeCrash(at_s=90.0, node=5)
    shift = QualityShift(at_s=90.0, delta_db=-4.0)
    # Same-time events apply in schedule order, so order changes the digest.
    ab = FaultSchedule(events=(crash, shift))
    ba = FaultSchedule(events=(shift, crash))
    assert ab.digest() != ba.digest()


def test_events_coerced_to_tuple():
    schedule = FaultSchedule(events=[NodeReboot(at_s=10.0, node=1)])
    assert isinstance(schedule.events, tuple)
    assert len(schedule) == 1


def test_every_event_kind_registered():
    assert set(EVENT_TYPES) == {
        "node_crash",
        "node_reboot",
        "link_blackout",
        "quality_shift",
        "interference_burst",
    }


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault event kind"):
        FaultSchedule.from_json_dict({"events": [{"kind": "meteor_strike", "at_s": 1.0}]})


@pytest.mark.parametrize(
    "event",
    [
        NodeCrash(at_s=-1.0, node=3),
        NodeCrash(at_s=50.0, node=-2),
        NodeCrash(at_s=50.0, node=3, reboot_at_s=50.0),  # not after the crash
        NodeReboot(at_s=-0.5, node=3),
        LinkBlackout(start_s=20.0, end_s=20.0),  # empty window
        LinkBlackout(start_s=-1.0, end_s=5.0),
        LinkBlackout(start_s=1.0, end_s=5.0, node_a=-3),
        QualityShift(at_s=-2.0, delta_db=3.0),
        InterferenceBurst(start_s=30.0, end_s=10.0, x=0.0, y=0.0),
    ],
)
def test_invalid_events_rejected_at_schedule_construction(event):
    with pytest.raises(ValueError):
        FaultSchedule(events=(event,))


def test_non_event_rejected():
    with pytest.raises(TypeError):
        FaultSchedule(events=("node_crash",))
