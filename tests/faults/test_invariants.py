"""Tests for the runtime invariant checker — including proof it catches
a deliberately broken pin implementation."""

import math

import pytest

from repro.core.neighbor_table import NeighborTable
from repro.estimators.presets import four_bit
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.schedule import FaultSchedule, NodeCrash
from repro.link.frame import BROADCAST, Frame

from tests.faults.helpers import build_network

import dataclasses

VICTIM = 15


def test_clean_run_passes_all_checks():
    net = build_network(faults="table_pressure", check_invariants=True)
    net.run()
    checker = net.invariant_checker
    assert checker is not None
    assert checker.checks_run > 0
    assert checker.violations == []


def test_checker_works_without_faults():
    net = build_network(check_invariants=True, duration_s=120.0)
    net.run()
    checker = net.invariant_checker
    assert checker is not None
    assert checker.checks_run > 0
    assert checker.violations == []


def test_broken_pin_implementation_is_caught(monkeypatch):
    """An eviction policy that ignores the pin bit must trip the checker
    the moment it removes a pinned entry."""

    def broken_evict(self, rng, eligible=None):
        pool = [
            addr
            for addr, e in self._entries.items()
            if eligible is None or eligible(e)  # pin bit ignored
        ]
        if not pool:
            return None
        victim = rng.choice(pool)
        self.remove(victim)
        self.evictions += 1
        return victim

    monkeypatch.setattr(NeighborTable, "evict_random_unpinned", broken_evict)
    # A 3-slot table on a dense grid keeps compare-driven eviction busy, so
    # a pinned parent is soon deleted by the broken policy.
    net = build_network(
        check_invariants=True,
        estimator_config=dataclasses.replace(four_bit(), table_size=3),
    )
    with pytest.raises(InvariantViolation, match="pinned entry"):
        net.run()
    assert net.invariant_checker is not None
    assert net.invariant_checker.violations


def test_dead_node_transmission_is_caught():
    schedule = FaultSchedule(events=(NodeCrash(at_s=90.0, node=VICTIM),), name="kill")
    net = build_network(faults=schedule, check_invariants=True)
    # Force a frame onto the air from the dead node mid-run: the wrapped
    # medium.start_transmission must refuse it.
    net.engine.schedule_at(
        100.0,
        net.medium.start_transmission,
        VICTIM,
        Frame(src=VICTIM, dst=BROADCAST, length_bytes=20),
    )
    with pytest.raises(InvariantViolation, match="dead node"):
        net.run()


def _run_clean_checker():
    net = build_network(check_invariants=True, duration_s=120.0)
    net.run()
    checker = net.invariant_checker
    assert checker is not None
    return net, checker


def test_corrupt_etx_detected():
    net, checker = _run_clean_checker()
    entry = next(
        e
        for nid in sorted(net.nodes)
        if net.nodes[nid].estimator is not None
        for e in net.nodes[nid].estimator.table
        if e.mature
    )
    entry.etx_ewma._value = 0.2  # below the physical floor of 1
    with pytest.raises(InvariantViolation, match="< 1"):
        checker.check_now()
    entry.etx_ewma._value = math.nan
    with pytest.raises(InvariantViolation, match="nan"):
        checker.check_now()


def test_lost_pin_bit_detected():
    net, checker = _run_clean_checker()
    pinned = [
        (nid, addr)
        for nid, expected in sorted(checker._expected_pins.items())
        for addr in sorted(expected)
    ]
    assert pinned, "a formed tree must have pinned parents"
    nid, addr = pinned[0]
    net.nodes[nid].estimator.table.find(addr).pinned = False
    with pytest.raises(InvariantViolation, match="lost its pin bit"):
        checker.check_now()


def test_pinned_removal_via_table_api_detected():
    net, checker = _run_clean_checker()
    pinned = [
        (nid, addr)
        for nid, expected in sorted(checker._expected_pins.items())
        for addr in sorted(expected)
    ]
    nid, addr = pinned[0]
    with pytest.raises(InvariantViolation, match="explicitly removed"):
        net.nodes[nid].estimator.table.remove(addr)


def test_routing_loop_detected_at_quiescence():
    net, checker = _run_clean_checker()
    non_roots = [nid for nid in sorted(net.nodes) if nid not in net.roots]
    a, b = non_roots[0], non_roots[1]
    net.nodes[a].protocol.routing.parent = b
    net.nodes[b].protocol.routing.parent = a
    checker.check_now()  # transient loops are legal mid-run
    with pytest.raises(InvariantViolation, match="routing loop"):
        checker.check_now(final=True)


def test_checker_is_read_only():
    """Enabling the checker must not change simulated behavior."""
    plain = build_network(duration_s=120.0)
    result_plain = plain.run()
    checked = build_network(check_invariants=True, duration_s=120.0)
    result_checked = checked.run()
    assert result_plain.unique_delivered == result_checked.unique_delivered
    assert result_plain.offered == result_checked.offered
    assert result_plain.total_data_tx == result_checked.total_data_tx


def test_standalone_checker_install_is_idempotent():
    net = build_network(duration_s=120.0)
    checker = InvariantChecker(net)
    checker.install()
    checker.install()
    net.run()
    assert checker.checks_run > 0
