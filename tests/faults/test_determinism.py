"""Bit-reproducibility of faulted runs, serially and across processes."""

from repro.experiments.common import Cell, ExperimentScale, run_cells, run_one
from repro.runner import ExperimentRunner
from repro.runner.hashing import config_digest

from tests.faults.helpers import build_network

SCALE = ExperimentScale(n_nodes=16, duration_s=150.0, warmup_s=60.0, seeds=(1,))


def _sim_fields(result):
    """Result payload minus wall-clock resource accounting.

    The determinism contract covers simulated fields only; ``resources``
    (wall/CPU/RSS, attached by runner workers) varies run to run by design.
    """
    payload = result.to_json_dict()
    payload.pop("resources", None)
    return payload


def _snapshot(net, result):
    """Golden-style canonical outcome: counters plus every ETX table."""
    tables = {
        nid: node.estimator.table_snapshot()
        for nid, node in sorted(net.nodes.items())
        if node.estimator is not None
    }
    return config_digest(
        {
            "result": _sim_fields(result),
            "tables": tables,
            "crashes": net.fault_injector.stats.node_crashes,
            "reboots": net.fault_injector.stats.node_reboots,
        }
    )


def test_same_seed_fault_runs_bit_identical():
    digests = []
    for _ in range(2):
        net = build_network(
            faults="reboot_storm", check_invariants=True, collect_metrics=True
        )
        result = net.run()
        digests.append(_snapshot(net, result))
    assert digests[0] == digests[1]


def test_fault_spec_changes_the_run():
    baseline = build_network()
    faulted = build_network(faults="reboot_storm")
    a, b = baseline.run(), faulted.run()
    assert config_digest(a.to_json_dict()) != config_digest(b.to_json_dict())


def test_serial_and_parallel_runners_agree():
    cell = Cell.make("4b", faults="reboot_storm", collect_metrics=True)
    serial = run_cells(SCALE, [cell], ExperimentRunner(workers=1))
    parallel = run_cells(SCALE, [cell], ExperimentRunner(workers=2))
    lhs = [config_digest(_sim_fields(r)) for r in serial[0].runs]
    rhs = [config_digest(_sim_fields(r)) for r in parallel[0].runs]
    assert lhs == rhs


def test_run_one_accepts_fault_overrides():
    result = run_one(SCALE, "4b", seed=1, faults="reboot_storm", collect_metrics=True)
    totals = {
        k.split("{", 1)[0]: v
        for k, v in sorted(result.metrics.items())
        if k.startswith("faults.")
    }
    assert totals.get("faults.injector.node_crashes", 0) >= 1
    assert "faults.invariants.checks_run" not in totals  # checker was off
