"""Integration tests: fault events landing on a live collection network."""

import pytest

from repro.faults.schedule import FaultSchedule, LinkBlackout, NodeCrash, QualityShift
from repro.sim.medium import MediumFaultState

from tests.faults.helpers import build_network

#: Highest-id grid node: never the sink (the sink is node 0 in every grid).
VICTIM = 15


# ----------------------------------------------------------------------
# MediumFaultState (unit)
# ----------------------------------------------------------------------
def test_blackout_scopes():
    state = MediumFaultState()
    assert state.offset_for(1, 2) == 0.0
    state.blackout_start()  # whole network
    assert state.offset_for(1, 2) is None
    state.blackout_end()
    state.blackout_start(a=3)  # every link touching node 3
    assert state.offset_for(3, 5) is None
    assert state.offset_for(5, 3) is None
    assert state.offset_for(1, 2) == 0.0
    state.blackout_end(a=3)
    state.blackout_start(a=2, b=7)  # one link, either direction
    assert state.offset_for(2, 7) is None
    assert state.offset_for(7, 2) is None
    assert state.offset_for(2, 6) == 0.0
    state.blackout_end(a=2, b=7)
    assert state.offset_for(2, 7) == 0.0


def test_overlapping_blackouts_refcount():
    state = MediumFaultState()
    state.blackout_start()
    state.blackout_start()
    state.blackout_end()
    assert state.offset_for(1, 2) is None  # one window still open
    state.blackout_end()
    assert state.offset_for(1, 2) == 0.0


def test_quality_shifts_cumulative_across_scopes():
    state = MediumFaultState()
    state.shift(-3.0)
    state.shift(-3.0)
    state.shift(2.0, a=4)
    state.shift(1.0, a=5, b=4)
    assert state.offset_for(1, 2) == pytest.approx(-6.0)
    assert state.offset_for(4, 1) == pytest.approx(-4.0)  # node scope: either end
    assert state.offset_for(1, 4) == pytest.approx(-4.0)
    assert state.offset_for(4, 5) == pytest.approx(-3.0)  # global + node + pair


# ----------------------------------------------------------------------
# Crash / reboot (integration)
# ----------------------------------------------------------------------
def test_crash_wipes_node_state():
    schedule = FaultSchedule(events=(NodeCrash(at_s=90.0, node=VICTIM),), name="kill")
    net = build_network(faults=schedule)
    result = net.run()
    node = net.nodes[VICTIM]
    assert VICTIM not in net.roots
    assert node.crashed
    assert not node.mac.enabled
    assert node.parent is None
    assert node.estimator is not None and len(node.estimator.table) == 0
    assert net.fault_injector is not None
    assert net.fault_injector.stats.node_crashes == 1
    assert net.fault_injector.stats.node_reboots == 0
    # The rest of the network keeps collecting.
    assert result.unique_delivered > 0


def test_reboot_rebootstraps_node():
    schedule = FaultSchedule(
        events=(NodeCrash(at_s=90.0, node=VICTIM, reboot_at_s=110.0),), name="bounce"
    )
    net = build_network(faults=schedule, duration_s=240.0)
    net.run()
    node = net.nodes[VICTIM]
    assert not node.crashed
    assert node.mac.enabled
    # Post-reboot the node found a parent and refilled its table from scratch.
    assert node.parent is not None
    assert node.estimator is not None and len(node.estimator.table) > 0
    assert net.fault_injector is not None
    assert net.fault_injector.stats.node_crashes == 1
    assert net.fault_injector.stats.node_reboots == 1


def test_fault_run_emits_metrics():
    schedule = FaultSchedule(
        events=(NodeCrash(at_s=90.0, node=VICTIM, reboot_at_s=110.0),), name="bounce"
    )
    net = build_network(faults=schedule, collect_metrics=True)
    result = net.run()
    assert result.metrics is not None
    crashes = [v for k, v in result.metrics.items() if k.startswith("faults.injector.node_crashes")]
    assert crashes == [1]


# ----------------------------------------------------------------------
# Blackout (integration)
# ----------------------------------------------------------------------
def test_global_blackout_silences_network_then_recovers():
    schedule = FaultSchedule(
        events=(LinkBlackout(start_s=95.0, end_s=125.0),), name="outage"
    )
    net = build_network(faults=schedule, duration_s=200.0)
    counts = {}

    def probe(tag):
        counts[tag] = net.medium.deliveries

    # Margins inside the window: frames in flight at the edge decode at
    # their own end time, so sample strictly inside.
    net.engine.schedule_at(95.5, probe, "window_open")
    net.engine.schedule_at(124.5, probe, "window_close")
    result = net.run()

    # Not a single frame decoded anywhere while the blackout was up...
    assert counts["window_close"] == counts["window_open"]
    # ...yet the channel was busy (drops counted) and the network recovered.
    assert net.fault_injector is not None
    faults = net.fault_injector._faults
    assert faults.blackout_drops > 0
    assert net.medium.deliveries > counts["window_close"]
    assert result.unique_delivered > 0
    assert net.fault_injector.stats.blackouts_started == 1
    assert net.fault_injector.stats.blackouts_ended == 1


def test_fault_events_reach_the_trace():
    from repro.sim.trace import instrument_network

    schedule = FaultSchedule(
        events=(
            NodeCrash(at_s=90.0, node=VICTIM, reboot_at_s=110.0),
            LinkBlackout(start_s=95.0, end_s=100.0, node_a=3),
        ),
        name="traced",
    )
    net = build_network(faults=schedule)
    tracer = instrument_network(net)
    net.run()
    seen = [
        (rec.time, rec.kind, rec.node)
        for rec in tracer.records
        if rec.kind in ("crash", "reboot", "blackout", "blackout-end")
    ]
    assert seen == [
        (90.0, "crash", VICTIM),
        (95.0, "blackout", -1),  # NETWORK_NODE scope; a/b in the fields
        (100.0, "blackout-end", -1),
        (110.0, "reboot", VICTIM),
    ]


# ----------------------------------------------------------------------
# Validation against the built network
# ----------------------------------------------------------------------
def test_crashing_root_rejected():
    schedule = FaultSchedule(events=(NodeCrash(at_s=90.0, node=0),))
    with pytest.raises(ValueError, match="root"):
        build_network(faults=schedule)


def test_unknown_node_rejected():
    schedule = FaultSchedule(events=(NodeCrash(at_s=90.0, node=999),))
    with pytest.raises(ValueError, match="unknown node"):
        build_network(faults=schedule)


def test_crash_rejected_for_protocol_without_fault_support():
    schedule = FaultSchedule(events=(NodeCrash(at_s=90.0, node=VICTIM),))
    with pytest.raises(ValueError, match="fault_shutdown"):
        build_network(faults=schedule, protocol="mhlqi")


def test_medium_faults_allowed_for_any_protocol():
    schedule = FaultSchedule(events=(QualityShift(at_s=90.0, delta_db=-2.0, node_a=VICTIM),))
    net = build_network(faults=schedule, protocol="mhlqi", duration_s=120.0)
    net.run()
    assert net.fault_injector is not None
    assert net.fault_injector.stats.quality_shifts == 1
