"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures at
:data:`repro.experiments.common.BENCH_SCALE` (a 30-node shrink of the
Mirage profile, 7 simulated minutes, one seed) so the whole suite runs in
minutes.  The printed tables use the same renderers as the full-scale
examples; EXPERIMENTS.md records full-scale outputs.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulations are deterministic and expensive; statistical repetition
    would only burn time without changing the result.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
