"""Figure 7 benchmark: cost/depth vs transmit power (paper: both grow as
power drops; 4B cost 19–28% below MultiHopLQI across 0/−10/−20 dBm)."""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig7_power_sweep import run

POWERS = (0.0, -10.0)  # −20 dBm disconnects the shrunken bench topology


def test_fig7_power_sweep(once):
    result = once(lambda: run(BENCH_SCALE, powers=POWERS))
    print()
    print(result.render())
    assert result.fourbit_wins_everywhere()
    for proto in ("4b", "mhlqi"):
        assert result.depth_increases_with_lower_power(proto)
    # 4B hugs the depth lower bound at least as tightly as MultiHopLQI at
    # 0 dBm.  At bench scale both excesses are a few percent, so allow
    # noise-level slack; the full-scale run (EXPERIMENTS.md: 10% vs 19%)
    # carries the real comparison.
    assert result.excess_over_depth("4b", 0.0) <= result.excess_over_depth("mhlqi", 0.0) + 0.05
