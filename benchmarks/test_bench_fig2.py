"""Figure 2 benchmark: routing trees and cost of CTP / MultiHopLQI /
CTP-unconstrained (paper: 3.14 / 2.28 / 1.86 transmissions per packet)."""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig2_trees import run


def test_fig2_routing_trees(once):
    result = once(lambda: run(BENCH_SCALE))
    print()
    print(result.render())
    # Shape assertions (not absolute values): the constrained table hurts.
    assert result.results["ctp"].cost > result.results["ctp-unconstrained"].cost
    assert result.depth_gap_holds()
    # All three protocols form working trees.
    for r in result.results.values():
        assert r.delivery_ratio > 0.5
