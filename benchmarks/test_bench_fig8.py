"""Figure 8 benchmark: per-node delivery distributions vs power (paper: 4B
≥99% tight; MultiHopLQI mean 95.9% with a 64% worst node at 0 dBm,
degrading further at lower power)."""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig8_delivery import run

POWERS = (0.0, -10.0)


def test_fig8_delivery_distributions(once):
    result = once(lambda: run(BENCH_SCALE, powers=POWERS))
    print()
    print(result.render())
    for power in POWERS:
        assert result.fourbit_median_high(power, floor=0.9)
        assert result.fourbit_tighter(power)
