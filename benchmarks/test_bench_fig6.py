"""Figure 6 benchmark: the estimator design space in the cost-depth plane
(paper: ack bit −31% cost; white/compare −15%; only full 4B beats
MultiHopLQI, by 29%)."""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig6_design_space import run


def test_fig6_design_space(once):
    result = once(lambda: run(BENCH_SCALE))
    print()
    print(result.render())
    assert result.ack_bit_helps()
    assert result.white_compare_helps()
    assert result.fourbit_beats_mhlqi()
    # 4B delivers essentially everything on the bench-scale network.
    assert result.results["4b"].delivery_ratio > 0.97
