"""Figure 3 benchmark: PRR collapse invisible to the LQI (paper: PRR drops
0.9 → 0.6 between hours 4–6 while received-packet LQI stays high and
unacknowledged packets pile up)."""

from repro.experiments.fig3_lqi_blind import Fig3Settings, run

SETTINGS = Fig3Settings(duration_s=900.0, burst_window=(300.0, 600.0))


def test_fig3_lqi_blindness(once):
    result = once(lambda: run(SETTINGS))
    print()
    print(result.render())
    stats = result.window_stats()
    assert stats["prr_outside"] > 0.85
    assert stats["prr_inside"] < stats["prr_outside"] - 0.15
    assert abs(stats["lqi_outside"] - stats["lqi_inside"]) < 5.0
    assert result.blindness_holds()
