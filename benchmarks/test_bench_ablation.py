"""Ablation benchmark for 4B design choices (DESIGN.md §4): eviction
policy, white-bit requirement, window sizes, outer-EWMA weight, pin bit."""

import dataclasses

from repro.experiments.ablation import BASELINE, run, variants
from repro.experiments.common import BENCH_SCALE

SCALE = dataclasses.replace(BENCH_SCALE, seeds=(1,))


def test_ablations(once):
    result = once(lambda: run(SCALE))
    print()
    print(result.render())
    base = result.baseline()
    assert base.delivery_ratio > 0.97
    # Every ablated variant still functions (these are perturbations, not
    # amputations); gross failure would indicate a wiring bug.
    for name, r in result.results.items():
        assert r.delivery_ratio > 0.80, f"{name} collapsed: {r.summary_row()}"
    # The full design is never grossly worse than any ablation.
    for name, r in result.results.items():
        assert base.cost <= r.cost * 1.35, f"{name} unexpectedly beat 4B by >35%"


def test_variant_catalog_is_complete():
    names = set(variants())
    assert BASELINE in names
    assert {"no-pin", "evict-worst", "no-white", "ku=1", "ku=25", "kb=10", "alpha=0.9"} <= names
