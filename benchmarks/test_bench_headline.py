"""Headline benchmark: 4B vs MultiHopLQI on both testbeds (paper: −29%
cost / 99.9% vs 93% delivery on Mirage; −44% / 99% vs 85% on Tutornet)."""

import dataclasses

from repro.experiments.common import BENCH_SCALE
from repro.experiments.headline import run


def test_headline_both_testbeds(once):
    result = once(lambda: run(BENCH_SCALE))
    print()
    print(result.render())
    for testbed in ("mirage", "tutornet"):
        assert result.fourbit_wins(testbed), f"4B must win on {testbed}"
        assert result.results[testbed]["4b"].delivery_ratio > 0.97
    assert result.cost_reduction("mirage") > 0.05
