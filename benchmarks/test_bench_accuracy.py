"""Extension benchmark: estimation accuracy and agility vs ground truth
(quantifies the paper's Section 2 layer-limitation arguments)."""

import dataclasses

from repro.analysis import table
from repro.estimators.accuracy import evaluate, step_scenario, steady_scenario
from repro.estimators.presets import four_bit


def test_accuracy_and_agility(once):
    def run():
        steady = steady_scenario(
            0.7, duration_s=900.0, warmup_s=300.0, data_rate_pps=2.0, beacon_period_s=5.0
        )
        step = step_scenario(
            high=0.9, low=0.3, at_s=300.0, duration_s=700.0, data_rate_pps=2.0, beacon_period_s=5.0
        )
        hybrid_acc = evaluate(four_bit(), steady, label="4b")
        hybrid_step = evaluate(four_bit(), step, label="4b")
        beacon_config = dataclasses.replace(four_bit(), use_ack_stream=False)
        beacon_acc = evaluate(beacon_config, steady, label="beacon-only")
        beacon_step = evaluate(beacon_config, step, label="beacon-only")
        return hybrid_acc, hybrid_step, beacon_acc, beacon_step

    hybrid_acc, hybrid_step, beacon_acc, beacon_step = once(run)
    print()
    rows = [
        ["4B", f"{hybrid_acc.mean_relative_error() * 100:.0f}%",
         f"{hybrid_step.detection_delay_s:.0f}s" if hybrid_step.detection_delay_s else "never"],
        ["beacon-only", f"{beacon_acc.mean_relative_error() * 100:.0f}%",
         f"{beacon_step.detection_delay_s:.0f}s" if beacon_step.detection_delay_s else "never"],
    ]
    print(table(["estimator", "rel. error (p=0.7)", "step detection"], rows,
                title="estimator accuracy (extension)"))

    # The ack bit buys accuracy AND agility.
    assert hybrid_acc.mean_relative_error() <= beacon_acc.mean_relative_error() + 0.02
    assert hybrid_step.detection_delay_s is not None
    assert hybrid_step.detection_delay_s < 60.0
    if beacon_step.detection_delay_s is not None:
        assert hybrid_step.detection_delay_s < beacon_step.detection_delay_s
