"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(this environment lacks the `wheel` package PEP 660 editables require)."""

from setuptools import setup

setup()
