"""CTP protocol facade: wires routing + forwarding to one link estimator.

This is the composition point the paper's architecture prescribes: the
network layer talks to the estimator only through the
:class:`~repro.core.interfaces.LinkEstimator` interface and answers its
compare-bit queries; the estimator talks to the MAC below.  Any estimator
honoring the interface (any Figure 6 preset) slots in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Optional

from repro.core.interfaces import EstimatorClient, LinkEstimator
from repro.link.frame import NetworkFrame
from repro.net.ctp.forwarding import CtpForwardingConfig, CtpForwardingEngine
from repro.net.ctp.frames import CtpDataFrame, CtpRoutingFrame
from repro.net.ctp.routing import CtpRoutingConfig, CtpRoutingEngine
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo


@dataclass(frozen=True)
class CtpConfig:
    """Bundled routing + forwarding parameters for one CTP stack."""

    routing: CtpRoutingConfig = field(default_factory=CtpRoutingConfig)
    forwarding: CtpForwardingConfig = field(default_factory=CtpForwardingConfig)

    @classmethod
    def scaled_for(cls, radio_params, data_bytes: int = 44) -> "CtpConfig":
        """Timing constants scaled to the radio's data-frame airtime.

        The defaults above assume a 250 kbps CC2420 (≈1.6 ms frames).  A
        19.2 kbps CC1000 frame occupies the channel ~15× longer; reusing
        millisecond-scale retry and pacing delays there synchronizes
        retransmissions into a collision storm and collapses the channel.
        The multipliers reproduce the CC2420 defaults exactly and scale
        every other radio by airtime.
        """
        airtime = radio_params.airtime(data_bytes)
        routing = CtpRoutingConfig(
            beacon_i_min_s=max(0.125, 78.0 * airtime),
        )
        forwarding = CtpForwardingConfig(
            retry_min_s=12.5 * airtime,
            retry_max_s=37.5 * airtime,
            pace_min_s=1.25 * airtime,
            pace_max_s=6.25 * airtime,
        )
        return cls(routing=routing, forwarding=forwarding)


class CtpProtocol(EstimatorClient):
    """A node's complete CTP stack above the link estimator."""

    def __init__(
        self,
        engine: Engine,
        estimator: LinkEstimator,
        node_id: int,
        is_root: bool,
        rng: Random,
        config: CtpConfig = CtpConfig(),
    ) -> None:
        self.node_id = node_id
        self.estimator = estimator
        self.routing = CtpRoutingEngine(engine, estimator, node_id, is_root, rng, config.routing)
        self.forwarding = CtpForwardingEngine(
            engine, estimator, self.routing, node_id, rng, config.forwarding
        )
        estimator.client = self
        estimator.compare_provider = self.routing

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the stack (start the Trickle beacon timer)."""
        self.routing.start()

    def fault_shutdown(self) -> None:
        """Node crash: drop all RAM state in routing and forwarding.

        The MAC and estimator are shut down separately by the fault
        injector (they belong to other layers).
        """
        self.routing.fault_shutdown()
        self.forwarding.fault_shutdown()

    def fault_restart(self) -> None:
        """Node reboot: bring the stack back with no route, like a boot."""
        self.routing.fault_restart()

    @property
    def is_root(self) -> bool:
        """Whether this node is a collection sink."""
        return self.routing.is_root

    @property
    def parent(self) -> Optional[int]:
        """Current parent (None before a route exists)."""
        return self.routing.parent

    def path_etx(self) -> float:
        """Current path ETX to the root (inf with no route)."""
        return self.routing.path_etx()

    def send_from_app(self) -> bool:
        """Originate one collection packet (False if the queue is full)."""
        return self.forwarding.send_from_app()

    # ------------------------------------------------------------------
    # EstimatorClient
    # ------------------------------------------------------------------
    def on_receive(self, frame: NetworkFrame, info: RxInfo, le_src: int) -> None:
        """EstimatorClient: dispatch routing vs data frames."""
        if isinstance(frame, CtpRoutingFrame):
            self.routing.on_beacon_received(frame, info, le_src)
        elif isinstance(frame, CtpDataFrame):
            self.forwarding.on_data_received(frame)

    def on_send_done(self, frame: NetworkFrame, sent: bool, acked: bool) -> None:
        """EstimatorClient: route data completions to the forwarding engine."""
        if isinstance(frame, CtpDataFrame):
            self.forwarding.on_send_done(frame, sent, acked)
        # Routing beacons are fire-and-forget broadcasts.
