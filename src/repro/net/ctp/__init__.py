"""Collection Tree Protocol (TEP 123) on the four-bit interfaces."""

from repro.net.ctp.forwarding import CtpForwardingConfig, CtpForwardingEngine, ForwardingStats
from repro.net.ctp.frames import (
    DATA_FRAME_BYTES,
    NO_PARENT,
    ROUTING_FRAME_BYTES,
    CtpDataFrame,
    CtpRoutingFrame,
    make_data_frame,
    make_routing_frame,
)
from repro.net.ctp.protocol import CtpConfig, CtpProtocol
from repro.net.ctp.routing import CtpRoutingConfig, CtpRoutingEngine, RouteInfo, RoutingStats
from repro.net.ctp.trickle import TrickleTimer

__all__ = [
    "DATA_FRAME_BYTES",
    "NO_PARENT",
    "ROUTING_FRAME_BYTES",
    "CtpConfig",
    "CtpDataFrame",
    "CtpForwardingConfig",
    "CtpForwardingEngine",
    "CtpProtocol",
    "CtpRoutingConfig",
    "CtpRoutingEngine",
    "CtpRoutingFrame",
    "ForwardingStats",
    "RouteInfo",
    "RoutingStats",
    "TrickleTimer",
    "make_data_frame",
    "make_routing_frame",
]
