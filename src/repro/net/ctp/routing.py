"""CTP routing engine (TEP 123) programmed against the four-bit interfaces.

The engine owns parent selection and beaconing.  Its couplings to the link
estimator are exactly the two network-layer bits:

* it **pins** the current parent's table entry (and unpins the old one on a
  switch), so the estimator can never evict the link in use;
* it answers the estimator's **compare-bit** queries: is the route
  advertised by an unknown sender better than the route through at least
  one current table entry?
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

from typing import Callable, Dict, Optional


from repro.core.interfaces import CompareBitProvider, LinkEstimator
from repro.net.ctp.frames import NO_PARENT, CtpRoutingFrame, make_routing_frame
from repro.net.ctp.trickle import TrickleTimer
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo


@dataclass(frozen=True)
class CtpRoutingConfig:
    """Routing-engine parameters (TinyOS CTP defaults, scaled to seconds)."""

    beacon_i_min_s: float = 0.125
    beacon_i_max_s: float = 512.0
    #: Hysteresis: switch parents only for a gain of at least this much ETX.
    parent_switch_threshold: float = 1.5
    #: Links whose estimated ETX exceeds this are unusable for routing.
    max_link_etx: float = 10.0
    #: Assumed link ETX of a brand-new candidate during compare-bit queries
    #: (the estimator has no sample yet; one transmission is the floor).
    compare_new_link_etx: float = 1.0
    #: Retry delay when the MAC is busy at beacon time.
    beacon_retry_s: float = 0.030


@dataclass
class RouteInfo:
    """Last route advertisement heard from a neighbor."""

    parent: int
    path_etx: float
    heard_at: float


@dataclass
class RoutingStats:
    beacons_sent: int = 0
    beacons_heard: int = 0
    parent_switches: int = 0
    compare_true: int = 0
    compare_false: int = 0
    loop_signals: int = 0

    METRICS_PREFIX = "net.routing"

    def register_into(self, registry, **labels) -> None:
        """Register every counter as ``net.routing.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class CtpRoutingEngine(CompareBitProvider):
    """Parent selection, beaconing, and the network layer's two bits."""

    def __init__(
        self,
        engine: Engine,
        estimator: LinkEstimator,
        node_id: int,
        is_root: bool,
        rng: Random,
        config: CtpRoutingConfig = CtpRoutingConfig(),
    ) -> None:
        self.engine = engine
        self.estimator = estimator
        self.node_id = node_id
        self.is_root = is_root
        self.rng = rng
        self.config = config
        self.stats = RoutingStats()
        self.route_info: Dict[int, RouteInfo] = {}
        self.parent: Optional[int] = None
        self._had_route = is_root
        self._pull_pending = False
        self._beacon_retry_pending = False
        #: Failure injection: a crashed routing engine neither beacons nor
        #: keeps route state (see :meth:`fault_shutdown`).
        self.enabled = True
        #: Forwarding engine hooks this to pump its queue when a route appears.
        self.on_route_found: Optional[Callable[[], None]] = None
        self.trickle = TrickleTimer(
            engine,
            self._send_beacon,
            rng,
            i_min_s=config.beacon_i_min_s,
            i_max_s=config.beacon_i_max_s,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.trickle.start()

    def fault_shutdown(self) -> None:
        """Node crash: stop beaconing and lose all RAM route state.

        The parent is dropped *without* unpinning — the estimator's table
        (which holds the pin) is wiped by the same crash, so there is no
        entry left to unpin; going through ``_set_parent(None)`` would
        touch a dead table.
        """
        self.enabled = False
        self.trickle.stop()
        self.route_info.clear()
        self.parent = None
        self._had_route = self.is_root
        self._pull_pending = False

    def fault_restart(self) -> None:
        """Node reboot: come back with no route and re-bootstrap.

        ``trickle.start()`` restarts at ``i_min`` — exactly a booting node.
        A ``_beacon_retry`` scheduled before the crash may still fire, but
        the retry path is harmless post-reboot (it just beacons).
        """
        self.enabled = True
        self.trickle.start()

    # ------------------------------------------------------------------
    # Route state
    # ------------------------------------------------------------------
    def path_etx(self) -> float:
        """This node's current path ETX to the root."""
        if self.is_root:
            return 0.0
        if self.parent is None:
            return math.inf
        info = self.route_info.get(self.parent)
        if info is None:
            return math.inf
        return self.estimator.link_quality(self.parent) + info.path_etx

    def _route_through(self, neighbor: int) -> float:
        """Cost of routing via ``neighbor`` (inf when unusable)."""
        info = self.route_info.get(neighbor)
        if info is None or math.isinf(info.path_etx):
            return math.inf
        if info.parent == self.node_id:
            return math.inf  # immediate loop
        link = self.estimator.link_quality(neighbor)
        if link > self.config.max_link_etx:
            return math.inf
        return link + info.path_etx

    def update_route(self) -> None:
        """Re-evaluate the parent (hysteresis applies).

        The loop is :meth:`_route_through` inlined over the estimator's
        single-pass ``(neighbor, link ETX)`` view: it runs for every beacon
        heard, and the per-neighbor attribute and table lookups dominate
        it.  The skip conditions are exactly the inf-cost cases of
        :meth:`_route_through` (an inf cost can never win ``cost <
        best_cost``).
        """
        if self.is_root:
            return
        inf = math.inf
        isinf = math.isinf
        route_info_get = self.route_info.get
        max_link_etx = self.config.max_link_etx
        node_id = self.node_id
        best: Optional[int] = None
        best_cost = inf
        for neighbor, link in self.estimator.neighbor_qualities():
            if link > max_link_etx:
                continue
            info = route_info_get(neighbor)
            if info is None:
                continue
            path_etx = info.path_etx
            if isinf(path_etx) or info.parent == node_id:
                continue
            cost = link + path_etx
            if cost < best_cost:
                best, best_cost = neighbor, cost
        current_cost = self._route_through(self.parent) if self.parent is not None else math.inf
        if best is None:
            return
        switch = False
        if math.isinf(current_cost):
            switch = best is not None
        elif best != self.parent and best_cost + self.config.parent_switch_threshold < current_cost:
            switch = True
        if switch and best != self.parent:
            self._set_parent(best)

    def _set_parent(self, new_parent: Optional[int]) -> None:
        old = self.parent
        if old is not None:
            self.estimator.unpin(old)
        self.parent = new_parent
        if new_parent is not None:
            self.estimator.pin(new_parent)  # the pin bit
            self.stats.parent_switches += 1
            if not self._had_route:
                self._had_route = True
                self.trickle.reset()  # announce first route quickly
                if self.on_route_found is not None:
                    self.on_route_found()

    # ------------------------------------------------------------------
    # Beacons
    # ------------------------------------------------------------------
    def _send_beacon(self) -> None:
        if not self.enabled:
            # Crashed.  Without this guard a failed send (MAC disabled)
            # would self-sustain the ~30 ms retry chain for the whole
            # outage, burning events and RNG draws from a dead node.
            return
        self.update_route()
        frame = make_routing_frame(
            src=self.node_id,
            parent=self.parent if self.parent is not None else NO_PARENT,
            path_etx=self.path_etx(),
            pull=(not self.is_root and self.parent is None) or self._pull_pending,
        )
        if self.estimator.send(frame):
            self.stats.beacons_sent += 1
            self._pull_pending = False
        elif not self._beacon_retry_pending:
            self._beacon_retry_pending = True
            delay = self.rng.uniform(0.5, 1.5) * self.config.beacon_retry_s
            self.engine.schedule(delay, self._beacon_retry)

    def _beacon_retry(self) -> None:
        self._beacon_retry_pending = False
        self._send_beacon()

    def on_beacon_received(self, frame: CtpRoutingFrame, info: RxInfo, le_src: int) -> None:
        """Process a neighbor's routing beacon (via the estimator client)."""
        self.stats.beacons_heard += 1
        info_rec = self.route_info.get(le_src)
        if info_rec is None:
            self.route_info[le_src] = RouteInfo(
                parent=frame.parent,
                path_etx=frame.path_etx,
                heard_at=self.engine.now,
            )
        else:  # overwrite in place (one allocation per neighbor, not per beacon)
            info_rec.parent = frame.parent
            info_rec.path_etx = frame.path_etx
            info_rec.heard_at = self.engine.now
        if frame.pull and (self.is_root or self.parent is not None):
            self.trickle.reset()
        self.update_route()

    # ------------------------------------------------------------------
    # The compare bit
    # ------------------------------------------------------------------
    def compare_bit(self, frame, info: RxInfo) -> bool:
        """Would the sender's advertised route beat the route through at
        least one current table entry?

        Implemented as the TinyOS 4bitle routing engine does: the candidate's
        advertised path must beat the route we currently use (which is the
        best route any table entry provides — so beating it certainly beats
        "one or more" entries).  When we have no route at all, any finite
        advertised route is better than nothing.  The conservative form is
        deliberate: a looser comparison (beat the *worst* entry) lets every
        fast-trickle beacon flush a random entry and thrashes the table
        before anything matures.
        """
        if not isinstance(frame, CtpRoutingFrame):
            return False
        if math.isinf(frame.path_etx):
            self.stats.compare_false += 1
            return False
        candidate_cost = frame.path_etx + self.config.compare_new_link_etx
        decision = candidate_cost < self.path_etx()
        if decision:
            self.stats.compare_true += 1
        else:
            self.stats.compare_false += 1
        return decision

    # ------------------------------------------------------------------
    # Datapath signals
    # ------------------------------------------------------------------
    def signal_loop_suspected(self) -> None:
        """Forwarding engine saw a cost-gradient violation; beacon fast."""
        self.stats.loop_signals += 1
        self._pull_pending = True
        self.trickle.reset()
