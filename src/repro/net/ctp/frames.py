"""CTP frame formats (TEP 123)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.link.frame import BROADCAST, NetworkFrame

#: CTP routing frame: options(1) + parent(2) + etx(2) + collect id(1).
ROUTING_FRAME_BYTES = 16
#: CTP data frame: options(1) + thl(1) + etx(2) + origin(2) + seq(1) +
#: collect id(1) + application payload (paper workload ≈ 28 bytes).
DATA_FRAME_BYTES = 36

#: Sentinel for "no parent".
NO_PARENT = 0xFFFF


@dataclass
class CtpRoutingFrame(NetworkFrame):
    """Routing beacon: advertises the sender's parent and path ETX."""

    parent: int = NO_PARENT
    path_etx: float = float("inf")
    #: The pull bit: sender urgently needs route updates from neighbors.
    pull: bool = False

    def describe(self) -> str:
        return f"CtpBeacon(parent={self.parent}, etx={self.path_etx:.2f})"


def make_routing_frame(src: int, parent: int, path_etx: float, pull: bool = False) -> CtpRoutingFrame:
    return CtpRoutingFrame(
        src=src,
        dst=BROADCAST,
        length_bytes=ROUTING_FRAME_BYTES,
        carries_route_info=True,
        parent=parent,
        path_etx=path_etx,
        pull=pull,
    )


@dataclass
class CtpDataFrame(NetworkFrame):
    """Collection data frame."""

    origin: int = 0
    origin_seq: int = 0
    #: Time-has-lived: incremented at every hop.
    thl: int = 0
    #: The sender's path ETX when it transmitted this frame; a receiver with
    #: a *higher* cost receiving it is evidence of a routing loop.
    etx_at_sender: float = float("inf")
    #: Simulation time the packet was handed to the origin's network layer
    #: (end-to-end latency instrumentation; a real mote would not carry it).
    origin_time: float = 0.0

    def describe(self) -> str:
        return f"CtpData(origin={self.origin}, seq={self.origin_seq}, thl={self.thl})"


def make_data_frame(
    src: int,
    dst: int,
    origin: int,
    origin_seq: int,
    thl: int,
    etx_at_sender: float,
    length_bytes: int = DATA_FRAME_BYTES,
    origin_time: float = 0.0,
) -> CtpDataFrame:
    return CtpDataFrame(
        src=src,
        dst=dst,
        length_bytes=length_bytes,
        origin=origin,
        origin_seq=origin_seq,
        thl=thl,
        etx_at_sender=etx_at_sender,
        origin_time=origin_time,
    )
