"""Trickle timer for CTP routing beacons.

CTP paces its beacons with a Trickle timer: the interval doubles from
``i_min`` to ``i_max`` while the topology is consistent, and snaps back to
``i_min`` on events that demand fast propagation (a pull request, a loop
detection, the first route acquisition).  CTP does not use Trickle's
suppression half, only the adaptive interval.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional

from repro.sim.engine import Engine, EventHandle


class TrickleTimer:
    """Doubling beacon timer with ``[I/2, I]`` jitter."""

    def __init__(
        self,
        engine: Engine,
        callback: Callable[[], None],
        rng: Random,
        i_min_s: float = 0.125,
        i_max_s: float = 512.0,
    ) -> None:
        if i_min_s <= 0 or i_max_s < i_min_s:
            raise ValueError(f"bad Trickle bounds: [{i_min_s}, {i_max_s}]")
        self.engine = engine
        self.callback = callback
        self.rng = rng
        self.i_min_s = i_min_s
        self.i_max_s = i_max_s
        self.interval_s = i_min_s
        self.fires = 0
        self.resets = 0
        self._event: Optional[EventHandle] = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.interval_s = self.i_min_s
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self) -> None:
        """Snap the interval back to ``i_min`` (topology event)."""
        self.resets += 1
        if not self._running:
            self.start()
            return
        self.interval_s = self.i_min_s
        if self._event is not None:
            self._event.cancel()
        self._schedule()

    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        delay = self.rng.uniform(self.interval_s / 2.0, self.interval_s)
        self._event = self.engine.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._event = None
        if not self._running:
            return
        self.fires += 1
        self.interval_s = min(self.interval_s * 2.0, self.i_max_s)
        self._schedule()
        self.callback()
