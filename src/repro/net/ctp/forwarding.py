"""CTP forwarding engine: queue, retransmissions, duplicate suppression.

Transmissions go through the link estimator (layer 2.5), so every unicast
attempt automatically feeds the ack bit to the estimator — the datapath
*is* the measurement traffic.  Persistent link failure therefore raises the
estimated ETX, which the routing engine reacts to on the next route
evaluation; no separate "link down" signal is needed.
"""

from __future__ import annotations

import math
from random import Random
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.core.interfaces import LinkEstimator
from repro.net.ctp.frames import CtpDataFrame, make_data_frame
from repro.net.ctp.routing import CtpRoutingEngine
from repro.sim.engine import Engine


@dataclass(frozen=True)
class CtpForwardingConfig:
    """Forwarding-engine parameters (TinyOS CTP defaults)."""

    queue_size: int = 12
    max_retries: int = 30
    #: Retry delay bounds after a failed (unacked) transmission.
    retry_min_s: float = 0.020
    retry_max_s: float = 0.060
    #: Pacing gap between successive successful transmissions.
    pace_min_s: float = 0.002
    pace_max_s: float = 0.010
    #: Wait before re-checking for a route when none exists.
    no_route_retry_s: float = 1.0
    dup_cache_size: int = 32
    max_thl: int = 32


@dataclass
class ForwardingStats:
    """Datapath counters; the cost metric is built from these."""

    generated: int = 0
    tx_attempts: int = 0
    tx_acked: int = 0
    forwarded: int = 0
    delivered_at_root: int = 0
    drops_queue_full: int = 0
    drops_retries: int = 0
    drops_thl: int = 0
    duplicates_suppressed: int = 0

    METRICS_PREFIX = "net.forwarding"

    def register_into(self, registry, **labels) -> None:
        """Register every counter as ``net.forwarding.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class _QueuedPacket:
    __slots__ = ("origin", "origin_seq", "thl", "retries", "origin_time")

    def __init__(self, origin: int, origin_seq: int, thl: int, origin_time: float = 0.0):
        self.origin = origin
        self.origin_seq = origin_seq
        self.thl = thl
        self.retries = 0
        self.origin_time = origin_time


class CtpForwardingEngine:
    """One node's collection datapath."""

    def __init__(
        self,
        engine: Engine,
        estimator: LinkEstimator,
        routing: CtpRoutingEngine,
        node_id: int,
        rng: Random,
        config: CtpForwardingConfig = CtpForwardingConfig(),
    ) -> None:
        self.engine = engine
        self.estimator = estimator
        self.routing = routing
        self.node_id = node_id
        self.rng = rng
        self.config = config
        self.stats = ForwardingStats()
        self._queue: Deque[_QueuedPacket] = deque()
        self._sending = False
        self._pump_scheduled = False
        self._seq = 0
        self._dup_cache: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        #: Called at the root for every data frame that reaches it:
        #: (origin, origin_seq, thl, time, origin_time).
        self.on_deliver: Optional[Callable[..., None]] = None
        routing.on_route_found = self._pump_soon

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_from_app(self) -> bool:
        """Originate one collection packet.  Returns False if queue is full."""
        if len(self._queue) >= self.config.queue_size:
            self.stats.drops_queue_full += 1
            return False
        self.stats.generated += 1
        self._queue.append(
            _QueuedPacket(self.node_id, self._seq, thl=0, origin_time=self.engine.now)
        )
        self._seq += 1
        self._pump_soon()
        return True

    # ------------------------------------------------------------------
    # Receive path (wired by the protocol facade)
    # ------------------------------------------------------------------
    def on_data_received(self, frame: CtpDataFrame) -> None:
        if self.routing.is_root:
            self.stats.delivered_at_root += 1
            if self.on_deliver is not None:
                self.on_deliver(
                    frame.origin, frame.origin_seq, frame.thl, self.engine.now, frame.origin_time
                )
            return
        # Cost-gradient check: a sender claiming a cost no higher than ours
        # routing *to* us indicates stale state somewhere — beacon fast.
        my_cost = self.routing.path_etx()
        if not math.isinf(frame.etx_at_sender) and frame.etx_at_sender <= my_cost:
            self.routing.signal_loop_suspected()
        key = (frame.origin, frame.origin_seq)
        if key in self._dup_cache:
            self.stats.duplicates_suppressed += 1
            return
        self._remember(key)
        if frame.thl + 1 > self.config.max_thl:
            self.stats.drops_thl += 1
            return
        if len(self._queue) >= self.config.queue_size:
            self.stats.drops_queue_full += 1
            return
        self.stats.forwarded += 1
        self._queue.append(
            _QueuedPacket(frame.origin, frame.origin_seq, frame.thl + 1, frame.origin_time)
        )
        self._pump_soon()

    def _remember(self, key: Tuple[int, int]) -> None:
        self._dup_cache[key] = None
        while len(self._dup_cache) > self.config.dup_cache_size:
            self._dup_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Transmit pump
    # ------------------------------------------------------------------
    def _pump_soon(self, delay: Optional[float] = None) -> None:
        if self._pump_scheduled or self._sending:
            return
        self._pump_scheduled = True
        self.engine.schedule(delay if delay is not None else 0.0, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._sending or not self._queue:
            return
        self.routing.update_route()
        parent = self.routing.parent
        if parent is None:
            self._pump_soon(self.config.no_route_retry_s)
            return
        packet = self._queue[0]
        frame = make_data_frame(
            src=self.node_id,
            dst=parent,
            origin=packet.origin,
            origin_seq=packet.origin_seq,
            thl=packet.thl,
            etx_at_sender=self.routing.path_etx(),
            origin_time=packet.origin_time,
        )
        if self.estimator.send(frame):
            self._sending = True
            self.stats.tx_attempts += 1
        else:
            self._pump_soon(self.rng.uniform(self.config.pace_min_s, self.config.pace_max_s))

    def on_send_done(self, frame: CtpDataFrame, sent: bool, acked: bool) -> None:
        """Completion callback for data frames (from the protocol facade)."""
        self._sending = False
        if not self._queue:
            return
        packet = self._queue[0]
        if acked:
            self.stats.tx_acked += 1
            self._queue.popleft()
            self._pump_soon(self.rng.uniform(self.config.pace_min_s, self.config.pace_max_s))
            return
        packet.retries += 1
        if packet.retries > self.config.max_retries:
            self.stats.drops_retries += 1
            self._queue.popleft()
        self._pump_soon(self.rng.uniform(self.config.retry_min_s, self.config.retry_max_s))

    # ------------------------------------------------------------------
    def fault_shutdown(self) -> None:
        """Node crash: the queue and duplicate cache are RAM — gone.

        ``_seq`` deliberately survives: the sink deduplicates on
        ``(origin, seq)``, so restarting the sequence at 0 would alias the
        reboot's packets with pre-crash deliveries and deflate the measured
        delivery ratio.  (Real motes persist a seed or use boot counters
        for the same reason.)  Any pending ``_pump`` event drains harmlessly
        against the empty queue.
        """
        self._queue.clear()
        self._sending = False
        self._dup_cache.clear()

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)
