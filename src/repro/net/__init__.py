"""Network layer: CTP (on the four-bit interfaces) and MultiHopLQI."""

from repro.net.ctp import CtpConfig, CtpProtocol
from repro.net.multihoplqi import MhlqiConfig, MultiHopLqi, adjust_lqi

__all__ = ["CtpConfig", "CtpProtocol", "MhlqiConfig", "MultiHopLqi", "adjust_lqi"]
