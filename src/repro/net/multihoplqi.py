"""MultiHopLQI: the state-of-the-art baseline the paper compares against.

A faithful port of the TinyOS ``MultiHopLQI`` collection protocol: each
node periodically broadcasts a beacon advertising its path cost; receivers
derive the link cost from the **LQI of that single received beacon** via
the cubic ``adjustLQI`` mapping and keep one best parent.  Data is unicast
to the parent with a small retransmission budget and *no* feedback into
the route cost — exactly the blindness Figures 3 and 8 demonstrate: when a
link's PRR collapses but surviving packets still carry high LQI, the
protocol keeps hammering the same parent.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass
from random import Random
from typing import Callable, Deque, Optional, Tuple

from repro.link.frame import BROADCAST, NetworkFrame

# MultiHopLQI is the paper's LQI-blind *monolithic* baseline: it owns the MAC
# directly and bypasses the estimator stack on purpose, so this is the one
# sanctioned breach of the four-bit layering contract.
from repro.link.mac import Mac  # lint: disable=layering
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo, TxResult

#: Beacon: options(1) + parent(2) + cost(2) + hopcount(1).
BEACON_FRAME_BYTES = 14
#: Data frame, sized like CTP's for a fair cost comparison.
DATA_FRAME_BYTES = 36


def adjust_lqi(lqi: int) -> int:
    """The TinyOS MultiHopLQI link-cost mapping (cubic in 80 − (LQI − 50)).

    LQI 110 (clean channel) → 125; LQI 50 (barely decodable) → 8000.
    """
    clamped = min(max(lqi, 50), 110)
    r = 80 - (clamped - 50)
    return (((r * r) >> 3) * r) >> 3


@dataclass
class LqiBeaconFrame(NetworkFrame):
    """Route beacon advertising the sender's path cost to the root."""

    path_cost: float = math.inf

    def describe(self) -> str:
        return f"LqiBeacon(cost={self.path_cost:.0f})"


@dataclass
class LqiDataFrame(NetworkFrame):
    """Collection data frame."""

    origin: int = 0
    origin_seq: int = 0
    thl: int = 0
    #: Origination time (end-to-end latency instrumentation).
    origin_time: float = 0.0

    def describe(self) -> str:
        return f"LqiData(origin={self.origin}, seq={self.origin_seq})"


@dataclass(frozen=True)
class MhlqiConfig:
    """MultiHopLQI parameters (TinyOS defaults, scaled to seconds)."""

    beacon_period_s: float = 32.0
    beacon_jitter_s: float = 4.0
    first_beacon_max_s: float = 2.0
    #: Switch parents only when the new cost is below this fraction of the
    #: current one (the TinyOS ``cost − cost/4`` rule ⇒ 0.75).
    switch_factor: float = 0.75
    #: Declare the parent dead after this many silent beacon periods.
    parent_timeout_periods: int = 5
    max_retries: int = 5
    queue_size: int = 12
    dup_cache_size: int = 32
    max_thl: int = 32
    retry_min_s: float = 0.020
    retry_max_s: float = 0.060
    pace_min_s: float = 0.002
    pace_max_s: float = 0.010
    no_route_retry_s: float = 1.0

    @staticmethod
    def scaled_for(radio_params, data_bytes: int = 36) -> "MhlqiConfig":
        """Retry/pacing delays scaled to the radio's data airtime (see
        :meth:`repro.net.ctp.protocol.CtpConfig.scaled_for`)."""
        airtime = radio_params.airtime(data_bytes)
        return MhlqiConfig(
            retry_min_s=12.5 * airtime,
            retry_max_s=37.5 * airtime,
            pace_min_s=1.25 * airtime,
            pace_max_s=6.25 * airtime,
        )


@dataclass
class MhlqiStats:
    """Counters for one node's MultiHopLQI stack."""

    beacons_sent: int = 0
    beacons_heard: int = 0
    parent_switches: int = 0
    generated: int = 0
    forwarded: int = 0
    tx_attempts: int = 0
    tx_acked: int = 0
    tx_unacked: int = 0
    delivered_at_root: int = 0
    drops_queue_full: int = 0
    drops_retries: int = 0
    drops_thl: int = 0
    duplicates_suppressed: int = 0

    METRICS_PREFIX = "net.mhlqi"

    def register_into(self, registry, **labels) -> None:
        """Register every counter as ``net.mhlqi.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class _QueuedPacket:
    __slots__ = ("origin", "origin_seq", "thl", "retries", "origin_time")

    def __init__(self, origin: int, origin_seq: int, thl: int, origin_time: float = 0.0):
        self.origin = origin
        self.origin_seq = origin_seq
        self.thl = thl
        self.retries = 0
        self.origin_time = origin_time


class MultiHopLqi:
    """One node's complete MultiHopLQI stack (owns the MAC directly)."""

    def __init__(
        self,
        engine: Engine,
        mac: Mac,
        node_id: int,
        is_root: bool,
        rng: Random,
        config: MhlqiConfig = MhlqiConfig(),
    ) -> None:
        self.engine = engine
        self.mac = mac
        self.node_id = node_id
        self.is_root = is_root
        self.rng = rng
        self.config = config
        self.stats = MhlqiStats()
        self.parent: Optional[int] = None
        self.path_cost: float = 0.0 if is_root else math.inf
        self._last_parent_heard = -math.inf
        self._queue: Deque[_QueuedPacket] = deque()
        self._sending_data = False
        self._pump_scheduled = False
        self._seq = 0
        self._dup_cache: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.on_deliver: Optional[Callable[..., None]] = None
        mac.on_receive = self._mac_receive
        mac.on_send_done = self._mac_send_done

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot: begin periodic beacons."""
        self.engine.schedule(self.rng.uniform(0.1, self.config.first_beacon_max_s), self._beacon_tick)

    # ------------------------------------------------------------------
    # Beaconing / route maintenance
    # ------------------------------------------------------------------
    def _beacon_tick(self) -> None:
        self._check_parent_timeout()
        frame = LqiBeaconFrame(
            src=self.node_id,
            dst=BROADCAST,
            length_bytes=BEACON_FRAME_BYTES,
            carries_route_info=True,
            path_cost=self.path_cost,
        )
        if self.mac.send(frame):
            self.stats.beacons_sent += 1
        period = self.config.beacon_period_s + self.rng.uniform(0, self.config.beacon_jitter_s)
        self.engine.schedule(period, self._beacon_tick)

    def _check_parent_timeout(self) -> None:
        if self.is_root or self.parent is None:
            return
        timeout = self.config.parent_timeout_periods * self.config.beacon_period_s
        if self.engine.now - self._last_parent_heard > timeout:
            self.parent = None
            self.path_cost = math.inf

    def _on_beacon(self, frame: LqiBeaconFrame, info: RxInfo) -> None:
        self.stats.beacons_heard += 1
        if self.is_root:
            return
        if math.isinf(frame.path_cost):
            return
        cost_via = frame.path_cost + adjust_lqi(info.lqi)
        if frame.src == self.parent:
            # Refresh: track the parent's advertised cost as it changes.
            self.path_cost = cost_via
            self._last_parent_heard = info.timestamp
            return
        if self.parent is None or cost_via < self.config.switch_factor * self.path_cost:
            had_route = self.parent is not None
            self.parent = frame.src
            self.path_cost = cost_via
            self._last_parent_heard = info.timestamp
            self.stats.parent_switches += 1
            if not had_route:
                self._pump_soon()

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def send_from_app(self) -> bool:
        """Originate one collection packet (False if the queue is full)."""
        if len(self._queue) >= self.config.queue_size:
            self.stats.drops_queue_full += 1
            return False
        self.stats.generated += 1
        self._queue.append(
            _QueuedPacket(self.node_id, self._seq, thl=0, origin_time=self.engine.now)
        )
        self._seq += 1
        self._pump_soon()
        return True

    def _on_data(self, frame: LqiDataFrame) -> None:
        if self.is_root:
            self.stats.delivered_at_root += 1
            if self.on_deliver is not None:
                self.on_deliver(
                    frame.origin, frame.origin_seq, frame.thl, self.engine.now, frame.origin_time
                )
            return
        key = (frame.origin, frame.origin_seq)
        if key in self._dup_cache:
            self.stats.duplicates_suppressed += 1
            return
        self._dup_cache[key] = None
        while len(self._dup_cache) > self.config.dup_cache_size:
            self._dup_cache.popitem(last=False)
        if frame.thl + 1 > self.config.max_thl:
            self.stats.drops_thl += 1
            return
        if len(self._queue) >= self.config.queue_size:
            self.stats.drops_queue_full += 1
            return
        self.stats.forwarded += 1
        self._queue.append(
            _QueuedPacket(frame.origin, frame.origin_seq, frame.thl + 1, frame.origin_time)
        )
        self._pump_soon()

    def _pump_soon(self, delay: float = 0.0) -> None:
        if self._pump_scheduled or self._sending_data:
            return
        self._pump_scheduled = True
        self.engine.schedule(delay, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._sending_data or not self._queue:
            return
        self._check_parent_timeout()
        if self.parent is None:
            self._pump_soon(self.config.no_route_retry_s)
            return
        packet = self._queue[0]
        frame = LqiDataFrame(
            src=self.node_id,
            dst=self.parent,
            length_bytes=DATA_FRAME_BYTES,
            origin=packet.origin,
            origin_seq=packet.origin_seq,
            thl=packet.thl,
            origin_time=packet.origin_time,
        )
        if self.mac.send(frame):
            self._sending_data = True
            self.stats.tx_attempts += 1
        else:
            self._pump_soon(self.rng.uniform(self.config.pace_min_s, self.config.pace_max_s))

    # ------------------------------------------------------------------
    # MAC callbacks
    # ------------------------------------------------------------------
    def _mac_receive(self, frame, info: RxInfo) -> None:
        if isinstance(frame, LqiBeaconFrame):
            self._on_beacon(frame, info)
        elif isinstance(frame, LqiDataFrame):
            self._on_data(frame)

    def _mac_send_done(self, frame, result: TxResult) -> None:
        if not isinstance(frame, LqiDataFrame):
            return  # beacon completion
        self._sending_data = False
        if not self._queue:
            return
        packet = self._queue[0]
        if result.ack_bit:
            self.stats.tx_acked += 1
            self._queue.popleft()
            self._pump_soon(self.rng.uniform(self.config.pace_min_s, self.config.pace_max_s))
            return
        self.stats.tx_unacked += 1
        packet.retries += 1
        if packet.retries > self.config.max_retries:
            self.stats.drops_retries += 1
            self._queue.popleft()
        self._pump_soon(self.rng.uniform(self.config.retry_min_s, self.config.retry_max_s))
