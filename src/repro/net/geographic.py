"""Greedy geographic routing on the four-bit interfaces.

Section 2.3 of the paper argues the network layer knows *which* links are
valuable: geographic routing wants neighbors spread toward the
destination.  This module demonstrates the claimed protocol independence
of the estimator — a completely different network layer reusing the same
:class:`~repro.core.interfaces.LinkEstimator` unchanged:

* beacons advertise the sender's **position** instead of a path metric;
* the next hop is the table neighbor closest to the sink among those with
  a usable link (greedy forwarding; no perimeter mode — adequate on the
  dense testbeds simulated here);
* the **pin bit** protects the current next hop;
* the **compare bit** answers "is the sender closer to the sink than my
  current next hop?" — route utility expressed in distance.

The datapath reuses :class:`~repro.net.ctp.forwarding.CtpForwardingEngine`
unmodified (it only needs a routing engine exposing ``parent``,
``path_etx`` — here the remaining distance — and the loop signal), which
is itself a small proof of the architecture's composability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, Optional, Tuple

from repro.core.interfaces import CompareBitProvider, EstimatorClient, LinkEstimator
from repro.link.frame import BROADCAST, NetworkFrame
from repro.net.ctp.forwarding import CtpForwardingConfig, CtpForwardingEngine
from repro.net.ctp.frames import CtpDataFrame
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo

Position = Tuple[float, float]

#: Geo beacon: options(1) + x(4) + y(4).
GEO_BEACON_BYTES = 15


@dataclass
class GeoBeaconFrame(NetworkFrame):
    """Routing beacon advertising the sender's position."""

    position: Position = (0.0, 0.0)

    def describe(self) -> str:
        return f"GeoBeacon({self.position[0]:.1f},{self.position[1]:.1f})"


@dataclass(frozen=True)
class GeoConfig:
    """Greedy-geographic-routing parameters."""

    beacon_period_s: float = 30.0
    beacon_jitter_s: float = 4.0
    first_beacon_max_s: float = 2.0
    #: Links above this estimated ETX are not greedy candidates.
    max_link_etx: float = 4.0
    #: A candidate must be at least this much closer to the sink (meters).
    progress_margin_m: float = 0.5


class GreedyGeoRouting(CompareBitProvider):
    """Next-hop selection by greedy geographic progress."""

    def __init__(
        self,
        engine: Engine,
        estimator,
        node_id: int,
        position: Position,
        sink_position: Position,
        is_root: bool,
        rng: Random,
        config: GeoConfig = GeoConfig(),
    ) -> None:
        self.engine = engine
        self.estimator = estimator
        self.node_id = node_id
        self.position = position
        self.sink_position = sink_position
        self.is_root = is_root
        self.rng = rng
        self.config = config
        self.neighbor_positions: Dict[int, Position] = {}
        self.parent: Optional[int] = None
        self.on_route_found: Optional[Callable[[], None]] = None
        self.beacons_sent = 0
        self.parent_switches = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot: begin periodic position beacons."""
        self.engine.schedule(self.rng.uniform(0.1, self.config.first_beacon_max_s), self._beacon_tick)

    def _distance_to_sink(self, pos: Position) -> float:
        return math.hypot(pos[0] - self.sink_position[0], pos[1] - self.sink_position[1])

    def path_etx(self) -> float:
        """Remaining geographic distance (the engine's cost gradient)."""
        if self.is_root:
            return 0.0
        if self.parent is None:
            return math.inf
        return self._distance_to_sink(self.position)

    # ------------------------------------------------------------------
    def _beacon_tick(self) -> None:
        frame = GeoBeaconFrame(
            src=self.node_id,
            dst=BROADCAST,
            length_bytes=GEO_BEACON_BYTES,
            carries_route_info=True,
            position=self.position,
        )
        if self.estimator.send(frame):
            self.beacons_sent += 1
        period = self.config.beacon_period_s + self.rng.uniform(0, self.config.beacon_jitter_s)
        self.engine.schedule(period, self._beacon_tick)

    def on_beacon_received(self, frame: GeoBeaconFrame, info: RxInfo, le_src: int) -> None:
        """Learn a neighbor's position and re-evaluate the next hop."""
        self.neighbor_positions[le_src] = frame.position
        self.update_route()

    # ------------------------------------------------------------------
    def update_route(self) -> None:
        """Greedy: the usable table neighbor closest to the sink."""
        if self.is_root:
            return
        my_distance = self._distance_to_sink(self.position)
        best: Optional[int] = None
        best_distance = my_distance - self.config.progress_margin_m
        for neighbor in self.estimator.neighbors():
            pos = self.neighbor_positions.get(neighbor)
            if pos is None:
                continue
            if self.estimator.link_quality(neighbor) > self.config.max_link_etx:
                continue
            d = self._distance_to_sink(pos)
            if d < best_distance:
                best, best_distance = neighbor, d
        if best is not None and best != self.parent:
            had_route = self.parent is not None
            if self.parent is not None:
                self.estimator.unpin(self.parent)
            self.parent = best
            self.estimator.pin(best)
            self.parent_switches += 1
            if not had_route and self.on_route_found is not None:
                self.on_route_found()

    # ------------------------------------------------------------------
    def compare_bit(self, frame: NetworkFrame, info: RxInfo) -> bool:
        """Does the sender offer more geographic progress than the current
        next hop (or any progress, when there is none)?"""
        if not isinstance(frame, GeoBeaconFrame):
            return False
        candidate = self._distance_to_sink(frame.position)
        if self.parent is None:
            return candidate < self._distance_to_sink(self.position) - self.config.progress_margin_m
        current = self.neighbor_positions.get(self.parent)
        if current is None:
            return True
        return candidate < self._distance_to_sink(current) - self.config.progress_margin_m

    def signal_loop_suspected(self) -> None:
        """Greedy progress is loop-free by construction; re-evaluate anyway."""
        self.update_route()


class GreedyGeoProtocol(EstimatorClient):
    """A node's full geographic-collection stack above the link estimator."""

    def __init__(
        self,
        engine: Engine,
        estimator: LinkEstimator,
        node_id: int,
        position: Position,
        sink_position: Position,
        is_root: bool,
        rng: Random,
        config: GeoConfig = GeoConfig(),
        forwarding_config: CtpForwardingConfig = CtpForwardingConfig(),
    ) -> None:
        self.node_id = node_id
        self.estimator = estimator
        self.routing = GreedyGeoRouting(
            engine, estimator, node_id, position, sink_position, is_root, rng, config
        )
        self.forwarding = CtpForwardingEngine(
            engine, estimator, self.routing, node_id, rng, forwarding_config
        )
        estimator.client = self
        estimator.compare_provider = self.routing

    def start(self) -> None:
        """Boot the stack (begin beaconing)."""
        self.routing.start()

    @property
    def is_root(self) -> bool:
        """Whether this node is a collection sink."""
        return self.routing.is_root

    @property
    def parent(self) -> Optional[int]:
        """Current next hop (None before a route exists)."""
        return self.routing.parent

    def send_from_app(self) -> bool:
        """Originate one collection packet (False if the queue is full)."""
        return self.forwarding.send_from_app()

    # -- EstimatorClient --------------------------------------------------
    def on_receive(self, frame: NetworkFrame, info: RxInfo, le_src: int) -> None:
        """EstimatorClient: dispatch beacons vs data frames."""
        if isinstance(frame, GeoBeaconFrame):
            self.routing.on_beacon_received(frame, info, le_src)
        elif isinstance(frame, CtpDataFrame):
            self.forwarding.on_data_received(frame)

    def on_send_done(self, frame: NetworkFrame, sent: bool, acked: bool) -> None:
        """EstimatorClient: route data completions to the forwarding engine."""
        if isinstance(frame, CtpDataFrame):
            self.forwarding.on_send_done(frame, sent, acked)
