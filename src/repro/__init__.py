"""repro — a full reproduction of "Four-Bit Wireless Link Estimation"
(Fonseca, Gnawali, Jamieson, Levis; HotNets-VI, 2007).

The package provides:

* :mod:`repro.core` — the paper's contribution: the four-bit interfaces
  (white / ack / pin / compare) and the hybrid windowed-mean EWMA link
  estimator ("4B").
* :mod:`repro.phy`, :mod:`repro.link`, :mod:`repro.net` — the substrate: a
  CC2420-class radio/channel model, CSMA MAC with synchronous L2 acks, CTP
  and MultiHopLQI collection protocols.
* :mod:`repro.sim` — a discrete-event simulator with an SINR-based shared
  medium.
* :mod:`repro.experiments` — one module per figure of the paper.

Quickstart::

    from repro import CollectionNetwork, SimConfig, MIRAGE

    profile = MIRAGE
    net = CollectionNetwork(profile.topology(seed=1),
                            SimConfig(protocol="4b", duration_s=600.0),
                            profile=profile)
    result = net.run()
    print(result.summary_row())
"""

from repro.core import (
    EstimatorConfig,
    Ewma,
    HybridLinkEstimator,
    LinkEstimator,
    NeighborTable,
)
from repro.estimators.presets import PRESETS, four_bit
from repro.metrics.collection_stats import CollectionResult
from repro.net.ctp import CtpConfig, CtpProtocol
from repro.net.multihoplqi import MhlqiConfig, MultiHopLqi, adjust_lqi
from repro.sim.engine import Engine
from repro.sim.network import PROTOCOLS, CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import Topology, grid, line, pair, random_uniform
from repro.topology.testbeds import MIRAGE, TUTORNET, TestbedProfile, scaled_profile
from repro.workloads.collection import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "MIRAGE",
    "PRESETS",
    "PROTOCOLS",
    "TUTORNET",
    "CollectionNetwork",
    "CollectionResult",
    "CtpConfig",
    "CtpProtocol",
    "Engine",
    "EstimatorConfig",
    "Ewma",
    "HybridLinkEstimator",
    "LinkEstimator",
    "MhlqiConfig",
    "MultiHopLqi",
    "NeighborTable",
    "RngManager",
    "SimConfig",
    "TestbedProfile",
    "Topology",
    "WorkloadConfig",
    "adjust_lqi",
    "four_bit",
    "grid",
    "line",
    "pair",
    "random_uniform",
    "scaled_profile",
]
