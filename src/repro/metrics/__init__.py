"""Metrics: collection statistics and per-link time-series probes."""

from repro.metrics.collection_stats import CollectionResult, compute_result
from repro.metrics.timeseries import BroadcastLog, RxProbe, TxProbe, windowed_prr

__all__ = [
    "BroadcastLog",
    "CollectionResult",
    "RxProbe",
    "TxProbe",
    "compute_result",
    "windowed_prr",
]
