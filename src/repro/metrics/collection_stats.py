"""Collection metrics — the paper's three evaluation quantities.

* **cost**: total data transmissions in the network per unique packet
  delivered at the root.  Includes retransmissions and effort wasted on
  packets that were ultimately dropped (Section 4).
* **average depth**: average number of hops from a node to the root in the
  routing tree (time-averaged over periodic samples).  With perfect links
  depth lower-bounds cost.
* **delivery ratio**: unique messages at the root / messages offered by the
  applications; also reported per node for the Figure 8 distributions.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import CollectionNetwork


def json_sanitize(value):
    """Recursively replace non-finite floats with ``None`` (JSON ``null``)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(v) for v in value]
    return value


@dataclass
class CollectionResult:
    """Outcome of one collection run."""

    protocol: str
    seed: int
    duration_s: float
    n_nodes: int
    offered: int
    accepted: int
    unique_delivered: int
    duplicates_at_root: int
    total_data_tx: int
    beacons_sent: int
    mean_packet_hops: float
    avg_tree_depth: float
    disconnected_fraction: float
    #: End-to-end latency of delivered packets (seconds; NaN when unknown).
    latency_mean_s: float = math.nan
    latency_p95_s: float = math.nan
    #: Simulator events executed by the run (throughput accounting).
    events_run: int = 0
    #: Engine profile (``SimConfig(profile_events=True)``): wall time per
    #: event kind, events/sec, queue depth — see ``repro.obs.profile``.
    profile: Optional[Dict[str, object]] = None
    #: Cross-layer metrics snapshot (``SimConfig(collect_metrics=True)``):
    #: the flat ``repro.obs`` registry view of every layer's counters.
    metrics: Optional[Dict[str, float]] = None
    #: Wall/CPU/peak-RSS accounting for the process that executed the run
    #: (``repro.obs.resources`` keys); filled by the runner workers.
    #: Wall-clock accounting is nondeterministic by nature, so it is
    #: excluded from dataclass equality — determinism checks compare
    #: simulated fields only.
    resources: Optional[Dict[str, float]] = field(default=None, compare=False)
    per_node_delivery: Dict[int, float] = field(default_factory=dict)
    final_parents: Dict[int, Optional[int]] = field(default_factory=dict)
    final_depths: Dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """Transmissions per unique delivered packet (lower is better)."""
        if self.unique_delivered == 0:
            return math.inf
        return self.total_data_tx / self.unique_delivered

    @property
    def delivery_ratio(self) -> float:
        if self.offered == 0:
            return math.nan
        return self.unique_delivered / self.offered

    def delivery_values(self) -> List[float]:
        """Per-node delivery ratios (for boxplots)."""
        return [self.per_node_delivery[nid] for nid in sorted(self.per_node_delivery)]

    def summary_row(self) -> str:
        return (
            f"{self.protocol:<18} cost={self.cost:6.2f}  depth={self.avg_tree_depth:5.2f}  "
            f"delivery={self.delivery_ratio * 100:6.2f}%  tx={self.total_data_tx:7d}  "
            f"delivered={self.unique_delivered:5d}/{self.offered}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Strict-JSON view of the result.

        ``cost`` is ``inf`` on runs that delivered nothing and the latency
        fields default to ``NaN``; ``json.dump`` serializes those as the
        invalid tokens ``Infinity``/``NaN``.  Here every non-finite float
        becomes ``null`` so the output parses everywhere.
        """
        raw = dataclasses.asdict(self)
        raw["cost"] = self.cost
        raw["delivery_ratio"] = self.delivery_ratio
        return json_sanitize(raw)


def _mean_depth(samples: List[Dict[int, Optional[int]]], roots) -> tuple[float, float]:
    """(time-averaged mean tree depth, mean disconnected fraction).

    ``roots`` is an int or a collection of root ids; roots are excluded
    from the averages (their depth is 0 by definition).
    """
    root_set = {roots} if isinstance(roots, int) else set(roots)
    depth_total = 0.0
    depth_count = 0
    missing_total = 0.0
    for sample in samples:
        values = [d for nid, d in sample.items() if nid not in root_set and d is not None]
        missing = sum(1 for nid, d in sample.items() if nid not in root_set and d is None)
        depth_total += sum(values)
        depth_count += len(values)
        denom = len(sample) - len(root_set)
        missing_total += missing / denom if denom > 0 else 0.0
    if depth_count == 0:
        return math.nan, 1.0
    return depth_total / depth_count, missing_total / max(len(samples), 1)


def compute_result(network: "CollectionNetwork") -> CollectionResult:
    """Assemble the result object from a finished simulation."""
    topo = network.topology
    roots = network.roots
    offered = 0
    accepted = 0
    per_node: Dict[int, float] = {}
    total_data_tx = 0
    beacons = 0
    for nid, node in network.nodes.items():
        total_data_tx += node.data_transmissions()
        beacons += node.mac.stats.tx_broadcast
        if node.source is None:
            continue
        offered += node.source.attempted
        accepted += node.source.accepted
        delivered = network.sink.unique_per_origin.get(nid, 0)
        per_node[nid] = delivered / node.source.attempted if node.source.attempted else math.nan

    samples = network._depth_samples or [network.depth_map()]
    avg_depth, disconnected = _mean_depth(samples, roots)

    latencies = sorted(network.sink.latencies())
    if latencies:
        latency_mean = sum(latencies) / len(latencies)
        latency_p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
    else:
        latency_mean = latency_p95 = math.nan

    profiler = getattr(network.engine, "profiler", None)
    metrics_snapshot = None
    if getattr(network.config, "collect_metrics", False):
        from repro.obs.bridge import network_metrics

        metrics_snapshot = network_metrics(network).snapshot()

    return CollectionResult(
        protocol=network.config.protocol,
        seed=network.config.seed,
        duration_s=network.config.duration_s,
        n_nodes=topo.size,
        offered=offered,
        accepted=accepted,
        unique_delivered=network.sink.unique_delivered,
        duplicates_at_root=network.sink.duplicates,
        total_data_tx=total_data_tx,
        beacons_sent=beacons,
        mean_packet_hops=network.sink.mean_hops(),
        avg_tree_depth=avg_depth,
        disconnected_fraction=disconnected,
        latency_mean_s=latency_mean,
        latency_p95_s=latency_p95,
        events_run=network.engine.events_run,
        profile=profiler.summary() if profiler is not None else None,
        metrics=metrics_snapshot,
        per_node_delivery=per_node,
        final_parents=network.parent_map(),
        final_depths=network.depth_map(),
    )
