"""Per-link time-series probes (the instrumentation behind Figure 3).

The probes wrap a node's MAC callbacks non-invasively (chaining to the
original handler), recording for a chosen link:

* windowed PRR of broadcast beacons from a given sender (via LE sequence
  numbers this would need unwrapping, so the probe counts *all* frames from
  the sender against the sender's transmission log — the experiment
  supplies both ends);
* LQI of every received packet from the sender;
* the cumulative count of unacknowledged transmissions to a destination.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from typing import List, Optional, Tuple


from repro.link.frame import AckFrame, Frame, JamFrame
from repro.link.mac import Mac
from repro.sim.packets import RxInfo, TxResult


@dataclass
class _Sample:
    time: float
    value: float


class RxProbe:
    """Records receptions at one node, filtered by sender."""

    def __init__(self, mac: Mac, sender: int) -> None:
        self.sender = sender
        self.rx_times: List[float] = []
        self.lqi_samples: List[Tuple[float, int]] = []
        self._chain = mac.on_receive
        mac.on_receive = self._on_receive

    def _on_receive(self, frame: Frame, info: RxInfo) -> None:
        if frame.src == self.sender and not isinstance(frame, (AckFrame, JamFrame)):
            self.rx_times.append(info.timestamp)
            self.lqi_samples.append((info.timestamp, info.lqi))
        if self._chain is not None:
            self._chain(frame, info)

    def mean_lqi_in(self, t0: float, t1: float) -> Optional[float]:
        values = [lqi for t, lqi in self.lqi_samples if t0 <= t < t1]
        if not values:
            return None
        return sum(values) / len(values)


class TxProbe:
    """Records transmissions from one node, filtered by destination.

    Counts attempts and unacknowledged attempts — the bottom panel of
    Figure 3 is the cumulative unacked count.
    """

    def __init__(self, mac: Mac, dest: Optional[int] = None) -> None:
        self.dest = dest
        self.tx_times: List[float] = []
        self.unacked_times: List[float] = []
        self._chain = mac.on_send_done
        mac.on_send_done = self._on_send_done

    def _on_send_done(self, frame: Frame, result: TxResult) -> None:
        if result.sent and (self.dest is None or result.dest == self.dest):
            if not frame.is_broadcast:
                self.tx_times.append(result.timestamp)
                if not result.ack_bit:
                    self.unacked_times.append(result.timestamp)
        if self._chain is not None:
            self._chain(frame, result)

    def cumulative_unacked(self, times: List[float]) -> List[int]:
        return [bisect.bisect_right(self.unacked_times, t) for t in times]


class BroadcastLog:
    """Counts every frame a node puts on the air (for ground-truth PRR)."""

    def __init__(self, mac: Mac) -> None:
        self.node_id = mac.node_id
        self.tx_times: List[float] = []
        self._orig_start = mac.medium.start_transmission
        self._mac = mac
        mac.medium = _TxCountingMedium(mac.medium, self)


class _TxCountingMedium:
    """Proxy medium that logs one node's transmissions, delegating the rest."""

    def __init__(self, inner, log: BroadcastLog) -> None:
        self._inner = inner
        self._log = log

    def start_transmission(self, sender_id: int, frame: Frame) -> float:
        if sender_id == self._log.node_id and not isinstance(frame, AckFrame):
            self._log.tx_times.append(self._inner.engine.now)
        return self._inner.start_transmission(sender_id, frame)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def windowed_prr(
    tx_times: List[float], rx_times: List[float], window_s: float, t_end: float
) -> List[Tuple[float, Optional[float]]]:
    """PRR per window: received / transmitted, ``None`` for empty windows."""
    out: List[Tuple[float, Optional[float]]] = []
    t = 0.0
    while t < t_end:
        sent = bisect.bisect_right(tx_times, t + window_s) - bisect.bisect_right(tx_times, t)
        got = bisect.bisect_right(rx_times, t + window_s) - bisect.bisect_right(rx_times, t)
        out.append((t + window_s / 2, (got / sent) if sent else None))
        t += window_s
    return out
