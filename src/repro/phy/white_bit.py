"""White-bit derivations — the physical layer's one bit.

The paper (Section 3.2) describes several valid derivations depending on
what the hardware exposes:

* signal-to-noise ratio against a threshold from the SNR/BER curve;
* chip-correlation / recovered-bit-error counts (the CC2420 LQI);
* in the worst case, hardware exposes nothing and the bit is never set.

All derivations share one contract: a **set** white bit implies the medium
quality during reception was high; a **clear** bit implies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.modulation import snr_for_prr


class WhiteBitPolicy:
    """Interface: decide the white bit from per-packet PHY measurements."""

    def evaluate(self, snr_db: float, lqi: int) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable tag for trace/metric metadata."""
        return type(self).__name__


@dataclass(frozen=True)
class LqiWhiteBit(WhiteBitPolicy):
    """Set the white bit when LQI clears a threshold.

    This mirrors the TinyOS 2 CC2420 implementation of the 4-bit interface,
    which sets the bit for LQI ≥ 105 (chip correlation near its ceiling).
    """

    threshold: int = 105

    def evaluate(self, snr_db: float, lqi: int) -> bool:
        return lqi >= self.threshold

    def describe(self) -> str:
        return f"lqi>={self.threshold}"


@dataclass(frozen=True)
class SnrWhiteBit(WhiteBitPolicy):
    """Set the white bit when per-packet SNR clears a threshold."""

    threshold_db: float = 8.0

    def evaluate(self, snr_db: float, lqi: int) -> bool:
        return snr_db >= self.threshold_db

    def describe(self) -> str:
        return f"snr>={self.threshold_db:.1f}dB"

    @classmethod
    def from_prr_target(cls, target_prr: float = 0.999, length_bytes: int = 100) -> "SnrWhiteBit":
        """Derive the threshold from the SNR/BER curve, as the paper suggests
        for radios that report signal strength and noise."""
        return cls(threshold_db=snr_for_prr(target_prr, length_bytes))


@dataclass(frozen=True)
class NeverWhiteBit(WhiteBitPolicy):
    """Worst case: the radio provides no channel-quality information."""

    def evaluate(self, snr_db: float, lqi: int) -> bool:
        return False

    def describe(self) -> str:
        return "never"


#: Default derivation used by the simulated CC2420 stack.
DEFAULT_WHITE_BIT = LqiWhiteBit()
