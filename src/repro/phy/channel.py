"""Wireless channel model: path loss, static shadowing, temporal fading.

The channel gain between two positions is

    gain(a, b, t) = −[PL(d0) + 10·n·log10(d/d0)] + S_ab + X_ab(t)

where ``S_ab`` is static log-normal shadowing (per unordered pair, drawn
once — the testbeds in the paper are static) and ``X_ab(t)`` is a slow
Ornstein–Uhlenbeck process capturing the time-varying component of the
channel (people moving, multipath drift).  Asymmetry between the two
directions of a link comes from per-node hardware variation (transmit
power and noise-floor offsets, see :mod:`repro.phy.radio`), matching the
measurement literature the paper cites.

This module sits on the simulator's hottest path (one gain query per
candidate reception and per overlapping interferer), so per-pair state is
organized for cheap repeated queries: the time-invariant gain is cached
per pair, each OU / Gilbert state object carries its own pre-bound RNG
stream, and the OU decay factors ``exp(-dt/tau)`` are memoized for
repeating ``dt`` values.  All caches hold values that are pure functions
of their keys, so they cannot change simulated results — the determinism
contract in DESIGN.md relies on this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.rng import RngManager

Position = Tuple[float, float]

#: Sentinel distinguishing "not yet decided" from "decided: not bimodal".
_MISSING = object()

#: Bound on the value-cache sizes below; keys are floats produced by the
#: simulation, so without a bound an adversarial schedule could grow the
#: caches indefinitely.  Entries past the bound are computed but not
#: stored — results are identical either way.
_CACHE_MAX = 4096


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss."""

    pl_d0_db: float = 55.0
    exponent: float = 3.0
    d0_m: float = 1.0

    def loss_db(self, distance_m: float) -> float:
        d = max(distance_m, self.d0_m)
        return self.pl_d0_db + 10.0 * self.exponent * math.log10(d / self.d0_m)


class _OUState:
    """Lazy Ornstein–Uhlenbeck sample: advanced only when queried.

    Carries its own pre-bound update stream so the per-query tuple-keyed
    ``RngManager.stream`` lookup disappears from the hot path.
    """

    __slots__ = ("t", "x", "stream")

    def __init__(self, stream: Random) -> None:
        self.t = 0.0
        self.x = 0.0
        self.stream = stream


class _GilbertState:
    """Lazy two-state (good / deep-fade) process, advanced only when queried.

    Like :class:`_OUState`, carries its pre-bound dwell stream.
    """

    __slots__ = ("t", "faded", "stream")

    def __init__(self, stream: Random) -> None:
        self.t = 0.0
        self.faded = False
        self.stream = stream


class ChannelModel:
    """Per-pair channel gains over a set of node positions.

    Positions are registered up front (static network); interferers may be
    registered later with :meth:`add_position`.
    """

    def __init__(
        self,
        positions: Mapping[int, Position],
        rng: RngManager,
        pathloss: PathLossModel = PathLossModel(),
        shadowing_sigma_db: float = 3.2,
        temporal_sigma_db: float = 1.5,
        temporal_tau_s: float = 60.0,
        bimodal_fraction: float = 0.0,
        fade_depth_db: float = 15.0,
        fade_dwell_s: float = 80.0,
        good_dwell_s: float = 240.0,
    ) -> None:
        self.positions: Dict[int, Position] = dict(positions)
        self.pathloss = pathloss
        self.shadowing_sigma_db = shadowing_sigma_db
        self.temporal_sigma_db = temporal_sigma_db
        self.temporal_tau_s = temporal_tau_s
        #: Fraction of pairs that are *bimodal*: they alternate between their
        #: nominal gain and a deep multipath fade (Srinivasan et al., the
        #: paper's reference [19]).  During a fade PRR collapses to ~0 while
        #: the few packets that do get through still decode cleanly — the
        #: temporal variation physical-layer indicators cannot flag.
        self.bimodal_fraction = bimodal_fraction
        self.fade_depth_db = fade_depth_db
        self.fade_dwell_s = fade_dwell_s
        self.good_dwell_s = good_dwell_s
        self._rng = rng
        self._shadowing: Dict[Tuple[int, int], float] = {}
        self._ou: Dict[Tuple[int, int], _OUState] = {}
        self._gilbert: Dict[Tuple[int, int], Optional[_GilbertState]] = {}
        #: Cached time-invariant gain (path loss + shadowing) per pair.
        self._mean_gain: Dict[Tuple[int, int], float] = {}
        #: node → cached mean-gain pair keys touching it, so a position
        #: update invalidates O(k) entries instead of scanning the cache.
        #: (An inner dict, not a set: iteration order must stay
        #: deterministic, and re-registration must not duplicate.)
        self._mean_keys_by_node: Dict[int, Dict[Tuple[int, int], None]] = {}
        #: dt → (exp(−dt/τ), innovation sigma); both are pure functions of
        #: dt, so memoizing them is result-neutral.
        self._decay: Dict[float, Tuple[float, float]] = {}
        #: Queries closer together than this see a frozen OU channel
        #: (acks, back-to-back receptions): below 1% of tau.
        self._ou_freeze_s = 0.01 * temporal_tau_s

    # ------------------------------------------------------------------
    def add_position(self, node_id: int, pos: Position) -> None:
        """Register a late participant (e.g. an external interferer)."""
        if node_id in self.positions:
            raise ValueError(f"duplicate node id {node_id}")
        self.positions[node_id] = pos

    def update_position(self, node_id: int, pos: Position) -> None:
        """Move a node, invalidating the cached mean gains of its pairs.

        Only the distance-dependent part of the gain re-derives: static
        shadowing and the OU/Gilbert fading state are keyed by *pair
        identity*, not distance, so a moving node keeps its per-pair draws
        (the mobility contract in DESIGN.md §11).  Cost is O(k) in the
        number of pairs whose mean gain was ever cached against this node.
        """
        if node_id not in self.positions:
            raise ValueError(f"unknown node id {node_id}")
        self.positions[node_id] = pos
        keys = self._mean_keys_by_node.get(node_id)
        if keys:
            mean_gain = self._mean_gain
            for key in keys:
                mean_gain.pop(key, None)
            keys.clear()

    def distance(self, a: int, b: int) -> float:
        (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        return math.hypot(ax - bx, ay - by)

    # ------------------------------------------------------------------
    def _pair(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def _static_shadowing_db(self, a: int, b: int) -> float:
        key = self._pair(a, b)
        if key not in self._shadowing:
            stream = self._rng.stream("shadow", key[0], key[1])
            self._shadowing[key] = stream.gauss(0.0, self.shadowing_sigma_db)
        return self._shadowing[key]

    def _temporal_for(self, key: Tuple[int, int], t: float) -> float:
        """OU component for an ordered pair ``key``, advanced lazily to ``t``."""
        state = self._ou.get(key)
        if state is None:
            a, b = key
            init_stream = self._rng.stream("ou-init", a, b)
            state = _OUState(self._rng.stream("ou", a, b))
            state.x = init_stream.gauss(0.0, self.temporal_sigma_db)
            state.t = t
            self._ou[key] = state
            return state.x
        dt = t - state.t
        # Sub-millisecond-scale queries (acks, back-to-back receptions) see
        # an effectively frozen channel; skip the update below 1% of tau.
        if dt > self._ou_freeze_s:
            cached = self._decay.get(dt)
            if cached is None:
                decay = math.exp(-dt / self.temporal_tau_s)
                innovation_sigma = self.temporal_sigma_db * math.sqrt(
                    max(0.0, 1.0 - decay * decay)
                )
                cached = (decay, innovation_sigma)
                if len(self._decay) < _CACHE_MAX:
                    self._decay[dt] = cached
            state.x = state.x * cached[0] + state.stream.gauss(0.0, cached[1])
            state.t = t
        return state.x

    def temporal_db(self, a: int, b: int, t: float) -> float:
        """Time-varying gain component (OU process), advanced lazily to ``t``."""
        if self.temporal_sigma_db <= 0.0:
            return 0.0
        return self._temporal_for(self._pair(a, b), t)

    def _fade_for(self, key: Tuple[int, int], t: float) -> float:
        """Deep-fade component for an ordered pair ``key`` (0 for normal pairs)."""
        state = self._gilbert.get(key, _MISSING)
        if state is _MISSING:
            a, b = key
            stream = self._rng.stream("bimodal", a, b)
            if stream.random() < self.bimodal_fraction:
                state = _GilbertState(self._rng.stream("bimodal-dwell", a, b))
                state.t = t
                # Start in the good state with the stationary probability.
                p_good = self.good_dwell_s / (self.good_dwell_s + self.fade_dwell_s)
                state.faded = stream.random() >= p_good
            else:
                state = None
            self._gilbert[key] = state
        if state is None:
            return 0.0
        # Lazily replay exponential state flips from the last query to t.
        stream = state.stream
        state_t = state.t
        faded = state.faded
        fade_dwell = self.fade_dwell_s
        good_dwell = self.good_dwell_s
        while True:
            dwell_mean = fade_dwell if faded else good_dwell
            dwell = stream.expovariate(1.0 / dwell_mean)
            if state_t + dwell > t:
                break
            state_t += dwell
            faded = not faded
        state.t = state_t
        state.faded = faded
        return -self.fade_depth_db if faded else 0.0

    def _fade_db(self, a: int, b: int, t: float) -> float:
        """Deep-fade contribution of a bimodal pair (0 for normal pairs)."""
        if self.bimodal_fraction <= 0.0:
            return 0.0
        return self._fade_for(self._pair(a, b), t)

    # ------------------------------------------------------------------
    def _mean_for(self, key: Tuple[int, int], a: int, b: int) -> float:
        mean = self._mean_gain.get(key)
        if mean is None:
            mean = -self.pathloss.loss_db(self.distance(a, b)) + self._static_shadowing_db(a, b)
            self._mean_gain[key] = mean
            by_node = self._mean_keys_by_node
            index = by_node.get(key[0])
            if index is None:
                index = by_node[key[0]] = {}
            index[key] = None
            index = by_node.get(key[1])
            if index is None:
                index = by_node[key[1]] = {}
            index[key] = None
        return mean

    def mean_gain_db(self, a: int, b: int) -> float:
        """Time-invariant part of the gain (path loss + static shadowing)."""
        return self._mean_for(self._pair(a, b), a, b)

    def mean_gain_many(self, a: int, rids: Sequence[int]) -> List[float]:
        """Batched :meth:`mean_gain_db`: gains from ``a`` to each of ``rids``.

        The mobility hot path re-derives a whole neighborhood's mean gains
        every time a sender's batch rebuilds (after a tick, every
        neighbor's cached gain is stale); inlining the per-pair cache
        probe/fill here pays the call overhead once per batch instead of
        three frames per pair.  The formula is kept term-for-term
        identical to the scalar path (:meth:`PathLossModel.loss_db` /
        :meth:`_static_shadowing_db`), so batched and scalar queries agree
        bitwise and fill the same caches in the same order.
        """
        mean_gain = self._mean_gain
        positions = self.positions
        shadowing = self._shadowing
        by_node = self._mean_keys_by_node
        pathloss = self.pathloss
        pl_d0 = pathloss.pl_d0_db
        ten_n = 10.0 * pathloss.exponent
        d0 = pathloss.d0_m
        sigma = self.shadowing_sigma_db
        rng = self._rng
        ax, ay = positions[a]
        index_a = by_node.get(a)
        if index_a is None:
            index_a = by_node[a] = {}
        out: List[float] = []
        for b in rids:
            key = (a, b) if a <= b else (b, a)
            mean = mean_gain.get(key)
            if mean is None:
                bx, by = positions[b]
                d = math.hypot(ax - bx, ay - by)
                if d < d0:
                    d = d0
                shadow = shadowing.get(key)
                if shadow is None:
                    stream = rng.stream("shadow", key[0], key[1])
                    shadow = shadowing[key] = stream.gauss(0.0, sigma)
                mean = -(pl_d0 + ten_n * math.log10(d / d0)) + shadow
                mean_gain[key] = mean
                index_a[key] = None
                index_b = by_node.get(b)
                if index_b is None:
                    index_b = by_node[b] = {}
                index_b[key] = None
            out.append(mean)
        return out

    def gain_db(self, a: int, b: int, t: float) -> float:
        """Instantaneous channel gain (symmetric) at simulated time ``t``."""
        key = (a, b) if a <= b else (b, a)
        gain = self._mean_for(key, a, b)
        if self.temporal_sigma_db > 0.0:
            gain += self._temporal_for(key, t)
        if self.bimodal_fraction > 0.0:
            gain += self._fade_for(key, t)
        return gain

    def instantaneous_extra_db(self, a: int, b: int, t: float) -> float:
        """All time-varying gain components (OU fading + bimodal deep fades).

        The medium adds this to a cached mean gain, avoiding recomputing
        path loss and shadowing on every reception.
        """
        key = (a, b) if a <= b else (b, a)
        if self.temporal_sigma_db > 0.0:
            extra = self._temporal_for(key, t)
        else:
            extra = 0.0
        if self.bimodal_fraction > 0.0:
            extra += self._fade_for(key, t)
        return extra
