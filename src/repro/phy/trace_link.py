"""Trace-driven links: drive per-link PRR from a schedule instead of SINR.

The paper's testbed packet traces are not available, so this module offers
the closest laptop substitute: piecewise-constant PRR schedules per directed
link, either synthesized (bimodal links, ramps, square waves) or loaded from
CSV.  :class:`TraceMedium` implements the same interface the MAC expects
from :class:`~repro.sim.medium.RadioMedium`, minus contention — useful for
unit tests and controlled estimator experiments where the channel must
follow an exact script.
"""

from __future__ import annotations

import bisect
import csv
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


from repro.link.frame import Frame, JamFrame
from repro.phy.lqi import DEFAULT_LQI_MODEL, LqiModel
from repro.phy.modulation import snr_for_prr
from repro.phy.white_bit import DEFAULT_WHITE_BIT, WhiteBitPolicy
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager


class LinkTrace:
    """Piecewise-constant PRR over time for one directed link."""

    def __init__(self, segments: List[Tuple[float, float]]) -> None:
        """``segments`` is a list of (start_time, prr), sorted by time; the
        first segment should start at 0."""
        if not segments:
            raise ValueError("empty trace")
        self._times = [t for t, _ in segments]
        self._prrs = [p for _, p in segments]
        if self._times != sorted(self._times):
            raise ValueError("segments must be time-sorted")
        for p in self._prrs:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"PRR out of range: {p}")

    @classmethod
    def constant(cls, prr: float) -> "LinkTrace":
        return cls([(0.0, prr)])

    @classmethod
    def square_wave(cls, high: float, low: float, period_s: float, duty: float, end_s: float) -> "LinkTrace":
        """Bimodal link alternating ``high`` (for ``duty``·period) and ``low``."""
        segments: List[Tuple[float, float]] = []
        t = 0.0
        while t < end_s:
            segments.append((t, high))
            segments.append((t + duty * period_s, low))
            t += period_s
        return cls(segments)

    @classmethod
    def from_csv(cls, path: str) -> "LinkTrace":
        """Load ``time,prr`` rows (header optional)."""
        segments: List[Tuple[float, float]] = []
        with open(path, newline="") as f:
            for row in csv.reader(f):
                if not row or row[0].strip().lower() in ("time", "t"):
                    continue
                segments.append((float(row[0]), float(row[1])))
        return cls(segments)

    def prr_at(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return self._prrs[0]
        return self._prrs[idx]


@dataclass
class _TraceTransmission:
    sender: int
    frame: Frame


class TraceMedium:
    """Contention-free medium whose links follow :class:`LinkTrace` schedules.

    Implements the subset of the :class:`~repro.sim.medium.RadioMedium`
    interface the MAC uses: ``attach``, ``finalize``, ``channel_clear``,
    ``is_transmitting`` and ``start_transmission``.
    """

    def __init__(
        self,
        engine: Engine,
        rng: RngManager,
        lqi_model: LqiModel = DEFAULT_LQI_MODEL,
        white_bit_policy: WhiteBitPolicy = DEFAULT_WHITE_BIT,
    ) -> None:
        self.engine = engine
        self._rng = rng
        self.lqi_model = lqi_model
        self.white_bit_policy = white_bit_policy
        self._participants: Dict[int, object] = {}
        self._links: Dict[Tuple[int, int], LinkTrace] = {}
        self._link_snr: Dict[Tuple[int, int], float] = {}
        self.transmissions = 0
        self.deliveries = 0

    # -- topology -------------------------------------------------------
    def set_link(self, src: int, dst: int, trace: LinkTrace, snr_db: Optional[float] = None) -> None:
        """Install a directed link.  ``snr_db`` optionally pins the SNR
        reported on receptions (otherwise a PRR-consistent proxy is used)."""
        self._links[(src, dst)] = trace
        if snr_db is not None:
            self._link_snr[(src, dst)] = snr_db

    def set_symmetric_link(self, a: int, b: int, trace: LinkTrace, snr_db: Optional[float] = None) -> None:
        self.set_link(a, b, trace, snr_db)
        self.set_link(b, a, trace, snr_db)

    def link_prr(self, src: int, dst: int, t: float) -> float:
        trace = self._links.get((src, dst))
        return trace.prr_at(t) if trace is not None else 0.0

    # -- medium interface -------------------------------------------------
    def attach(self, participant: Any, receiver: bool = True) -> None:
        self._participants[participant.node_id] = participant

    def finalize(self) -> None:  # interface parity with RadioMedium
        pass

    def channel_clear(self, node_id: int) -> bool:
        return True

    def is_transmitting(self, node_id: int) -> bool:
        return False

    def start_transmission(self, sender_id: int, frame: Frame) -> float:
        sender = self._participants[sender_id]
        duration = sender.radio.params.airtime(frame.length_bytes)
        self.transmissions += 1
        self.engine.schedule(duration, self._deliver, sender_id, frame)
        return duration

    def _deliver(self, sender_id: int, frame: Frame) -> None:
        if isinstance(frame, JamFrame):
            return
        now = self.engine.now
        for (src, dst), trace in self._links.items():
            if src != sender_id:
                continue
            receiver = self._participants.get(dst)
            if receiver is None:
                continue
            prr = trace.prr_at(now)
            stream = self._rng.stream("trace-rx", dst)
            if stream.random() >= prr:
                continue
            snr = self._link_snr.get((src, dst))
            if snr is None:
                snr = self._snr_proxy(prr)
            lqi = self.lqi_model.sample(snr, stream)
            info = RxInfo(
                timestamp=now,
                rssi_dbm=-60.0,
                snr_db=snr,
                lqi=lqi,
                white_bit=self.white_bit_policy.evaluate(snr, lqi),
            )
            self.deliveries += 1
            receiver.on_frame_received(frame, info)

    @staticmethod
    def _snr_proxy(prr: float) -> float:
        """An SNR consistent with the scheduled PRR.

        Real links operating at a given PRR usually have margin above the
        bare decoding threshold; without it, even perfect trace links would
        report borderline SNR/LQI and the white bit would never set.  The
        margin grows with PRR (up to ~12 dB for a perfect link, which puts
        LQI in its saturated ≥105 band).
        """
        clamped = min(max(prr, 0.01), 0.999)
        return snr_for_prr(clamped, 46) + 12.0 * prr * prr
