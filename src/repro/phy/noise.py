"""Noise environment: hardware variation and external burst interference.

Two phenomena the paper leans on live here:

* **Hardware variation** — per-mote transmit-power and noise-floor offsets,
  which make links asymmetric (Section 1 cites Zuniga & Krishnamachari).
* **Burst interferers** — external 2.4 GHz transmitters (802.11-style) that
  destroy overlapping packets wholesale.  Because destroyed packets are
  never received, they leave no LQI sample; the surviving packets still
  report a clean channel.  This is the exact failure mode of Figure 3
  (PRR drops from 0.9 to 0.6 while received-packet LQI stays high).
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.link.frame import BROADCAST, Frame, JamFrame
from repro.phy.radio import Radio, RadioParams
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.medium import RadioMedium

#: Interferer node ids live far above real node ids.
INTERFERER_ID_BASE = 100_000


def apply_hardware_variation(
    radios: Iterable[Radio],
    rng: Random,
    tx_power_sigma_db: float = 1.0,
    noise_floor_sigma_db: float = 1.5,
    nominal_noise_floor_dbm: float = -98.0,
) -> None:
    """Draw per-node transmit-power and noise-floor offsets."""
    for radio in radios:
        radio.tx_power_offset_db = rng.gauss(0.0, tx_power_sigma_db)
        radio.noise_floor_dbm = nominal_noise_floor_dbm + rng.gauss(0.0, noise_floor_sigma_db)


@dataclass(frozen=True)
class BurstParams:
    """Shape of an interferer's traffic while active."""

    #: Jam burst airtime bounds (uniform), seconds.  802.11 frames at 2.4 GHz
    #: occupy the channel for hundreds of µs to a few ms.
    burst_min_s: float = 0.5e-3
    burst_max_s: float = 4e-3
    #: Mean gap between bursts while active (exponential), seconds.
    gap_mean_s: float = 8e-3


class _InterfererBase:
    """Common burst machinery.  Subclasses decide *when* the source is active.

    The interferer is attached to the medium as a transmit-only participant;
    its bursts raise the interference floor at nearby receivers for their
    duration, corrupting overlapping packets via the SINR computation.
    """

    def __init__(
        self,
        engine: Engine,
        medium: RadioMedium,
        node_id: int,
        power_dbm: float,
        rng: Random,
        burst: BurstParams = BurstParams(),
        params: Optional[RadioParams] = None,
    ) -> None:
        self.engine = engine
        self.medium = medium
        self.node_id = node_id
        self.radio = Radio(node_id=node_id, params=params or RadioParams(), tx_power_dbm=power_dbm)
        self.rng = rng
        self.burst = burst
        self.bursts_sent = 0
        medium.attach(self, receiver=False)

    # Transmit-only participant: never receives.
    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:  # pragma: no cover
        raise AssertionError("interferers do not receive")

    def _emit_burst(self) -> float:
        duration = self.rng.uniform(self.burst.burst_min_s, self.burst.burst_max_s)
        length_bytes = max(4, int(duration * self.radio.params.bitrate_bps / 8))
        frame = JamFrame(src=self.node_id, dst=BROADCAST, length_bytes=length_bytes)
        self.medium.start_transmission(self.node_id, frame)
        self.bursts_sent += 1
        return duration

    def _burst_loop(self, active_until: float) -> None:
        if self.engine.now >= active_until:
            return
        duration = self._emit_burst()
        gap = self.rng.expovariate(1.0 / self.burst.gap_mean_s)
        self.engine.schedule(duration + gap, self._burst_loop, active_until)


class WindowedInterferer(_InterfererBase):
    """Interferer active during explicit ``(start, end)`` windows.

    Used by the Figure 3 experiment to place a burst-loss episode at a known
    point in the run.
    """

    def __init__(self, *args: Any, windows: Sequence[Tuple[float, float]], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.windows = sorted(windows)

    def start(self) -> None:
        for begin, end in self.windows:
            if end <= begin:
                raise ValueError(f"bad window: ({begin}, {end})")
            self.engine.schedule_at(begin, self._burst_loop, end)


class MarkovInterferer(_InterfererBase):
    """Interferer that alternates exponential OFF/ON periods (Gilbert–Elliott)."""

    def __init__(self, *args: Any, off_mean_s: float = 120.0, on_mean_s: float = 20.0, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.off_mean_s = off_mean_s
        self.on_mean_s = on_mean_s

    def start(self) -> None:
        self.engine.schedule(self.rng.expovariate(1.0 / self.off_mean_s), self._activate)

    def _activate(self) -> None:
        active_for = self.rng.expovariate(1.0 / self.on_mean_s)
        self._burst_loop(self.engine.now + active_for)
        next_off = self.rng.expovariate(1.0 / self.off_mean_s)
        self.engine.schedule(active_for + next_off, self._activate)


def place_interferers(
    engine: Engine,
    medium: RadioMedium,
    positions: List[Tuple[float, float]],
    power_dbm: float,
    rng_factory: Callable[..., Random],
    kind: str = "markov",
    **kwargs: Any,
) -> List[_InterfererBase]:
    """Create and register interferers at the given positions."""
    out: List[_InterfererBase] = []
    for i, pos in enumerate(positions):
        nid = INTERFERER_ID_BASE + i
        medium.channel.add_position(nid, pos)
        rng = rng_factory("interferer", i)
        if kind == "markov":
            source: _InterfererBase = MarkovInterferer(engine, medium, nid, power_dbm, rng, **kwargs)
        elif kind == "windowed":
            source = WindowedInterferer(engine, medium, nid, power_dbm, rng, **kwargs)
        else:
            raise ValueError(f"unknown interferer kind: {kind}")
        out.append(source)
    return out
