"""Vectorized channel-state kernels for the fast medium backend.

The exact reception path (:mod:`repro.sim.medium`) advances one
Ornstein–Uhlenbeck state and replays one Gilbert dwell sequence per
candidate per transmission, in pure Python.  The fast backend
(:mod:`repro.sim.medium_fast`) keeps the same per-pair state but as
structure-of-arrays numpy batches, and this module holds the array
kernels that advance them:

* :func:`ou_advance` — the exact path's OU recurrence
  ``x' = x·e^(−dt/τ) + N(0, σ·sqrt(1 − e^(−2dt/τ)))`` applied to a whole
  slot array at once, honoring the same freeze threshold for
  sub-millisecond queries.
* :func:`gilbert_advance` — the two-state good/deep-fade process advanced
  by sampling the *analytic* continuous-time Markov transition probability
  instead of replaying exponential dwells.  Conditioning each query on the
  previous state keeps the joint law of the sampled trajectory identical
  to dwell replay (the process is Markov), so the fast path is
  distribution-equivalent, not merely marginally equivalent.
* :func:`prr_table` — the SNR→PRR curve sampled on the exact path's
  0.01 dB quantization grid, so a vectorized ``table[idx]`` gather returns
  byte-identical PRR values to ``repro.phy.modulation.prr_fast``.
* :func:`mean_field_extra_db` — the Jensen correction for treating a
  fading interferer as a constant mean-gain source (see DESIGN.md §9).

Randomness: every kernel takes the draws it needs as explicit arguments
or a ``numpy.random.Generator``; nothing here touches global numpy RNG
state (lint rule D001 enforces this for the whole deterministic stack).
"""

from __future__ import annotations

import math
from typing import Any, Tuple

import numpy as np

from repro.phy.modulation import _prr_quantized

#: The exact path short-circuits PRR outside the transition region; the
#: table covers exactly the quantized interior, [−8.00 dB, +25.00 dB].
PRR_TABLE_SNR_MIN_CENTI = -800
PRR_TABLE_SNR_MAX_CENTI = 2500

_LN10_OVER_10 = math.log(10.0) / 10.0


def ou_advance(
    x: Any,
    t_last: Any,
    slots: Any,
    t_now: float,
    tau_s: float,
    sigma_db: float,
    freeze_s: float,
    gen: Any,
) -> Any:
    """Advance the OU slots listed in ``slots`` to ``t_now``, in place.

    ``x`` / ``t_last`` are the global per-pair state arrays; ``slots`` an
    integer array of slot indices (each at most once).  Queries closer than
    ``freeze_s`` to the previous one see a frozen channel, matching the
    exact path's ``_ou_freeze_s`` behavior.  Returns the post-advance
    ``x[slots]`` values.
    """
    dt = t_now - t_last[slots]
    moving = dt > freeze_s
    if moving.any():
        upd = slots[moving]
        decay = np.exp(-dt[moving] / tau_s)
        innovation = sigma_db * np.sqrt(np.maximum(0.0, 1.0 - decay * decay))
        x[upd] = x[upd] * decay + innovation * gen.standard_normal(upd.size)
        t_last[upd] = t_now
    return x[slots]


def gilbert_advance(
    faded: Any,
    t_last: Any,
    slots: Any,
    t_now: float,
    fade_dwell_s: float,
    good_dwell_s: float,
    gen: Any,
) -> Any:
    """Advance the bimodal (Gilbert) slots in ``slots`` to ``t_now``, in place.

    With good→fade rate ``a = 1/good_dwell`` and fade→good rate
    ``b = 1/fade_dwell``, the state at ``t+dt`` given the state at ``t`` is
    Bernoulli with

        P(faded) = π_f + (1{faded now} − π_f)·e^(−(a+b)·dt),
        π_f = fade_dwell / (fade_dwell + good_dwell)

    — the closed-form CTMC transition the exact path's dwell replay
    simulates.  Returns the post-advance ``faded[slots]`` booleans.
    """
    a = 1.0 / good_dwell_s
    b = 1.0 / fade_dwell_s
    pi_faded = fade_dwell_s / (fade_dwell_s + good_dwell_s)
    dt = t_now - t_last[slots]
    decay = np.exp(-(a + b) * dt)
    was_faded = faded[slots].astype(np.float64)
    p_faded = pi_faded + (was_faded - pi_faded) * decay
    now_faded = gen.random(slots.size) < p_faded
    faded[slots] = now_faded
    t_last[slots] = t_now
    return now_faded


def prr_table(modulation: str, length_bytes: int) -> Any:
    """PRR over the quantized SNR grid for one (modulation, frame length).

    Index ``i`` holds the PRR at ``(PRR_TABLE_SNR_MIN_CENTI + i) / 100``
    dB, computed through the exact path's ``_prr_quantized`` so the two
    backends return bit-identical PRR for any in-range SNR.  Callers cache
    the returned array (≈26 KiB) per (modulation, length).
    """
    centi = range(PRR_TABLE_SNR_MIN_CENTI, PRR_TABLE_SNR_MAX_CENTI + 1)
    return np.fromiter(
        (_prr_quantized(modulation, q, length_bytes) for q in centi),
        dtype=np.float64,
        count=PRR_TABLE_SNR_MAX_CENTI - PRR_TABLE_SNR_MIN_CENTI + 1,
    )


def prr_lookup(table: Any, sinr_db: Any) -> Any:
    """Vectorized ``prr_fast``: short-circuits plus a quantized gather.

    ``np.rint`` rounds half-to-even exactly like the exact path's builtin
    ``round``, so the gather index matches scalar quantization.
    """
    idx = np.rint(sinr_db * 100.0).astype(np.int64) - PRR_TABLE_SNR_MIN_CENTI
    np.clip(idx, 0, table.size - 1, out=idx)
    prr = table[idx]
    prr = np.where(sinr_db >= 25.0, 1.0, prr)
    return np.where(sinr_db <= -8.0, 0.0, prr)


def mean_field_extra_db(
    temporal_sigma_db: float,
    bimodal_fraction: float,
    fade_depth_db: float,
    fade_dwell_s: float,
    good_dwell_s: float,
) -> Tuple[float, float]:
    """dB corrections for treating a fading link as its mean gain.

    Interference in the fast path uses the interferer→receiver *mean* gain
    instead of advancing that pair's OU/Gilbert state (the exact path's
    per-interferer state advance is the O(N²) term).  Dropping a zero-mean
    dB process understates the *linear-scale* mean power (Jensen), so the
    constant corrections below restore it:

    * OU:  E[10^(X/10)] for X ~ N(0, σ) is ``exp((σ·ln10/10)²/2)``,
      i.e. ``σ²·ln10/20`` dB (≈0.26 dB at σ = 1.5).
    * Gilbert:  a bimodal pair spends π_f of its time ``fade_depth``
      lower, so its mean linear gain factor is
      ``(1 − π_f) + π_f·10^(−depth/10)``.

    Returns ``(ou_extra_db, bimodal_extra_db)``; the second applies only
    to pairs resolved as bimodal (non-bimodal pairs get 0).
    """
    ou_extra = temporal_sigma_db * temporal_sigma_db * math.log(10.0) / 20.0
    if bimodal_fraction > 0.0:
        pi_faded = fade_dwell_s / (fade_dwell_s + good_dwell_s)
        factor = (1.0 - pi_faded) + pi_faded * 10.0 ** (-fade_depth_db / 10.0)
        bimodal_extra = 10.0 * math.log10(factor)
    else:
        bimodal_extra = 0.0
    return ou_extra, bimodal_extra


def dbm_to_mw(dbm: Any) -> Any:
    """Vectorized dBm→mW (``10^(x/10)`` via ``exp`` — −inf maps to 0)."""
    return np.exp(np.asarray(dbm, dtype=np.float64) * _LN10_OVER_10)


__all__ = [
    "ou_advance",
    "gilbert_advance",
    "prr_table",
    "prr_lookup",
    "mean_field_extra_db",
    "dbm_to_mw",
    "PRR_TABLE_SNR_MIN_CENTI",
    "PRR_TABLE_SNR_MAX_CENTI",
]
