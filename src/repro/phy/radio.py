"""Radio parameters and per-node radio state.

Defaults model a CC2420-class 802.15.4 radio (MicaZ / TelosB motes, the
hardware used on the paper's Mirage and Tutornet testbeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RadioParams:
    """Static parameters shared by all radios of one hardware class."""

    #: Key into :data:`repro.phy.modulation.BER_MODELS`.
    modulation: str = "oqpsk-dsss"
    bitrate_bps: float = 250_000.0
    #: PHY synchronization header: 4B preamble + 1B SFD + 1B length.
    phy_overhead_bytes: int = 6
    #: 802.15.4 immediate ack MPDU (PHY header added by :meth:`airtime`).
    ack_mpdu_bytes: int = 5
    #: RX/TX turnaround before the ack goes out (aTurnaroundTime, 192 µs).
    turnaround_s: float = 192e-6
    #: How long a sender waits for an ack before declaring failure
    #: (turnaround + 11-byte ack airtime = 544 µs, plus margin).
    ack_timeout_s: float = 1.2e-3
    #: Clear-channel-assessment threshold (dBm).
    cca_threshold_dbm: float = -77.0
    #: Below this mean RSSI a link is treated as nonexistent by the medium
    #: (reception probability is negligible); purely an optimization bound.
    sensitivity_dbm: float = -100.0
    #: Thermal noise floor for a nominal radio (dBm).
    noise_floor_dbm: float = -98.0
    #: Unit CSMA backoff period (aUnitBackoffPeriod = 20 symbols = 320 µs).
    backoff_unit_s: float = 320e-6
    min_be: int = 3
    max_be: int = 5
    max_csma_backoffs: int = 4

    def airtime(self, mac_length_bytes: int) -> float:
        """On-air duration of a frame with ``mac_length_bytes`` MAC bytes."""
        total = mac_length_bytes + self.phy_overhead_bytes
        return total * 8.0 / self.bitrate_bps


#: Shared default parameter set (CC2420: MicaZ / TelosB, 802.15.4).
CC2420 = RadioParams()

#: CC1000 (Mica2): 19.2 kbps non-coherent FSK, long preamble, no LQI.
#: Its wider SNR transition region produces the famously gray Mica2 links;
#: because the radio exposes no decode-quality indicator, stacks built on
#: it should use an SNR-derived white bit or none at all (the paper's
#: "worst case" hardware).
CC1000 = RadioParams(
    modulation="ncfsk",
    bitrate_bps=19_200.0,
    phy_overhead_bytes=10,
    ack_mpdu_bytes=5,
    turnaround_s=250e-6,
    ack_timeout_s=8e-3,
    cca_threshold_dbm=-85.0,
    sensitivity_dbm=-101.0,
    noise_floor_dbm=-105.0,
    backoff_unit_s=420e-6,
)


@dataclass
class Radio:
    """Per-node radio state: transmit power and calibrated noise floor.

    Hardware variation across motes (the paper's reference [24]) is modeled
    by per-node offsets to transmit power and noise floor, which is what
    creates link asymmetry.
    """

    node_id: int
    params: RadioParams = field(default_factory=lambda: CC2420)
    tx_power_dbm: float = 0.0
    #: Per-node offset applied on top of tx_power_dbm (hardware variation).
    tx_power_offset_db: float = 0.0
    noise_floor_dbm: float = -98.0

    @property
    def effective_tx_power_dbm(self) -> float:
        return self.tx_power_dbm + self.tx_power_offset_db
