"""Physical layer: radio, channel, modulation, noise, LQI and the white bit."""

from repro.phy.channel import ChannelModel, PathLossModel
from repro.phy.lqi import DEFAULT_LQI_MODEL, LQI_MAX, LQI_MIN, LqiModel
from repro.phy.modulation import oqpsk_dsss_ber, prr_from_snr, prr_from_snr_fast, snr_for_prr
from repro.phy.noise import (
    BurstParams,
    MarkovInterferer,
    WindowedInterferer,
    apply_hardware_variation,
)
from repro.phy.radio import CC2420, Radio, RadioParams
from repro.phy.trace_link import LinkTrace, TraceMedium
from repro.phy.white_bit import (
    DEFAULT_WHITE_BIT,
    LqiWhiteBit,
    NeverWhiteBit,
    SnrWhiteBit,
    WhiteBitPolicy,
)

__all__ = [
    "CC2420",
    "DEFAULT_LQI_MODEL",
    "DEFAULT_WHITE_BIT",
    "LQI_MAX",
    "LQI_MIN",
    "BurstParams",
    "ChannelModel",
    "LinkTrace",
    "LqiModel",
    "LqiWhiteBit",
    "MarkovInterferer",
    "NeverWhiteBit",
    "PathLossModel",
    "Radio",
    "RadioParams",
    "SnrWhiteBit",
    "TraceMedium",
    "WhiteBitPolicy",
    "WindowedInterferer",
    "apply_hardware_variation",
    "oqpsk_dsss_ber",
    "prr_from_snr",
    "prr_from_snr_fast",
    "snr_for_prr",
]
