"""Link Quality Indicator model.

The CC2420 reports an LQI per received packet, derived from chip
correlation over the first eight symbols.  Empirically LQI is roughly
linear in SNR through the transition region and saturates near 105–110
above ~10 dB.  We model it as a logistic curve plus measurement noise.

The property the paper relies on (Section 2.1 / Figure 3) falls out of
this model: packets destroyed wholesale by burst interference contribute
*no* LQI sample, while the surviving packets — received through a clean
channel — carry saturated, high LQI.  LQI of received packets therefore
stays high even as PRR collapses.
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

#: CC2420 LQI ceiling for a perfectly clean channel.
LQI_MAX = 110
#: Lowest LQI at which a packet is still plausibly decodable.
LQI_MIN = 40
_LQI_SPAN = LQI_MAX - LQI_MIN


@dataclass(frozen=True)
class LqiModel:
    """Logistic SNR→LQI map with Gaussian measurement noise."""

    midpoint_snr_db: float = 3.0
    slope_db: float = 1.8
    noise_sigma: float = 1.5

    def mean_lqi(self, snr_db: float) -> float:
        """Noise-free LQI for a given per-packet SNR."""
        return LQI_MIN + _LQI_SPAN / (
            1.0 + math.exp(-(snr_db - self.midpoint_snr_db) / self.slope_db)
        )

    def sample(self, snr_db: float, rng: Random) -> int:
        """One noisy LQI measurement, clamped to the hardware range.

        Runs once per delivered frame; the logistic is inlined rather than
        calling :meth:`mean_lqi` (same expression, same float result).
        """
        value = (
            LQI_MIN
            + _LQI_SPAN / (1.0 + math.exp(-(snr_db - self.midpoint_snr_db) / self.slope_db))
            + rng.gauss(0.0, self.noise_sigma)
        )
        return int(round(min(max(value, LQI_MIN), LQI_MAX)))


#: Default model instance shared by the stack.
DEFAULT_LQI_MODEL = LqiModel()
