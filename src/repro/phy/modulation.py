"""SNR → BER → PRR models for the simulated radios.

The primary model is the O-QPSK / DSSS expression used for CC2420-class
802.15.4 radios by Zuniga & Krishnamachari ("An Analysis of Unreliability
and Asymmetry in Low-Power Wireless Links", TOSN 2007 — the paper's
reference [24]):

    BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·γ·(1/k − 1))

with γ the linear SNR.  Packet reception ratio for an L-byte frame is then
``(1 − BER)^(8L)``.
"""

from __future__ import annotations

import math
from functools import lru_cache

# C(16, k) for k = 2..16, precomputed.
_BINOM_16 = [math.comb(16, k) for k in range(17)]

#: Per-term constants of the alternating sum below: the sign-folded
#: binomial coefficient ``(−1)^k·C(16,k)`` and the exponent factor
#: ``1/k − 1``.  Folding the sign into the coefficient and hoisting
#: ``20·γ`` out of the loop leaves the floating-point result bit-identical:
#: ``(−c)·x == −(c·x)`` exactly, and ``20·γ·(1/k − 1)`` already associates
#: as ``(20·γ)·(1/k − 1)``.
_OQPSK_TERMS = [
    ((1.0 if k % 2 == 0 else -1.0) * _BINOM_16[k], 1.0 / k - 1.0) for k in range(2, 17)
]


def oqpsk_dsss_ber(snr_db: float) -> float:
    """Bit error rate of O-QPSK with DSSS (CC2420-class) at ``snr_db``."""
    gamma = 10.0 ** (snr_db / 10.0)
    g20 = 20.0 * gamma
    exp = math.exp
    acc = 0.0
    for coef, factor in _OQPSK_TERMS:
        acc += coef * exp(g20 * factor)
    ber = (8.0 / 15.0) * (1.0 / 16.0) * acc
    # Numerical guard: the alternating sum can underflow to tiny negatives.
    return min(max(ber, 0.0), 1.0)


def prr_from_snr(snr_db: float, length_bytes: int) -> float:
    """Packet reception ratio for an ``length_bytes``-byte frame."""
    if length_bytes <= 0:
        raise ValueError(f"length_bytes must be positive: {length_bytes}")
    ber = oqpsk_dsss_ber(snr_db)
    if ber <= 0.0:
        return 1.0
    if ber >= 1.0:
        return 0.0
    return (1.0 - ber) ** (8 * length_bytes)


def ncfsk_ber(snr_db: float, bandwidth_bitrate_ratio: float = 1.5625) -> float:
    """Non-coherent FSK bit error rate (CC1000-class radios, e.g. Mica2).

    ``BER = ½·exp(−(Eb/N0)/2)`` with ``Eb/N0 = SNR·(B_N/R)``; the default
    ratio uses the CC1000's 30 kHz noise bandwidth at 19.2 kbps, following
    Zuniga & Krishnamachari.  NC-FSK's transition region sits ~10 dB higher
    than O-QPSK/DSSS and is much wider — the famously gray Mica2 links.
    """
    gamma = 10.0 ** (snr_db / 10.0)
    ber = 0.5 * math.exp(-0.5 * gamma * bandwidth_bitrate_ratio)
    return min(max(ber, 0.0), 1.0)


#: Modulation registry: name → BER function.
BER_MODELS = {
    "oqpsk-dsss": oqpsk_dsss_ber,
    "ncfsk": ncfsk_ber,
}


def prr(modulation: str, snr_db: float, length_bytes: int) -> float:
    """Packet reception ratio under the named modulation."""
    if length_bytes <= 0:
        raise ValueError(f"length_bytes must be positive: {length_bytes}")
    ber = BER_MODELS[modulation](snr_db)
    if ber <= 0.0:
        return 1.0
    if ber >= 1.0:
        return 0.0
    return (1.0 - ber) ** (8 * length_bytes)


@lru_cache(maxsize=131072)
def _prr_quantized(modulation: str, snr_centi_db: int, length_bytes: int) -> float:
    return prr(modulation, snr_centi_db / 100.0, length_bytes)


def prr_fast(modulation: str, snr_db: float, length_bytes: int) -> float:
    """Cached :func:`prr` on a 0.01 dB SNR grid.

    The medium calls this once per candidate reception; quantizing SNR to
    0.01 dB changes PRR by far less than the model's own fidelity.  SNRs
    outside any modulation's transition region short-circuit.
    """
    if snr_db >= 25.0:
        return 1.0
    if snr_db <= -8.0:
        return 0.0
    return _prr_quantized(modulation, round(snr_db * 100.0), length_bytes)


def prr_from_snr_fast(snr_db: float, length_bytes: int) -> float:
    """O-QPSK/DSSS shortcut kept for callers that predate the registry."""
    return prr_fast("oqpsk-dsss", snr_db, length_bytes)


@lru_cache(maxsize=None)
def snr_for_prr(target_prr: float, length_bytes: int) -> float:
    """Invert :func:`prr_from_snr` by bisection (dB, ±0.01 dB).

    Useful for calibrating topologies and white-bit thresholds.
    """
    if not 0.0 < target_prr < 1.0:
        raise ValueError(f"target_prr must be in (0, 1): {target_prr}")
    lo, hi = -10.0, 30.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if prr_from_snr(mid, length_bytes) < target_prr:
            lo = mid
        else:
            hi = mid
        if hi - lo < 0.01:
            break
    return 0.5 * (lo + hi)
