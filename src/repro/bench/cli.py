"""``python -m repro.bench`` — run pinned benchmarks, compare baselines."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.compare import ComparisonReport, compare_results, render_reports
from repro.bench.core import BenchResult, find_baseline, load_result, write_result
from repro.bench.scenarios import MACRO, MICRO, SCENARIOS, run_scenario


def _select(names: List[str], suite: str) -> List[str]:
    if names:
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            raise SystemExit(f"unknown scenario(s): {', '.join(unknown)}; "
                             f"choose from {', '.join(sorted(SCENARIOS))}")
        return names
    if suite == "micro":
        return list(MICRO)
    if suite == "macro":
        return list(MACRO)
    return list(SCENARIOS)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run pinned simulator benchmarks; emit BENCH_<name>.json; "
        "optionally gate against stored baselines.",
    )
    parser.add_argument("scenarios", nargs="*", help="scenario names (default: per --suite)")
    parser.add_argument("--suite", choices=("all", "micro", "macro"), default="all",
                        help="which scenario group to run when none are named")
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument("--out-dir", default="results/bench",
                        help="directory for BENCH_<name>.json output (default: results/bench)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink durations for smoke runs (CI)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline dir (holding BENCH_<name>.json files) or single file; "
                        "compare the fresh run against it and exit 1 on regression")
    parser.add_argument("--compare-only", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two existing BENCH json files without running anything")
    parser.add_argument("--threshold", type=float, default=0.3,
                        help="relative throughput drop that counts as a regression "
                        "(default: 0.3 = 30%%)")
    parser.add_argument("--live-telemetry", metavar="PATH", default=None,
                        help="stream live telemetry (JSONL) from macro CollectionNetwork "
                        "scenarios to PATH; telemetry adds engine events, so check "
                        "counters shift vs. untelemetered baselines")
    parser.add_argument("--telemetry-period", type=float, default=30.0, metavar="SECONDS",
                        help="simulated seconds between snapshots (with --live-telemetry)")
    args = parser.parse_args(argv)

    if args.live_telemetry is not None:
        from repro.bench import scenarios as _scenarios

        _scenarios.EXTRA_SIM_OVERRIDES.update(
            telemetry_period_s=args.telemetry_period,
            telemetry_path=args.live_telemetry,
        )

    if args.list:
        for name, fn in sorted(SCENARIOS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<18} {doc}")
        return 0

    if args.compare_only:
        old, new = (load_result(p) for p in args.compare_only)
        report = compare_results(old, new, args.threshold)
        print(render_reports([report], args.threshold))
        return 1 if report.regressed else 0

    names = _select(args.scenarios, args.suite)
    results: List[BenchResult] = []
    for name in names:
        print(f"running {name} ...", file=sys.stderr, flush=True)
        result = run_scenario(name, quick=args.quick)
        path = write_result(result, args.out_dir)
        print(f"  wrote {path}", file=sys.stderr)
        results.append(result)

    print("benchmark results:")
    for result in results:
        print(f"  {result.summary_row()}")
        for key, value in sorted(result.latency_s.items()):
            print(f"      latency {key}: {value * 1e6:.1f} µs/event")
        if result.resources:
            from repro.obs.resources import format_resources

            print(f"      resources: {format_resources(result.resources)}")

    if not args.compare:
        return 0

    reports: List[ComparisonReport] = []
    missing: List[str] = []
    for result in results:
        base_path = find_baseline(result.name, args.compare)
        if base_path is None:
            missing.append(result.name)
            continue
        reports.append(compare_results(load_result(base_path), result, args.threshold))
    if missing:
        print(f"no baseline for: {', '.join(missing)} (skipped)", file=sys.stderr)
    if not reports:
        print("nothing to compare", file=sys.stderr)
        return 0
    print(render_reports(reports, args.threshold))
    return 1 if any(r.regressed for r in reports) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
