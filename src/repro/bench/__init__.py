"""Pinned micro/macro benchmarks with JSON baselines and regression gates.

``python -m repro.bench`` runs a set of named scenarios — micro (medium
reception evaluation, channel gain queries, PRR lookups) and macro (full
collection runs on a 25-node grid and a testbed-sized headline slice) —
and writes one ``BENCH_<name>.json`` per scenario.  ``--compare`` checks a
fresh run against stored baselines and fails on throughput regressions
beyond a configurable threshold, which is what the CI smoke job enforces.

Every scenario is fully pinned (topology seed, simulation seed, duration),
so the ``check`` block of the emitted JSON doubles as a cheap determinism
probe: two runs of the same code must produce identical counters.
"""

from repro.bench.core import BenchResult, load_result, write_result
from repro.bench.compare import ComparisonReport, compare_results
from repro.bench.scenarios import SCENARIOS, run_scenario

__all__ = [
    "BenchResult",
    "ComparisonReport",
    "SCENARIOS",
    "compare_results",
    "load_result",
    "run_scenario",
    "write_result",
]
