"""Baseline comparison and the regression gate for ``repro.bench``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


from repro.bench.core import BenchResult


@dataclass
class MetricDelta:
    name: str
    old: float
    new: float
    #: new/old; >1 is faster for throughput metrics, slower for latencies.
    ratio: float
    regressed: bool

    def row(self, higher_is_better: bool = True) -> str:
        direction = self.ratio if higher_is_better else (1.0 / self.ratio if self.ratio else 0.0)
        tag = "REGRESSED" if self.regressed else f"{direction:5.2f}x"
        return f"    {self.name:<20} {self.old:>14,.1f} -> {self.new:>14,.1f}   {tag}"


@dataclass
class ComparisonReport:
    """Outcome of comparing one scenario run against its baseline."""

    name: str
    deltas: List[MetricDelta] = field(default_factory=list)
    latency_deltas: List[MetricDelta] = field(default_factory=list)
    #: ``check`` keys whose values differ — the simulated behavior changed,
    #: so throughput numbers are not apples-to-apples.
    check_mismatches: List[str] = field(default_factory=list)
    env_changed: bool = False

    @property
    def regressed(self) -> bool:
        return any(d.regressed for d in self.deltas)

    def render(self) -> str:
        lines = [f"  {self.name}"]
        for d in self.deltas:
            lines.append(d.row(higher_is_better=True))
        for d in self.latency_deltas:
            lines.append(d.row(higher_is_better=False))
        if self.check_mismatches:
            lines.append(
                "    WARNING: check counters differ "
                f"({', '.join(self.check_mismatches)}) — simulated behavior changed"
            )
        if self.env_changed:
            lines.append("    note: baseline recorded on different host/python")
        return "\n".join(lines)


def compare_results(
    old: BenchResult, new: BenchResult, threshold: float = 0.3
) -> ComparisonReport:
    """Compare ``new`` against baseline ``old``.

    Throughput metrics regress when ``new < old * (1 - threshold)``.
    Latency percentiles are reported but never gate (shared hosts make
    them too noisy to fail a build on).
    """
    if old.name != new.name:
        raise ValueError(f"comparing different scenarios: {old.name!r} vs {new.name!r}")
    report = ComparisonReport(name=new.name)
    for key in sorted(old.metrics):
        if key not in new.metrics:
            continue
        o, n = old.metrics[key], new.metrics[key]
        ratio = (n / o) if o > 0 else float("inf")
        report.deltas.append(
            MetricDelta(key, o, n, ratio, regressed=n < o * (1.0 - threshold))
        )
    for key in sorted(old.latency_s):
        if key not in new.latency_s:
            continue
        o, n = old.latency_s[key], new.latency_s[key]
        ratio = (n / o) if o > 0 else float("inf")
        report.latency_deltas.append(MetricDelta(f"latency:{key}", o, n, ratio, False))
    for key in sorted(set(old.check) | set(new.check)):
        if old.check.get(key) != new.check.get(key):
            report.check_mismatches.append(key)
    fingerprint = ("python", "machine")
    report.env_changed = any(old.env.get(k) != new.env.get(k) for k in fingerprint)
    return report


def render_reports(reports: List[ComparisonReport], threshold: float) -> str:
    header = f"benchmark comparison (regression threshold {threshold:.0%}):"
    body = "\n".join(r.render() for r in reports)
    regressed = [r.name for r in reports if r.regressed]
    footer = (
        f"FAIL: regression in {', '.join(regressed)}"
        if regressed
        else f"OK: no regressions across {len(reports)} scenario(s)"
    )
    return "\n".join([header, body, footer])
