"""Pinned benchmark scenarios.

Each scenario is a function ``(quick: bool) -> BenchResult``.  Everything
that affects simulated behavior — topology seed, simulation seed,
durations, traffic — is pinned here, so the ``check`` counters of two runs
of the same code are identical and throughput deltas are attributable to
the code, not the workload.  ``quick=True`` shrinks durations for CI smoke
runs (same code paths, smaller sample).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List

from repro.bench.core import BenchResult
from repro.link.frame import BROADCAST, Frame
from repro.phy.channel import ChannelModel
from repro.phy.modulation import prr_fast
from repro.phy.noise import BurstParams, place_interferers
from repro.phy.radio import Radio
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.network import CollectionNetwork, SimConfig
from repro.sim.rng import RngManager
from repro.topology.generators import city_grid, grid
from repro.topology.testbeds import PROFILES, scaled_profile

# Import-time decorator registry: the only runtime write is @scenario at
# module import, and scenario functions are stateless.
SCENARIOS: Dict[str, Callable[[bool], BenchResult]] = {}  # lint: disable=worker-state

#: Extra SimConfig overrides merged into every macro scenario that builds a
#: :class:`CollectionNetwork` — the bench CLI routes ``--live-telemetry``
#: through here.  Empty by default, so pinned scenarios stay pinned; any
#: override that adds engine events (telemetry does) shifts the ``check``
#: counters, which ``--compare`` flags as a behavior change by design.
# Process-wide by design: the bench CLI sets it once before any scenario
# runs and never between runs, and bench workers re-set it per process.
EXTRA_SIM_OVERRIDES: Dict[str, object] = {}  # lint: disable=worker-state


def _sim_config(**kwargs: object) -> SimConfig:
    merged = dict(kwargs)
    merged.update(EXTRA_SIM_OVERRIDES)
    return SimConfig(**merged)  # type: ignore[arg-type]


def scenario(fn: Callable[[bool], BenchResult]) -> Callable[[bool], BenchResult]:
    SCENARIOS[fn.__name__] = fn
    return fn


def run_scenario(name: str, quick: bool = False) -> BenchResult:
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}") from None
    from repro.obs.resources import ResourceProbe

    probe = ResourceProbe()
    result = fn(quick)
    result.resources = probe.stop()
    return result


# ----------------------------------------------------------------------
# Micro scenarios
# ----------------------------------------------------------------------
@scenario
def micro_prr(quick: bool = False) -> BenchResult:
    """PRR lookups across the SNR transition region (cache steady state)."""
    snrs = [-8.0 + 0.035 * i for i in range(972)]  # −8 … 26 dB
    lengths = (28, 44, 116)
    # Warm the quantized-PRR cache so the measurement sees steady state.
    acc = 0.0
    for length in lengths:
        for snr in snrs:
            acc += prr_fast("oqpsk-dsss", snr, length)
    iters = 300 if quick else 1200
    calls = 0
    t0 = perf_counter()
    for _ in range(iters):
        for length in lengths:
            for snr in snrs:
                acc += prr_fast("oqpsk-dsss", snr, length)
                calls += 1
    wall = perf_counter() - t0
    return BenchResult(
        name="micro_prr",
        kind="micro",
        metrics={"calls_per_s": calls / wall if wall > 0 else 0.0},
        check={"calls": calls, "acc": round(acc, 6)},
        wall_s=wall,
    )


@scenario
def micro_channel(quick: bool = False) -> BenchResult:
    """Instantaneous channel-gain queries with OU fading + bimodal fades."""
    rng = RngManager(17)
    positions = {
        nid: (13.0 * (nid % 4) + 0.25 * nid, 11.0 * (nid // 4) + 0.125 * nid)
        for nid in range(16)
    }
    channel = ChannelModel(
        positions,
        rng.fork("channel"),
        shadowing_sigma_db=3.2,
        temporal_sigma_db=1.5,
        temporal_tau_s=60.0,
        bimodal_fraction=0.3,
    )
    pairs = [(a, b) for a in positions for b in positions if a != b]
    steps = 150 if quick else 600
    calls = 0
    acc = 0.0
    t0 = perf_counter()
    for step in range(steps):
        t = 0.9 * step
        for a, b in pairs:
            acc += channel.gain_db(a, b, t)
            calls += 1
    wall = perf_counter() - t0
    return BenchResult(
        name="micro_channel",
        kind="micro",
        metrics={"calls_per_s": calls / wall if wall > 0 else 0.0},
        check={"calls": calls, "acc": round(acc, 6)},
        wall_s=wall,
    )


class _CountingListener:
    """Minimal medium participant for the reception micro-benchmark."""

    __slots__ = ("node_id", "radio", "received")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.radio = Radio(node_id=node_id)
        self.received = 0

    def on_frame_received(self, frame, info) -> None:
        self.received += 1


@scenario
def micro_reception(quick: bool = False) -> BenchResult:
    """Medium reception evaluation: broadcasts on a 5×5 grid, with overlap.

    Every frame is evaluated against ~24 candidate receivers; every third
    frame overlaps a second transmission so the interference/collision
    path is exercised too.
    """
    engine = Engine()
    rng = RngManager(23)
    topo = grid(5, 5, spacing_m=6.0, rng=rng.stream("topo"), jitter_m=0.5)
    channel = ChannelModel(
        topo.positions,
        rng.fork("channel"),
        shadowing_sigma_db=3.2,
        temporal_sigma_db=1.5,
        bimodal_fraction=0.2,
    )
    medium = RadioMedium(engine, channel, rng)
    listeners: List[_CountingListener] = []
    for nid in topo.node_ids():
        listener = _CountingListener(nid)
        medium.attach(listener)
        listeners.append(listener)
    medium.finalize()

    n = len(listeners)
    frames = 400 if quick else 1600
    candidates = sum(len(medium.candidate_receivers(s)) for s in range(n)) / n

    def send_round(i: int) -> None:
        sender = i % n
        medium.start_transmission(sender, Frame(src=sender, dst=BROADCAST, length_bytes=36))
        if i % 3 == 0:
            other = (sender + 7) % n
            medium.start_transmission(other, Frame(src=other, dst=BROADCAST, length_bytes=36))
        if i + 1 < frames:
            engine.schedule(0.004, send_round, i + 1)

    engine.schedule(0.0, send_round, 0)
    t0 = perf_counter()
    engine.run()
    wall = perf_counter() - t0
    evaluations = medium.transmissions * candidates
    return BenchResult(
        name="micro_reception",
        kind="micro",
        metrics={
            "receptions_per_s": evaluations / wall if wall > 0 else 0.0,
            "frames_per_s": medium.transmissions / wall if wall > 0 else 0.0,
        },
        check={
            "transmissions": medium.transmissions,
            "deliveries": medium.deliveries,
            "collisions": medium.collisions,
            "white_bits_set": medium.white_bits_set,
        },
        wall_s=wall,
    )


# ----------------------------------------------------------------------
# Macro scenarios
# ----------------------------------------------------------------------
def _macro_result(name: str, net: CollectionNetwork, duration_s: float) -> BenchResult:
    t0 = perf_counter()
    result = net.run()
    wall = perf_counter() - t0
    profiler = net.engine.profiler
    latency = profiler.latency_percentiles() if profiler is not None else {}
    return BenchResult(
        name=name,
        kind="macro",
        metrics={
            "events_per_s": result.events_run / wall if wall > 0 else 0.0,
            "sim_s_per_wall_s": duration_s / wall if wall > 0 else 0.0,
        },
        latency_s=latency,
        check={
            "events": result.events_run,
            "offered": result.offered,
            "unique_delivered": result.unique_delivered,
            "total_data_tx": result.total_data_tx,
            "beacons_sent": result.beacons_sent,
            "medium_deliveries": net.medium.deliveries,
            "medium_collisions": net.medium.collisions,
        },
        wall_s=wall,
    )


@scenario
def macro_grid25(quick: bool = False) -> BenchResult:
    """Full 4B collection run on a 25-node grid (the headline hot path)."""
    duration = 150.0 if quick else 600.0
    topo = grid(5, 5, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    config = _sim_config(
        protocol="4b",
        seed=3,
        duration_s=duration,
        warmup_s=60.0,
        profile_events=True,
    )
    net = CollectionNetwork(topo, config)
    return _macro_result("macro_grid25", net, duration)


@scenario
def macro_testbed(quick: bool = False) -> BenchResult:
    """Testbed-sized headline slice: scaled Mirage profile, interferers on."""
    duration = 120.0 if quick else 240.0
    profile = scaled_profile(PROFILES["mirage"], 35)
    topo = profile.topology(11)
    config = _sim_config(
        protocol="4b",
        seed=2,
        duration_s=duration,
        warmup_s=60.0,
        profile_events=True,
    )
    net = CollectionNetwork(topo, config, profile=profile)
    return _macro_result("macro_testbed", net, duration)


@scenario
def macro_chaos(quick: bool = False) -> BenchResult:
    """4B collection under the ``reboot_storm`` fault preset with the
    invariant checker on: the robustness layer's end-to-end cost."""
    duration = 150.0 if quick else 480.0
    topo = grid(5, 5, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    config = _sim_config(
        protocol="4b",
        seed=3,
        duration_s=duration,
        warmup_s=60.0,
        faults="reboot_storm",
        check_invariants=True,
        profile_events=True,
    )
    net = CollectionNetwork(topo, config)
    res = _macro_result("macro_chaos", net, duration)
    injector = net.fault_injector
    assert injector is not None
    res.check["node_crashes"] = injector.stats.node_crashes
    res.check["node_reboots"] = injector.stats.node_reboots
    return res


def _grid100_medium_result(name: str, backend: str, quick: bool) -> BenchResult:
    """Medium-centric 100-node scenario: the reception kernel under load.

    Full-stack macro runs are dominated by MAC/estimator/routing delivery
    processing, which caps any medium speedup well below its kernel-level
    value (Amdahl).  This scenario isolates the medium the same way
    ``micro_reception`` does — trivial counting listeners, no upper stack —
    but at macro scale: a 10×10 grid with dense Markov interferer traffic,
    so every transmission pays candidate evaluation, fading advance and
    interference accumulation over ~70 in-range receivers.  This is the
    workload class the fast backend's ≥10× events/s acceptance gate is
    measured on (PR 6).
    """
    duration = 8.0 if quick else 30.0
    engine = Engine()
    rng = RngManager(11)
    topo = grid(10, 10, spacing_m=12.0, rng=RngManager(7).stream("t"), jitter_m=1.0)
    channel = ChannelModel(
        topo.positions,
        rng.fork("channel"),
        shadowing_sigma_db=3.2,
        temporal_sigma_db=1.5,
        temporal_tau_s=60.0,
        bimodal_fraction=0.3,
    )
    if backend == "fast":
        from repro.sim.medium_fast import FastRadioMedium

        medium: RadioMedium = FastRadioMedium(engine, channel, rng)
    else:
        medium = RadioMedium(engine, channel, rng)
    listeners: List[_CountingListener] = []
    for nid in topo.node_ids():
        listener = _CountingListener(nid)
        medium.attach(listener)
        listeners.append(listener)

    # 24 near-always-on jammers over the grid footprint keep several
    # transmissions in flight at once, so the interference-accumulation
    # path (the exact backend's O(candidates × overlaps) term) dominates.
    jam_positions = [
        (ix * 27.0 + 6.0, iy * 27.0 + 6.0) for ix in range(5) for iy in range(5)
    ][:24]
    jammers = place_interferers(
        engine,
        medium,
        jam_positions,
        -5.0,
        rng.cached_stream,
        kind="markov",
        off_mean_s=5.0,
        on_mean_s=120.0,
        burst=BurstParams(burst_min_s=20e-3, burst_max_s=50e-3, gap_mean_s=10e-3),
    )
    for jam in jammers:
        jam.start()
    medium.finalize()

    traffic = rng.stream("grid100-traffic")
    sent = [0]

    def make_sender(node: _CountingListener) -> Callable[[], None]:
        def send() -> None:
            frame = Frame(src=node.node_id, dst=BROADCAST, length_bytes=36)
            medium.start_transmission(node.node_id, frame)
            sent[0] += 1
            engine.schedule(traffic.expovariate(4.0), send)

        return send

    for node in listeners:
        engine.schedule(traffic.expovariate(4.0), make_sender(node))

    t0 = perf_counter()
    engine.run_until(duration)
    wall = perf_counter() - t0
    return BenchResult(
        name=name,
        kind="macro",
        metrics={
            "events_per_s": engine.events_run / wall if wall > 0 else 0.0,
            "frames_per_s": sent[0] / wall if wall > 0 else 0.0,
        },
        check={
            "events": engine.events_run,
            "data_tx": sent[0],
            "transmissions": medium.transmissions,
            "deliveries": medium.deliveries,
            "collisions": medium.collisions,
            "white_bits_set": medium.white_bits_set,
        },
        wall_s=wall,
    )


@scenario
def macro_grid100(quick: bool = False) -> BenchResult:
    """100-node medium-centric run on the exact scalar backend."""
    return _grid100_medium_result("macro_grid100", "exact", quick)


@scenario
def macro_grid100_fast(quick: bool = False) -> BenchResult:
    """The same 100-node workload on the vectorized ``fast`` backend."""
    return _grid100_medium_result("macro_grid100_fast", "fast", quick)


@scenario
def macro_grid25_fast(quick: bool = False) -> BenchResult:
    """Full 4B collection on the fast backend (macro_grid25's twin).

    Full-stack, so the speedup is Amdahl-capped by upper-stack processing;
    this pins the fast backend's end-to-end behavior and guards against
    regressions in its integration with the runner stack.
    """
    duration = 150.0 if quick else 600.0
    topo = grid(5, 5, spacing_m=6.0, rng=RngManager(7).stream("t"), jitter_m=0.5)
    config = _sim_config(
        protocol="4b",
        seed=3,
        duration_s=duration,
        warmup_s=60.0,
        profile_events=True,
        medium="fast",
    )
    net = CollectionNetwork(topo, config)
    return _macro_result("macro_grid25_fast", net, duration)


def _city1000_medium_result(
    name: str, backend: str, quick: bool, mobility: bool = False
) -> BenchResult:
    """City-scale medium-centric scenario: 1000 nodes on a Manhattan grid.

    The ROADMAP's city-scale target measured at the medium layer: a
    ``city_grid`` street deployment over a 2 km × 2 km footprint (~40
    nodes within link-budget reach of each sender), Poisson broadcast
    traffic from every node, and 16 street-corner jammers.  The fast
    backend's spatial culling is what makes this size tractable at all —
    the exact backend enumerates all 10⁶ pairs during finalize — and the
    ``mobility=True`` variant layers continuous pedestrian waypoint
    motion on top (every non-sink node walking, ~1000 position updates
    per simulated second), so every transmission hits the
    incremental-maintenance path (epoch-stale batch rebuilds, pair-slot
    churn; DESIGN.md §11) instead of the frozen static structure.
    Pedestrian speeds are the representative mobile case for the paper's
    sensor-network domain; the vehicular preset sweeps entire
    neighborhoods per second, and the resulting first-contact pair churn
    (one seeded shadowing stream per brand-new pair, bit-compat-locked)
    dominates the wall clock rather than the incremental machinery this
    scenario gates.  The wall clock is measured around
    ``engine.run_until`` only: setup (the exact backend's O(N²)
    finalize) is real but amortizes over run length, while the gates
    target steady-state event throughput.
    """
    duration = 2.0 if quick else 6.0
    engine = Engine()
    rng = RngManager(19)
    topo = city_grid(1000, blocks=10, block_m=200.0, rng=RngManager(13).stream("t"))
    channel = ChannelModel(
        topo.positions,
        rng.fork("channel"),
        shadowing_sigma_db=3.2,
        temporal_sigma_db=1.5,
        temporal_tau_s=60.0,
        bimodal_fraction=0.3,
    )
    if backend == "fast":
        from repro.sim.medium_fast import FastRadioMedium

        medium: RadioMedium = FastRadioMedium(engine, channel, rng)
    else:
        medium = RadioMedium(engine, channel, rng)
    listeners: List[_CountingListener] = []
    for nid in topo.node_ids():
        listener = _CountingListener(nid)
        medium.attach(listener)
        listeners.append(listener)

    # 16 street-corner jammers spread over the 2 km footprint.
    jam_positions = [
        (ix * 500.0 + 100.0, iy * 500.0 + 100.0) for ix in range(4) for iy in range(4)
    ]
    jammers = place_interferers(
        engine,
        medium,
        jam_positions,
        -5.0,
        rng.cached_stream,
        kind="markov",
        off_mean_s=5.0,
        on_mean_s=120.0,
        burst=BurstParams(burst_min_s=20e-3, burst_max_s=50e-3, gap_mean_s=10e-3),
    )
    for jam in jammers:
        jam.start()
    medium.finalize()

    driver = None
    if mobility:
        from dataclasses import replace

        from repro.sim.mobility import MOBILITY_PRESETS, WaypointMobility

        # Pedestrian speeds with a 2 s update period: walkers cover 1–3 m
        # between ticks — far below any gain-relevant distance scale at a
        # ~229 m link-budget radius — so the coarser period changes no
        # physics while halving position-update overhead.
        driver = WaypointMobility(
            engine=engine,
            medium=medium,
            rng=rng,
            node_ids=topo.node_ids(),
            roots=(topo.sink,),
            config=replace(MOBILITY_PRESETS["pedestrian"], update_period_s=2.0),
            duration_s=duration,
        )
        driver.start()

    traffic = rng.stream("city1000-traffic")
    sent = [0]

    def make_sender(node: _CountingListener) -> Callable[[], None]:
        def send() -> None:
            frame = Frame(src=node.node_id, dst=BROADCAST, length_bytes=36)
            medium.start_transmission(node.node_id, frame)
            sent[0] += 1
            engine.schedule(traffic.expovariate(1.0), send)

        return send

    for node in listeners:
        engine.schedule(traffic.expovariate(1.0), make_sender(node))

    t0 = perf_counter()
    engine.run_until(duration)
    wall = perf_counter() - t0
    result = BenchResult(
        name=name,
        kind="macro",
        metrics={
            "events_per_s": engine.events_run / wall if wall > 0 else 0.0,
            "frames_per_s": sent[0] / wall if wall > 0 else 0.0,
        },
        check={
            "events": engine.events_run,
            "data_tx": sent[0],
            "transmissions": medium.transmissions,
            "deliveries": medium.deliveries,
            "collisions": medium.collisions,
            "white_bits_set": medium.white_bits_set,
        },
        wall_s=wall,
    )
    if driver is not None:
        result.check["position_updates"] = driver.position_updates
        result.check["waypoints_drawn"] = driver.waypoints_drawn
        result.metrics["position_updates_per_s"] = (
            driver.position_updates / wall if wall > 0 else 0.0
        )
    return result


@scenario
def macro_grid1000(quick: bool = False) -> BenchResult:
    """1000-node static city grid on the fast backend."""
    return _city1000_medium_result("macro_grid1000", "fast", quick)


@scenario
def macro_grid1000_exact(quick: bool = False) -> BenchResult:
    """The same 1000-node workload on the exact scalar backend (the
    denominator of the city-scale ≥5× speedup gate)."""
    return _city1000_medium_result("macro_grid1000_exact", "exact", quick)


@scenario
def macro_grid1000_mobile(quick: bool = False) -> BenchResult:
    """1000 nodes with continuous pedestrian waypoint motion (fast
    backend): the incremental-maintenance path under full churn."""
    return _city1000_medium_result("macro_grid1000_mobile", "fast", quick, mobility=True)


@scenario
def micro_campaign(quick: bool = False) -> BenchResult:
    """Campaign-queue throughput over closed-form synthetic points.

    Measures the orchestration overhead per point — spec enumeration,
    canonical digesting, cache round-trips, manifest checkpoints — with a
    simulator that costs nothing (``kind: "synthetic"``), twice: a *cold*
    pass that executes every point, then a *resume* pass over the same
    spec where every point comes back as a cache hit.  The warm rate is
    the queue's exactly-once bookkeeping cost, which bounds how fast any
    resumed million-run campaign can skip its completed prefix.
    """
    import tempfile
    from pathlib import Path

    from repro.campaign.queue import Campaign
    from repro.campaign.sweep import SweepSpec
    from repro.runner.cache import ResultCache

    side = 6 if quick else 14
    spec = SweepSpec.from_json_dict(
        {
            "campaign": "bench",
            "kind": "synthetic",
            "mode": "grid",
            "axes": {
                "x0": [0.25 * i for i in range(side)],
                "x1": [0.5 * i for i in range(side)],
            },
            "objective": "objective",
        }
    )
    n_points = side * side
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        cold_campaign = Campaign(spec, state_root=Path(tmp) / "state", cache=cache)
        t0 = perf_counter()
        doc = cold_campaign.run()
        cold_wall = perf_counter() - t0
        warm_campaign = Campaign(spec, state_root=Path(tmp) / "state", cache=cache)
        t1 = perf_counter()
        warm_campaign.run()
        warm_wall = perf_counter() - t1
    return BenchResult(
        name="micro_campaign",
        kind="micro",
        metrics={
            "cold_points_per_s": n_points / cold_wall if cold_wall > 0 else 0.0,
            "warm_points_per_s": n_points / warm_wall if warm_wall > 0 else 0.0,
        },
        check={
            "n_points": doc["n_points"],
            "cold_executed": cold_campaign.last_stats.executed,
            "warm_cache_hits": warm_campaign.last_stats.cache_hits,
            "best_digest": doc["best"]["digest"],
        },
        wall_s=cold_wall + warm_wall,
    )


MICRO = tuple(n for n, fn in SCENARIOS.items() if n.startswith("micro_"))
MACRO = tuple(n for n, fn in SCENARIOS.items() if n.startswith("macro_"))
