"""Benchmark result container and ``BENCH_<name>.json`` (de)serialization."""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


def bench_env() -> Dict[str, str]:
    """Host fingerprint stored with every result.

    Throughput baselines are only comparable on similar hardware; the
    fingerprint lets ``--compare`` warn when that assumption breaks.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


@dataclass
class BenchResult:
    """Outcome of one benchmark scenario.

    ``metrics`` holds higher-is-better throughput rates (events/sec,
    sim-seconds per wall-second, calls/sec) — these are what the
    regression gate compares.  ``latency_s`` holds lower-is-better
    per-event latency percentiles (reported, not gated: percentiles on
    shared CI hosts are too noisy to fail a build on).  ``check`` holds
    exact counters from the pinned run (deliveries, collisions, events):
    any difference between two results means the *simulated behavior*
    changed and throughput numbers are not comparable.
    """

    name: str
    kind: str  # "micro" | "macro"
    metrics: Dict[str, float]
    latency_s: Dict[str, float] = field(default_factory=dict)
    check: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0
    #: Scenario resource accounting (``repro.obs.resources`` keys: wall/CPU
    #: seconds, peak RSS).  Reported, never gated — optional field, so no
    #: schema bump; old files load with an empty dict.
    resources: Dict[str, float] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=bench_env)
    timestamp: float = field(default_factory=time.time)
    schema: int = SCHEMA_VERSION

    def filename(self) -> str:
        return f"BENCH_{self.name}.json"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "name": self.name,
            "kind": self.kind,
            "metrics": self.metrics,
            "latency_s": self.latency_s,
            "check": self.check,
            "wall_s": self.wall_s,
            "resources": self.resources,
            "env": self.env,
            "timestamp": self.timestamp,
        }

    def summary_row(self) -> str:
        rates = "  ".join(f"{k}={v:,.0f}" if v >= 100 else f"{k}={v:.3g}"
                          for k, v in sorted(self.metrics.items()))
        return f"{self.name:<18} [{self.kind}] {self.wall_s:6.2f}s  {rates}"


def write_result(result: BenchResult, out_dir: Union[str, Path]) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / result.filename()
    path.write_text(json.dumps(result.to_json_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_result(path: Union[str, Path]) -> BenchResult:
    data = json.loads(Path(path).read_text())
    schema = int(data.get("schema", 0))
    if schema != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported bench schema {schema} (want {SCHEMA_VERSION})")
    return BenchResult(
        name=data["name"],
        kind=data.get("kind", "?"),
        metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
        latency_s={k: float(v) for k, v in data.get("latency_s", {}).items()},
        check=data.get("check", {}),
        wall_s=float(data.get("wall_s", 0.0)),
        resources={k: float(v) for k, v in data.get("resources", {}).items()},
        env=data.get("env", {}),
        timestamp=float(data.get("timestamp", 0.0)),
        schema=schema,
    )


def find_baseline(name: str, baseline: Union[str, Path]) -> Optional[Path]:
    """Resolve the baseline file for scenario ``name``.

    ``baseline`` may be a directory (holding ``BENCH_<name>.json`` files)
    or a single file.
    """
    base = Path(baseline)
    if base.is_dir():
        candidate = base / f"BENCH_{name}.json"
        return candidate if candidate.exists() else None
    return base if base.exists() else None
