"""Figure 7: cost and depth vs transmit power (0 / −10 / −20 dBm).

Paper observations to reproduce:

* both protocols' cost and depth grow as transmit power drops (packets
  need more hops to reach the sink);
* 4B's cost stays 11–29% below MultiHopLQI's across the sweep;
* 4B's cost hugs the depth lower bound (≤13% above it at 0/−10 dBm) while
  MultiHopLQI strays much further (up to ~43%) — the extra cost is
  retransmission/loss, not path length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.render import scatter, table
from repro.experiments.common import (
    AveragedResult,
    Cell,
    ExperimentScale,
    FULL_SCALE,
    improvement,
    run_cells,
)
from repro.runner import ExperimentRunner

POWERS_DBM = (0.0, -10.0, -20.0)
PROTOCOLS = ("4b", "mhlqi")


@dataclass
class Fig7Result:
    #: (protocol, power) → averaged result
    results: Dict[Tuple[str, float], AveragedResult]
    powers: Tuple[float, ...] = POWERS_DBM

    def cost_increases_with_lower_power(self, protocol: str) -> bool:
        costs = [self.results[(protocol, p)].cost for p in self.powers]
        return all(b >= a * 0.95 for a, b in zip(costs, costs[1:]))

    def depth_increases_with_lower_power(self, protocol: str) -> bool:
        depths = [self.results[(protocol, p)].avg_tree_depth for p in self.powers]
        return all(b >= a * 0.95 for a, b in zip(depths, depths[1:]))

    def fourbit_wins_everywhere(self) -> bool:
        return all(
            self.results[("4b", p)].cost <= self.results[("mhlqi", p)].cost
            for p in self.powers
        )

    def cost_reduction_at(self, power: float) -> float:
        return improvement(self.results[("mhlqi", power)].cost, self.results[("4b", power)].cost)

    def excess_over_depth(self, protocol: str, power: float) -> float:
        """Fractional cost above the depth lower bound."""
        r = self.results[(protocol, power)]
        return (r.cost - r.avg_tree_depth) / r.avg_tree_depth

    def render(self) -> str:
        rows: List[List[str]] = []
        for power in self.powers:
            for proto in PROTOCOLS:
                r = self.results[(proto, power)]
                rows.append(
                    [
                        f"{power:+.0f} dBm",
                        r.label,
                        f"{r.cost:.2f}",
                        f"{r.avg_tree_depth:.2f}",
                        f"{self.excess_over_depth(proto, power) * 100:.0f}%",
                        f"{r.delivery_ratio * 100:.1f}%",
                    ]
                )
            rows.append(
                [
                    "",
                    "4B cost reduction",
                    f"{self.cost_reduction_at(power) * 100:.0f}%",
                    "",
                    "",
                    "",
                ]
            )
        points = {
            f"{r.label} @{power:+.0f}dBm": (r.avg_tree_depth, r.cost)
            for (proto, power), r in self.results.items()
        }
        return "\n".join(
            [
                table(
                    ["power", "protocol", "cost", "depth", "cost over depth", "delivery"],
                    rows,
                    title="Figure 7 — power sweep (paper: 4B cost 19-28% below "
                    "MultiHopLQI; ≤13% above the depth bound at 0/−10 dBm)",
                ),
                "",
                scatter(
                    points,
                    xlabel="average tree depth (hops)",
                    ylabel="cost (tx/packet)",
                    title="cost vs depth across transmit powers",
                    diagonal=True,
                ),
            ]
        )


def run(
    scale: ExperimentScale = FULL_SCALE,
    powers: Tuple[float, ...] = POWERS_DBM,
    runner: "ExperimentRunner" = None,
) -> Fig7Result:
    keys = [(proto, power) for power in powers for proto in PROTOCOLS]
    cells = [
        Cell.make(proto, label="4B" if proto == "4b" else "MultiHopLQI", tx_power_dbm=power)
        for proto, power in keys
    ]
    averaged = run_cells(scale, cells, runner)
    return Fig7Result(results=dict(zip(keys, averaged)), powers=powers)


if __name__ == "__main__":
    print(run().render())
