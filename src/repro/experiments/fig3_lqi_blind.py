"""Figure 3: physical-layer blindness of MultiHopLQI.

The paper shows a 12-hour trace where the PRR from node P to its parent C
drops from ~0.9 to ~0.6 while the LQI of the packets C *does* receive stays
high; unaware, MultiHopLQI keeps transmitting on the link, and the
cumulative count of unacknowledged packets inflects upward.

We reproduce the mechanism with a compressed timeline: an external burst
interferer near C is active during a known window.  Bursts destroy
overlapping packets outright (no LQI sample) and leave the surviving
packets clean (high LQI) — so the decode-quality indicator cannot see the
loss.  For contrast the experiment can also run 4B on the same channel,
whose ack bit notices the loss at data rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, List, Optional, Tuple

import dataclasses

from repro.analysis.render import table, timeseries
from repro.metrics.collection_stats import json_sanitize
from repro.metrics.timeseries import BroadcastLog, RxProbe, TxProbe, windowed_prr
from repro.phy.noise import WindowedInterferer
from repro.runner import ExperimentRunner, Task, default_runner
from repro.sim.network import CollectionNetwork, SimConfig
from repro.topology.generators import Topology
from repro.workloads.collection import WorkloadConfig

#: Node ids in the scenario topology.
ROOT, C, P = 0, 1, 2


def scenario_topology() -> Topology:
    """Root ← C ← P chain with a few sources behind P.

    Distances are calibrated for the deterministic channel used by
    :func:`run` (no shadowing): the direct P→root link (22 m, ≈2.7 dB SNR)
    is too weak, so P must route through C (11 m, ≈12 dB), and the
    monitored link is P→C.  Node 6 is an alternative relay far from the
    interferer that an agile estimator can fail over to.
    """
    positions = {
        ROOT: (0.0, 0.0),
        C: (11.0, 0.0),
        P: (22.0, 0.0),
        3: (26.0, 2.0),
        4: (27.0, -2.0),
        5: (29.0, 0.5),
        6: (11.0, 8.0),
    }
    return Topology(name="fig3-chain", positions=positions, sink=ROOT)


@dataclass(frozen=True)
class Fig3Settings:
    duration_s: float = 1800.0
    #: Interference window (the "hour 4 to 6" episode, compressed).
    burst_window: Tuple[float, float] = (600.0, 1200.0)
    interferer_power_dbm: float = -14.0
    #: Fast traffic so the PRR windows have enough samples.
    send_interval_s: float = 2.0
    prr_window_s: float = 60.0
    seed: int = 7
    protocol: str = "mhlqi"


@dataclass
class Fig3Result:
    settings: Fig3Settings
    #: (window center, PRR) of the P→C link, ground truth.
    prr_series: List[Tuple[float, Optional[float]]]
    #: (window center, mean LQI) of packets C actually received from P.
    lqi_series: List[Tuple[float, Optional[float]]]
    #: (time, cumulative unacked transmissions P→anyone).
    unacked_series: List[Tuple[float, float]]
    delivery_ratio: float
    cost: float

    def window_stats(self) -> Dict[str, float]:
        """Mean PRR / LQI inside vs outside the interference window."""
        t0, t1 = self.settings.burst_window

        def mean_in(series, inside: bool) -> float:
            values = [
                v
                for t, v in series
                if v is not None and ((t0 <= t <= t1) == inside)
            ]
            return sum(values) / len(values) if values else float("nan")

        return {
            "prr_outside": mean_in(self.prr_series, False),
            "prr_inside": mean_in(self.prr_series, True),
            "lqi_outside": mean_in(self.lqi_series, False),
            "lqi_inside": mean_in(self.lqi_series, True),
        }

    def blindness_holds(self) -> bool:
        """PRR drops substantially inside the window; received-packet LQI
        barely moves — the paper's headline observation."""
        stats = self.window_stats()
        prr_drop = stats["prr_outside"] - stats["prr_inside"]
        lqi_drop = stats["lqi_outside"] - stats["lqi_inside"]
        return prr_drop > 0.15 and lqi_drop < 5.0

    def to_json_dict(self) -> Dict[str, object]:
        """Strict-JSON view (non-finite floats become ``null``)."""
        return json_sanitize(dataclasses.asdict(self))

    def render(self) -> str:
        stats = self.window_stats()
        parts = [
            table(
                ["metric", "outside window", "inside window"],
                [
                    ["PRR (P→C)", f"{stats['prr_outside']:.3f}", f"{stats['prr_inside']:.3f}"],
                    ["LQI of received", f"{stats['lqi_outside']:.1f}", f"{stats['lqi_inside']:.1f}"],
                ],
                title=(
                    "Figure 3 — PRR collapses during the burst episode while the "
                    "LQI of received packets stays high"
                ),
            ),
            "",
            timeseries(
                {"PRR P->C": self.prr_series},
                title="PRR from P to C (windowed)",
                ylabel="PRR",
            ),
            "",
            timeseries(
                {"LQI P->C": self.lqi_series},
                title="LQI of packets received at C from P",
                ylabel="LQI",
            ),
            "",
            timeseries(
                {"cum. unacked": [(t, float(v)) for t, v in self.unacked_series]},
                title="Cumulative unacknowledged packets at P",
                ylabel="packets",
            ),
        ]
        return "\n".join(parts)


def execute(settings: Fig3Settings) -> Fig3Result:
    """Run the scripted scenario (pure function of ``settings``; picklable
    top-level entry point so the runner can cache and fan it out)."""
    topo = scenario_topology()
    config = SimConfig(
        protocol=settings.protocol,
        seed=settings.seed,
        duration_s=settings.duration_s,
        warmup_s=min(120.0, settings.duration_s / 4),
        workload=WorkloadConfig(send_interval_s=settings.send_interval_s, boot_stagger_s=5.0),
        with_interferers=False,
    )
    # Deterministic channel: the scenario's geometry *is* the experiment.
    net = CollectionNetwork(
        topo,
        config,
        profile=None,
        channel_overrides=dict(
            shadowing_sigma_db=0.0,
            temporal_sigma_db=0.0,
            bimodal_fraction=0.0,
        ),
    )

    # Instrument the P→C link.
    p_mac = net.nodes[P].mac
    c_mac = net.nodes[C].mac
    p_log = BroadcastLog(p_mac)
    rx_probe = RxProbe(c_mac, sender=P)
    tx_probe = TxProbe(p_mac)

    # One interferer near C, active during the window.
    interferer_id = 90_000
    net.channel.add_position(interferer_id, (11.5, 1.0))
    interferer = WindowedInterferer(
        net.engine,
        net.medium,
        interferer_id,
        settings.interferer_power_dbm,
        net.rng.stream("fig3-interferer"),
        windows=[settings.burst_window],
    )
    net.medium.finalize()  # re-finalize: a transmitter was added
    interferer.start()

    result = net.run()

    prr = windowed_prr(p_log.tx_times, rx_probe.rx_times, settings.prr_window_s, settings.duration_s)
    lqi: List[Tuple[float, Optional[float]]] = []
    t = 0.0
    while t < settings.duration_s:
        lqi.append((t + settings.prr_window_s / 2, rx_probe.mean_lqi_in(t, t + settings.prr_window_s)))
        t += settings.prr_window_s
    sample_times = [t for t, _ in prr]
    unacked = list(zip(sample_times, map(float, tx_probe.cumulative_unacked(sample_times))))

    return Fig3Result(
        settings=settings,
        prr_series=prr,
        lqi_series=lqi,
        unacked_series=unacked,
        delivery_ratio=result.delivery_ratio,
        cost=result.cost,
    )


def run(
    settings: Fig3Settings = Fig3Settings(), runner: "ExperimentRunner" = None
) -> Fig3Result:
    runner = runner or default_runner()
    return runner.run([Task(execute, settings, label=f"fig3 {settings.protocol}")])[0]


if __name__ == "__main__":
    print(run().render())
