"""Experiment modules — one per figure/table of the paper's evaluation.

====================  ======================================================
module                reproduces
====================  ======================================================
``fig2_trees``        Figure 2 — routing trees / cost of CTP, MultiHopLQI,
                      CTP-unconstrained
``fig3_lqi_blind``    Figure 3 — PRR collapse invisible to LQI
``fig6_design_space`` Figure 6 — cost vs depth across estimator variants
``fig7_power_sweep``  Figure 7 — cost/depth vs transmit power
``fig8_delivery``     Figure 8 — per-node delivery distributions
``headline``          Section 1/4 headline numbers on both testbeds
``ablation``          design-choice ablations (DESIGN.md §4)
====================  ======================================================

Figure 5 (the worked hybrid-estimator example) is an exact-arithmetic unit
test: ``tests/core/test_hybrid_trace.py``.
"""

from repro.experiments.common import (
    BENCH_SCALE,
    FULL_SCALE,
    AveragedResult,
    ExperimentScale,
    improvement,
    run_averaged,
    run_one,
)

__all__ = [
    "BENCH_SCALE",
    "FULL_SCALE",
    "AveragedResult",
    "ExperimentScale",
    "improvement",
    "run_averaged",
    "run_one",
]
