"""Ablations of the 4B design choices called out in DESIGN.md.

Each ablation perturbs one knob of the full 4B configuration:

* ``no-pin``        — ignore the pin bit during compare-driven eviction
  (the estimator may flush the route in use; the paper argues at least one
  deployment died from exactly this layer-2/layer-3 disagreement);
* ``evict-worst``   — compare-driven insertion flushes the worst entry
  instead of a random one;
* ``no-white``      — insertion gates on the compare bit alone (as if the
  radio provided no channel-quality information);
* ``ku=1``/``ku=25``— unicast window extremes (agility vs noise);
* ``kb=10``         — sluggish beacon windows;
* ``alpha=0.9``     — heavy outer-EWMA history (slow adaptation).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from repro.analysis.render import table
from repro.estimators.presets import four_bit
from repro.experiments.common import (
    AveragedResult,
    Cell,
    ExperimentScale,
    FULL_SCALE,
    run_cells,
)
from repro.runner import ExperimentRunner

BASELINE = "4b (full)"


def variants() -> Dict[str, object]:
    base = four_bit()
    return {
        BASELINE: base,
        "no-pin": dataclasses.replace(base, honor_pin_bit=False),
        "evict-worst": dataclasses.replace(base, compare_evict="worst"),
        "no-white": dataclasses.replace(base, require_white_bit=False),
        "ku=1": dataclasses.replace(base, ku=1),
        "ku=25": dataclasses.replace(base, ku=25),
        "kb=10": dataclasses.replace(base, kb=10),
        "alpha=0.9": dataclasses.replace(base, alpha_outer=0.9),
    }


@dataclass
class AblationResult:
    results: Dict[str, AveragedResult]

    def baseline(self) -> AveragedResult:
        return self.results[BASELINE]

    def render(self) -> str:
        base = self.baseline()
        rows = []
        for name, r in self.results.items():
            rows.append(
                [
                    name,
                    f"{r.cost:.2f}",
                    f"{(r.cost / base.cost - 1) * 100:+.0f}%",
                    f"{r.avg_tree_depth:.2f}",
                    f"{r.delivery_ratio * 100:.2f}%",
                ]
            )
        return table(
            ["variant", "cost", "cost vs full 4B", "depth", "delivery"],
            rows,
            title="4B design ablations",
        )


def run(scale: ExperimentScale = FULL_SCALE, runner: "ExperimentRunner" = None) -> AblationResult:
    names = list(variants())
    cells = [
        Cell.make("4b", label=name, estimator_config=config)
        for name, config in variants().items()
    ]
    averaged = run_cells(scale, cells, runner)
    return AblationResult(results=dict(zip(names, averaged)))


if __name__ == "__main__":
    print(run().render())
