"""Figure 6: the link-estimation design space in the cost-vs-depth plane.

Points: CTP (stock), CTP + ack bit (unidirectional estimation), CTP +
white/compare bits, 4B (all four bits), and MultiHopLQI, plus the
"Cost = Depth" lower-bound diagonal.

Paper observations to reproduce:

* adding the ack bit to CTP cuts cost and depth sharply (in-degree
  decoupled from table size);
* adding white + compare alone also improves CTP (better table admission);
* only with all three layers (4B) does CTP beat MultiHopLQI — by 29% cost
  and 11% depth on Mirage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.render import scatter, table
from repro.experiments.common import (
    AveragedResult,
    Cell,
    ExperimentScale,
    FULL_SCALE,
    improvement,
    run_cells,
)
from repro.runner import ExperimentRunner

VARIANTS = {
    "ctp": "CTP T2",
    "ctp-unidir": "CTP + ack bit",
    "ctp-white": "CTP + white/compare",
    "4b": "4B",
    "mhlqi": "MultiHopLQI",
}


@dataclass
class Fig6Result:
    results: Dict[str, AveragedResult]

    def ack_bit_helps(self) -> bool:
        return self.results["ctp-unidir"].cost < self.results["ctp"].cost

    def white_compare_helps(self) -> bool:
        return self.results["ctp-white"].cost < self.results["ctp"].cost

    def fourbit_beats_mhlqi(self) -> bool:
        return self.results["4b"].cost < self.results["mhlqi"].cost

    def fourbit_best(self) -> bool:
        return all(
            self.results["4b"].cost <= r.cost for r in self.results.values()
        )

    def cost_reduction_vs_mhlqi(self) -> float:
        return improvement(self.results["mhlqi"].cost, self.results["4b"].cost)

    def render(self) -> str:
        rows = []
        ctp_cost = self.results["ctp"].cost
        for key, r in self.results.items():
            rows.append(
                [
                    VARIANTS[key],
                    f"{r.cost:.2f}",
                    f"{r.avg_tree_depth:.2f}",
                    f"{r.delivery_ratio * 100:.1f}%",
                    f"{improvement(ctp_cost, r.cost) * 100:+.0f}%",
                ]
            )
        points = {
            VARIANTS[k]: (r.avg_tree_depth, r.cost) for k, r in self.results.items()
        }
        return "\n".join(
            [
                table(
                    ["variant", "cost", "avg depth", "delivery", "cost reduction vs CTP"],
                    rows,
                    title="Figure 6 — design space (paper: ack bit −31% cost; "
                    "white/compare −15%; 4B −29% vs MultiHopLQI)",
                ),
                "",
                scatter(
                    points,
                    xlabel="average tree depth (hops)",
                    ylabel="cost (tx/packet)",
                    title="cost vs depth ('.' diagonal = Cost = Depth lower bound)",
                    diagonal=True,
                ),
                "",
                f"4B cost reduction vs MultiHopLQI: "
                f"{self.cost_reduction_vs_mhlqi() * 100:.0f}% (paper: 29% on Mirage)",
            ]
        )


def run(scale: ExperimentScale = FULL_SCALE, runner: "ExperimentRunner" = None) -> Fig6Result:
    cells = [Cell.make(name, label=label) for name, label in VARIANTS.items()]
    averaged = run_cells(scale, cells, runner)
    return Fig6Result(results=dict(zip(VARIANTS, averaged)))


if __name__ == "__main__":
    print(run().render())
