"""Figure 8: per-node delivery-ratio distributions vs transmit power.

Boxplots of per-node delivery for MultiHopLQI and 4B at 0/−10/−20 dBm.
Paper observations to reproduce:

* 4B keeps delivery high and tight across the network (≥99% average, worst
  node ≥99.3% at 0/−10 dBm);
* MultiHopLQI's distribution has a long lower tail that grows as power
  drops (average 95.9% with a 64% worst node at 0 dBm) — localized
  asymmetries its physical-layer indicator cannot see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.render import boxplot, table
from repro.experiments.common import ExperimentScale, FULL_SCALE
from repro.experiments.fig7_power_sweep import Fig7Result, POWERS_DBM
from repro.experiments.fig7_power_sweep import run as run_fig7
from repro.runner import ExperimentRunner


@dataclass
class Fig8Result:
    sweep: Fig7Result

    def distribution(self, protocol: str, power: float):
        return self.sweep.results[(protocol, power)].pooled_node_delivery

    def _quantile(self, values, q: float) -> float:
        vs = sorted(v for v in values if not math.isnan(v))
        if not vs:
            return math.nan
        idx = q * (len(vs) - 1)
        lo, hi = int(math.floor(idx)), int(math.ceil(idx))
        return vs[lo] * (1 - (idx - lo)) + vs[hi] * (idx - lo)

    def fourbit_tighter(self, power: float) -> bool:
        """4B's worst node beats MultiHopLQI's worst node."""
        fb = self.distribution("4b", power)
        mh = self.distribution("mhlqi", power)
        if not fb or not mh:
            return False
        return min(fb) >= min(mh)

    def fourbit_median_high(self, power: float, floor: float = 0.97) -> bool:
        return self._quantile(self.distribution("4b", power), 0.5) >= floor

    def render(self) -> str:
        groups: Dict[str, list] = {}
        rows = []
        for power in self.sweep.powers:
            for proto, label in (("mhlqi", "MultiHopLQI"), ("4b", "4B")):
                values = self.distribution(proto, power)
                groups[f"{label} @{power:+.0f}dBm"] = values
                rows.append(
                    [
                        f"{power:+.0f} dBm",
                        label,
                        f"{(sum(values) / len(values)) * 100:.1f}%" if values else "n/a",
                        f"{min(values) * 100:.1f}%" if values else "n/a",
                        f"{self._quantile(values, 0.5) * 100:.1f}%" if values else "n/a",
                    ]
                )
        return "\n".join(
            [
                table(
                    ["power", "protocol", "mean", "min node", "median"],
                    rows,
                    title="Figure 8 — per-node delivery (paper: 4B ≥99.9% avg at "
                    "0/−10 dBm; MultiHopLQI 95.9% avg, 64% worst at 0 dBm)",
                ),
                "",
                boxplot(
                    groups,
                    lo=0.0,
                    hi=1.0,
                    title="per-node delivery ratio ([=] box Q1..Q3, # median, | min/max)",
                    fmt="{:.2f}",
                ),
            ]
        )


def run(
    scale: ExperimentScale = FULL_SCALE,
    powers: Tuple[float, ...] = POWERS_DBM,
    sweep: Optional[Fig7Result] = None,
    runner: "ExperimentRunner" = None,
) -> Fig8Result:
    """Reuses an existing Figure 7 sweep when provided (same runs).

    Without an explicit ``sweep``, a caching runner still deduplicates the
    shared runs: the specs hash identically to Figure 7's.
    """
    return Fig8Result(sweep=sweep or run_fig7(scale, powers, runner=runner))


if __name__ == "__main__":
    print(run().render())
