"""Headline comparison (Sections 1 and 4): 4B vs MultiHopLQI on both testbeds.

Paper claims to reproduce in shape:

* Mirage:   4B cuts packet delivery cost by 29%; delivery 99.9% vs 93%.
* Tutornet: 4B cuts cost by 44%; delivery 99% vs 85%.

(Tutornet, the noisier testbed, shows the larger gap — the harder the
channel, the more the four bits matter.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


from repro.analysis.render import table
from repro.experiments.common import (
    AveragedResult,
    ExperimentScale,
    FULL_SCALE,
    RunSpec,
    average_runs,
    improvement,
    run_specs,
)
from repro.runner import ExperimentRunner

PAPER_CLAIMS = {
    "mirage": {"cost_reduction": 0.29, "delivery_4b": 0.999, "delivery_mhlqi": 0.93},
    "tutornet": {"cost_reduction": 0.44, "delivery_4b": 0.99, "delivery_mhlqi": 0.85},
}


@dataclass
class HeadlineResult:
    #: testbed → protocol → averaged result
    results: Dict[str, Dict[str, AveragedResult]]

    def cost_reduction(self, testbed: str) -> float:
        r = self.results[testbed]
        return improvement(r["mhlqi"].cost, r["4b"].cost)

    def fourbit_wins(self, testbed: str) -> bool:
        """Lower cost at no worse delivery (delivery can tie at 100% on
        small/easy networks)."""
        r = self.results[testbed]
        return (
            r["4b"].cost < r["mhlqi"].cost
            and r["4b"].delivery_ratio >= r["mhlqi"].delivery_ratio - 1e-9
        )

    def gap_larger_on_noisier_testbed(self) -> bool:
        """The paper's Tutornet (noisier) gap exceeds the Mirage gap."""
        return self.cost_reduction("tutornet") > self.cost_reduction("mirage")

    def render(self) -> str:
        rows = []
        for testbed, protos in self.results.items():
            claims = PAPER_CLAIMS[testbed]
            for proto in ("4b", "mhlqi"):
                r = protos[proto]
                paper_delivery = claims["delivery_4b" if proto == "4b" else "delivery_mhlqi"]
                rows.append(
                    [
                        testbed,
                        r.label,
                        f"{r.cost:.2f}",
                        f"{r.delivery_ratio * 100:.1f}%",
                        f"{paper_delivery * 100:.1f}%",
                    ]
                )
            rows.append(
                [
                    testbed,
                    "cost reduction",
                    f"{self.cost_reduction(testbed) * 100:.0f}%",
                    "",
                    f"{claims['cost_reduction'] * 100:.0f}%",
                ]
            )
        return table(
            ["testbed", "protocol", "cost", "delivery (measured)", "paper"],
            rows,
            title="Headline — 4B vs MultiHopLQI on both testbeds",
        )


def run(scale: ExperimentScale = FULL_SCALE, runner: "ExperimentRunner" = None) -> HeadlineResult:
    # Both testbeds go out as one batch so a parallel runner sees the whole
    # 2 × 2 × seeds grid at once.
    grid = [
        (testbed, proto, label)
        for testbed in ("mirage", "tutornet")
        for proto, label in (("4b", "4B"), ("mhlqi", "MultiHopLQI"))
    ]
    specs = [
        RunSpec.build(replace(scale, profile_name=testbed), proto, seed)
        for testbed, proto, _ in grid
        for seed in scale.seeds
    ]
    flat = run_specs(specs, runner)
    results: Dict[str, Dict[str, AveragedResult]] = {}
    n = len(scale.seeds)
    for i, (testbed, proto, label) in enumerate(grid):
        runs = flat[i * n : (i + 1) * n]
        results.setdefault(testbed, {})[proto] = average_runs(proto, label, runs)
    return HeadlineResult(results=results)


if __name__ == "__main__":
    print(run().render())
