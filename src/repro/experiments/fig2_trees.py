"""Figure 2: routing trees of CTP (10-entry table), MultiHopLQI, and CTP
with an unrestricted link table, on an 85-node testbed.

Paper observations to reproduce (shape, not absolute values):

* cost ordering: CTP (3.14)  >  MultiHopLQI (2.28)  >  CTP unconstrained (1.86);
* the 10-entry table caps node in-degree, so constrained CTP builds
  *deeper* trees than the same protocol with an unrestricted table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.render import routing_tree, table
from repro.experiments.common import (
    AveragedResult,
    Cell,
    ExperimentScale,
    FULL_SCALE,
    run_cells,
)
from repro.runner import ExperimentRunner

PROTOCOLS = ("ctp", "mhlqi", "ctp-unconstrained")


@dataclass
class Fig2Result:
    results: Dict[str, AveragedResult]

    def cost_ordering_holds(self) -> bool:
        """CTP ≥ MultiHopLQI ≥ CTP-unconstrained (the paper's ordering)."""
        return (
            self.results["ctp"].cost
            >= self.results["mhlqi"].cost
            >= self.results["ctp-unconstrained"].cost
        )

    def depth_gap_holds(self) -> bool:
        """Constrained CTP builds deeper trees than unconstrained CTP."""
        return (
            self.results["ctp"].avg_tree_depth
            > self.results["ctp-unconstrained"].avg_tree_depth
        )

    def render(self) -> str:
        parts: List[str] = [
            table(
                ["protocol", "cost (tx/pkt)", "avg depth", "delivery"],
                [
                    [
                        r.label,
                        f"{r.cost:.2f}",
                        f"{r.avg_tree_depth:.2f}",
                        f"{r.delivery_ratio * 100:.1f}%",
                    ]
                    for r in self.results.values()
                ],
                title="Figure 2 — routing trees and cost (paper: CTP 3.14, MultiHopLQI 2.28, CTP-unconstrained 1.86)",
            )
        ]
        for name, r in self.results.items():
            final = r.runs[0]
            parts.append("")
            parts.append(
                routing_tree(
                    final.final_parents,
                    final.final_depths,
                    root=_root_of(final),
                    title=f"--- {name} tree (seed {final.seed}, cost {final.cost:.2f}) ---",
                )
            )
        return "\n".join(parts)


def _root_of(result) -> int:
    for nid, parent in result.final_parents.items():
        if parent is None and result.final_depths.get(nid) == 0:
            return nid
    return 0


def run(scale: ExperimentScale = FULL_SCALE, runner: "ExperimentRunner" = None) -> Fig2Result:
    averaged = run_cells(scale, [Cell.make(name) for name in PROTOCOLS], runner)
    return Fig2Result(results=dict(zip(PROTOCOLS, averaged)))


if __name__ == "__main__":
    print(run().render())
