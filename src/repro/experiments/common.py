"""Shared experiment harness.

Every figure module accepts an :class:`ExperimentScale` so the same code
runs at two sizes: full scale from ``examples/`` (paper-like durations,
multiple seeds) and reduced scale from ``benchmarks/`` (smaller network,
shorter runs — the benchmark suite must regenerate every figure in minutes,
not hours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.collection_stats import CollectionResult
from repro.sim.network import CollectionNetwork, SimConfig
from repro.topology.testbeds import PROFILES, TestbedProfile, scaled_profile


@dataclass(frozen=True)
class ExperimentScale:
    """Size/duration knobs for an experiment."""

    profile_name: str = "mirage"
    #: Shrink the testbed to this many nodes (None = full size).
    n_nodes: Optional[int] = None
    duration_s: float = 1800.0
    warmup_s: float = 300.0
    seeds: Tuple[int, ...] = (1, 2)
    topology_seed: int = 11

    def profile(self) -> TestbedProfile:
        base = PROFILES[self.profile_name]
        if self.n_nodes is None or self.n_nodes == base.n_nodes:
            return base
        return scaled_profile(base, self.n_nodes)


#: Full-scale settings used by the examples (paper runs were 40–69 min on
#: Mirage; we use 30 simulated minutes × 2 seeds).
FULL_SCALE = ExperimentScale(duration_s=1800.0, warmup_s=300.0, seeds=(1, 2))

#: Reduced settings used by the benchmark suite.
BENCH_SCALE = ExperimentScale(n_nodes=30, duration_s=420.0, warmup_s=120.0, seeds=(1,))


def run_one(
    scale: ExperimentScale,
    protocol: str,
    seed: int,
    tx_power_dbm: float = 0.0,
    **config_overrides,
) -> CollectionResult:
    """One collection run of ``protocol`` at the given scale."""
    profile = scale.profile()
    topo = profile.topology(scale.topology_seed)
    config = SimConfig(
        protocol=protocol,
        tx_power_dbm=tx_power_dbm,
        seed=seed,
        duration_s=scale.duration_s,
        warmup_s=scale.warmup_s,
        **config_overrides,
    )
    return CollectionNetwork(topo, config, profile=profile).run()


@dataclass
class AveragedResult:
    """Seed-averaged metrics for one configuration."""

    protocol: str
    label: str
    cost: float
    avg_tree_depth: float
    delivery_ratio: float
    #: Per-node delivery ratios pooled across seeds (Figure 8 boxplots).
    pooled_node_delivery: List[float] = field(default_factory=list)
    runs: List[CollectionResult] = field(default_factory=list)

    def summary_row(self) -> str:
        return (
            f"{self.label:<18} cost={self.cost:6.2f}  depth={self.avg_tree_depth:5.2f}  "
            f"delivery={self.delivery_ratio * 100:6.2f}%  ({len(self.runs)} seeds)"
        )


def run_averaged(
    scale: ExperimentScale,
    protocol: str,
    tx_power_dbm: float = 0.0,
    label: Optional[str] = None,
    **config_overrides,
) -> AveragedResult:
    """Run ``protocol`` across the scale's seeds and average the metrics."""
    runs = [
        run_one(scale, protocol, seed, tx_power_dbm, **config_overrides)
        for seed in scale.seeds
    ]
    pooled = [v for r in runs for v in r.delivery_values() if not math.isnan(v)]
    return AveragedResult(
        protocol=protocol,
        label=label or protocol,
        cost=mean(r.cost for r in runs),
        avg_tree_depth=mean(r.avg_tree_depth for r in runs),
        delivery_ratio=mean(r.delivery_ratio for r in runs),
        pooled_node_delivery=pooled,
        runs=runs,
    )


def improvement(baseline: float, contender: float) -> float:
    """Relative reduction of ``contender`` vs ``baseline`` (0.29 = 29% lower)."""
    if baseline == 0 or math.isinf(baseline) or math.isnan(baseline):
        return math.nan
    return (baseline - contender) / baseline
