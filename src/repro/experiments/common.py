"""Shared experiment harness.

Every figure module accepts an :class:`ExperimentScale` so the same code
runs at two sizes: full scale from ``examples/`` (paper-like durations,
multiple seeds) and reduced scale from ``benchmarks/`` (smaller network,
shorter runs — the benchmark suite must regenerate every figure in minutes,
not hours).

Execution goes through :mod:`repro.runner`: each (cell × seed) becomes a
:class:`RunSpec` — a frozen, canonically hashable description of one run —
and a batch of specs fans out across a process pool with on-disk result
caching.  The default runner is serial and uncached (identical to the old
in-line loops); set ``REPRO_WORKERS``/``REPRO_CACHE`` or pass ``runner=``
to parallelize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from statistics import mean
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.collection_stats import CollectionResult, json_sanitize
from repro.obs.profile import merge_profiles
from repro.runner import ExperimentRunner, Task, default_runner
from repro.sim.network import CollectionNetwork, SimConfig
from repro.topology.testbeds import PROFILES, TestbedProfile, scaled_profile


@dataclass(frozen=True)
class ExperimentScale:
    """Size/duration knobs for an experiment."""

    profile_name: str = "mirage"
    #: Shrink the testbed to this many nodes (None = full size).
    n_nodes: Optional[int] = None
    duration_s: float = 1800.0
    warmup_s: float = 300.0
    seeds: Tuple[int, ...] = (1, 2)
    topology_seed: int = 11

    def profile(self) -> TestbedProfile:
        base = PROFILES[self.profile_name]
        if self.n_nodes is None or self.n_nodes == base.n_nodes:
            return base
        return scaled_profile(base, self.n_nodes)


#: Full-scale settings used by the examples (paper runs were 40–69 min on
#: Mirage; we use 30 simulated minutes × 2 seeds).
FULL_SCALE = ExperimentScale(duration_s=1800.0, warmup_s=300.0, seeds=(1, 2))

#: Reduced settings used by the benchmark suite.
BENCH_SCALE = ExperimentScale(n_nodes=30, duration_s=420.0, warmup_s=120.0, seeds=(1,))


def run_one(
    scale: ExperimentScale,
    protocol: str,
    seed: int,
    tx_power_dbm: float = 0.0,
    **config_overrides,
) -> CollectionResult:
    """One collection run of ``protocol`` at the given scale."""
    profile = scale.profile()
    topo = profile.topology(scale.topology_seed)
    config = SimConfig(
        protocol=protocol,
        tx_power_dbm=tx_power_dbm,
        seed=seed,
        duration_s=scale.duration_s,
        warmup_s=scale.warmup_s,
        **config_overrides,
    )
    return CollectionNetwork(topo, config, profile=profile).run()


@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulator run — the unit of fan-out and caching.

    Deliberately *not* built on :class:`ExperimentScale` directly: the
    scale's ``seeds`` tuple describes a whole sweep, and baking it into the
    spec would give the same (protocol, seed) run a different cache key for
    every seed set it appears in.
    """

    profile_name: str
    n_nodes: Optional[int]
    duration_s: float
    warmup_s: float
    topology_seed: int
    protocol: str
    seed: int
    tx_power_dbm: float = 0.0
    #: Extra ``SimConfig`` fields as sorted (name, value) pairs; values must
    #: be canonically hashable (plain data or frozen dataclasses).
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def build(
        cls,
        scale: ExperimentScale,
        protocol: str,
        seed: int,
        tx_power_dbm: float = 0.0,
        **config_overrides,
    ) -> "RunSpec":
        return cls(
            profile_name=scale.profile_name,
            n_nodes=scale.n_nodes,
            duration_s=scale.duration_s,
            warmup_s=scale.warmup_s,
            topology_seed=scale.topology_seed,
            protocol=protocol,
            seed=seed,
            tx_power_dbm=tx_power_dbm,
            overrides=tuple(sorted(config_overrides.items())),
        )

    def scale(self) -> ExperimentScale:
        return ExperimentScale(
            profile_name=self.profile_name,
            n_nodes=self.n_nodes,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            seeds=(self.seed,),
            topology_seed=self.topology_seed,
        )

    def describe(self) -> str:
        extra = f" {dict(self.overrides)}" if self.overrides else ""
        return (
            f"{self.protocol} seed={self.seed} @{self.tx_power_dbm:+.0f}dBm "
            f"{self.profile_name}/{self.n_nodes or 'full'}{extra}"
        )


def execute_spec(spec: RunSpec) -> CollectionResult:
    """Top-level (picklable) entry point the runner's workers call."""
    return run_one(
        spec.scale(), spec.protocol, spec.seed, spec.tx_power_dbm, **dict(spec.overrides)
    )


def run_specs(
    specs: Sequence[RunSpec], runner: Optional[ExperimentRunner] = None
) -> List[CollectionResult]:
    """Execute a batch of specs through the runner, in order."""
    runner = runner or default_runner()
    return runner.run([Task(execute_spec, spec, label=spec.describe()) for spec in specs])


@dataclass(frozen=True)
class Cell:
    """One experiment-grid cell: a configuration averaged over seeds."""

    protocol: str
    label: str = ""
    tx_power_dbm: float = 0.0
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, protocol: str, label: str = "", tx_power_dbm: float = 0.0, **config_overrides
    ) -> "Cell":
        return cls(
            protocol=protocol,
            label=label or protocol,
            tx_power_dbm=tx_power_dbm,
            overrides=tuple(sorted(config_overrides.items())),
        )

    def specs(self, scale: ExperimentScale) -> List[RunSpec]:
        return [
            RunSpec.build(
                scale, self.protocol, seed, self.tx_power_dbm, **dict(self.overrides)
            )
            for seed in scale.seeds
        ]


@dataclass
class AveragedResult:
    """Seed-averaged metrics for one configuration."""

    protocol: str
    label: str
    cost: float
    avg_tree_depth: float
    delivery_ratio: float
    #: Per-node delivery ratios pooled across seeds (Figure 8 boxplots).
    pooled_node_delivery: List[float] = field(default_factory=list)
    runs: List[CollectionResult] = field(default_factory=list)
    #: Merged engine profile when the runs were profiled
    #: (``profile_events=True``); see ``repro.obs.profile.merge_profiles``.
    profile: Optional[Dict[str, object]] = None

    def summary_row(self) -> str:
        return (
            f"{self.label:<18} cost={self.cost:6.2f}  depth={self.avg_tree_depth:5.2f}  "
            f"delivery={self.delivery_ratio * 100:6.2f}%  ({len(self.runs)} seeds)"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Strict-JSON view (non-finite floats become ``null``)."""
        return json_sanitize(
            {
                "protocol": self.protocol,
                "label": self.label,
                "cost": self.cost,
                "avg_tree_depth": self.avg_tree_depth,
                "delivery_ratio": self.delivery_ratio,
                "pooled_node_delivery": self.pooled_node_delivery,
                "profile": self.profile,
                "runs": [r.to_json_dict() for r in self.runs],
            }
        )


def average_runs(protocol: str, label: str, runs: Sequence[CollectionResult]) -> AveragedResult:
    """Fold per-seed results into one :class:`AveragedResult`."""
    runs = list(runs)
    pooled = [v for r in runs for v in r.delivery_values() if not math.isnan(v)]
    return AveragedResult(
        protocol=protocol,
        label=label or protocol,
        cost=mean(r.cost for r in runs),
        avg_tree_depth=mean(r.avg_tree_depth for r in runs),
        delivery_ratio=mean(r.delivery_ratio for r in runs),
        pooled_node_delivery=pooled,
        runs=runs,
        profile=merge_profiles([r.profile for r in runs]),
    )


def run_cells(
    scale: ExperimentScale,
    cells: Sequence[Cell],
    runner: Optional[ExperimentRunner] = None,
) -> List[AveragedResult]:
    """Run a whole grid of cells as one batch and average each over seeds.

    Submitting the full (cell × seed) grid at once is what lets the runner
    keep every worker busy; per-cell serial loops would leave the pool idle
    between cells.
    """
    specs = [spec for cell in cells for spec in cell.specs(scale)]
    results = run_specs(specs, runner)
    averaged = []
    n = len(scale.seeds)
    for i, cell in enumerate(cells):
        runs = results[i * n : (i + 1) * n]
        averaged.append(average_runs(cell.protocol, cell.label, runs))
    return averaged


def run_averaged(
    scale: ExperimentScale,
    protocol: str,
    tx_power_dbm: float = 0.0,
    label: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
    **config_overrides,
) -> AveragedResult:
    """Run ``protocol`` across the scale's seeds and average the metrics."""
    cell = Cell.make(protocol, label or protocol, tx_power_dbm, **config_overrides)
    return run_cells(scale, [cell], runner)[0]


def improvement(baseline: float, contender: float) -> float:
    """Relative reduction of ``contender`` vs ``baseline`` (0.29 = 29% lower)."""
    if baseline == 0 or math.isinf(baseline) or math.isnan(baseline):
        return math.nan
    return (baseline - contender) / baseline
