"""The four-bit interfaces (paper Section 3.1, Figure 4).

These are the *only* couplings between the link estimator and the three
layers:

* **white bit** — physical → estimator, per received packet.  Arrives on
  :class:`repro.sim.packets.RxInfo`.
* **ack bit** — link → estimator, per transmitted unicast.  Arrives on
  :class:`repro.sim.packets.TxResult`.
* **pin bit** — network → estimator, per table entry.  Exposed as
  :meth:`LinkEstimator.pin` / :meth:`LinkEstimator.unpin`.
* **compare bit** — estimator → network query, per received routing packet.
  Exposed as :class:`CompareBitProvider`.

Any network layer that implements :class:`CompareBitProvider` and any radio
that can fill in ``RxInfo.white_bit`` (or always leave it clear) can host
any estimator implementing :class:`LinkEstimator` — the decoupling the
paper argues for.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Protocol, runtime_checkable


from repro.link.frame import NetworkFrame
from repro.sim.packets import RxInfo


@runtime_checkable
class CompareBitProvider(Protocol):
    """The network layer's side of the compare-bit interface."""

    def compare_bit(self, frame: NetworkFrame, info: RxInfo) -> bool:
        """Is the route offered by ``frame``'s sender better than the route
        through at least one current link-table entry?

        The network layer need not decide for every packet — only for those
        carrying route-quality information (``frame.carries_route_info``).
        """
        ...


class LinkEstimator(abc.ABC):
    """The estimator interface network layers program against."""

    #: Callback sink for unwrapped frames and send-done events.  The network
    #: layer wires this at stack-construction time; declaring it here keeps
    #: that wiring inside the four-bit contract, so network code never needs
    #: a concrete estimator type.
    client: Optional["EstimatorClient"] = None
    #: The network layer's compare-bit implementation (may arrive after
    #: construction, once the routing engine exists).
    compare_provider: Optional[CompareBitProvider] = None

    # -- estimates ------------------------------------------------------
    @abc.abstractmethod
    def link_quality(self, neighbor: int) -> float:
        """Current ETX estimate of the (bidirectional) link to ``neighbor``.

        Returns ``float('inf')`` for unknown or not-yet-mature neighbors.
        """

    @abc.abstractmethod
    def neighbors(self) -> Iterable[int]:
        """Addresses currently in the link table."""

    def neighbor_qualities(self) -> "list[tuple[int, float]]":
        """``(address, link ETX)`` for every table entry.

        Equivalent to querying :meth:`link_quality` for each address in
        :meth:`neighbors`; implementations sitting on the routing hot path
        override this with a single-pass version.  The order matches
        :meth:`neighbors`.
        """
        link_quality = self.link_quality
        return [(neighbor, link_quality(neighbor)) for neighbor in self.neighbors()]

    # -- pin bit --------------------------------------------------------
    @abc.abstractmethod
    def pin(self, neighbor: int) -> bool:
        """Set the pin bit: forbid evicting ``neighbor``.  False if absent."""

    @abc.abstractmethod
    def unpin(self, neighbor: int) -> bool:
        """Clear the pin bit.  False if absent."""

    @abc.abstractmethod
    def clear_pins(self) -> None:
        """Clear every pin bit (e.g. on route recomputation)."""

    # -- datapath (the estimator is a layer 2.5) -------------------------
    @abc.abstractmethod
    def send(self, frame: NetworkFrame) -> bool:
        """Wrap ``frame`` in the estimator header/footer and hand it to the
        MAC.  Returns False when the MAC buffer is busy."""


class EstimatorClient(Protocol):
    """Callbacks a network layer registers with its estimator."""

    def on_receive(self, frame: NetworkFrame, info: RxInfo, le_src: int) -> None:
        """A network frame arrived (unwrapped from the LE header)."""
        ...

    def on_send_done(self, frame: NetworkFrame, sent: bool, acked: bool) -> None:
        """The frame handed to :meth:`LinkEstimator.send` left the MAC."""
        ...
