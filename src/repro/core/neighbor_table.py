"""The link estimator's neighbor table (Woo et al. management, + pin bit).

RAM limits on sensornet hardware cap the table at a handful of entries
(default 10, matching the paper's prototype), so *which* links get a slot
matters as much as how well they are estimated.  The pin bit lets the
network layer protect in-use entries; the compare-driven replacement policy
(implemented in :mod:`repro.core.estimator`) evicts a **random unpinned**
entry when a promising newcomer arrives.
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

from typing import Callable, Dict, Iterator, List, Optional

from repro.core.ewma import Ewma


@dataclass
class NeighborEntry:
    """Estimator state for one candidate link."""

    addr: int
    #: The pin bit (network layer owns it).
    pinned: bool = False
    # ---- beacon (broadcast) stream ----
    beacon_received: int = 0
    beacon_missed: int = 0
    #: Expected beacons (received + missed) since the entry was inserted.
    #: Ages entries that never produce a usable estimate (Woo et al.'s
    #: frequency-based table management): a slot should not be held forever
    #: by a neighbor whose reverse direction is never learned.
    expected_since_insert: int = 0
    last_seq: Optional[int] = None
    prr_ewma: Optional[Ewma] = None
    #: Outbound PRR advertised by the neighbor (bidirectional baselines only;
    #: learned from link-estimator beacon footers).
    prr_out: Optional[float] = None
    # ---- unicast (data) stream ----
    uni_total: int = 0
    uni_acked: int = 0
    fails_since_last_ack: int = 0
    # ---- hybrid output ----
    etx_ewma: Optional[Ewma] = None

    @property
    def mature(self) -> bool:
        """True once at least one ETX sample has been folded in."""
        ewma = self.etx_ewma
        return ewma is not None and ewma._initialized

    @property
    def etx(self) -> float:
        """Current hybrid ETX, or +inf before the first sample.

        Reads the EWMA slots directly: this property runs once per routing
        candidate per beacon, and the nested property calls dominate it.
        """
        ewma = self.etx_ewma
        if ewma is None or not ewma._initialized:
            return math.inf
        return ewma._value


class NeighborTable:
    """Fixed-capacity neighbor table with pin-aware eviction.

    ``capacity=None`` models the "CTP unconstrained" configuration of the
    paper's Figure 2(c).
    """

    def __init__(self, capacity: Optional[int] = 10) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, NeighborEntry] = {}
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    def __iter__(self) -> Iterator[NeighborEntry]:
        return iter(list(self._entries.values()))

    def find(self, addr: int) -> Optional[NeighborEntry]:
        return self._entries.get(addr)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    def addresses(self) -> List[int]:
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    def insert(self, addr: int) -> NeighborEntry:
        """Insert ``addr`` into a free slot.  Raises if full or present."""
        if addr in self._entries:
            raise ValueError(f"{addr} already in table")
        if self.full:
            raise ValueError("table full; evict first")
        entry = NeighborEntry(addr=addr)
        self._entries[addr] = entry
        return entry

    def evict_random_unpinned(
        self, rng: Random, eligible: Optional[Callable[[NeighborEntry], bool]] = None
    ) -> Optional[int]:
        """Evict a uniformly random unpinned entry; returns its address.

        ``eligible`` optionally narrows the victim pool further (e.g. to
        entries that have had their evaluation window).  Returns ``None``
        (and evicts nothing) when no entry qualifies — the pin bit is an
        absolute guarantee to the network layer.
        """
        pool = [
            addr
            for addr, e in self._entries.items()
            if not e.pinned and (eligible is None or eligible(e))
        ]
        if not pool:
            return None
        victim = rng.choice(pool)
        del self._entries[victim]
        self.evictions += 1
        return victim

    def evict_worst_unpinned(self) -> Optional[int]:
        """Ablation policy: evict the unpinned entry with the worst ETX.

        Immature entries (no estimate yet) are considered worst of all.
        """
        candidates = [(e.etx, addr) for addr, e in self._entries.items() if not e.pinned]
        if not candidates:
            return None
        victim = max(candidates, key=lambda pair: (pair[0], pair[1]))[1]
        del self._entries[victim]
        self.evictions += 1
        return victim

    def clear(self) -> None:
        """Wipe every entry in place (node reboot: the RAM table is gone).

        The instance survives so external references (instrumentation
        wrappers, the estimator) stay valid; ``evictions`` keeps counting —
        it tallies events, not state.
        """
        self._entries.clear()

    def remove(self, addr: int) -> bool:
        """Explicitly drop an entry (pinned or not).  Returns False if absent."""
        if addr in self._entries:
            del self._entries[addr]
            return True
        return False

    # ------------------------------------------------------------------
    def pin(self, addr: int) -> bool:
        entry = self._entries.get(addr)
        if entry is None:
            return False
        entry.pinned = True
        return True

    def unpin(self, addr: int) -> bool:
        entry = self._entries.get(addr)
        if entry is None:
            return False
        entry.pinned = False
        return True

    def clear_pins(self) -> None:
        for entry in self._entries.values():
            entry.pinned = False

    def pinned_addresses(self) -> List[int]:
        return [addr for addr, e in self._entries.items() if e.pinned]
