"""The hybrid link estimator (paper Section 3.3).

One engine implements the full design space explored in the paper's
Figure 6; the named presets live in :mod:`repro.estimators.presets`.
Configuration axes:

* **ack stream** on/off — the link layer's ack bit refines estimates at the
  rate of data traffic (windowed every ``ku`` unicast transmissions);
* **beacon stream** unidirectional (4B: incoming PRR only, bootstrapping
  values refined by the ack bit) or bidirectional (stock CTP / MintRoute:
  the product of both directions, with the reverse direction learned from
  beacon footers);
* **insertion policy** — ``white-compare`` (4B: a routing packet with the
  white bit set from an unknown node triggers a compare-bit query; on a set
  compare bit a *random unpinned* entry is flushed) or ``evict-worst``
  (stock: a newcomer displaces the worst unpinned entry only if that entry
  is measurably bad).

The hybrid value follows the paper exactly: unicast ETX samples
(``ku / acked``, or consecutive-failure count when nothing was acked) and
beacon ETX samples (inverted windowed EWMA of reception probability) feed
one outer EWMA.  Under heavy data traffic unicast samples dominate; in a
quiet network beacon samples dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.ewma import Ewma
from repro.core.interfaces import CompareBitProvider, EstimatorClient, LinkEstimator
from repro.core.neighbor_table import NeighborEntry, NeighborTable
from repro.link.frame import FooterEntry, Frame, LinkEstimatorFrame, NetworkFrame, le_wrap
from repro.link.mac import Mac
from repro.sim.packets import RxInfo, TxResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

_INF = float("inf")


@dataclass(frozen=True)
class EstimatorConfig:
    """Knobs of the hybrid estimator.  Defaults are the paper's 4B values."""

    table_size: Optional[int] = 10
    #: Unicast window: a new ETX sample every ``ku`` data transmissions.
    ku: int = 5
    #: Beacon window: a new PRR sample every ``kb`` expected beacons.
    kb: int = 2
    #: History weight of the outer (hybrid) EWMA.  The worked example in the
    #: paper's Figure 5 is consistent with 0.5 (e.g. 5.0 → 3.1 on a 1.25
    #: sample; 2.1 → ≈1.7 on a 1.25 sample).
    alpha_outer: float = 0.5
    #: History weight of the windowed beacon-PRR EWMA.
    alpha_beacon: float = 0.8
    #: Cap on individual ETX samples (guards the consecutive-failure rule).
    max_etx_sample: float = 50.0
    #: A beacon sequence gap this large is treated as a neighbor reboot.
    reboot_gap: int = 32
    # ---- design-space axes (Figure 6) ----
    use_ack_stream: bool = True
    bidirectional_beacons: bool = False
    #: Standard Woo et al. replacement: a newcomer displaces the worst
    #: unpinned *mature* entry whose ETX exceeds ``evict_etx_threshold``.
    use_standard_replacement: bool = True
    #: The 4B supplement (Section 3.3): when the standard policy finds no
    #: victim, a routing packet with the white bit set triggers a compare-bit
    #: query; a set compare bit flushes a random unpinned entry.
    use_white_compare: bool = True
    #: Whether white-compare insertion requires the white bit (ablation).
    require_white_bit: bool = True
    #: Send beacon footers advertising inbound PRRs (bidirectional baselines).
    send_footers: bool = False
    #: Standard replacement: a newcomer displaces the worst unpinned mature
    #: entry only if that entry's ETX exceeds this.  Must sit below the
    #: unknown-reverse penalty (1 / default_prr_out) so that entries whose
    #: reverse direction is never advertised keep churning until reciprocated
    #: pairs lock in.
    evict_etx_threshold: float = 3.0
    #: Standard replacement, part two (Woo et al. aging): an unpinned entry
    #: still immature after this many expected beacons is evictable — its
    #: neighbor is either gone or will never reciprocate, and holding the
    #: slot would deadlock the reciprocity search.
    immature_evict_expected: int = 6
    #: Ablation: honor the pin bit during compare-driven eviction.
    honor_pin_bit: bool = True
    #: Victim choice for compare-driven eviction: ``"random"`` (the paper's
    #: policy) or ``"worst"`` (ablation: evict the highest-ETX entry).
    compare_evict: str = "random"
    #: Bidirectional baselines: default for the advertised reverse PRR before
    #: any footer is heard.  A neighbor only advertises us if *we* occupy a
    #: slot in its table, so with a 10-entry table at most ~10 children get
    #: real reverse estimates — everyone else sees this pessimistic default
    #: and routes around the link.  This is how a small table caps node
    #: in-degree and deepens the tree (paper Figure 2(a)).  The default
    #: ``None`` makes such links completely unusable until advertised — the
    #: stale-immature aging above keeps the table churning so reciprocated
    #: pairs are eventually found.
    default_prr_out: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ku <= 0 or self.kb <= 0:
            raise ValueError("window sizes must be positive")
        if self.compare_evict not in ("random", "worst"):
            raise ValueError(f"unknown compare_evict policy: {self.compare_evict}")


@dataclass
class EstimatorStats:
    """Observability counters for experiments and tests.

    These are the four-bit events: white-bit gated insertion attempts,
    compare-bit queries and their outcomes, pin-protected evictions, and
    the two ETX sample streams (ack bit / beacons).
    """

    beacons_sent: int = 0
    beacons_received: int = 0
    #: Beacons re-received with an already-seen ``le_seq`` (dropped from the
    #: PRR window rather than counted as extra receptions).
    duplicate_beacons: int = 0
    inserts_free: int = 0
    inserts_compare: int = 0
    inserts_evict_worst: int = 0
    compare_queries: int = 0
    rejected_no_white: int = 0
    rejected_no_compare: int = 0
    rejected_all_pinned: int = 0
    unicast_samples: int = 0
    beacon_samples: int = 0
    #: Sequence gaps ≥ ``reboot_gap`` treated as a neighbor reboot (window
    #: *and* PRR history reset — stale pre-reboot PRR must not leak in).
    reboot_resets: int = 0

    #: Metric name prefix (``layer.component``) in the obs registry.
    METRICS_PREFIX = "est.estimator"

    def register_into(self, registry: "MetricsRegistry", **labels: str) -> None:
        """Register every counter as ``est.estimator.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class HybridLinkEstimator(LinkEstimator):
    """Layer 2.5: wraps network frames, owns the table, computes hybrid ETX."""

    def __init__(
        self,
        mac: Mac,
        config: EstimatorConfig,
        rng: Random,
        compare_provider: Optional[CompareBitProvider] = None,
    ) -> None:
        self.mac = mac
        self.node_id = mac.node_id
        self.config = config
        self.rng = rng
        self.compare_provider = compare_provider
        self.client: Optional[EstimatorClient] = None
        self.table = NeighborTable(config.table_size)
        self.stats = EstimatorStats()
        self._seq = 0
        self._footer_rr = 0
        mac.on_receive = self._mac_receive
        mac.on_send_done = self._mac_send_done

    # ------------------------------------------------------------------
    # LinkEstimator interface
    # ------------------------------------------------------------------
    def link_quality(self, neighbor: int) -> float:
        entry = self.table._entries.get(neighbor)
        if entry is None:
            return _INF
        ewma = entry.etx_ewma
        if ewma is None or not ewma._initialized:
            return _INF
        return ewma._value

    def neighbors(self) -> List[int]:
        return self.table.addresses()

    def neighbor_qualities(self) -> List[tuple]:
        """Single-pass ``(address, ETX)`` view (hot: every parent update)."""
        out = []
        for addr, entry in self.table._entries.items():
            ewma = entry.etx_ewma
            if ewma is None or not ewma._initialized:
                out.append((addr, _INF))
            else:
                out.append((addr, ewma._value))
        return out

    def table_snapshot(self) -> List[Dict[str, object]]:
        """Debug/inspection view of the table (sorted by address).

        Each row carries the entry's address, pin bit, maturity, current
        ETX, measured inbound PRR, advertised reverse PRR, and window
        progress — the state a TinyOS developer would dump over serial.
        """
        rows: List[Dict[str, object]] = []
        for entry in sorted(self.table, key=lambda e: e.addr):
            rows.append(
                {
                    "addr": entry.addr,
                    "pinned": entry.pinned,
                    "mature": entry.mature,
                    "etx": entry.etx,
                    "prr_in": (
                        entry.prr_ewma.value
                        if entry.prr_ewma is not None and entry.prr_ewma.initialized
                        else None
                    ),
                    "prr_out": entry.prr_out,
                    "uni_window": (entry.uni_acked, entry.uni_total),
                    "beacon_window": (entry.beacon_received, entry.beacon_missed),
                }
            )
        return rows

    def pin(self, neighbor: int) -> bool:
        return self.table.pin(neighbor)

    def unpin(self, neighbor: int) -> bool:
        return self.table.unpin(neighbor)

    def clear_pins(self) -> None:
        self.table.clear_pins()

    def reset_state(self) -> None:
        """Node reboot: lose all RAM state (table, sequence, footer rotation).

        Stats survive — they count events across the node's lifetime, the
        way a testbed's serial log would.
        """
        self.table.clear()
        self._seq = 0
        self._footer_rr = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def send(self, frame: NetworkFrame) -> bool:
        if self.mac.busy:
            return False
        footer: List[FooterEntry] = []
        if frame.is_broadcast:
            if self.config.send_footers:
                footer = self._next_footer()
            seq = self._seq
            self._seq = (self._seq + 1) % 256
        else:
            seq = self._seq
        wrapped = le_wrap(frame, seq, footer)
        accepted = self.mac.send(wrapped)
        if accepted and frame.is_broadcast:
            self.stats.beacons_sent += 1
        return accepted

    def _next_footer(self) -> List[FooterEntry]:
        """Rotating window of (neighbor, inbound PRR) advertisements."""
        entries = [e for e in self.table if e.prr_ewma is not None and e.prr_ewma.initialized]
        if not entries:
            return []
        entries.sort(key=lambda e: e.addr)
        count = min(LinkEstimatorFrame.MAX_FOOTER_ENTRIES, len(entries))
        start = self._footer_rr % len(entries)
        self._footer_rr += count
        picked = [entries[(start + i) % len(entries)] for i in range(count)]
        return [(e.addr, e.prr_ewma.value) for e in picked]

    def _mac_send_done(self, wrapped: Frame, result: TxResult) -> None:
        payload = wrapped.payload if isinstance(wrapped, LinkEstimatorFrame) else wrapped
        if (
            self.config.use_ack_stream
            and result.sent
            and not wrapped.is_broadcast
        ):
            self._update_unicast(result.dest, result.ack_bit)
        if self.client is not None:
            self.client.on_send_done(payload, result.sent, result.ack_bit)

    def _mac_receive(self, frame: Frame, info: RxInfo) -> None:
        if not isinstance(frame, LinkEstimatorFrame):
            return  # foreign stack
        if frame.is_broadcast:
            self.stats.beacons_received += 1
            self._process_beacon(frame, info)
        if self.client is not None and frame.payload is not None:
            self.client.on_receive(frame.payload, info, frame.src)

    # ------------------------------------------------------------------
    # Ack-bit (unicast) stream
    # ------------------------------------------------------------------
    def _update_unicast(self, dest: int, acked: bool) -> None:
        entry = self.table.find(dest)
        if entry is None:
            return
        entry.uni_total += 1
        if acked:
            entry.uni_acked += 1
            entry.fails_since_last_ack = 0
        else:
            entry.fails_since_last_ack += 1
        if entry.uni_total >= self.config.ku:
            if entry.uni_acked > 0:
                sample = entry.uni_total / entry.uni_acked
            else:
                sample = float(entry.fails_since_last_ack)
            self._fold_etx_sample(entry, sample)
            self.stats.unicast_samples += 1
            entry.uni_total = 0
            entry.uni_acked = 0

    # ------------------------------------------------------------------
    # Beacon (broadcast) stream
    # ------------------------------------------------------------------
    def _process_beacon(self, frame: LinkEstimatorFrame, info: RxInfo) -> None:
        entry = self.table.find(frame.src)
        if entry is None:
            entry = self._try_insert(frame, info)
            if entry is None:
                return
        self._update_beacon_window(entry, frame.le_seq)
        self._process_footer(entry, frame)

    def _process_footer(self, entry: NeighborEntry, frame: LinkEstimatorFrame) -> None:
        for addr, quality in frame.footer:
            if addr != self.node_id:
                continue
            entry.prr_out = quality
            # A fresh reverse-direction report is new information for the
            # bidirectional estimate; fold it in if the forward side exists.
            if (
                self.config.bidirectional_beacons
                and entry.prr_ewma is not None
                and entry.prr_ewma.initialized
            ):
                sample = self._beacon_etx(entry)
                if sample is not None:
                    self._fold_etx_sample(entry, sample)

    def _update_beacon_window(self, entry: NeighborEntry, seq: int) -> None:
        if entry.last_seq is None:
            missed = 0
        else:
            gap = (seq - entry.last_seq) % 256
            if gap == 0:
                # Exact duplicate (same le_seq re-received): not a new
                # expected beacon, so counting it would inflate the PRR
                # window with receptions the sender never scheduled.
                self.stats.duplicate_beacons += 1
                return
            missed = gap - 1
        if missed >= self.config.reboot_gap:
            entry.beacon_received = 0
            entry.beacon_missed = 0
            # The neighbor rebooted (or was unreachable for an epoch): its
            # pre-gap reception history describes a link state that no
            # longer exists.  Keeping the old PRR EWMA would let the first
            # post-reboot window fold into stale history and over-report
            # PRR; the estimate must re-bootstrap from fresh windows.  The
            # reverse-direction advertisement is equally stale — the
            # rebooted neighbor lost the table slot it measured us with.
            entry.prr_ewma = None
            entry.prr_out = None
            self.stats.reboot_resets += 1
            missed = 0
        entry.last_seq = seq
        entry.beacon_received += 1
        entry.beacon_missed += missed
        entry.expected_since_insert += 1 + missed
        expected = entry.beacon_received + entry.beacon_missed
        if expected >= self.config.kb:
            prr = entry.beacon_received / expected
            if entry.prr_ewma is None:
                entry.prr_ewma = Ewma(self.config.alpha_beacon)
            entry.prr_ewma.update(prr)
            sample = self._beacon_etx(entry)
            if sample is not None:
                self._fold_etx_sample(entry, sample)
                self.stats.beacon_samples += 1
            entry.beacon_received = 0
            entry.beacon_missed = 0

    def _beacon_etx(self, entry: NeighborEntry) -> Optional[float]:
        """ETX sample from the beacon stream, or ``None`` when a bidirectional
        estimate is impossible (reverse PRR never advertised)."""
        assert entry.prr_ewma is not None
        prr = entry.prr_ewma.value
        if self.config.bidirectional_beacons:
            prr_out = entry.prr_out
            if prr_out is None:
                prr_out = self.config.default_prr_out
            if prr_out is None:
                return None
            prr = prr * prr_out
        if prr <= 0.0:
            return self.config.max_etx_sample
        return 1.0 / prr

    def _fold_etx_sample(self, entry: NeighborEntry, sample: float) -> None:
        sample = min(sample, self.config.max_etx_sample)
        if entry.etx_ewma is None:
            entry.etx_ewma = Ewma(self.config.alpha_outer)
        entry.etx_ewma.update(sample)

    # ------------------------------------------------------------------
    # Table insertion (white + compare bits)
    # ------------------------------------------------------------------
    def _try_insert(self, frame: LinkEstimatorFrame, info: RxInfo) -> Optional[NeighborEntry]:
        if not self.table.full:
            self.stats.inserts_free += 1
            return self.table.insert(frame.src)
        if self.config.use_standard_replacement:
            entry = self._insert_evict_worst(frame)
            if entry is not None:
                return entry
        if self.config.use_white_compare:
            return self._insert_white_compare(frame, info)
        return None

    def _insert_evict_worst(self, frame: LinkEstimatorFrame) -> Optional[NeighborEntry]:
        """Standard Woo et al. policy: displace a *measurably* bad entry, or
        failing that, a stale immature one.

        Freshly inserted entries are protected until they either mature or
        age out (``immature_evict_expected``); evicting them on every
        newcomer would thrash the table before anything matures.
        """
        # One pass over the table computing both victim candidates (this
        # runs for every beacon from an unknown neighbor once the table is
        # full).  ``>`` keeps the first of equal keys, matching
        # ``max(..., key=...)``.
        threshold = self.config.evict_etx_threshold
        stale_expected = self.config.immature_evict_expected
        worst_bad = None
        worst_bad_key = None
        worst_stale = None
        worst_stale_key = None
        for e in self.table:
            if e.pinned:
                continue
            ewma = e.etx_ewma
            if ewma is not None and ewma._initialized:
                etx = ewma._value
                if etx > threshold:
                    key = (etx, e.addr)
                    if worst_bad_key is None or key > worst_bad_key:
                        worst_bad, worst_bad_key = e, key
            elif e.expected_since_insert >= stale_expected:
                key = (e.expected_since_insert, e.addr)
                if worst_stale_key is None or key > worst_stale_key:
                    worst_stale, worst_stale_key = e, key
        victim = worst_bad if worst_bad is not None else worst_stale
        if victim is None:
            return None
        self.table.remove(victim.addr)
        self.table.evictions += 1
        self.stats.inserts_evict_worst += 1
        return self.table.insert(frame.src)

    def _insert_white_compare(self, frame: LinkEstimatorFrame, info: RxInfo) -> Optional[NeighborEntry]:
        """4B policy (Section 3.3): white bit gates a compare-bit query; a set
        compare bit flushes a random unpinned entry."""
        payload = frame.payload
        if payload is None or not payload.carries_route_info:
            return None
        if self.config.require_white_bit and not info.white_bit:
            self.stats.rejected_no_white += 1
            return None
        if self.compare_provider is None:
            return None
        self.stats.compare_queries += 1
        if not self.compare_provider.compare_bit(payload, info):
            self.stats.rejected_no_compare += 1
            return None
        # Entries still inside their evaluation window are off limits, as in
        # the standard policy: flushing them on every qualifying beacon would
        # thrash the table faster than anything can mature.
        eligible = lambda e: e.mature or (
            e.expected_since_insert >= self.config.immature_evict_expected
        )
        if self.config.compare_evict == "worst":
            pool = [
                e
                for e in self.table
                if eligible(e) and (not e.pinned or not self.config.honor_pin_bit)
            ]
            victim = max(pool, key=lambda e: (e.etx, e.addr)).addr if pool else None
            if victim is not None:
                self.table.remove(victim)
                self.table.evictions += 1
        elif self.config.honor_pin_bit:
            victim = self.table.evict_random_unpinned(self.rng, eligible)
        else:
            pool = [e.addr for e in self.table if eligible(e)]
            victim = self.rng.choice(pool) if pool else None
            if victim is not None:
                self.table.remove(victim)
                self.table.evictions += 1
        if victim is None:
            self.stats.rejected_all_pinned += 1
            return None
        self.stats.inserts_compare += 1
        return self.table.insert(frame.src)
