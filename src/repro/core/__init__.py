"""The paper's core contribution: four-bit interfaces + hybrid estimator."""

from repro.core.estimator import (
    EstimatorConfig,
    EstimatorStats,
    HybridLinkEstimator,
)
from repro.core.ewma import Ewma
from repro.core.interfaces import CompareBitProvider, EstimatorClient, LinkEstimator
from repro.core.neighbor_table import NeighborEntry, NeighborTable

__all__ = [
    "CompareBitProvider",
    "EstimatorClient",
    "EstimatorConfig",
    "EstimatorStats",
    "Ewma",
    "HybridLinkEstimator",
    "LinkEstimator",
    "NeighborEntry",
    "NeighborTable",
]
