"""Exponentially weighted moving averages used by the hybrid estimator."""

from __future__ import annotations


class Ewma:
    """EWMA with ``alpha`` = weight of history.

    ``update(x)`` sets ``value ← alpha·value + (1 − alpha)·x``.  The first
    sample seeds the average directly (no zero bias).
    """

    __slots__ = ("alpha", "_value", "_initialized")

    def __init__(self, alpha: float) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1): {alpha}")
        self.alpha = alpha
        self._value = 0.0
        self._initialized = False

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def value(self) -> float:
        if not self._initialized:
            raise ValueError("EWMA has no samples yet")
        return self._value

    def update(self, sample: float) -> float:
        """Fold in ``sample``; returns the new value."""
        if self._initialized:
            self._value = self.alpha * self._value + (1.0 - self.alpha) * sample
        else:
            self._value = sample
            self._initialized = True
        return self._value

    def reset(self) -> None:
        self._value = 0.0
        self._initialized = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = f"{self._value:.3f}" if self._initialized else "empty"
        return f"Ewma(alpha={self.alpha}, {inner})"
