"""Uniform-grid spatial index over node positions.

The exact medium enumerates every attached receiver for every sender when
building candidate lists — O(N²) pairs, which is what blocks city-scale
(1k–10k node) topologies.  The fast backend instead buckets positions into
a uniform grid whose cell size equals the query radius, so a radius query
touches at most the 3×3 block of cells around the origin: O(N·k) total
candidate construction for k nodes within link-budget range.

The index is incrementally maintainable: :meth:`add`, :meth:`remove` and
:meth:`move` re-bucket a single node in O(1), so mobility (waypoint steps)
and membership churn (crash/reboot) never force a rebuild.  A moved grid
answers every query identically to a freshly built one over the same
positions.

The index is deliberately dumb and deterministic: query results are sorted
by node id, ties cannot occur, and nothing here draws randomness, so two
builds over the same positions are identical (the determinism contract in
DESIGN.md §2 extends to candidate enumeration order).  Bucket *contents*
are insertion-ordered, but every query sorts its output, so incremental
mutation history cannot leak into results.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Tuple

Position = Tuple[float, float]


class SpatialGrid:
    """Fixed-radius neighbor queries over mutable 2-D positions."""

    def __init__(self, positions: Mapping[int, Position], radius_m: float) -> None:
        if radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {radius_m}")
        self.radius_m = radius_m
        self._inv = 1.0 / radius_m
        self._positions: Dict[int, Position] = dict(positions)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        inv = self._inv
        for nid, (x, y) in self._positions.items():
            key = (math.floor(x * inv), math.floor(y * inv))
            self._cells.setdefault(key, []).append(nid)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, nid: int) -> bool:
        return nid in self._positions

    def position(self, nid: int) -> Position:
        return self._positions[nid]

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def _cell_key(self, x: float, y: float) -> Tuple[int, int]:
        return (math.floor(x * self._inv), math.floor(y * self._inv))

    def add(self, nid: int, pos: Position) -> None:
        """Insert a node in O(1).  Raises on a duplicate id."""
        if nid in self._positions:
            raise ValueError(f"node {nid} already indexed")
        self._positions[nid] = pos
        self._cells.setdefault(self._cell_key(pos[0], pos[1]), []).append(nid)

    def remove(self, nid: int) -> None:
        """Remove a node in O(bucket).  Raises on an unknown id."""
        x, y = self._positions.pop(nid)
        key = self._cell_key(x, y)
        bucket = self._cells[key]
        bucket.remove(nid)
        if not bucket:
            del self._cells[key]

    def move(self, nid: int, x: float, y: float) -> None:
        """Update a node's position, re-bucketing only on a cell change."""
        old_x, old_y = self._positions[nid]
        self._positions[nid] = (x, y)
        old_key = self._cell_key(old_x, old_y)
        new_key = self._cell_key(x, y)
        if new_key == old_key:
            return
        bucket = self._cells[old_key]
        bucket.remove(nid)
        if not bucket:
            del self._cells[old_key]
        self._cells.setdefault(new_key, []).append(nid)

    def neighbors(self, nid: int, exclude_self: bool = True) -> List[int]:
        """Node ids within ``radius_m`` of ``nid``, sorted ascending."""
        x, y = self._positions[nid]
        return self.neighbors_of_point(x, y, exclude=nid if exclude_self else None)

    def neighbors_of_point(self, x: float, y: float, exclude: object = None) -> List[int]:
        """Node ids within ``radius_m`` of ``(x, y)``, sorted ascending."""
        inv = 1.0 / self.radius_m
        cx, cy = math.floor(x * inv), math.floor(y * inv)
        r2 = self.radius_m * self.radius_m
        out: List[int] = []
        cells = self._cells
        positions = self._positions
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                bucket = cells.get((gx, gy))
                if bucket is None:
                    continue
                for other in bucket:
                    if other == exclude:
                        continue
                    ox, oy = positions[other]
                    dx, dy = ox - x, oy - y
                    if dx * dx + dy * dy <= r2:
                        out.append(other)
        out.sort()
        return out

    def same_cell(self, nid: int, x: float, y: float) -> bool:
        """True when moving ``nid`` to ``(x, y)`` keeps it in its current cell."""
        ox, oy = self._positions[nid]
        return self._cell_key(ox, oy) == self._cell_key(x, y)

    def neighbors_two_points(
        self, x0: float, y0: float, x1: float, y1: float, exclude: object = None
    ) -> Tuple[List[int], List[int]]:
        """Neighbor lists of two same-cell points in one bucket scan.

        A mobility step is far smaller than a cell, so the before/after
        positions of a move usually share a cell — and then the same 3×3
        block covers the query radius of both.  One pass over the buckets
        with two distance filters costs roughly half of two separate
        ``neighbors_of_point`` calls while returning identical lists.
        """
        cx, cy = self._cell_key(x0, y0)
        if (cx, cy) != self._cell_key(x1, y1):
            raise ValueError("neighbors_two_points requires points in the same cell")
        r2 = self.radius_m * self.radius_m
        out0: List[int] = []
        out1: List[int] = []
        cells = self._cells
        positions = self._positions
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                bucket = cells.get((gx, gy))
                if bucket is None:
                    continue
                for other in bucket:
                    if other == exclude:
                        continue
                    ox, oy = positions[other]
                    dx, dy = ox - x0, oy - y0
                    if dx * dx + dy * dy <= r2:
                        out0.append(other)
                    dx, dy = ox - x1, oy - y1
                    if dx * dx + dy * dy <= r2:
                        out1.append(other)
        out0.sort()
        out1.sort()
        return out0, out1

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All unordered in-range pairs ``(a, b)`` with ``a < b`` (sorted)."""
        for nid in sorted(self._positions):
            for other in self.neighbors(nid):
                if other > nid:
                    yield (nid, other)


__all__ = ["SpatialGrid"]
