"""Uniform-grid spatial index over node positions.

The exact medium enumerates every attached receiver for every sender when
building candidate lists — O(N²) pairs, which is what blocks city-scale
(1k–10k node) topologies.  The fast backend instead buckets positions into
a uniform grid whose cell size equals the query radius, so a radius query
touches at most the 3×3 block of cells around the origin: O(N·k) total
candidate construction for k nodes within link-budget range.

The index is deliberately dumb and deterministic: query results are sorted
by node id, ties cannot occur, and nothing here draws randomness, so two
builds over the same positions are identical (the determinism contract in
DESIGN.md §2 extends to candidate enumeration order).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Tuple

Position = Tuple[float, float]


class SpatialGrid:
    """Fixed-radius neighbor queries over static 2-D positions."""

    def __init__(self, positions: Mapping[int, Position], radius_m: float) -> None:
        if radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {radius_m}")
        self.radius_m = radius_m
        self._positions: Dict[int, Position] = dict(positions)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        inv = 1.0 / radius_m
        for nid, (x, y) in self._positions.items():
            key = (math.floor(x * inv), math.floor(y * inv))
            self._cells.setdefault(key, []).append(nid)

    def __len__(self) -> int:
        return len(self._positions)

    def neighbors(self, nid: int, exclude_self: bool = True) -> List[int]:
        """Node ids within ``radius_m`` of ``nid``, sorted ascending."""
        x, y = self._positions[nid]
        return self.neighbors_of_point(x, y, exclude=nid if exclude_self else None)

    def neighbors_of_point(self, x: float, y: float, exclude: object = None) -> List[int]:
        """Node ids within ``radius_m`` of ``(x, y)``, sorted ascending."""
        inv = 1.0 / self.radius_m
        cx, cy = math.floor(x * inv), math.floor(y * inv)
        r2 = self.radius_m * self.radius_m
        out: List[int] = []
        cells = self._cells
        positions = self._positions
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                bucket = cells.get((gx, gy))
                if bucket is None:
                    continue
                for other in bucket:
                    if other == exclude:
                        continue
                    ox, oy = positions[other]
                    dx, dy = ox - x, oy - y
                    if dx * dx + dy * dy <= r2:
                        out.append(other)
        out.sort()
        return out

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All unordered in-range pairs ``(a, b)`` with ``a < b`` (sorted)."""
        for nid in sorted(self._positions):
            for other in self.neighbors(nid):
                if other > nid:
                    yield (nid, other)


__all__ = ["SpatialGrid"]
