"""Deterministic random-waypoint mobility driver.

City-scale scenarios (ROADMAP: 1k–10k nodes) need the network to *move*:
nodes walk or drive between waypoints while the collection protocol keeps
routing.  :class:`WaypointMobility` implements the standard random-waypoint
model on top of the medium's incremental position API (DESIGN.md §11):

* Each mobile node repeatedly draws a waypoint uniformly inside the
  deployment's bounding box and a speed uniform in
  ``[speed_min_mps, speed_max_mps]``, walks there in straight-line steps,
  pauses, and draws again.
* Positions advance on a single **global tick** every
  ``update_period_s`` of simulated time — one engine event per period
  regardless of node count, so 10k mobile nodes cost 10k position patches
  per tick, not 10k timer events.  Every patch goes through
  ``medium.update_position()``: O(k) on the fast backend, a lazy rebuild
  on the exact one (same trajectories either way).
* Every draw comes from ``("mobility", ...)`` named RNG streams and
  mobile nodes are visited in sorted-id order, so trajectories are a pure
  function of the master seed and never perturb any other subsystem's
  randomness.  Mobility-off runs construct none of this machinery and
  stay bit-identical.

Sinks (roots) never move: the paper's collection experiments anchor the
tree at fixed basestations, and a walking sink would conflate routing
dynamics with workload dynamics.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.sim.engine import Engine
from repro.sim.rng import RngManager

Position = Tuple[float, float]


@dataclass(frozen=True)
class MobilityConfig:
    """Random-waypoint parameters for one run.

    Frozen and built from plain floats so it hashes into the runner's
    config digest (`repro.runner.hashing.canonical_bytes`) and round-trips
    through JSON scenario files.
    """

    #: Uniform speed range each leg draws from.
    speed_min_mps: float = 0.5
    speed_max_mps: float = 1.5
    #: Mean pause at a waypoint (actual pause uniform in [0, 2·mean]).
    pause_mean_s: float = 30.0
    #: Simulated seconds between global position ticks.
    update_period_s: float = 1.0
    #: Fraction of non-root nodes that move (roster drawn deterministically
    #: from the ("mobility", "roster") stream).
    fraction_mobile: float = 1.0

    def __post_init__(self) -> None:
        if self.speed_min_mps <= 0 or self.speed_max_mps < self.speed_min_mps:
            raise ValueError(
                f"speed range must satisfy 0 < min <= max: "
                f"[{self.speed_min_mps}, {self.speed_max_mps}]"
            )
        if self.pause_mean_s < 0:
            raise ValueError(f"pause_mean_s must be >= 0: {self.pause_mean_s}")
        if self.update_period_s <= 0:
            raise ValueError(f"update_period_s must be positive: {self.update_period_s}")
        if not 0.0 < self.fraction_mobile <= 1.0:
            raise ValueError(
                f"fraction_mobile must be in (0, 1]: {self.fraction_mobile}"
            )

    # ---- JSON round-trip (scenario files, runner --mobility FILE) ------
    def to_json_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, float]) -> "MobilityConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = [k for k in data if k not in known]
        if unknown:
            raise ValueError(f"unknown mobility config keys: {unknown}")
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "MobilityConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))


#: Named presets the CLI's ``--mobility`` flag accepts.
MOBILITY_PRESETS: Dict[str, MobilityConfig] = {
    #: Walking-speed churn: slow topology drift, links age over minutes.
    "pedestrian": MobilityConfig(
        speed_min_mps=0.5, speed_max_mps=1.5, pause_mean_s=30.0
    ),
    #: Vehicle-speed churn: neighborhoods turn over in seconds.
    "vehicular": MobilityConfig(
        speed_min_mps=5.0, speed_max_mps=15.0, pause_mean_s=5.0
    ),
}


def resolve_mobility(value: Union[str, MobilityConfig]) -> MobilityConfig:
    """Resolve a ``SimConfig.mobility`` value: preset name, JSON path or
    an already-built :class:`MobilityConfig`."""
    if isinstance(value, MobilityConfig):
        return value
    if value in MOBILITY_PRESETS:
        return MOBILITY_PRESETS[value]
    path = Path(value)
    if path.exists():
        return MobilityConfig.from_json_file(path)
    raise ValueError(
        f"unknown mobility preset {value!r} (and no such file); "
        f"presets: {sorted(MOBILITY_PRESETS)}"
    )


class _NodeMotion:
    """Per-node leg state: where it is, where it walks, how fast."""

    __slots__ = ("x", "y", "target_x", "target_y", "speed_mps", "pause_until")

    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y
        self.target_x = x
        self.target_y = y
        self.speed_mps = 0.0
        #: Simulated time the current pause ends; the node draws its first
        #: real waypoint at its first tick (pause_until starts at 0).
        self.pause_until = 0.0


class WaypointMobility:
    """Drives random-waypoint motion through ``medium.update_position``."""

    def __init__(
        self,
        engine: Engine,
        medium: object,
        rng: RngManager,
        node_ids: Sequence[int],
        roots: Sequence[int],
        config: MobilityConfig,
        duration_s: float,
    ) -> None:
        self.engine = engine
        self.medium = medium
        self.config = config
        self.duration_s = duration_s
        # Plain counters (surfaced on CollectionResult via the network).
        self.position_updates = 0
        self.waypoints_drawn = 0
        positions = medium.channel.positions  # type: ignore[attr-defined]
        root_set = dict.fromkeys(roots)
        candidates = [nid for nid in sorted(node_ids) if nid not in root_set]
        if config.fraction_mobile < 1.0:
            roster_stream = rng.stream("mobility", "roster")
            candidates = [
                nid
                for nid in candidates
                if roster_stream.random() < config.fraction_mobile
            ]
        #: Mobile node ids in sorted order — the per-tick visit order, so
        #: trajectories are independent of dict insertion history.
        self.mobile_ids: List[int] = candidates
        # Deployment bounding box: waypoints stay inside the initial
        # footprint (interferers and sinks excluded from the box on
        # purpose — nodes roam where nodes were placed).
        xs = [positions[nid][0] for nid in node_ids]
        ys = [positions[nid][1] for nid in node_ids]
        self._min_x, self._max_x = (min(xs), max(xs)) if xs else (0.0, 0.0)
        self._min_y, self._max_y = (min(ys), max(ys)) if ys else (0.0, 0.0)
        self._motion: Dict[int, _NodeMotion] = {
            nid: _NodeMotion(*positions[nid]) for nid in self.mobile_ids
        }
        self._streams = {
            nid: rng.stream("mobility", nid) for nid in self.mobile_ids
        }
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first global tick (idempotent)."""
        if self._started or not self.mobile_ids:
            return
        self._started = True
        self.engine.schedule(self.config.update_period_s, self._tick)

    def _tick(self) -> None:
        now = self.engine.now
        dt = self.config.update_period_s
        config = self.config
        update_position = self.medium.update_position  # type: ignore[attr-defined]
        for nid in self.mobile_ids:
            motion = self._motion[nid]
            if now < motion.pause_until:
                continue
            if motion.speed_mps <= 0.0:
                # Pause over: draw the next leg and start walking on this
                # same tick (waiting a tick would silently halve motion in
                # short windows).
                self._draw_leg(nid, motion, now)
            dx = motion.target_x - motion.x
            dy = motion.target_y - motion.y
            dist = math.hypot(dx, dy)
            step = motion.speed_mps * dt
            if dist <= step:
                # Arrived: land exactly on the waypoint, then pause.
                motion.x = motion.target_x
                motion.y = motion.target_y
                motion.speed_mps = 0.0
                pause = self._streams[nid].uniform(0.0, 2.0 * config.pause_mean_s)
                motion.pause_until = now + pause
            else:
                motion.x += dx / dist * step
                motion.y += dy / dist * step
            update_position(nid, motion.x, motion.y)
            self.position_updates += 1
        if now + dt <= self.duration_s:
            self.engine.schedule(dt, self._tick)

    def _draw_leg(self, nid: int, motion: _NodeMotion, now: float) -> None:
        """Draw the next waypoint + speed from the node's own stream."""
        stream = self._streams[nid]
        motion.target_x = stream.uniform(self._min_x, self._max_x)
        motion.target_y = stream.uniform(self._min_y, self._max_y)
        motion.speed_mps = stream.uniform(
            self.config.speed_min_mps, self.config.speed_max_mps
        )
        self.waypoints_drawn += 1


__all__ = [
    "MobilityConfig",
    "MOBILITY_PRESETS",
    "WaypointMobility",
    "resolve_mobility",
]
