"""End-to-end collection simulation builder.

``CollectionNetwork`` assembles a full testbed run: channel + medium from a
topology (optionally a :class:`~repro.topology.testbeds.TestbedProfile`),
one protocol stack per node, external interferers, the collection workload
and the sink recorder.  ``run()`` executes it and returns a
:class:`~repro.metrics.collection_stats.CollectionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.core.estimator import EstimatorConfig, HybridLinkEstimator
from repro.estimators.presets import PRESETS
from repro.link.mac import Mac
from repro.metrics.collection_stats import CollectionResult, compute_result
from repro.net.ctp.protocol import CtpConfig, CtpProtocol
from repro.net.multihoplqi import MhlqiConfig, MultiHopLqi
from repro.phy.channel import ChannelModel

from repro.phy.noise import MarkovInterferer, INTERFERER_ID_BASE, apply_hardware_variation
from repro.phy.radio import CC2420, Radio, RadioParams
from repro.phy.white_bit import LqiWhiteBit, NeverWhiteBit, SnrWhiteBit
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.node import Node
from repro.sim.rng import RngManager
from repro.topology.generators import Topology
from repro.topology.testbeds import TestbedProfile
from repro.workloads.collection import CollectionSource, SinkRecorder, WorkloadConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.invariants import InvariantChecker
    from repro.faults.schedule import FaultSchedule
    from repro.obs.stream import TelemetrySampler
    from repro.sim.mobility import MobilityConfig, WaypointMobility

#: Protocols the harness knows how to build.  The CTP variants and "geo"
#: share the estimator engine (with different presets); "mhlqi" is its own
#: stack with no estimator.
PROTOCOLS = ("ctp", "ctp-unconstrained", "ctp-unidir", "ctp-white", "4b", "mhlqi", "geo")

#: Medium backends ``SimConfig.medium`` selects between.
MEDIUM_BACKENDS = ("exact", "fast")


@dataclass(frozen=True)
class SimConfig:
    """One collection run."""

    protocol: str = "4b"
    tx_power_dbm: float = 0.0
    seed: int = 1
    duration_s: float = 600.0
    #: Depth sampling starts after the warmup (trees need time to form).
    warmup_s: float = 120.0
    #: Sources stop this long before the end so in-flight packets drain.
    drain_s: float = 30.0
    tree_sample_period_s: float = 30.0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Additional basestations beyond the topology's sink.  Collection is
    #: anycast: a packet counts as delivered at whichever root hears it
    #: first (the paper's traffic model, Section 2).
    extra_sinks: Tuple[int, ...] = ()
    #: Override the preset estimator configuration (ablations).
    estimator_config: Optional[EstimatorConfig] = None
    #: ``None`` = timing constants auto-scaled to the radio's airtime.
    ctp_config: Optional[CtpConfig] = None
    mhlqi_config: Optional[MhlqiConfig] = None
    with_interferers: bool = True
    #: Radio hardware class for every node (e.g. ``repro.phy.radio.CC1000``).
    radio_params: RadioParams = CC2420
    #: White-bit derivation: "lqi" (CC2420 chip correlation), "snr"
    #: (signal/noise threshold), or "never" (hardware provides nothing —
    #: the paper's worst case, appropriate for CC1000).
    white_bit: str = "lqi"
    #: Tuning knob for the white-bit derivation: the LQI floor for
    #: ``white_bit="lqi"`` (chip default 105) or the dB threshold for
    #: ``white_bit="snr"`` (default derived from the SNR/BER curve).
    #: ``None`` keeps each policy's built-in default; meaningless — and
    #: rejected — for ``white_bit="never"``.
    white_bit_threshold: Optional[float] = None
    #: Profile the event loop (wall time per event kind, events/sec, queue
    #: depth); the profile surfaces on ``CollectionResult.profile``.
    profile_events: bool = False
    #: Attach a cross-layer metrics snapshot (``repro.obs`` registry, flat
    #: dict) to ``CollectionResult.metrics`` at the end of the run.
    collect_metrics: bool = False
    #: Fault injection: a preset name, a path to a JSON scenario file, or a
    #: :class:`~repro.faults.schedule.FaultSchedule`.  ``None`` = no faults
    #: (and the fault machinery stays entirely out of the hot path).
    faults: Optional[Union[str, "FaultSchedule"]] = None
    #: Run the :class:`~repro.faults.invariants.InvariantChecker` alongside
    #: the simulation (raises ``InvariantViolation`` on a failed property).
    check_invariants: bool = False
    #: Medium backend: "exact" (scalar, bit-reproducible — the golden
    #: contract) or "fast" (:class:`~repro.sim.medium_fast.FastRadioMedium`,
    #: vectorized + spatially culled, distribution-equivalent; DESIGN.md §9).
    medium: str = "exact"
    #: Mobility: a preset name ("pedestrian"/"vehicular"), a path to a
    #: JSON config file, or a :class:`~repro.sim.mobility.MobilityConfig`.
    #: ``None`` = static network (no mobility machinery is constructed,
    #: and runs stay bit-identical to pre-mobility builds).
    mobility: Optional[Union[str, "MobilityConfig"]] = None
    #: Live telemetry (DESIGN.md §10): emit an incremental metrics snapshot
    #: every this many simulated seconds.  ``None`` = off (the streaming
    #: machinery is never constructed, so plain runs pay nothing).
    telemetry_period_s: Optional[float] = None
    #: Stream destination: a JSONL file path, or ``None`` for a bounded
    #: in-memory ring (``network.telemetry.sink.records``).
    telemetry_path: Optional[str] = None
    #: Include per-node label breakdowns in streamed snapshots (bigger
    #: records; the default streams network-level aggregates only).
    telemetry_per_node: bool = False

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}")
        if self.medium not in MEDIUM_BACKENDS:
            raise ValueError(
                f"unknown medium backend {self.medium!r}; choose from {MEDIUM_BACKENDS}"
            )
        if self.duration_s <= self.warmup_s:
            raise ValueError("duration must exceed warmup")
        if self.white_bit not in ("lqi", "snr", "never"):
            raise ValueError(f"unknown white-bit policy {self.white_bit!r}")
        if self.white_bit_threshold is not None:
            if self.white_bit == "never":
                raise ValueError(
                    "white_bit_threshold is meaningless with white_bit='never'"
                )
            if self.white_bit == "lqi" and not (0 <= self.white_bit_threshold <= 127):
                raise ValueError(
                    f"LQI white-bit threshold must be in [0, 127], "
                    f"got {self.white_bit_threshold!r}"
                )
        if self.telemetry_period_s is not None and self.telemetry_period_s <= 0:
            raise ValueError(
                f"telemetry_period_s must be positive: {self.telemetry_period_s!r}"
            )
        if self.telemetry_path is not None and self.telemetry_period_s is None:
            raise ValueError("telemetry_path requires telemetry_period_s")
        if self.faults is not None and not isinstance(self.faults, str):
            from repro.faults.schedule import FaultSchedule

            if not isinstance(self.faults, FaultSchedule):
                raise ValueError(
                    f"faults must be a preset name, JSON path or FaultSchedule: "
                    f"{self.faults!r}"
                )
        if self.mobility is not None and not isinstance(self.mobility, str):
            from repro.sim.mobility import MobilityConfig

            if not isinstance(self.mobility, MobilityConfig):
                raise ValueError(
                    f"mobility must be a preset name, JSON path or MobilityConfig: "
                    f"{self.mobility!r}"
                )


def _white_policy(config: SimConfig):
    """The white-bit policy ``config`` names, honoring the tuning threshold.

    Built lazily per network (not as an eager table) so only the selected
    policy is constructed and ``white_bit_threshold`` — a campaign-tunable
    constant — reaches it.
    """
    threshold = config.white_bit_threshold
    if config.white_bit == "lqi":
        return LqiWhiteBit() if threshold is None else LqiWhiteBit(threshold=int(threshold))
    if config.white_bit == "snr":
        if threshold is None:
            return SnrWhiteBit.from_prr_target()
        return SnrWhiteBit(threshold_db=float(threshold))
    return NeverWhiteBit()


class CollectionNetwork:
    """A fully wired simulated testbed."""

    def __init__(
        self,
        topology: Topology,
        config: SimConfig,
        profile: Optional[TestbedProfile] = None,
        channel_overrides: Optional[dict] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.profile = profile
        self._channel_overrides = channel_overrides or {}
        self.engine = Engine()
        self.rng = RngManager(config.seed)
        self.channel = self._build_channel()
        white_policy = _white_policy(config)
        if config.medium == "fast":
            # Local import: numpy stays off the import path of exact runs.
            from repro.sim.medium_fast import FastRadioMedium

            medium_cls: Any = FastRadioMedium
        else:
            medium_cls = RadioMedium
        self.medium = medium_cls(
            self.engine,
            self.channel,
            self.rng,
            white_bit_policy=white_policy,
        )
        self.sink = SinkRecorder()
        self.nodes: Dict[int, Node] = {}
        self.interferers: List[MarkovInterferer] = []
        self._depth_samples: List[Dict[int, Optional[int]]] = []
        #: Callbacks invoked with the network after the event loop drains,
        #: before the result is computed (tracing uses this for end-of-run
        #: stats records).
        self.on_run_end: List = []
        if config.profile_events:
            self.engine.enable_profiling()
        self._build_nodes()
        self._build_interferers()
        self.fault_injector: Optional["FaultInjector"] = None
        self.invariant_checker: Optional["InvariantChecker"] = None
        if config.faults is not None:
            self._build_fault_injector()
        apply_hardware_variation(
            [n.radio for n in self.nodes.values()],
            self.rng.stream("hardware"),
            tx_power_sigma_db=profile.tx_power_sigma_db if profile else 1.0,
            noise_floor_sigma_db=profile.noise_floor_sigma_db if profile else 1.5,
            nominal_noise_floor_dbm=config.radio_params.noise_floor_dbm,
        )
        self.medium.finalize()
        self._schedule_boot()
        self._schedule_tree_sampling()
        #: Waypoint-mobility driver (``None`` for static runs — built after
        #: boot scheduling so mobility-off runs schedule nothing new and
        #: stay bit-identical).
        self.mobility: Optional["WaypointMobility"] = None
        if config.mobility is not None:
            self._build_mobility()
        if self.fault_injector is not None:
            self.fault_injector.arm()
        if config.check_invariants:
            from repro.faults.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker(self)
            self.invariant_checker.install()
        #: Wall/CPU/RSS deltas for the event loop, filled by :meth:`run`
        #: when telemetry is on (the run-end stream record carries them).
        self.run_resources: Optional[Dict[str, float]] = None
        self.telemetry: Optional["TelemetrySampler"] = None
        if config.telemetry_period_s is not None:
            self._build_telemetry()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_channel(self) -> ChannelModel:
        profile = self.profile
        kwargs = {}
        if profile is not None:
            kwargs = dict(
                pathloss=profile.pathloss,
                shadowing_sigma_db=profile.shadowing_sigma_db,
                temporal_sigma_db=profile.temporal_sigma_db,
                temporal_tau_s=profile.temporal_tau_s,
                bimodal_fraction=profile.bimodal_fraction,
                fade_depth_db=profile.fade_depth_db,
                fade_dwell_s=profile.fade_dwell_s,
                good_dwell_s=profile.good_dwell_s,
            )
        kwargs.update(self._channel_overrides)
        return ChannelModel(self.topology.positions, self.rng.fork("channel"), **kwargs)

    @property
    def roots(self) -> Tuple[int, ...]:
        return (self.topology.sink,) + tuple(self.config.extra_sinks)

    def _build_nodes(self) -> None:
        for nid in self.topology.node_ids():
            is_root = nid in self.roots
            radio = Radio(
                node_id=nid,
                params=self.config.radio_params,
                tx_power_dbm=self.config.tx_power_dbm,
                noise_floor_dbm=self.config.radio_params.noise_floor_dbm,
            )
            mac = Mac(self.engine, self.medium, radio, self.rng.stream("mac", nid))
            protocol, estimator = self._build_stack(mac, nid, is_root)
            source = None
            if not is_root:
                source = CollectionSource(
                    self.engine,
                    nid,
                    protocol.send_from_app,
                    self.rng.stream("app", nid),
                    self.config.workload,
                )
            boot = 0.0 if is_root else self.rng.stream("boot", nid).uniform(
                0.0, self.config.workload.boot_stagger_s
            )
            self.nodes[nid] = Node(
                node_id=nid,
                radio=radio,
                mac=mac,
                protocol=protocol,
                estimator=estimator,
                source=source,
                boot_time=boot,
            )
            self.medium.attach(mac)
            if is_root:
                self._wire_sink(protocol)

    def _build_stack(
        self, mac: Mac, nid: int, is_root: bool
    ) -> Tuple[Any, Optional[HybridLinkEstimator]]:
        name = self.config.protocol
        radio_params = self.config.radio_params
        if name == "mhlqi":
            mhlqi_config = self.config.mhlqi_config or MhlqiConfig.scaled_for(radio_params)
            protocol = MultiHopLqi(
                self.engine, mac, nid, is_root, self.rng.stream("net", nid), mhlqi_config
            )
            return protocol, None
        if name == "geo":
            from repro.estimators.presets import four_bit
            from repro.net.geographic import GreedyGeoProtocol

            est_config = self.config.estimator_config or four_bit()
            estimator = HybridLinkEstimator(mac, est_config, self.rng.stream("est", nid))
            protocol = GreedyGeoProtocol(
                self.engine,
                estimator,
                nid,
                position=self.topology.positions[nid],
                sink_position=self.topology.positions[self.topology.sink],
                is_root=is_root,
                rng=self.rng.stream("net", nid),
            )
            return protocol, estimator
        est_config = self.config.estimator_config or PRESETS[name]
        estimator = HybridLinkEstimator(mac, est_config, self.rng.stream("est", nid))
        ctp_config = self.config.ctp_config or CtpConfig.scaled_for(radio_params)
        protocol = CtpProtocol(
            self.engine, estimator, nid, is_root, self.rng.stream("net", nid), ctp_config
        )
        return protocol, estimator

    def _wire_sink(self, protocol: Any) -> None:
        if hasattr(protocol, "forwarding"):
            protocol.forwarding.on_deliver = self.sink.on_deliver
        else:
            protocol.on_deliver = self.sink.on_deliver

    def _build_interferers(self) -> None:
        if not self.config.with_interferers or self.profile is None:
            return
        for i, spec in enumerate(self.profile.interferers):
            nid = INTERFERER_ID_BASE + i
            self.channel.add_position(nid, spec.position)
            interferer = MarkovInterferer(
                self.engine,
                self.medium,
                nid,
                spec.power_dbm,
                self.rng.stream("interferer", i),
                off_mean_s=spec.off_mean_s,
                on_mean_s=spec.on_mean_s,
            )
            self.interferers.append(interferer)

    def _build_fault_injector(self) -> None:
        # Local imports: the faults package is optional machinery layered on
        # top of the simulator; fault-free runs never touch it.
        from repro.faults.injector import FaultInjector
        from repro.faults.presets import resolve_schedule

        assert self.config.faults is not None
        node_ids = self.topology.node_ids()
        schedule = resolve_schedule(
            self.config.faults,
            duration_s=self.config.duration_s,
            warmup_s=self.config.warmup_s,
            drain_s=self.config.drain_s,
            node_ids=node_ids,
            roots=self.roots,
            positions={nid: self.topology.positions[nid] for nid in node_ids},
            rng=self.rng,
        )
        self.fault_injector = FaultInjector(self, schedule)

    def _build_mobility(self) -> None:
        # Local imports: mobility is opt-in dynamics; static runs never
        # construct (or pay for) any of it.
        from repro.sim.mobility import WaypointMobility, resolve_mobility

        assert self.config.mobility is not None
        self.mobility = WaypointMobility(
            engine=self.engine,
            medium=self.medium,
            rng=self.rng,
            node_ids=self.topology.node_ids(),
            roots=self.roots,
            config=resolve_mobility(self.config.mobility),
            duration_s=self.config.duration_s,
        )
        self.mobility.start()

    def _build_telemetry(self) -> None:
        # Local imports: telemetry is opt-in observability layered on top of
        # the simulator; untelemetered runs never touch the streaming code.
        from repro.obs.stream import JsonlStreamSink, RingStreamSink, TelemetrySampler

        config = self.config
        assert config.telemetry_period_s is not None
        sink: Any
        if config.telemetry_path is not None:
            sink = JsonlStreamSink(config.telemetry_path)
        else:
            sink = RingStreamSink()
        self.telemetry = TelemetrySampler(
            self,
            sink,
            config.telemetry_period_s,
            per_node=config.telemetry_per_node,
            run_id=f"{config.protocol}-seed{config.seed}",
        )
        self.telemetry.install()

    def _boot_node(self, node: Node) -> None:
        # Late-bound lookup so post-construction instrumentation (tracing)
        # that wraps ``protocol.start`` is honored.
        if node.crashed:
            return  # crashed before its boot time: stays down until reboot
        node.protocol.start()

    def _start_source(self, node: Node) -> None:
        if node.crashed or node.source is None:
            return
        node.source.start()

    def _schedule_boot(self) -> None:
        stop_at = self.config.duration_s - self.config.drain_s
        for node in self.nodes.values():
            self.engine.schedule_at(node.boot_time, self._boot_node, node)
            if node.source is not None:
                self.engine.schedule_at(node.boot_time, self._start_source, node)
                self.engine.schedule_at(stop_at, node.source.stop)
        for interferer in self.interferers:
            self.engine.schedule_at(0.0, interferer.start)

    # ------------------------------------------------------------------
    # Tree observation
    # ------------------------------------------------------------------
    def parent_map(self) -> Dict[int, Optional[int]]:
        return {nid: node.parent for nid, node in self.nodes.items()}

    def depth_map(self) -> Dict[int, Optional[int]]:
        """Hops from each node to the root following parent pointers.

        ``None`` marks nodes with no route or caught in a parent loop.
        """
        parents = self.parent_map()
        depths: Dict[int, Optional[int]] = {root: 0 for root in self.roots}
        for nid in parents:
            if nid in depths:
                continue
            path = []
            cursor: Optional[int] = nid
            while cursor is not None and cursor not in depths and cursor not in path:
                path.append(cursor)
                cursor = parents.get(cursor)
            base = depths.get(cursor) if cursor is not None else None
            if cursor is not None and base is not None:
                for i, hop in enumerate(reversed(path)):
                    depths[hop] = base + i + 1
            else:
                for hop in path:
                    depths[hop] = None
        return depths

    def _schedule_tree_sampling(self) -> None:
        t = self.config.warmup_s
        while t <= self.config.duration_s:
            self.engine.schedule_at(t, self._sample_tree)
            t += self.config.tree_sample_period_s

    def _sample_tree(self) -> None:
        self._depth_samples.append(self.depth_map())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> CollectionResult:
        probe = None
        if self.telemetry is not None:
            from repro.obs.resources import ResourceProbe

            probe = ResourceProbe()
        self.engine.run_until(self.config.duration_s)
        if probe is not None:
            self.run_resources = probe.stop()
        for hook in self.on_run_end:
            hook(self)
        if self.telemetry is not None:
            self.telemetry.close()
        return compute_result(self)
