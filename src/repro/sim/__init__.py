"""Discrete-event simulator: engine, RNG streams, medium, network builder.

The heavyweight members (``RadioMedium``, ``CollectionNetwork``, ...) are
loaded lazily: they depend on :mod:`repro.phy`, whose modules in turn import
:mod:`repro.sim.rng`, and an eager import here would close that cycle while
this package is still initializing.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.packets import RxInfo, TxResult
from repro.sim.rng import RngManager, derive_seed

__all__ = [
    "PROTOCOLS",
    "CollectionNetwork",
    "Engine",
    "EventHandle",
    "Node",
    "RadioMedium",
    "RngManager",
    "RxInfo",
    "SimConfig",
    "TxResult",
    "derive_seed",
]

_LAZY = {
    "RadioMedium": ("repro.sim.medium", "RadioMedium"),
    "CollectionNetwork": ("repro.sim.network", "CollectionNetwork"),
    "SimConfig": ("repro.sim.network", "SimConfig"),
    "PROTOCOLS": ("repro.sim.network", "PROTOCOLS"),
    "Node": ("repro.sim.node", "Node"),
    "Tracer": ("repro.sim.trace", "Tracer"),
    "instrument_network": ("repro.sim.trace", "instrument_network"),
}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
