"""Shared radio medium: propagation, carrier sense, collisions, capture.

Every transmission (data, beacons, acks, interference bursts) goes through
the medium.  At the end of each transmission the medium evaluates, for every
candidate receiver, whether the frame was decodable given

* the instantaneous channel gain (path loss + shadowing + temporal fading),
* the receiver's noise floor,
* interference from every other transmission overlapping in time (SINR).

Packets that decode are delivered upward with an :class:`~repro.sim.packets.RxInfo`
carrying the measured SINR, a sampled LQI and the derived white bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Tuple

from repro.link.frame import AckFrame, Frame, JamFrame
from repro.phy.channel import ChannelModel
from repro.phy.lqi import DEFAULT_LQI_MODEL, LqiModel
from repro.phy.modulation import prr_fast
from repro.phy.radio import Radio, RadioParams
from repro.phy.white_bit import DEFAULT_WHITE_BIT, WhiteBitPolicy
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager

#: Mean-SNR margin (dB) below which a potential receiver is pruned from the
#: candidate list.  At −15 dB below the noise floor the reception probability
#: is indistinguishable from zero for any frame length.
_NEIGHBOR_SNR_CUTOFF_DB = -15.0

#: Extra margin for the carrier-sense candidate list (CCA threshold sits far
#: above sensitivity, so the reception list already covers it).
_MW_PER_DBM_CACHE: Dict[float, float] = {}


def _dbm_to_mw(dbm: float) -> float:
    mw = _MW_PER_DBM_CACHE.get(dbm)
    if mw is None:
        mw = 10.0 ** (dbm / 10.0)
        _MW_PER_DBM_CACHE[dbm] = mw
    return mw


class MediumParticipant(Protocol):
    """What the medium needs from an attached entity."""

    node_id: int
    radio: Radio

    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:  # pragma: no cover
        ...


class _Transmission:
    __slots__ = ("sender", "frame", "power_dbm", "start", "end")

    def __init__(self, sender: int, frame: Frame, power_dbm: float, start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.power_dbm = power_dbm
        self.start = start
        self.end = end


class RadioMedium:
    """The shared channel all attached radios transmit into."""

    def __init__(
        self,
        engine: Engine,
        channel: ChannelModel,
        rng: RngManager,
        lqi_model: LqiModel = DEFAULT_LQI_MODEL,
        white_bit_policy: WhiteBitPolicy = DEFAULT_WHITE_BIT,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.lqi_model = lqi_model
        self.white_bit_policy = white_bit_policy
        self._rng = rng
        self._participants: Dict[int, MediumParticipant] = {}
        self._receivers: Dict[int, MediumParticipant] = {}
        self._active: List[_Transmission] = []
        self._recent: List[_Transmission] = []
        #: sender -> [(receiver, cached mean gain dB)] candidate lists.
        self._candidates: Dict[int, List[Tuple[int, float]]] = {}
        self._finalized = False
        # Statistics.
        self.transmissions = 0
        self.deliveries = 0
        self.collisions = 0
        #: Deliveries whose white bit came back set (phy-layer telemetry).
        self.white_bits_set = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach(self, participant: MediumParticipant, receiver: bool = True) -> None:
        """Register a participant.  ``receiver=False`` for interference-only
        transmitters (they never decode frames)."""
        nid = participant.node_id
        if nid in self._participants:
            raise ValueError(f"node {nid} already attached")
        self._participants[nid] = participant
        if receiver:
            self._receivers[nid] = participant
        self._finalized = False

    def finalize(self) -> None:
        """Precompute candidate receiver lists from mean channel gains.

        Must be called after all participants are attached and transmit
        powers are set, before the simulation starts.
        """
        self._candidates = {}
        for sid, sender in self._participants.items():
            ptx = sender.radio.effective_tx_power_dbm
            row: List[Tuple[int, float]] = []
            for rid, receiver in self._receivers.items():
                if rid == sid:
                    continue
                gain = self.channel.mean_gain_db(sid, rid)
                mean_snr = ptx + gain - receiver.radio.noise_floor_dbm
                if mean_snr >= _NEIGHBOR_SNR_CUTOFF_DB:
                    row.append((rid, gain))
            self._candidates[sid] = row
        self._finalized = True

    def candidate_receivers(self, sender: int) -> List[Tuple[int, float]]:
        """(receiver, mean gain dB) pairs reachable from ``sender``."""
        if not self._finalized:
            self.finalize()
        return self._candidates.get(sender, [])

    # ------------------------------------------------------------------
    # Carrier sense
    # ------------------------------------------------------------------
    def channel_clear(self, node_id: int) -> bool:
        """CCA at ``node_id``: no active transmission above the threshold."""
        listener = self._participants[node_id]
        threshold = listener.radio.params.cca_threshold_dbm
        now = self.engine.now
        for tx in self._active:
            if tx.sender == node_id:
                continue
            rssi = tx.power_dbm + self.channel.gain_db(tx.sender, node_id, now)
            if rssi >= threshold:
                return False
        return True

    def is_transmitting(self, node_id: int) -> bool:
        return any(tx.sender == node_id for tx in self._active)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def start_transmission(self, sender_id: int, frame: Frame) -> float:
        """Put ``frame`` on the air; returns its airtime in seconds."""
        if not self._finalized:
            self.finalize()
        sender = self._participants[sender_id]
        params = sender.radio.params
        duration = params.airtime(frame.length_bytes)
        now = self.engine.now
        tx = _Transmission(sender_id, frame, sender.radio.effective_tx_power_dbm, now, now + duration)
        self._active.append(tx)
        self.transmissions += 1
        self.engine.schedule(duration, self._end_transmission, tx)
        return duration

    def _end_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        self._recent.append(tx)
        self._evaluate_receptions(tx)
        self._prune_recent()

    def _prune_recent(self) -> None:
        # Keep only transmissions that could still overlap something active.
        horizon = self.engine.now - 0.25
        if len(self._recent) > 64:
            self._recent = [t for t in self._recent if t.end >= horizon]

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def _overlapping(self, tx: _Transmission) -> List[_Transmission]:
        """All other transmissions overlapping ``tx`` in time."""
        out = []
        for other in self._active:
            if other is not tx and other.start < tx.end and other.end > tx.start:
                out.append(other)
        for other in self._recent:
            if other is not tx and other.start < tx.end and other.end > tx.start:
                out.append(other)
        return out

    def _evaluate_receptions(self, tx: _Transmission) -> None:
        if isinstance(tx.frame, JamFrame):
            return  # nobody decodes interference
        overlapping = self._overlapping(tx)
        t = tx.end
        params: RadioParams = self._participants[tx.sender].radio.params
        frame_bytes = tx.frame.length_bytes + params.phy_overhead_bytes
        for rid, mean_gain in self.candidate_receivers(tx.sender):
            receiver = self._receivers[rid]
            # Half duplex: a node transmitting during any part of the frame
            # cannot receive it.
            if self._was_transmitting(rid, tx.start, tx.end):
                continue
            gain = mean_gain + self.channel.instantaneous_extra_db(tx.sender, rid, t)
            rssi = tx.power_dbm + gain
            noise_mw = _dbm_to_mw(receiver.radio.noise_floor_dbm)
            interference_mw = 0.0
            for other in overlapping:
                other_rssi = other.power_dbm + self.channel.gain_db(other.sender, rid, t)
                interference_mw += 10.0 ** (other_rssi / 10.0)
            sinr_db = rssi - 10.0 * math.log10(noise_mw + interference_mw)
            prr = prr_fast(receiver.radio.params.modulation, sinr_db, frame_bytes)
            stream = self._rng.stream("rx", rid)
            if stream.random() >= prr:
                if interference_mw > noise_mw:
                    self.collisions += 1
                continue
            lqi = self.lqi_model.sample(sinr_db, stream)
            white = self.white_bit_policy.evaluate(sinr_db, lqi)
            info = RxInfo(
                timestamp=t,
                rssi_dbm=rssi,
                snr_db=sinr_db,
                lqi=lqi,
                white_bit=white,
            )
            self.deliveries += 1
            if white:
                self.white_bits_set += 1
            receiver.on_frame_received(tx.frame, info)

    def _was_transmitting(self, node_id: int, start: float, end: float) -> bool:
        for tx in self._active:
            if tx.sender == node_id and tx.start < end and tx.end > start:
                return True
        for tx in self._recent:
            if tx.sender == node_id and tx.start < end and tx.end > start:
                return True
        return False


__all__ = ["RadioMedium", "MediumParticipant", "AckFrame"]
