"""Shared radio medium: propagation, carrier sense, collisions, capture.

Every transmission (data, beacons, acks, interference bursts) goes through
the medium.  At the end of each transmission the medium evaluates, for every
candidate receiver, whether the frame was decodable given

* the instantaneous channel gain (path loss + shadowing + temporal fading),
* the receiver's noise floor,
* interference from every other transmission overlapping in time (SINR).

Packets that decode are delivered upward with an :class:`~repro.sim.packets.RxInfo`
carrying the measured SINR, a sampled LQI and the derived white bit.

This is the simulator's hottest code: one reception evaluation per
candidate receiver per transmission.  :meth:`RadioMedium.finalize`
therefore precomputes a per-sender row of everything the evaluation loop
needs per receiver (mean gain, noise floor in mW and dB, modulation, the
pre-bound reception RNG stream and delivery callback), transmissions are
indexed by sender for the half-duplex check, and dBm→mW conversions go
through a bounded value cache.  None of the caches can change results:
they store pure functions of their inputs, and the evaluation order and
floating-point association of the original code are preserved exactly
(the golden test in ``tests/golden/`` enforces this).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Tuple


from repro.link.frame import AckFrame, Frame, JamFrame
from repro.phy.channel import _CACHE_MAX as _CHANNEL_CACHE_MAX
from repro.phy.channel import ChannelModel
from repro.phy.lqi import DEFAULT_LQI_MODEL, LQI_MAX, LQI_MIN, LqiModel, _LQI_SPAN
from repro.phy.modulation import _prr_quantized
from repro.phy.radio import Radio, RadioParams
from repro.phy.white_bit import DEFAULT_WHITE_BIT, LqiWhiteBit, WhiteBitPolicy
from repro.sim.engine import Engine
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager

#: Mean-SNR margin (dB) below which a potential receiver is pruned from the
#: candidate list.  At −15 dB below the noise floor the reception probability
#: is indistinguishable from zero for any frame length.
_NEIGHBOR_SNR_CUTOFF_DB = -15.0

#: Finished transmissions older than this can no longer overlap anything
#: (far above the longest frame airtime).
_RECENT_HORIZON_S = 0.25

#: Prune the finished-transmission list only past this length; below it the
#: scan costs more than the dead entries it would reclaim.
_RECENT_PRUNE_LEN = 64

#: Sentinel for "this pair's Gilbert state has not been resolved yet"
#: (``None`` is a valid resolution: the pair is not bimodal).
_UNRESOLVED = object()

#: Same constant the stdlib's ``random.gauss`` uses for Box–Muller.
_TWOPI = 2.0 * math.pi

#: Bounded memo for the dBm→mW conversion: every entry is a pure function
#: of its key, so carried state can never change results across runs.
_MW_PER_DBM_CACHE: Dict[float, float] = {}  # lint: disable=worker-state

#: RSSI values are nearly-unique floats, so the conversion cache is bounded:
#: past this size new keys are converted without being stored (identical
#: result, no growth).
_MW_CACHE_MAX = 8192


def _dbm_to_mw(dbm: float) -> float:
    mw = _MW_PER_DBM_CACHE.get(dbm)
    if mw is None:
        mw = 10.0 ** (dbm / 10.0)
        if len(_MW_PER_DBM_CACHE) < _MW_CACHE_MAX:
            _MW_PER_DBM_CACHE[dbm] = mw
    return mw


class MediumParticipant(Protocol):
    """What the medium needs from an attached entity."""

    node_id: int
    radio: Radio

    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:  # pragma: no cover
        ...


class MediumFaultState:
    """Fault overlays the injector applies to the medium.

    Kept out of the hot path until enabled: ``RadioMedium._faults`` is
    ``None`` in fault-free runs, so the reception loop's single ``is None``
    check is the entire cost and results stay bit-identical.

    Blackouts are reference-counted per scope so overlapping windows nest
    correctly; quality shifts are cumulative dB offsets.  ``None`` scope
    arguments mean "all nodes" (see :class:`repro.faults.schedule`).
    """

    def __init__(self) -> None:
        self._blackout_all = 0
        self._blackout_nodes: Dict[int, int] = {}
        self._blackout_pairs: Dict[Tuple[int, int], int] = {}
        self._global_offset = 0.0
        self._node_offset: Dict[int, float] = {}
        self._pair_offset: Dict[Tuple[int, int], float] = {}
        #: Receptions suppressed by a blackout window (telemetry).
        self.blackout_drops = 0

    @staticmethod
    def _pair(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def blackout_start(self, a: Optional[int] = None, b: Optional[int] = None) -> None:
        if a is None and b is None:
            self._blackout_all += 1
        elif a is not None and b is not None:
            key = self._pair(a, b)
            self._blackout_pairs[key] = self._blackout_pairs.get(key, 0) + 1
        else:
            node = a if a is not None else b
            assert node is not None
            self._blackout_nodes[node] = self._blackout_nodes.get(node, 0) + 1

    def blackout_end(self, a: Optional[int] = None, b: Optional[int] = None) -> None:
        if a is None and b is None:
            self._blackout_all -= 1
        elif a is not None and b is not None:
            key = self._pair(a, b)
            self._blackout_pairs[key] -= 1
            if self._blackout_pairs[key] == 0:
                del self._blackout_pairs[key]
        else:
            node = a if a is not None else b
            assert node is not None
            self._blackout_nodes[node] -= 1
            if self._blackout_nodes[node] == 0:
                del self._blackout_nodes[node]

    def shift(self, delta_db: float, a: Optional[int] = None, b: Optional[int] = None) -> None:
        if a is None and b is None:
            self._global_offset += delta_db
        elif a is not None and b is not None:
            key = self._pair(a, b)
            self._pair_offset[key] = self._pair_offset.get(key, 0.0) + delta_db
        else:
            node = a if a is not None else b
            assert node is not None
            self._node_offset[node] = self._node_offset.get(node, 0.0) + delta_db

    def offset_for(self, sid: int, rid: int) -> Optional[float]:
        """Gain offset (dB) for the ``sid → rid`` link, or ``None`` while a
        blackout window covers it (the frame is undecodable)."""
        if self._blackout_all:
            return None
        nodes = self._blackout_nodes
        if nodes and (sid in nodes or rid in nodes):
            return None
        pairs = self._blackout_pairs
        if pairs and self._pair(sid, rid) in pairs:
            return None
        offset = self._global_offset
        node_off = self._node_offset
        if node_off:
            offset += node_off.get(sid, 0.0) + node_off.get(rid, 0.0)
        pair_off = self._pair_offset
        if pair_off:
            offset += pair_off.get(self._pair(sid, rid), 0.0)
        return offset


class _Transmission:
    __slots__ = ("sender", "frame", "power_dbm", "start", "end")

    def __init__(self, sender: int, frame: Frame, power_dbm: float, start: float, end: float) -> None:
        self.sender = sender
        self.frame = frame
        self.power_dbm = power_dbm
        self.start = start
        self.end = end


class RadioMedium:
    """The shared channel all attached radios transmit into."""

    #: Whether structural changes after :meth:`finalize` (attach / detach /
    #: :meth:`update_position`) are patched incrementally.  This backend
    #: rebuilds instead — O(N·k) per change, correct but slow; the fast
    #: backend overrides with O(k) in-place patching (DESIGN.md §11).
    supports_incremental = False

    def __init__(
        self,
        engine: Engine,
        channel: ChannelModel,
        rng: RngManager,
        lqi_model: LqiModel = DEFAULT_LQI_MODEL,
        white_bit_policy: WhiteBitPolicy = DEFAULT_WHITE_BIT,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.lqi_model = lqi_model
        self.white_bit_policy = white_bit_policy
        self._rng = rng
        self._participants: Dict[int, MediumParticipant] = {}
        self._receivers: Dict[int, MediumParticipant] = {}
        self._active: List[_Transmission] = []
        #: Finished transmissions young enough to still overlap something;
        #: appended at end time, so always sorted by ``end``.
        self._recent: List[_Transmission] = []
        #: sender → its transmissions still in ``_active`` or ``_recent``
        #: (the half-duplex check scans only this).
        self._tx_by_sender: Dict[int, List[_Transmission]] = {}
        #: sender -> [(receiver, cached mean gain dB)] candidate lists.
        self._candidates: Dict[int, List[Tuple[int, float]]] = {}
        #: sender → per-receiver hot-path rows; see :meth:`finalize`.
        self._rx_rows: Dict[int, list] = {}
        self._finalized = False
        #: Fault overlay; ``None`` until a fault injector enables it.
        self._faults: Optional[MediumFaultState] = None
        # Statistics.
        self.transmissions = 0
        self.deliveries = 0
        self.collisions = 0
        #: Deliveries whose white bit came back set (phy-layer telemetry).
        self.white_bits_set = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach(self, participant: MediumParticipant, receiver: bool = True) -> None:
        """Register a participant.  ``receiver=False`` for interference-only
        transmitters (they never decode frames)."""
        nid = participant.node_id
        if nid in self._participants:
            raise ValueError(f"node {nid} already attached")
        self._participants[nid] = participant
        if receiver:
            self._receivers[nid] = participant
        self._finalized = False

    def detach(self, node_id: int) -> None:
        """Remove a participant (a crashed node goes dark at the medium).

        The node's channel position is kept: pair identity (shadowing,
        fading state) survives a crash/reboot cycle, and an in-flight
        transmission from the departing node still interferes.  This
        backend marks the candidate structure for a lazy full rebuild;
        the fast backend patches incrementally.
        """
        if node_id not in self._participants:
            raise ValueError(f"detach: node {node_id} is not attached to the medium")
        del self._participants[node_id]
        self._receivers.pop(node_id, None)
        self._finalized = False

    def update_position(self, node_id: int, x: float, y: float) -> None:
        """Move a node, re-deriving path loss from the new position.

        Shadowing and fading state are pair-identity-keyed and survive the
        move (DESIGN.md §11).  This backend invalidates the whole candidate
        structure and rebuilds lazily — the O(N·k) reference semantics the
        fast backend's O(k) incremental patching must match.
        """
        self.channel.update_position(node_id, (x, y))
        self._finalized = False

    def enable_faults(self) -> MediumFaultState:
        """Install (or return the existing) fault overlay state."""
        if self._faults is None:
            self._faults = MediumFaultState()
        return self._faults

    def finalize(self) -> None:
        """Precompute candidate receiver lists from mean channel gains.

        Must be called after all participants are attached and transmit
        powers are set, before the simulation starts.  Besides the public
        (receiver, mean gain) lists this builds one row per candidate with
        everything the reception loop needs — noise floor in mW and as the
        precomputed ``10·log10`` dB value, the receiver's modulation, its
        pre-bound ``rx`` RNG stream and delivery callback — so the per-
        reception cost is a single tuple unpack.

        Idempotent: a second call with no interleaving :meth:`attach` is a
        no-op.  Rebuilding mid-run would discard the cached per-pair
        OU/Gilbert state slots in the hot-path rows (and any other state a
        backend hangs off them), silently perturbing the random sequence —
        and ``candidate_receivers()`` / ``start_transmission()`` finalize
        implicitly, so an explicit late call must be harmless.
        """
        if self._finalized:
            return
        self._candidates = {}
        self._rx_rows = {}
        stream = self._rng.stream
        for sid, sender in self._participants.items():
            ptx = sender.radio.effective_tx_power_dbm
            row: List[Tuple[int, float]] = []
            rx_row: list = []
            for rid, receiver in self._receivers.items():
                if rid == sid:
                    continue
                gain = self.channel.mean_gain_db(sid, rid)
                mean_snr = ptx + gain - receiver.radio.noise_floor_dbm
                if mean_snr >= _NEIGHBOR_SNR_CUTOFF_DB:
                    row.append((rid, gain))
                    noise_mw = _dbm_to_mw(receiver.radio.noise_floor_dbm)
                    rx_stream = stream("rx", rid)
                    # A mutable list, not a tuple: the last two slots cache
                    # the pair's resolved OU / Gilbert state objects once
                    # the channel creates them (see _evaluate_receptions).
                    # The participant is stored (not its bound callback):
                    # tracing instruments runs by swapping on_frame_received
                    # after construction, so delivery must late-bind it.
                    rx_row.append(
                        [
                            rid,
                            gain,
                            (sid, rid) if sid <= rid else (rid, sid),
                            noise_mw,
                            10.0 * math.log10(noise_mw),
                            receiver.radio.params.modulation,
                            rx_stream,
                            receiver,
                            rx_stream.random,
                            None,  # _OUState, resolved on first query
                            _UNRESOLVED,  # _GilbertState or None, ditto
                        ]
                    )
            self._candidates[sid] = row
            self._rx_rows[sid] = rx_row
        self._finalized = True

    def candidate_receivers(self, sender: int) -> List[Tuple[int, float]]:
        """(receiver, mean gain dB) pairs reachable from ``sender``."""
        if not self._finalized:
            self.finalize()
        return self._candidates.get(sender, [])

    # ------------------------------------------------------------------
    # Carrier sense
    # ------------------------------------------------------------------
    def channel_clear(self, node_id: int) -> bool:
        """CCA at ``node_id``: no active transmission above the threshold.

        Raises :class:`ValueError` for a node id that was never attached —
        a bare ``KeyError`` here historically meant "some dict lookup deep
        in the medium broke", which is indistinguishable from a logic bug
        when e.g. a ``repro.faults`` crash wiped a component's state and it
        kept polling the channel.
        """
        listener = self._participants.get(node_id)
        if listener is None:
            raise ValueError(
                f"channel_clear: node {node_id} is not attached to the medium"
            )
        active = self._active
        if not active:
            return True
        threshold = listener.radio.params.cca_threshold_dbm
        now = self.engine.now
        gain_db = self.channel.gain_db
        for tx in active:
            if tx.sender == node_id:
                continue
            if tx.power_dbm + gain_db(tx.sender, node_id, now) >= threshold:
                return False
        return True

    def is_transmitting(self, node_id: int) -> bool:
        return any(tx.sender == node_id for tx in self._active)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def start_transmission(self, sender_id: int, frame: Frame) -> float:
        """Put ``frame`` on the air; returns its airtime in seconds."""
        if not self._finalized:
            self.finalize()
        sender = self._participants[sender_id]
        params = sender.radio.params
        duration = params.airtime(frame.length_bytes)
        now = self.engine.now
        tx = _Transmission(sender_id, frame, sender.radio.effective_tx_power_dbm, now, now + duration)
        self._active.append(tx)
        own = self._tx_by_sender.get(sender_id)
        if own is None:
            own = self._tx_by_sender[sender_id] = []
        own.append(tx)
        self.transmissions += 1
        self.engine.schedule(duration, self._end_transmission, tx)
        return duration

    def _end_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        self._recent.append(tx)
        self._evaluate_receptions(tx)
        self._prune_recent()

    def _prune_recent(self) -> None:
        # Keep only transmissions that could still overlap something active.
        # Trigger on length (bursty traffic) *or* on the oldest entry having
        # aged past the horizon (low-traffic long runs would otherwise pin
        # up to _RECENT_PRUNE_LEN stale transmissions — and their frames —
        # indefinitely).  ``_recent`` is sorted by end time, so the age
        # check is O(1) and the stale entries are exactly a prefix: drop
        # that prefix and remove each dropped transmission from its
        # sender's list, so the cost is amortized O(1) per transmission
        # instead of a full rebuild of every per-sender list on each
        # trigger.  Pruned entries can never overlap a later frame, so
        # results are untouched either way.
        recent = self._recent
        if not recent:
            return
        horizon = self.engine.now - _RECENT_HORIZON_S
        if len(recent) <= _RECENT_PRUNE_LEN and recent[0].end >= horizon:
            return
        lo, hi = 0, len(recent)
        while lo < hi:
            mid = (lo + hi) // 2
            if recent[mid].end < horizon:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return
        by_sender = self._tx_by_sender
        for tx in recent[:lo]:
            by_sender[tx.sender].remove(tx)
        del recent[:lo]

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def _overlapping(self, tx: _Transmission) -> List[_Transmission]:
        """All other transmissions overlapping ``tx`` in time."""
        tx_start = tx.start
        tx_end = tx.end
        out = []
        for other in self._active:
            if other is not tx and other.start < tx_end and other.end > tx_start:
                out.append(other)
        # ``_recent`` is sorted by end time: binary-search the first entry
        # with ``end > tx.start`` and scan only that suffix.
        recent = self._recent
        lo, hi = 0, len(recent)
        while lo < hi:
            mid = (lo + hi) // 2
            if recent[mid].end > tx_start:
                hi = mid
            else:
                lo = mid + 1
        for i in range(lo, len(recent)):
            other = recent[i]
            if other is not tx and other.start < tx_end:
                out.append(other)
        return out

    def _evaluate_receptions(self, tx: _Transmission) -> None:
        frame = tx.frame
        if isinstance(frame, JamFrame):
            return  # nobody decodes interference
        if not self._finalized:
            self.finalize()
        overlapping = self._overlapping(tx)
        t = tx.end
        sender_id = tx.sender
        sender = self._participants.get(sender_id)
        if sender is None:
            return  # sender detached (crashed) mid-flight: the frame dies with it
        power_dbm = tx.power_dbm
        params: RadioParams = sender.radio.params
        frame_bytes = frame.length_bytes + params.phy_overhead_bytes
        channel = self.channel
        # ---- hoisted channel state -----------------------------------
        # The OU advance, Gilbert dwell replay, and Gaussian draw below are
        # ChannelModel._temporal_for / ._fade_for / random.Random.gauss
        # inlined (those remain the source of truth — the lazy first-query
        # initialization still goes through them, and the state objects,
        # decay cache and ``gauss_next`` spare are shared, so interleaving
        # with the out-of-line versions stays bit-identical.  The golden
        # test in tests/golden/ enforces this).
        has_temporal = channel.temporal_sigma_db > 0.0
        has_fade = channel.bimodal_fraction > 0.0
        temporal_for = channel._temporal_for
        fade_for = channel._fade_for
        ou_map = channel._ou
        gilbert_map = channel._gilbert
        decay_map = channel._decay
        decay_get = decay_map.get
        decay_cache_max = _CHANNEL_CACHE_MAX
        ou_freeze = channel._ou_freeze_s
        ou_tau = channel.temporal_tau_s
        ou_sigma = channel.temporal_sigma_db
        fade_depth = channel.fade_depth_db
        inv_fade_dwell = 1.0 / channel.fade_dwell_s
        inv_good_dwell = 1.0 / channel.good_dwell_s
        gain_db = channel.gain_db
        dbm_to_mw = _dbm_to_mw
        # ---- hoisted LQI model / white-bit policy --------------------
        lqi_model = self.lqi_model
        lqi_mid = lqi_model.midpoint_snr_db
        lqi_slope = lqi_model.slope_db
        lqi_sigma = lqi_model.noise_sigma
        policy = self.white_bit_policy
        wb_threshold = policy.threshold if type(policy) is LqiWhiteBit else None
        white_eval = policy.evaluate
        prr_q = _prr_quantized
        log10 = math.log10
        exp = math.exp
        log = math.log
        sqrt = math.sqrt
        sin = math.sin
        cos = math.cos
        rx_info_new = RxInfo.__new__
        faults = self._faults
        # Half duplex: a node transmitting during any part of the frame
        # cannot receive it.  Every such transmission overlaps ``tx`` in
        # time, so the senders of ``overlapping`` are exactly the busy nodes.
        busy = {other.sender for other in overlapping}
        for row in self._rx_rows[sender_id]:
            (
                rid,
                mean_gain,
                pair_key,
                noise_mw,
                noise_db,
                modulation,
                stream,
                receiver,
                rx_random,
                ou_state,
                gilbert_state,
            ) = row
            if rid in busy:
                continue
            # ---- time-varying gain (== instantaneous_extra_db) -------
            if has_temporal:
                if ou_state is None:
                    extra = temporal_for(pair_key, t)
                    row[9] = ou_map[pair_key]
                else:
                    dt = t - ou_state.t
                    if dt > ou_freeze:
                        cached = decay_get(dt)
                        if cached is None:
                            decay = exp(-dt / ou_tau)
                            cached = (decay, ou_sigma * sqrt(max(0.0, 1.0 - decay * decay)))
                            if len(decay_map) < decay_cache_max:
                                decay_map[dt] = cached
                        s = ou_state.stream
                        z = s.gauss_next
                        s.gauss_next = None
                        if z is None:
                            x2pi = s.random() * _TWOPI
                            g2rad = sqrt(-2.0 * log(1.0 - s.random()))
                            z = cos(x2pi) * g2rad
                            s.gauss_next = sin(x2pi) * g2rad
                        ou_state.x = ou_state.x * cached[0] + (0.0 + z * cached[1])
                        ou_state.t = t
                    extra = ou_state.x
            else:
                extra = 0.0
            if has_fade:
                if gilbert_state is _UNRESOLVED:
                    extra += fade_for(pair_key, t)
                    row[10] = gilbert_map[pair_key]
                elif gilbert_state is None:
                    extra += 0.0
                else:
                    s = gilbert_state.stream
                    state_t = gilbert_state.t
                    faded = gilbert_state.faded
                    while True:
                        dwell = s.expovariate(inv_fade_dwell if faded else inv_good_dwell)
                        if state_t + dwell > t:
                            break
                        state_t += dwell
                        faded = not faded
                    gilbert_state.t = state_t
                    gilbert_state.faded = faded
                    extra += -fade_depth if faded else 0.0
            gain = mean_gain + extra
            if faults is not None:
                fault_offset = faults.offset_for(sender_id, rid)
                if fault_offset is None:
                    # Blackout window: the frame is undecodable here, but
                    # only *after* the RNG-free checks above — the channel
                    # state replay already happened, so post-blackout draws
                    # line up with an unfaulted timeline.
                    faults.blackout_drops += 1
                    continue
                if fault_offset != 0.0:
                    gain += fault_offset
            rssi = power_dbm + gain
            if overlapping:
                interference_mw = 0.0
                for other in overlapping:
                    other_rssi = other.power_dbm + gain_db(other.sender, rid, t)
                    interference_mw += dbm_to_mw(other_rssi)
                sinr_db = rssi - 10.0 * log10(noise_mw + interference_mw)
            else:
                interference_mw = 0.0
                sinr_db = rssi - noise_db
            # ---- decode decision (== prr_fast) ------------------------
            if sinr_db >= 25.0:
                prr = 1.0
            elif sinr_db <= -8.0:
                prr = 0.0
            else:
                prr = prr_q(modulation, round(sinr_db * 100.0), frame_bytes)
            if rx_random() >= prr:
                if interference_mw > noise_mw:
                    self.collisions += 1
                continue
            # ---- LQI sample (== LqiModel.sample) ----------------------
            z = stream.gauss_next
            stream.gauss_next = None
            if z is None:
                x2pi = rx_random() * _TWOPI
                g2rad = sqrt(-2.0 * log(1.0 - rx_random()))
                z = cos(x2pi) * g2rad
                stream.gauss_next = sin(x2pi) * g2rad
            value = (
                LQI_MIN
                + _LQI_SPAN / (1.0 + exp(-(sinr_db - lqi_mid) / lqi_slope))
                + (0.0 + z * lqi_sigma)
            )
            lqi = int(round(min(max(value, LQI_MIN), LQI_MAX)))
            white = lqi >= wb_threshold if wb_threshold is not None else white_eval(sinr_db, lqi)
            # RxInfo is a frozen dataclass; built the regular way each field
            # pays an ``object.__setattr__`` call.  Populating ``__dict__``
            # directly is byte-equivalent (the lqi range check is vacuous:
            # the sample above is clamped to [LQI_MIN, LQI_MAX]).
            info = rx_info_new(RxInfo)
            info.__dict__.update(
                timestamp=t, rssi_dbm=rssi, snr_db=sinr_db, lqi=lqi, white_bit=white
            )
            self.deliveries += 1
            if white:
                self.white_bits_set += 1
            receiver.on_frame_received(frame, info)

    def _was_transmitting(self, node_id: int, start: float, end: float) -> bool:
        own = self._tx_by_sender.get(node_id)
        if own:
            for tx in own:
                if tx.start < end and tx.end > start:
                    return True
        return False


__all__ = ["RadioMedium", "MediumParticipant", "AckFrame"]
