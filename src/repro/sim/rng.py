"""Deterministic, named random-number streams.

Every stochastic component in the simulator (each node's MAC backoff, each
link's shadowing process, each workload timer, ...) draws from its own named
substream.  This gives two properties the experiments rely on:

* **Reproducibility** — a run is a pure function of the master seed.
* **Variance isolation** — changing how one component consumes randomness
  (e.g. adding a retransmission) does not perturb the random sequence seen
  by unrelated components, so A/B comparisons between protocols share the
  same channel realization.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Tuple, Union

_KeyPart = Union[str, int]


def derive_seed(master_seed: int, *key: _KeyPart) -> int:
    """Derive a 64-bit seed from a master seed and a structured key.

    Uses BLAKE2b over a canonical encoding of the key parts, so the result
    is stable across processes and Python versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack("<Q", master_seed & 0xFFFFFFFFFFFFFFFF))
    for part in key:
        if isinstance(part, int):
            h.update(b"i")
            h.update(struct.pack("<Q", part & 0xFFFFFFFFFFFFFFFF))
        else:
            h.update(b"s")
            h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little")


class RngManager:
    """Factory of independent ``random.Random`` streams keyed by name.

    >>> mgr = RngManager(42)
    >>> a = mgr.stream("mac", 3)
    >>> b = mgr.stream("mac", 4)
    >>> a is mgr.stream("mac", 3)
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[Tuple[_KeyPart, ...], random.Random] = {}

    def stream(self, *key: _KeyPart) -> random.Random:
        """Return the stream for ``key``, creating it on first use."""
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = random.Random(derive_seed(self.master_seed, *key))
        return stream

    def cached_stream(self, *key: _KeyPart) -> random.Random:
        """Interned stream lookup for hot paths.

        Identical to :meth:`stream` — the same interned ``random.Random``
        comes back for a given key, so call sites that query every event
        should call this once and hold the reference instead of re-deriving
        the key per query (the tuple hash is what costs).  The separate
        name documents that holding the reference is safe: streams are
        never invalidated or replaced for the manager's lifetime.
        """
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = random.Random(derive_seed(self.master_seed, *key))
        return stream

    def fork(self, *key: _KeyPart) -> "RngManager":
        """Return a new manager whose master seed is derived from ``key``.

        Useful to hand a whole subsystem its own seed space.
        """
        return RngManager(derive_seed(self.master_seed, "fork", *key))
