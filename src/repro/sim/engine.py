"""A minimal, fast discrete-event simulation engine.

Events are ``(time, sequence)``-ordered callbacks on a binary heap.  The
sequence number makes ordering of same-time events deterministic (FIFO in
scheduling order), which keeps whole simulations bit-reproducible.

The heap holds ``(time, seq, handle)`` tuples rather than the handles
themselves: tuple comparison runs entirely in C, while comparing handles
would call :meth:`EventHandle.__lt__` (a Python frame) O(log n) times per
push/pop.  ``(time, seq)`` is unique, so the handle field never takes part
in a comparison.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profile import EngineProfiler


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "canceled", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        engine: "Optional[Engine]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.canceled = False
        #: Back-reference while the handle sits in the engine's queue; the
        #: engine clears it on pop so cancellation of a fired handle is a
        #: no-op for the queue accounting.
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.canceled:
            return
        self.canceled = True
        self.fn = None  # release references early
        self.args = ()
        if self.engine is not None:
            self.engine._note_canceled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "canceled" if self.canceled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Engine:
    """Discrete-event scheduler with a monotonic simulated clock (seconds)."""

    #: Never compact queues smaller than this — the scan costs more than the
    #: handful of dead entries it would reclaim.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_run = 0
        #: Canceled handles still sitting in the heap.  Long runs cancel many
        #: timers (MAC retries, Trickle resets); without compaction those dead
        #: entries accumulate until their scheduled time arrives.
        self._canceled_in_queue = 0
        #: Mid-run tombstone compactions performed (surfaced through
        #: :class:`~repro.obs.profile.EngineProfiler` as the
        #: ``engine.compact`` kernel when profiling is on).
        self.compactions = 0
        #: Optional run profiler (see :meth:`enable_profiling`).  The hot
        #: path pays one ``is not None`` branch per event when disabled.
        self.profiler: "Optional[EngineProfiler]" = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = next(self._seq)
        handle = EventHandle(time, seq, fn, args, engine=self)
        heapq.heappush(self._queue, (time, seq, handle))
        return handle

    def _note_canceled(self) -> None:
        """A queued handle was canceled; compact when mostly dead."""
        self._canceled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._canceled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop canceled entries and restore the heap invariant.

        ``(time, seq)`` totally orders entries, so re-heapifying the
        surviving entries cannot change the order events fire in.
        Mutates the queue in place: the run loops hold a direct reference
        to the list across events, and compaction can run from inside an
        event callback.
        """
        queue = self._queue
        t0 = perf_counter() if self.profiler is not None else 0.0
        queue[:] = [e for e in queue if not e[2].canceled]
        heapq.heapify(queue)
        self._canceled_in_queue = 0
        self.compactions += 1
        if self.profiler is not None:
            self.profiler.compactions = self.compactions
            self.profiler.record_kernel("engine.compact", perf_counter() - t0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-canceled) queued events."""
        return len(self._queue) - self._canceled_in_queue

    @property
    def events_run(self) -> int:
        """Number of events executed so far."""
        return self._events_run

    def enable_profiling(self, profiler: "Optional[EngineProfiler]" = None) -> "EngineProfiler":
        """Attach a run profiler (created on demand); returns it."""
        if profiler is None:
            from repro.obs.profile import EngineProfiler

            profiler = EngineProfiler()
        self.profiler = profiler
        return profiler

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)[2]
            handle.engine = None
            if handle.canceled:
                self._canceled_in_queue -= 1
                continue
            self.now = handle.time
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()  # break cycles
            self._events_run += 1
            assert fn is not None
            if self.profiler is None:
                fn(*args)
            else:
                t0 = perf_counter()
                fn(*args)
                try:  # NOT getattr(..., repr(fn)): the default is built eagerly
                    name = fn.__qualname__
                except AttributeError:
                    name = repr(fn)
                self.profiler.record(
                    name,
                    perf_counter() - t0,
                    self.now,
                    len(self._queue) - self._canceled_in_queue,
                )
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Run all events with time ≤ ``t_end``; advance clock to ``t_end``.

        The body is :meth:`step` inlined with the queue and ``heappop``
        bound once: the peek/pop pair and per-event method dispatch are
        measurable at millions of events.  Never-canceled events (the
        overwhelming majority) take the straight-line path with no
        cancellation bookkeeping.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time_, _seq, handle = queue[0]
            if handle.canceled:
                pop(queue)
                handle.engine = None
                self._canceled_in_queue -= 1
                continue
            if time_ > t_end:
                break
            pop(queue)
            handle.engine = None
            self.now = time_
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()  # break cycles
            self._events_run += 1
            if self.profiler is None:
                fn(*args)
            else:
                t0 = perf_counter()
                fn(*args)
                try:  # NOT getattr(..., repr(fn)): the default is built eagerly
                    name = fn.__qualname__
                except AttributeError:
                    name = repr(fn)
                self.profiler.record(
                    name,
                    perf_counter() - t0,
                    self.now,
                    len(queue) - self._canceled_in_queue,
                )
        self.now = max(self.now, t_end)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return events run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
