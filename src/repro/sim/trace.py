"""Structured event tracing for simulations.

A :class:`Tracer` collects typed, timestamped records from any layer.
Components don't depend on it — instead, :func:`instrument_network` hooks a
built :class:`~repro.sim.network.CollectionNetwork` non-invasively (the
same chaining trick the metrics probes use), so tracing costs nothing
unless requested.

Typical use, debugging a misbehaving run::

    net = CollectionNetwork(topo, config, profile=profile)
    tracer = instrument_network(net, kinds={"parent-change", "drop"})
    net.run()
    print(tracer.render(limit=50))
    parent_flaps = tracer.count(kind="parent-change", node=17)

Traces export to JSONL (one JSON object per line) and round-trip through
:meth:`Tracer.to_jsonl` / :meth:`Tracer.from_jsonl`; the offline analysis
CLI (``python -m repro.obs``) answers summary/timeline/flap/convergence
questions over the exported file.

Trace schema
============

Every record serializes flat: the three reserved keys ``t`` (simulated
seconds), ``kind``, ``node``, plus the record's typed fields.  Lines whose
``kind`` starts with ``_`` are tracer metadata, not events.  Record kinds
emitted by :func:`instrument_network`, by layer:

========  ==============  ====================================================
layer     kind            fields
========  ==============  ====================================================
phy       ``rx``          ``src, snr (dB), lqi, white (0/1)`` — every decoded
                          non-ack frame at this node
link      ``tx``          ``dest, ack (0/1), backoffs`` — unicast attempts
link      ``cca-fail``    ``dest, backoffs`` — CSMA gave up, frame never sent
est       ``est-insert``  ``neighbor, mode (free|evict-worst|compare)``
est       ``est-reject``  ``neighbor, reason (no-white|no-compare|all-pinned)``
est       ``pin``/``unpin``  ``neighbor`` — the network layer's pin bit
net       ``parent-change``  ``old, new`` (node ids; -1 = none)
net       ``drop``        ``origin, seq, reason (retries|queue-full)``
net       ``pkt-orig``    ``seq`` — the record node accepted one app packet
                          into its forwarding queue (its origin sequence)
net       ``pkt-tx``      ``origin, seq, to, sent (0/1), acked (0/1)`` — one
                          forwarding-level unicast attempt completed
net       ``pkt-rx``      ``origin, seq, src, thl, outcome
                          (deliver|forward|dup|drop-thl|queue-full)`` — one
                          data frame arrived at the record node
net       ``deliver``     ``origin is the record node; seq, hops`` (at roots)
net       ``etx``         ``neighbor, est, path, true`` — periodic parent-link
                          estimate vs ground truth (``etx_sample_s`` only)
app       ``boot``        (none)
faults    ``crash``/``reboot``  (none) — the record node crashed/came back
faults    ``blackout``/``blackout-end``  ``a, b`` (node ids; -1 = wildcard
                          scope, see :mod:`repro.faults.schedule`)
faults    ``quality-shift``  ``delta (dB), a, b`` (-1 = wildcard)
faults    ``interference``  ``x, y, power (dBm)`` — burst window opened
(end)     ``stats``       ``layer`` plus every counter of that layer's stats
                          dataclass, one record per node per layer at run end
========  ==============  ====================================================

Fault records carry ``node=NETWORK_NODE`` except ``crash``/``reboot``,
whose ``node`` is the affected mote.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.network import CollectionNetwork

#: JSON keys reserved for the record envelope; field names must avoid them.
RESERVED_KEYS = ("t", "kind", "node")

#: ``node`` value for network-scoped records (medium/engine stats).
NETWORK_NODE = -1


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: reserved envelope plus typed key/value fields."""

    time: float
    kind: str
    node: int
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def detail(self) -> str:
        """Legacy flat rendering of the fields (``k=v`` pairs)."""
        if set(self.fields) == {"detail"}:
            return str(self.fields["detail"])
        return " ".join(f"{k}={v}" for k, v in self.fields.items())

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": self.time, "kind": self.kind, "node": self.node}
        out.update(self.fields)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceRecord":
        fields = {k: v for k, v in data.items() if k not in RESERVED_KEYS}
        return cls(
            time=float(data["t"]), kind=str(data["kind"]), node=int(data["node"]),
            fields=fields,
        )


class JsonlSink:
    """Streaming JSONL writer with size-based rotation.

    Keeps memory bounded regardless of trace volume: each record goes to
    disk immediately.  When ``max_bytes`` is set the file rotates through
    ``path.1 … path.<max_files>`` (highest suffix oldest), so a runaway
    trace occupies at most ``max_bytes × (max_files + 1)`` on disk.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: Optional[int] = None,
        max_files: int = 3,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max(1, max_files)
        self.written = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        self._bytes = 0

    def write(self, record: TraceRecord) -> None:
        self.write_line(record.to_dict())

    def write_line(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":"), default=str) + "\n"
        if (
            self.max_bytes is not None
            and self._bytes
            and self._bytes + len(line) > self.max_bytes
        ):
            self._rotate()
        self._fh.write(line)
        self._bytes += len(line)
        self.written += 1

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for i in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                os.replace(src, self.path.with_name(f"{self.path.name}.{i + 1}"))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "w")
        self._bytes = 0
        self.rotations += 1

    def close(self, meta: Optional[Dict[str, Any]] = None) -> None:
        if self._fh.closed:
            return
        if meta is not None:
            self.write_line(meta)
            self.written -= 1  # meta lines aren't records
        self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Tracer:
    """Bounded in-memory event log with filtering and JSONL export.

    ``keep`` selects what the memory bound protects: ``"head"`` keeps the
    *first* ``max_records`` events (the historical behaviour — good for
    boot/convergence analysis), ``"tail"`` keeps the *last* ``max_records``
    as a ring buffer (good for debugging — the interesting events are
    usually the most recent ones).  ``max_records=None`` is unbounded;
    ``max_records=0`` with a ``sink`` streams to disk keeping nothing in
    memory.

    Drop accounting is split so summaries stay trustworthy: ``dropped``
    counts only records lost to the capacity bound; ``filtered`` counts
    records excluded by the ``kinds`` whitelist (deliberate, not lost).
    """

    def __init__(
        self,
        max_records: Optional[int] = 100_000,
        kinds: Optional[Set[str]] = None,
        keep: str = "head",
        sink: Optional[JsonlSink] = None,
    ) -> None:
        if keep not in ("head", "tail"):
            raise ValueError(f"keep must be 'head' or 'tail', not {keep!r}")
        self.max_records = max_records
        self.kinds = kinds
        self.keep = keep
        self.sink = sink
        if keep == "tail" and max_records:
            self.records: Union[List[TraceRecord], deque] = deque(maxlen=max_records)
        else:
            self.records = []
        #: Records lost to the capacity bound (head mode: rejected at the
        #: end; tail mode: overwritten at the front).
        self.dropped = 0
        #: Records excluded by the ``kinds`` whitelist (not lost — excluded).
        self.filtered = 0

    def emit(self, time: float, kind: str, node: int, detail: str = "", **fields: Any) -> None:
        """Record one event.  ``fields`` are typed key/values; the legacy
        ``detail`` string (if given) is stored as a ``detail`` field."""
        if self.kinds is not None and kind not in self.kinds:
            self.filtered += 1
            return
        if detail:
            fields = dict(fields, detail=detail)
        for key in RESERVED_KEYS:
            if key in fields:
                raise ValueError(f"field name {key!r} is reserved")
        record = TraceRecord(time, kind, node, fields)
        if self.sink is not None:
            self.sink.write(record)
        if self.max_records == 0:
            return
        if isinstance(self.records, deque):
            if self.max_records and len(self.records) >= self.max_records:
                self.dropped += 1
            self.records.append(record)
        else:
            if self.max_records is not None and len(self.records) >= self.max_records:
                self.dropped += 1
                return
            self.records.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> List[TraceRecord]:
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind)
            and (node is None or r.node == node)
            and t0 <= r.time <= t1
        ]

    def count(self, **kwargs: Any) -> int:
        return len(self.filter(**kwargs))

    def render(self, limit: int = 100, **filter_kwargs: Any) -> str:
        rows = self.filter(**filter_kwargs)[:limit]
        lines = [f"{r.time:10.3f}s  node {r.node:<4} {r.kind:<14} {r.detail}" for r in rows]
        if self.dropped:
            lines.append(f"... ({self.dropped} records dropped at capacity)")
        if self.filtered:
            lines.append(f"... ({self.filtered} records excluded by kind filter)")
        return "\n".join(lines) if lines else "(no records)"

    # ------------------------------------------------------------------
    # JSONL round trip
    # ------------------------------------------------------------------
    def _meta(self) -> Dict[str, Any]:
        return {
            "kind": "_meta",
            "records": len(self.records),
            "dropped": self.dropped,
            "filtered": self.filtered,
            "keep": self.keep,
        }

    def to_jsonl(self, path: Union[str, Path]) -> int:
        """Write the in-memory records (plus a ``_meta`` footer) to ``path``.
        Returns the number of records written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        n = 0
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict(), separators=(",", ":"), default=str) + "\n")
                n += 1
            fh.write(json.dumps(self._meta(), separators=(",", ":")) + "\n")
        return n

    def close(self) -> None:
        """Flush and close the streaming sink (writes the ``_meta`` footer)."""
        if self.sink is not None:
            self.sink.close(meta=self._meta())

    @classmethod
    def from_jsonl(cls, *paths: Union[str, Path]) -> "Tracer":
        """Load a tracer back from one or more JSONL files (rotated segments
        may be passed oldest-first).  Restores drop/filter accounting from
        the ``_meta`` footer when present."""
        tracer = cls(max_records=None)
        for path in paths:
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    data = json.loads(line)
                    kind = data.get("kind", "")
                    if isinstance(kind, str) and kind.startswith("_"):
                        if kind == "_meta":
                            tracer.dropped += int(data.get("dropped", 0))
                            tracer.filtered += int(data.get("filtered", 0))
                        continue
                    tracer.records.append(TraceRecord.from_dict(data))
        return tracer


# ---------------------------------------------------------------------------
# Network instrumentation
# ---------------------------------------------------------------------------
def instrument_network(
    network: "CollectionNetwork",
    kinds: Optional[Set[str]] = None,
    max_records: Optional[int] = 100_000,
    keep: str = "head",
    sink: Optional[JsonlSink] = None,
    etx_sample_s: Optional[float] = None,
) -> Tracer:
    """Attach a :class:`Tracer` to every layer of a built network.

    See the module docstring for the full record schema.  ``etx_sample_s``
    additionally samples each node's parent-link ETX estimate against the
    channel's ground truth at that period (off by default — it adds engine
    events, though it never changes results).  All hooks are passive: they
    consume no randomness and schedule nothing on the frame path, so a
    traced run is bit-identical to an untraced one.
    """
    tracer = Tracer(max_records=max_records, kinds=kinds, keep=keep, sink=sink)
    engine = network.engine

    for node in network.nodes.values():
        _hook_parent_changes(tracer, engine, node)
        _hook_mac(tracer, engine, node)
        _hook_phy(tracer, engine, node)
        _hook_boot(tracer, engine, node)
        _hook_estimator(tracer, engine, node)
        _hook_forwarding(tracer, engine, node)
    _hook_sink(tracer, network)
    injector = getattr(network, "fault_injector", None)
    if injector is not None:
        _hook_faults(tracer, injector)
    if etx_sample_s is not None:
        _schedule_etx_sampling(tracer, network, etx_sample_s)
    run_end_hooks = getattr(network, "on_run_end", None)
    if run_end_hooks is not None:
        run_end_hooks.append(lambda net: _emit_stats_records(tracer, net))
    return tracer


def _hook_parent_changes(tracer: Tracer, engine: "Engine", node: Any) -> None:
    protocol = node.protocol
    routing = getattr(protocol, "routing", protocol)
    if not hasattr(routing, "update_route"):
        return
    original = routing.update_route
    state = {"parent": getattr(routing, "parent", None)}

    def wrapped() -> None:
        original()
        new_parent = getattr(routing, "parent", None)
        if new_parent != state["parent"]:
            tracer.emit(
                engine.now,
                "parent-change",
                node.node_id,
                old=state["parent"] if state["parent"] is not None else -1,
                new=new_parent if new_parent is not None else -1,
            )
            state["parent"] = new_parent

    routing.update_route = wrapped


def _hook_mac(tracer: Tracer, engine: "Engine", node: Any) -> None:
    mac = node.mac
    original = mac.on_send_done

    def wrapped(frame: Any, result: Any) -> None:
        if not frame.is_broadcast:
            if result.sent:
                tracer.emit(
                    engine.now,
                    "tx",
                    node.node_id,
                    dest=result.dest,
                    ack=1 if result.ack_bit else 0,
                    backoffs=result.backoffs,
                )
            else:
                tracer.emit(
                    engine.now,
                    "cca-fail",
                    node.node_id,
                    dest=result.dest,
                    backoffs=result.backoffs,
                )
        if original is not None:
            original(frame, result)

    mac.on_send_done = wrapped


def _hook_phy(tracer: Tracer, engine: "Engine", node: Any) -> None:
    """Trace every decoded frame with its PHY measurements (the layer the
    white bit is derived from)."""
    mac = node.mac
    original = mac.on_frame_received

    def wrapped(frame: Any, info: Any) -> None:
        # Acks are link-layer bookkeeping; everything else is a reception
        # whose SNR/LQI/white-bit measurements are worth recording.
        if not getattr(frame, "is_ack", False):
            tracer.emit(
                engine.now,
                "rx",
                node.node_id,
                src=frame.src,
                snr=round(info.snr_db, 1),
                lqi=info.lqi,
                white=1 if info.white_bit else 0,
            )
        original(frame, info)

    mac.on_frame_received = wrapped


def _hook_boot(tracer: Tracer, engine: "Engine", node: Any) -> None:
    protocol = node.protocol
    original = protocol.start

    def wrapped() -> None:
        tracer.emit(engine.now, "boot", node.node_id)
        original()

    protocol.start = wrapped


#: (stats counter name → emitted record fields) for estimator insertions.
_INSERT_MODES = (
    ("inserts_free", "free"),
    ("inserts_evict_worst", "evict-worst"),
    ("inserts_compare", "compare"),
)
_REJECT_REASONS = (
    ("rejected_no_white", "no-white"),
    ("rejected_no_compare", "no-compare"),
    ("rejected_all_pinned", "all-pinned"),
)


def _hook_estimator(tracer: Tracer, engine: "Engine", node: Any) -> None:
    """Trace the four-bit table events: insertions (and which policy
    admitted them), rejections (and which bit blocked them), pin/unpin."""
    est = node.estimator
    if est is None:
        return
    stats = est.stats
    original_insert = est._try_insert

    def wrapped_insert(frame: Any, info: Any) -> Any:
        before = {name: getattr(stats, name) for name, _ in _INSERT_MODES + _REJECT_REASONS}
        entry = original_insert(frame, info)
        if entry is not None:
            for name, mode in _INSERT_MODES:
                if getattr(stats, name) != before[name]:
                    tracer.emit(engine.now, "est-insert", node.node_id,
                                neighbor=frame.src, mode=mode)
                    break
        else:
            for name, reason in _REJECT_REASONS:
                if getattr(stats, name) != before[name]:
                    tracer.emit(engine.now, "est-reject", node.node_id,
                                neighbor=frame.src, reason=reason)
                    break
        return entry

    est._try_insert = wrapped_insert

    original_pin, original_unpin = est.pin, est.unpin

    def wrapped_pin(neighbor: int) -> bool:
        ok = original_pin(neighbor)
        if ok:
            tracer.emit(engine.now, "pin", node.node_id, neighbor=neighbor)
        return ok

    def wrapped_unpin(neighbor: int) -> bool:
        ok = original_unpin(neighbor)
        if ok:
            tracer.emit(engine.now, "unpin", node.node_id, neighbor=neighbor)
        return ok

    est.pin = wrapped_pin
    est.unpin = wrapped_unpin


#: (forwarding stats counter → ``pkt-rx`` outcome), checked in order; the
#: receive path increments exactly one of these per data frame.
_RX_OUTCOMES = (
    ("delivered_at_root", "deliver"),
    ("duplicates_suppressed", "dup"),
    ("drops_thl", "drop-thl"),
    ("drops_queue_full", "queue-full"),
    ("forwarded", "forward"),
)


def _hook_forwarding(tracer: Tracer, engine: "Engine", node: Any) -> None:
    """Trace the causal packet path: originations (``pkt-orig``), per-attempt
    transmissions (``pkt-tx``), arrivals with their fate (``pkt-rx``) and
    datapath drops (retries exhausted / queue full) as they happen.  The
    ``(origin, seq)`` pair on every record is what
    :mod:`repro.obs.journey` correlates into span trees."""
    forwarding = getattr(node.protocol, "forwarding", None)
    if forwarding is None:
        return
    stats = forwarding.stats
    node_id = node.node_id

    original_send_app = forwarding.send_from_app

    def wrapped_send_app() -> bool:
        seq = forwarding._seq
        accepted = original_send_app()
        if accepted:
            tracer.emit(engine.now, "pkt-orig", node_id, seq=seq)
        return accepted

    forwarding.send_from_app = wrapped_send_app

    original_send_done = forwarding.on_send_done

    def wrapped_send_done(frame: Any, sent: bool, acked: bool) -> None:
        before = stats.drops_retries
        queue_head = forwarding._queue[0] if forwarding._queue else None
        tracer.emit(engine.now, "pkt-tx", node_id,
                    origin=frame.origin, seq=frame.origin_seq, to=frame.dst,
                    sent=1 if sent else 0, acked=1 if acked else 0)
        original_send_done(frame, sent, acked)
        if stats.drops_retries != before and queue_head is not None:
            tracer.emit(engine.now, "drop", node_id,
                        origin=queue_head.origin, seq=queue_head.origin_seq,
                        reason="retries")

    forwarding.on_send_done = wrapped_send_done

    original_rx = forwarding.on_data_received

    def wrapped_rx(frame: Any) -> None:
        before = {name: getattr(stats, name) for name, _ in _RX_OUTCOMES}
        original_rx(frame)
        outcome = "?"
        for name, label in _RX_OUTCOMES:
            if getattr(stats, name) != before[name]:
                outcome = label
                break
        tracer.emit(engine.now, "pkt-rx", node_id,
                    origin=frame.origin, seq=frame.origin_seq,
                    src=frame.src, thl=frame.thl, outcome=outcome)
        if outcome == "queue-full":
            tracer.emit(engine.now, "drop", node_id,
                        origin=frame.origin, seq=frame.origin_seq,
                        reason="queue-full")

    forwarding.on_data_received = wrapped_rx


def _hook_sink(tracer: Tracer, network: "CollectionNetwork") -> None:
    sink = network.sink
    original = sink.on_deliver

    def wrapped(
        origin: int, seq: int, thl: int, time: float, origin_time: Optional[float] = None
    ) -> None:
        tracer.emit(time, "deliver", origin, seq=seq, hops=thl + 1)
        original(origin, seq, thl, time, origin_time)

    # Rewire every root's delivery callback to the wrapper.
    for node in network.nodes.values():
        if not node.is_root:
            continue
        protocol = node.protocol
        if hasattr(protocol, "forwarding"):
            protocol.forwarding.on_deliver = wrapped
        else:
            protocol.on_deliver = wrapped


def _hook_faults(tracer: Tracer, injector: Any) -> None:
    """Emit one record per fault event (see the module schema table)."""

    def on_event(kind: str, now: float, fields: Dict[str, Any]) -> None:
        if kind in ("crash", "reboot"):
            tracer.emit(now, kind, fields["node"])
        elif kind in ("blackout", "blackout-end"):
            a, b = fields["a"], fields["b"]
            tracer.emit(
                now,
                kind,
                NETWORK_NODE,
                a=a if a is not None else -1,
                b=b if b is not None else -1,
            )
        elif kind == "quality-shift":
            a, b = fields["a"], fields["b"]
            tracer.emit(
                now,
                kind,
                NETWORK_NODE,
                delta=fields["delta"],
                a=a if a is not None else -1,
                b=b if b is not None else -1,
            )
        elif kind == "interference":
            tracer.emit(
                now,
                kind,
                NETWORK_NODE,
                x=fields["x"],
                y=fields["y"],
                power=fields["power"],
            )

    injector.on_event.append(on_event)


# ---------------------------------------------------------------------------
# ETX ground truth + periodic sampling
# ---------------------------------------------------------------------------
def true_link_etx(network: "CollectionNetwork", src: int, dst: int, data_bytes: int = 44) -> float:
    """Ground-truth acknowledged-delivery ETX of the (src → dst) link from
    the channel's mean gains: the data frame must survive forward and the
    L2 ack must survive the reverse direction."""
    from repro.phy.modulation import prr_fast

    channel = network.channel
    tx, rx = network.nodes[src].radio, network.nodes[dst].radio
    fwd_bytes = data_bytes + tx.params.phy_overhead_bytes
    ack_bytes = tx.params.ack_mpdu_bytes + tx.params.phy_overhead_bytes
    snr_fwd = tx.effective_tx_power_dbm + channel.mean_gain_db(src, dst) - rx.noise_floor_dbm
    snr_rev = rx.effective_tx_power_dbm + channel.mean_gain_db(dst, src) - tx.noise_floor_dbm
    p = prr_fast(tx.params.modulation, snr_fwd, fwd_bytes) * prr_fast(
        rx.params.modulation, snr_rev, ack_bytes
    )
    if p <= 0.0:
        return math.inf
    return 1.0 / p


def _schedule_etx_sampling(tracer: Tracer, network: "CollectionNetwork", period_s: float) -> None:
    engine = network.engine

    def sample() -> None:
        for node in network.nodes.values():
            if node.is_root or node.estimator is None:
                continue
            parent = node.parent
            if parent is None:
                continue
            est = node.estimator.link_quality(parent)
            truth = true_link_etx(network, node.node_id, parent)
            fields: Dict[str, Any] = {
                "neighbor": parent,
                "est": None if math.isinf(est) else round(est, 3),
                "true": None if math.isinf(truth) else round(truth, 3),
            }
            path = getattr(node.protocol, "path_etx", None)
            if callable(path):
                p = path()
                fields["path"] = None if math.isinf(p) else round(p, 3)
            tracer.emit(engine.now, "etx", node.node_id, **fields)
        engine.schedule(period_s, sample)

    engine.schedule(period_s, sample)


# ---------------------------------------------------------------------------
# End-of-run stats records
# ---------------------------------------------------------------------------
def _stats_fields(stats: Any) -> Dict[str, Any]:
    import dataclasses

    out: Dict[str, Any] = {}
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[f.name] = value
    return out


def _emit_stats_records(tracer: Tracer, network: "CollectionNetwork") -> None:
    """One ``stats`` record per node per layer, at run end.

    This is what makes an exported trace self-contained: the offline CLI
    can report exact counter totals (the four-bit events included) without
    the live objects, and they match the in-process snapshots by
    construction.
    """
    now = network.engine.now
    for nid, node in network.nodes.items():
        tracer.emit(now, "stats", nid, layer="link.mac", **_stats_fields(node.mac.stats))
        if node.estimator is not None:
            tracer.emit(now, "stats", nid, layer="est.estimator",
                        **_stats_fields(node.estimator.stats))
        routing = getattr(node.protocol, "routing", None)
        if routing is not None and hasattr(routing, "stats"):
            tracer.emit(now, "stats", nid, layer="net.routing",
                        **_stats_fields(routing.stats))
        forwarding = getattr(node.protocol, "forwarding", None)
        if forwarding is not None and hasattr(forwarding, "stats"):
            tracer.emit(now, "stats", nid, layer="net.forwarding",
                        **_stats_fields(forwarding.stats))
        # Monolithic stacks (MultiHopLQI) keep one stats object on the protocol.
        proto_stats = getattr(node.protocol, "stats", None)
        if proto_stats is not None and hasattr(proto_stats, "METRICS_PREFIX"):
            tracer.emit(now, "stats", nid, layer=proto_stats.METRICS_PREFIX,
                        **_stats_fields(proto_stats))
    medium = network.medium
    tracer.emit(now, "stats", NETWORK_NODE, layer="phy.medium",
                transmissions=medium.transmissions, deliveries=medium.deliveries,
                collisions=medium.collisions, white_bits_set=medium.white_bits_set)
    engine = network.engine
    tracer.emit(now, "stats", NETWORK_NODE, layer="sim.engine",
                events_run=engine.events_run, pending=engine.pending)
