"""Structured event tracing for simulations.

A :class:`Tracer` collects typed, timestamped records from any layer.
Components don't depend on it — instead, :func:`instrument_network` hooks a
built :class:`~repro.sim.network.CollectionNetwork` non-invasively (the
same chaining trick the metrics probes use), so tracing costs nothing
unless requested.

Typical use, debugging a misbehaving run::

    net = CollectionNetwork(topo, config, profile=profile)
    tracer = instrument_network(net, kinds={"parent-change", "drop"})
    net.run()
    print(tracer.render(limit=50))
    parent_flaps = tracer.count(kind="parent-change", node=17)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: str
    node: int
    detail: str


class Tracer:
    """Bounded in-memory event log with filtering."""

    def __init__(self, max_records: int = 100_000, kinds: Optional[Set[str]] = None) -> None:
        self.max_records = max_records
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, node: int, detail: str = "") -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, node, detail))

    # ------------------------------------------------------------------
    def filter(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> List[TraceRecord]:
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind)
            and (node is None or r.node == node)
            and t0 <= r.time <= t1
        ]

    def count(self, **kwargs) -> int:
        return len(self.filter(**kwargs))

    def render(self, limit: int = 100, **filter_kwargs) -> str:
        rows = self.filter(**filter_kwargs)[:limit]
        lines = [f"{r.time:10.3f}s  node {r.node:<4} {r.kind:<14} {r.detail}" for r in rows]
        if self.dropped:
            lines.append(f"... ({self.dropped} records dropped at capacity)")
        return "\n".join(lines) if lines else "(no records)"


def instrument_network(network, kinds: Optional[Set[str]] = None, max_records: int = 100_000) -> Tracer:
    """Attach a :class:`Tracer` to every node of a built network.

    Traced kinds: ``parent-change``, ``tx`` (unicast attempts, with the ack
    bit), ``deliver`` (at roots), ``drop`` (retries exhausted / queue full,
    sampled from stats deltas at parent changes), ``boot``.
    """
    tracer = Tracer(max_records=max_records, kinds=kinds)
    engine = network.engine

    for node in network.nodes.values():
        _hook_parent_changes(tracer, engine, node)
        _hook_mac(tracer, engine, node)
        _hook_boot(tracer, engine, node)
    _hook_sink(tracer, network)
    return tracer


def _hook_parent_changes(tracer: Tracer, engine, node) -> None:
    protocol = node.protocol
    routing = getattr(protocol, "routing", protocol)
    if not hasattr(routing, "update_route"):
        return
    original = routing.update_route
    state = {"parent": getattr(routing, "parent", None)}

    def wrapped() -> None:
        original()
        new_parent = getattr(routing, "parent", None)
        if new_parent != state["parent"]:
            tracer.emit(
                engine.now,
                "parent-change",
                node.node_id,
                f"{state['parent']} -> {new_parent}",
            )
            state["parent"] = new_parent

    routing.update_route = wrapped


def _hook_mac(tracer: Tracer, engine, node) -> None:
    mac = node.mac
    original = mac.on_send_done

    def wrapped(frame, result) -> None:
        if result.sent and not frame.is_broadcast:
            tracer.emit(
                engine.now,
                "tx",
                node.node_id,
                f"to {result.dest} ack={'1' if result.ack_bit else '0'}",
            )
        if original is not None:
            original(frame, result)

    mac.on_send_done = wrapped


def _hook_boot(tracer: Tracer, engine, node) -> None:
    protocol = node.protocol
    original = protocol.start

    def wrapped() -> None:
        tracer.emit(engine.now, "boot", node.node_id, "")
        original()

    protocol.start = wrapped


def _hook_sink(tracer: Tracer, network) -> None:
    sink = network.sink
    original = sink.on_deliver

    def wrapped(origin: int, seq: int, thl: int, time: float, origin_time=None) -> None:
        tracer.emit(time, "deliver", origin, f"seq={seq} hops={thl + 1}")
        original(origin, seq, thl, time, origin_time)

    # Rewire every root's delivery callback to the wrapper.
    for node in network.nodes.values():
        if not node.is_root:
            continue
        protocol = node.protocol
        if hasattr(protocol, "forwarding"):
            protocol.forwarding.on_deliver = wrapped
        else:
            protocol.on_deliver = wrapped
