"""A simulated node: radio + MAC + (estimator) + network protocol + app."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.estimator import HybridLinkEstimator
from repro.link.mac import Mac
from repro.net.ctp.protocol import CtpProtocol
from repro.net.multihoplqi import MultiHopLqi
from repro.phy.radio import Radio
from repro.workloads.collection import CollectionSource

#: Any object exposing start() / send_from_app() / parent / is_root.
Protocol = Union[CtpProtocol, MultiHopLqi, object]


@dataclass
class Node:
    """Composition container for one mote's full stack."""

    node_id: int
    radio: Radio
    mac: Mac
    protocol: Protocol
    #: Present for estimator-based stacks; MultiHopLQI has none.
    estimator: Optional[HybridLinkEstimator]
    source: Optional[CollectionSource]
    boot_time: float
    #: Failure injection: True between a fault crash and its reboot.  Boot
    #: and source-start events check it so a node that crashed before its
    #: staggered boot time never comes up (join/leave churn).
    crashed: bool = False

    @property
    def is_root(self) -> bool:
        return self.protocol.is_root

    @property
    def parent(self) -> Optional[int]:
        return self.protocol.parent

    def data_transmissions(self) -> int:
        """Unicast frames this node actually put on the air (data only —
        beacons are broadcast, acks are not counted, per the paper's cost)."""
        return self.mac.stats.tx_unicast
