"""Cross-layer per-packet metadata.

``RxInfo`` is the physical layer's report attached to every received frame:
it carries the raw measurements (RSSI, SINR, LQI) *and* the distilled
**white bit** the 4-bit architecture exposes to the link estimator.

``TxResult`` is the link layer's report for every transmitted unicast frame:
it carries the **ack bit**.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RxInfo:
    """Physical-layer metadata for one received frame."""

    timestamp: float
    rssi_dbm: float
    snr_db: float
    lqi: int
    #: The white bit: True ⇒ every symbol in the packet had very low
    #: probability of decoding error.  False is *not* evidence of a bad
    #: channel (the converse does not hold).
    white_bit: bool

    def __post_init__(self) -> None:
        if not 0 <= self.lqi <= 255:
            raise ValueError(f"LQI out of range: {self.lqi}")


@dataclass(frozen=True)
class TxResult:
    """Link-layer outcome for one unicast transmission attempt."""

    timestamp: float
    dest: int
    #: Whether the frame was actually put on the air (CSMA can fail).
    sent: bool
    #: The ack bit: True ⇒ a synchronous layer-2 ack was received.  False
    #: means the packet *may or may not* have arrived.
    ack_bit: bool
    #: Number of CSMA backoff rounds taken before transmitting (or giving up).
    backoffs: int = 0
