"""Vectorized radio medium: SoA reception batches + spatial culling.

:class:`FastRadioMedium` is the opt-in ``fast`` backend selected with
``SimConfig(medium="fast")``.  It keeps the exact medium's public contract
(attach/finalize/candidate_receivers/channel_clear/start_transmission,
the same counters, the same fault overlay) but restructures the hot path:

* **Structure-of-arrays batches.**  ``finalize()`` lowers each sender's
  per-candidate rows into parallel numpy arrays (mean gain, noise floor in
  mW and dB, pair-state slot indices), and ``_evaluate_receptions``
  computes the whole candidate set of a transmission with array kernels
  from :mod:`repro.phy.vector` — one OU advance, one Gilbert transition,
  one SNR→PRR gather, one decode draw — instead of a Python loop.
* **Spatial culling.**  A :class:`~repro.sim.spatial.SpatialGrid` over the
  channel positions bounds candidate construction, carrier sense and
  interference accumulation to nodes within the link budget's reach, so
  far-away nodes are never enumerated: candidate construction is O(N·k)
  in the number of in-range neighbors k, not O(N²).
* **Incremental maintenance** (DESIGN.md §11).  After ``finalize()`` the
  structure is patched in place instead of rebuilt: ``attach``/``detach``/
  ``update_position`` re-bucket the moved node in the grid, bump a global
  *epoch*, and mark the node plus its old and new neighbors stale.  A
  sender's SoA batch carries the epoch it was built at and is lazily
  rebuilt — O(k), one sender — the next time that sender transmits or
  carrier-senses.  Per-pair channel-state slots are allocated on first
  in-range contact and recycled through a free list when a pair drifts
  out of range, so a 10k-node mobile run never allocates O(N²) slots.
  Cached dense interference vectors are invalidated per affected
  interferer only.  Everything stays O(k) per structural event.

**Equivalence contract** (DESIGN.md §9): the fast backend is
*distribution-equivalent* to the exact scalar path, not bit-identical.
The channel processes (OU recurrence, Gilbert two-state chain), PRR
quantization, LQI logistic and white-bit rule are mathematically the same
— PRR table entries are byte-identical — but randomness comes from numpy
``Generator`` streams (seeded from the master seed via the same
``derive_seed`` scheme as the exact path's named streams), carrier sense
uses the mean link gain, and interference uses mean-field gains with a
Jensen correction rather than advancing the interferer pair's fading
state.  The exact backend (``medium="exact"``, the default) remains the
bit-identical golden/bench ``--compare`` contract.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from numpy.random import Generator, PCG64

from repro.link.frame import JamFrame
from repro.phy.channel import ChannelModel
from repro.phy.lqi import DEFAULT_LQI_MODEL, LQI_MAX, LQI_MIN, LqiModel, _LQI_SPAN
from repro.phy.radio import RadioParams
from repro.phy.vector import (
    gilbert_advance,
    mean_field_extra_db,
    ou_advance,
    prr_lookup,
    prr_table,
)
from repro.phy.white_bit import DEFAULT_WHITE_BIT, LqiWhiteBit, WhiteBitPolicy
from repro.sim.engine import Engine
from repro.sim.medium import (
    _NEIGHBOR_SNR_CUTOFF_DB,
    RadioMedium,
    _Transmission,
)
from repro.sim.packets import RxInfo
from repro.sim.rng import RngManager, derive_seed
from repro.sim.spatial import SpatialGrid

#: Shadowing headroom (in sigmas) added to the link budget when sizing the
#: spatial query radius: a pair outside the radius is mis-culled only when
#: its shadowing draw exceeds this many sigmas (P ≈ 3·10⁻⁵ at 4σ).
DEFAULT_SHADOW_MARGIN_SIGMAS = 4.0

#: Bound on the total number of cached dense interference vectors
#: (entries across all per-interferer sub-dicts).
_INTER_CACHE_MAX = 65536

_MISSING = object()


class _SenderBatch:
    """Per-sender structure-of-arrays candidate block."""

    __slots__ = (
        "rids",
        "rid_list",
        "receivers",
        "mean_gain",
        "noise_mw",
        "noise_db",
        "pair_idx",
        "mod_uniform",
        "mod_ids",
        "mod_names",
        "n",
        "all_idx",
        "rid_dense",
        "cca_heard",
        "epoch",
    )

    def __init__(
        self,
        rids: Any,
        rid_list: List[int],
        receivers: List[Any],
        mean_gain: Any,
        noise_mw: Any,
        noise_db: Any,
        pair_idx: Any,
        mod_uniform: Optional[str],
        mod_ids: Any,
        mod_names: List[str],
        rid_dense: Any,
        cca_heard: frozenset,
        epoch: int,
    ) -> None:
        self.rids = rids
        self.rid_list = rid_list
        self.receivers = receivers
        self.mean_gain = mean_gain
        self.noise_mw = noise_mw
        self.noise_db = noise_db
        self.pair_idx = pair_idx
        self.mod_uniform = mod_uniform
        self.mod_ids = mod_ids
        self.mod_names = mod_names
        self.n = len(rid_list)
        self.all_idx = np.arange(self.n)
        #: Index of each candidate in the medium's dense receiver axis
        #: (used to gather accumulated interference vectors).
        self.rid_dense = rid_dense
        #: Node ids whose CCA hears this sender's carrier (mean-field).
        self.cca_heard = cca_heard
        #: Structural epoch this batch was built at; stale when below the
        #: sender's entry in ``FastRadioMedium._sender_epoch``.
        self.epoch = epoch


class FastRadioMedium(RadioMedium):
    """Numpy-vectorized, spatially-culled medium backend (``medium="fast"``)."""

    supports_incremental = True

    def __init__(
        self,
        engine: Engine,
        channel: ChannelModel,
        rng: RngManager,
        lqi_model: LqiModel = DEFAULT_LQI_MODEL,
        white_bit_policy: WhiteBitPolicy = DEFAULT_WHITE_BIT,
        snr_cutoff_db: float = _NEIGHBOR_SNR_CUTOFF_DB,
        shadow_margin_sigmas: float = DEFAULT_SHADOW_MARGIN_SIGMAS,
    ) -> None:
        super().__init__(engine, channel, rng, lqi_model, white_bit_policy)
        self.snr_cutoff_db = snr_cutoff_db
        self.shadow_margin_sigmas = shadow_margin_sigmas
        #: sender id → SoA candidate batch (built by :meth:`finalize`).
        self._soa: Dict[int, _SenderBatch] = {}
        #: unordered pair → slot in the shared channel-state arrays.
        self._pair_slot: Dict[Tuple[int, int], int] = {}
        self._ou_x: Any = None
        self._ou_t: Any = None
        self._g_bimodal: Any = None
        self._g_faded: Any = None
        self._g_t: Any = None
        #: sender id → frozenset of node ids whose CCA hears its carrier.
        self._cca_heard: Dict[int, frozenset] = {}
        #: Dense receiver axis: every attached receiver id in attach order,
        #: plus its coordinates as parallel arrays (built by finalize).
        #: A detached receiver keeps its dense slot with coordinates set to
        #: +inf (so distance tests exclude it); a same-id reattach reuses
        #: the slot, and a brand-new id appends to the axis.
        self._dense_ids: List[int] = []
        self._dense_index: Dict[int, int] = {}
        self._dense_x: Any = None
        self._dense_y: Any = None
        #: interferer → {tx power → mean interference power in mW at every
        #: dense receiver} (or None when none is in reach); built once per
        #: interferer in O(N) and gathered per batch — see _dense_inter_mw.
        #: Nested per interferer so a structural event involving one node
        #: drops only that node's vectors in O(1).
        self._inter_cache: Dict[int, Dict[float, Any]] = {}
        self._inter_cache_entries = 0
        #: Lazily-invalidated interference entries: {interferer: {receiver:
        #: None}} marks receivers whose entry in the interferer's cached
        #: vectors is stale (the receiver moved / attached / detached).
        #: Patched on the next query — under continuous mobility most marks
        #: are overwritten before the vector is ever read, so eager
        #: patching would recompute gains that are never used.
        self._inter_dirty: Dict[int, Dict[int, None]] = {}
        #: Incremental-maintenance state (DESIGN.md §11): the global
        #: structural epoch, the minimum epoch each sender's batch must
        #: have been built at to be served, recycled pair slots, and the
        #: current capacity of the per-pair state arrays.
        self._epoch = 0
        self._sender_epoch: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._slot_cap = 0
        #: receiver id → (noise mW, noise dB), derived once per receiver —
        #: noise floors never change after hardware variation is applied.
        self._noise_cache: Dict[int, Tuple[float, float]] = {}
        #: (modulation, frame bytes) → quantized PRR table.
        self._prr_tables: Dict[Tuple[str, int], Any] = {}
        self._grid: Optional[SpatialGrid] = None
        self._radius_m = 0.0
        self._ou_mean_extra_db = 0.0
        self._bimodal_mean_extra_db = 0.0
        self._expected_bimodal_extra_db = 0.0
        # Batched draw streams; seeded from the master seed under the same
        # derive_seed scheme as the exact path's named Random streams
        # ("ou-init"/"ou"/"bimodal"/"rx"), namespaced under "fast".
        master = rng.master_seed
        self._gen_ou_init = Generator(PCG64(derive_seed(master, "fast", "ou-init")))
        self._gen_ou = Generator(PCG64(derive_seed(master, "fast", "ou")))
        self._gen_bimodal_init = Generator(PCG64(derive_seed(master, "fast", "bimodal")))
        self._gen_fade = Generator(PCG64(derive_seed(master, "fast", "bimodal-dwell")))
        self._gen_rx = Generator(PCG64(derive_seed(master, "fast", "rx")))
        self._gen_lqi = Generator(PCG64(derive_seed(master, "fast", "lqi")))

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _link_budget_radius_m(self) -> float:
        """Spatial query radius from the link budget.

        Any pair that could pass the mean-SNR candidate cutoff — given
        shadowing up to ``shadow_margin_sigmas``·σ above its mean — lies
        within this radius.  Interference accumulation shares it: beyond
        this distance a transmitter's mean contribution at a receiver is
        below the candidate cutoff relative to the noise floor (< 3.2% of
        noise power at the −15 dB default, a < 0.14 dB SINR shift).
        """
        channel = self.channel
        ptx_max = max(
            (p.radio.effective_tx_power_dbm for p in self._participants.values()),
            default=0.0,
        )
        nf_min = min(
            (p.radio.noise_floor_dbm for p in self._participants.values()),
            default=-98.0,
        )
        margin = self.shadow_margin_sigmas * channel.shadowing_sigma_db
        pathloss = channel.pathloss
        budget_db = ptx_max - nf_min - self.snr_cutoff_db + margin
        if budget_db <= pathloss.pl_d0_db:
            return pathloss.d0_m
        exponent_db = (budget_db - pathloss.pl_d0_db) / (10.0 * pathloss.exponent)
        return pathloss.d0_m * 10.0 ** exponent_db

    def finalize(self) -> None:
        """Build the spatial index, SoA batches and shared channel state.

        Idempotent like the exact path's ``finalize`` — a second call
        without an interleaving :meth:`attach` is a no-op, so the
        eagerly-drawn OU/Gilbert initial state is never re-drawn mid-run.
        """
        if self._finalized:
            return
        channel = self.channel
        positions = channel.positions
        self._radius_m = self._link_budget_radius_m()
        grid_ids = {nid: positions[nid] for nid in self._participants}
        self._grid = SpatialGrid(grid_ids, self._radius_m)
        self._inter_cache = {}
        self._inter_cache_entries = 0
        self._inter_dirty = {}
        self._noise_cache = {}
        self._pair_slot = {}
        pair_slot = self._pair_slot
        self._candidates = {}
        self._rx_rows = {}  # unused by this backend; kept empty for parity
        self._soa = {}
        self._cca_heard = {}
        self._epoch = 0
        self._sender_epoch = {}
        self._free_slots = []

        #: Receiver attach order — candidate lists keep the exact path's
        #: enumeration order so the two backends deliver in the same order.
        receiver_order = {rid: i for i, rid in enumerate(self._receivers)}
        self._dense_index = receiver_order
        self._dense_ids = list(self._receivers)
        self._dense_x = np.asarray(
            [positions[rid][0] for rid in self._dense_ids], dtype=np.float64
        )
        self._dense_y = np.asarray(
            [positions[rid][1] for rid in self._dense_ids], dtype=np.float64
        )
        mod_name_index: Dict[str, int] = {}

        cca_heard: Dict[int, List[int]] = {}
        for sid in self._participants:
            cca_heard[sid] = []

        for sid in sorted(self._participants):
            sender = self._participants[sid]
            ptx = sender.radio.effective_tx_power_dbm
            near = self._grid.neighbors(sid)
            near.sort(key=lambda rid: receiver_order.get(rid, len(receiver_order)))
            row: List[Tuple[int, float]] = []
            rid_list: List[int] = []
            receivers: List[Any] = []
            gains: List[float] = []
            noise_mw: List[float] = []
            noise_db: List[float] = []
            pair_idx: List[int] = []
            mods: List[str] = []
            for rid in near:
                receiver = self._receivers.get(rid)
                gain = None
                if receiver is not None:
                    gain = channel.mean_gain_db(sid, rid)
                    mean_snr = ptx + gain - receiver.radio.noise_floor_dbm
                    if mean_snr >= self.snr_cutoff_db:
                        row.append((rid, gain))
                        rid_list.append(rid)
                        receivers.append(receiver)
                        gains.append(gain)
                        n_mw = 10.0 ** (receiver.radio.noise_floor_dbm / 10.0)
                        noise_mw.append(n_mw)
                        noise_db.append(10.0 * math.log10(n_mw))
                        pair = (sid, rid) if sid <= rid else (rid, sid)
                        slot = pair_slot.get(pair)
                        if slot is None:
                            slot = pair_slot[pair] = len(pair_slot)
                        pair_idx.append(slot)
                        mods.append(receiver.radio.params.modulation)
                # Carrier sense reach: rid hears sid's carrier when the
                # mean RSSI clears rid's CCA threshold (mean-field CCA —
                # see the class docstring's equivalence contract).
                listener = self._participants.get(rid)
                if listener is not None:
                    if gain is None:
                        gain = channel.mean_gain_db(sid, rid)
                    if ptx + gain >= listener.radio.params.cca_threshold_dbm:
                        cca_heard[sid].append(rid)
            self._candidates[sid] = row
            mod_uniform: Optional[str] = mods[0] if mods and len(set(mods)) == 1 else None
            mod_names = sorted(set(mods))
            mod_name_index = {name: i for i, name in enumerate(mod_names)}
            mod_ids = np.fromiter(
                (mod_name_index[m] for m in mods), dtype=np.int64, count=len(mods)
            )
            self._soa[sid] = _SenderBatch(
                rids=np.asarray(rid_list, dtype=np.int64),
                rid_list=rid_list,
                receivers=receivers,
                mean_gain=np.asarray(gains, dtype=np.float64),
                noise_mw=np.asarray(noise_mw, dtype=np.float64),
                noise_db=np.asarray(noise_db, dtype=np.float64),
                pair_idx=np.asarray(pair_idx, dtype=np.int64),
                mod_uniform=mod_uniform,
                mod_ids=mod_ids,
                mod_names=mod_names,
                rid_dense=np.fromiter(
                    (receiver_order[rid] for rid in rid_list),
                    dtype=np.int64,
                    count=len(rid_list),
                ),
                cca_heard=frozenset(cca_heard[sid]),
                epoch=0,
            )
        self._cca_heard = {sid: batch.cca_heard for sid, batch in self._soa.items()}

        # ---- shared per-pair channel state (one slot per unordered pair)
        n_pairs = len(pair_slot)
        self._slot_cap = n_pairs
        if channel.temporal_sigma_db > 0.0:
            self._ou_x = self._gen_ou_init.standard_normal(n_pairs) * channel.temporal_sigma_db
            self._ou_t = np.zeros(n_pairs)
        else:
            self._ou_x = self._ou_t = None
        if channel.bimodal_fraction > 0.0:
            membership = self._gen_bimodal_init.random(n_pairs) < channel.bimodal_fraction
            pi_faded = channel.fade_dwell_s / (channel.fade_dwell_s + channel.good_dwell_s)
            faded0 = self._gen_bimodal_init.random(n_pairs) < pi_faded
            self._g_bimodal = membership
            self._g_faded = faded0 & membership
            self._g_t = np.zeros(n_pairs)
        else:
            self._g_bimodal = self._g_faded = self._g_t = None

        # ---- mean-field interference corrections (DESIGN.md §9)
        ou_extra, bimodal_extra = mean_field_extra_db(
            channel.temporal_sigma_db,
            channel.bimodal_fraction,
            channel.fade_depth_db,
            channel.fade_dwell_s,
            channel.good_dwell_s,
        )
        self._ou_mean_extra_db = ou_extra
        self._bimodal_mean_extra_db = bimodal_extra
        if channel.bimodal_fraction > 0.0:
            f = channel.bimodal_fraction
            factor = (1.0 - f) + f * 10.0 ** (bimodal_extra / 10.0)
            self._expected_bimodal_extra_db = 10.0 * math.log10(factor)
        else:
            self._expected_bimodal_extra_db = 0.0
        self._finalized = True

    # ------------------------------------------------------------------
    # Incremental maintenance (DESIGN.md §11)
    # ------------------------------------------------------------------
    # After finalize(), structural changes never trigger a full rebuild.
    # Each mutator bumps the global epoch, records the bumped epoch for
    # every sender whose candidate set could have changed (the changed
    # node plus its old and new spatial neighbors — O(k) of them), and
    # drops those nodes' cached dense interference vectors.  Batches are
    # then rebuilt lazily, one sender at a time, by _ensure_batch.

    @staticmethod
    def _pair_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def _ensure_batch(self, sid: int) -> Optional[_SenderBatch]:
        """Return ``sid``'s batch, rebuilding it if structurally stale."""
        batch = self._soa.get(sid)
        if batch is not None and batch.epoch >= self._sender_epoch.get(sid, 0):
            return batch
        return self._build_batch(sid)

    def _build_batch(self, sid: int) -> Optional[_SenderBatch]:
        """Rebuild one sender's SoA batch from the live grid — O(k)."""
        sender = self._participants.get(sid)
        if sender is None:
            return None
        grid = self._grid
        assert grid is not None
        channel = self.channel
        ptx = sender.radio.effective_tx_power_dbm
        order = self._dense_index
        near = grid.neighbors(sid)
        near.sort(key=lambda rid: order.get(rid, len(order)))
        # One batched gain derivation for the whole neighborhood: under
        # mobility every neighbor's cached mean gain is stale after each
        # tick, so this loop is the rebuild hot path.
        near_gains = channel.mean_gain_many(sid, near)
        noise_cache = self._noise_cache
        row: List[Tuple[int, float]] = []
        rid_list: List[int] = []
        receivers: List[Any] = []
        gains: List[float] = []
        noise_mw: List[float] = []
        noise_db: List[float] = []
        mods: List[str] = []
        heard: List[int] = []
        for rid, gain in zip(near, near_gains):
            receiver = self._receivers.get(rid)
            if receiver is not None:
                mean_snr = ptx + gain - receiver.radio.noise_floor_dbm
                if mean_snr >= self.snr_cutoff_db:
                    row.append((rid, gain))
                    rid_list.append(rid)
                    receivers.append(receiver)
                    gains.append(gain)
                    noise = noise_cache.get(rid)
                    if noise is None:
                        # Noise floors are fixed once hardware variation
                        # has been applied (pre-finalize), so the derived
                        # mW / dB pair is cacheable per receiver.
                        n_mw = 10.0 ** (receiver.radio.noise_floor_dbm / 10.0)
                        noise = noise_cache[rid] = (n_mw, 10.0 * math.log10(n_mw))
                    noise_mw.append(noise[0])
                    noise_db.append(noise[1])
                    mods.append(receiver.radio.params.modulation)
            listener = self._participants.get(rid)
            if listener is not None:
                if ptx + gain >= listener.radio.params.cca_threshold_dbm:
                    heard.append(rid)
        # Structural-reuse fast path: under sub-cell mobility steps, a
        # rebuilt batch almost always has the same rows as the previous
        # one — only the mean gains moved.  Reusing the prior batch's
        # structural arrays (ids, noise, slots, modulations, dense gather
        # index) after verifying row identity, receiver objects, and live
        # pair slots skips most of the allocation cost of a full rebuild.
        prev = self._soa.get(sid)
        if prev is not None and rid_list == prev.rid_list:
            pair_slot_map = self._pair_slot
            prev_idx = prev.pair_idx
            reusable = True
            for i, rid in enumerate(rid_list):
                if receivers[i] is not prev.receivers[i] or pair_slot_map.get(
                    self._pair_key(sid, rid)
                ) != prev_idx[i]:
                    # A pair that left range and came back was re-slotted
                    # (or a participant object was swapped): full rebuild.
                    reusable = False
                    break
            if reusable:
                prev.mean_gain = np.asarray(gains, dtype=np.float64)
                heard_f = frozenset(heard)
                if heard_f != prev.cca_heard:
                    prev.cca_heard = heard_f
                    self._cca_heard[sid] = heard_f
                prev.epoch = self._epoch
                self._candidates[sid] = row
                return prev
        pair_idx = [self._alloc_pair_slot(self._pair_key(sid, rid)) for rid in rid_list]
        mod_uniform: Optional[str] = mods[0] if mods and len(set(mods)) == 1 else None
        mod_names = sorted(set(mods))
        mod_name_index = {name: i for i, name in enumerate(mod_names)}
        batch = _SenderBatch(
            rids=np.asarray(rid_list, dtype=np.int64),
            rid_list=rid_list,
            receivers=receivers,
            mean_gain=np.asarray(gains, dtype=np.float64),
            noise_mw=np.asarray(noise_mw, dtype=np.float64),
            noise_db=np.asarray(noise_db, dtype=np.float64),
            pair_idx=np.asarray(pair_idx, dtype=np.int64),
            mod_uniform=mod_uniform,
            mod_ids=np.fromiter(
                (mod_name_index[m] for m in mods), dtype=np.int64, count=len(mods)
            ),
            mod_names=mod_names,
            rid_dense=np.fromiter(
                (order[rid] for rid in rid_list), dtype=np.int64, count=len(rid_list)
            ),
            cca_heard=frozenset(heard),
            epoch=self._epoch,
        )
        self._soa[sid] = batch
        self._candidates[sid] = row
        self._cca_heard[sid] = batch.cca_heard
        return batch

    # ---- per-pair channel-state slots: lazy allocation + free list ----
    def _alloc_pair_slot(self, pair: Tuple[int, int]) -> int:
        """Slot for ``pair``, allocating (and drawing initial state) on
        first in-range contact.  Recycled slots come off the free list;
        otherwise the state arrays grow geometrically."""
        slot = self._pair_slot.get(pair)
        if slot is not None:
            return slot
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            # Invariant: len(_pair_slot) + len(_free_slots) == high-water
            # slot count, so with no free slots the next fresh index is
            # exactly len(_pair_slot).
            slot = len(self._pair_slot)
            if slot >= self._slot_cap:
                self._grow_slots(slot + 1)
        self._pair_slot[pair] = slot
        self._init_slot(slot)
        return slot

    def _init_slot(self, slot: int) -> None:
        """Draw fresh OU / Gilbert initial state for a newly allocated slot.

        Same distributions as the finalize-time vectorized draws; a pair
        re-entering range redraws (the fast backend does not remember
        out-of-range pairs — see DESIGN.md §11 for the equivalence caveat).
        """
        channel = self.channel
        now = self.engine.now
        if self._ou_x is not None:
            self._ou_x[slot] = (
                self._gen_ou_init.standard_normal() * channel.temporal_sigma_db
            )
            self._ou_t[slot] = now
        if self._g_bimodal is not None:
            member = bool(self._gen_bimodal_init.random() < channel.bimodal_fraction)
            pi_faded = channel.fade_dwell_s / (channel.fade_dwell_s + channel.good_dwell_s)
            faded = bool(self._gen_bimodal_init.random() < pi_faded)
            self._g_bimodal[slot] = member
            self._g_faded[slot] = member and faded
            self._g_t[slot] = now

    def _evict_pair(self, pair: Tuple[int, int]) -> None:
        """Release a pair's slot back to the free list (out of range)."""
        slot = self._pair_slot.pop(pair, None)
        if slot is not None:
            self._free_slots.append(slot)

    def _grow_slots(self, min_cap: int) -> None:
        new_cap = max(min_cap, 2 * self._slot_cap, 64)

        def grow(arr: Any) -> Any:
            out = np.zeros(new_cap, dtype=arr.dtype)
            out[: arr.shape[0]] = arr
            return out

        if self._ou_x is not None:
            self._ou_x = grow(self._ou_x)
            self._ou_t = grow(self._ou_t)
        if self._g_bimodal is not None:
            self._g_bimodal = grow(self._g_bimodal)
            self._g_faded = grow(self._g_faded)
            self._g_t = grow(self._g_t)
        self._slot_cap = new_cap

    def _drop_inter(self, oid: int) -> None:
        """Invalidate the cached dense interference vectors from ``oid``."""
        sub = self._inter_cache.pop(oid, None)
        if sub:
            self._inter_cache_entries -= len(sub)
        self._inter_dirty.pop(oid, None)

    def _mark_inter_dirty(self, oids: Dict[int, None], rid: int) -> None:
        """Mark receiver ``rid``'s entry stale in each of ``oids``'s cached
        interference vectors — O(1) per mark; patched at next query."""
        inter_cache = self._inter_cache
        dirty = self._inter_dirty
        for a in oids:
            if a in inter_cache:
                d = dirty.get(a)
                if d is None:
                    d = dirty[a] = {}
                d[rid] = None

    def _patch_inter(self, oid: int, rid: int) -> None:
        """Recompute receiver ``rid``'s entry in each cached interference
        vector from ``oid``.

        When a node moves (or attaches/detaches), a neighboring
        interferer's vector changes at exactly one entry — the changed
        receiver's.  Patching that entry in place is O(cached powers)
        instead of dropping the whole vector and paying an O(k) rebuild
        at the next overlap (the dominant cost of naive invalidation
        under continuous mobility).  In-place mutation is safe: the hot
        path only aliases these arrays within a single event.
        """
        by_oid = self._inter_cache.get(oid)
        if not by_oid:
            return
        j = self._dense_index.get(rid)
        if j is None:
            return  # rid is not on the dense receiver axis: no entry to patch
        opos = self.channel.positions.get(oid)
        if opos is None:
            self._drop_inter(oid)
            return
        dx = float(self._dense_x[j]) - opos[0]
        dy = float(self._dense_y[j]) - opos[1]
        in_range = (
            rid != oid
            and rid in self._receivers
            and dx * dx + dy * dy <= self._radius_m * self._radius_m
        )
        if not in_range:
            for dense in by_oid.values():
                if dense is not None:
                    dense[j] = 0.0
            return
        extra = self._ou_mean_extra_db
        if self._g_bimodal is not None:
            slot = self._pair_slot.get((oid, rid) if oid <= rid else (rid, oid))
            if slot is None:
                extra += self._expected_bimodal_extra_db
            elif self._g_bimodal[slot]:
                extra += self._bimodal_mean_extra_db
        gain = self.channel.mean_gain_db(oid, rid) + extra
        stale_nones = [p for p, dense in by_oid.items() if dense is None]
        for p in stale_nones:
            # The vector said "no receiver in reach", which just became
            # false — drop it for a rebuild at next use.
            del by_oid[p]
            self._inter_cache_entries -= 1
        for power_dbm, dense in by_oid.items():
            dense[j] = 10.0 ** ((power_dbm + gain) / 10.0)

    def _bump_neighborhood(
        self, node_id: int, neighbor_lists: List[List[int]]
    ) -> Dict[int, None]:
        """Mark ``node_id`` and the union of ``neighbor_lists`` stale;
        returns the deduplicated neighbor union (insertion-ordered)."""
        self._epoch += 1
        epoch = self._epoch
        sender_epoch = self._sender_epoch
        sender_epoch[node_id] = epoch
        affected: Dict[int, None] = {}
        for lst in neighbor_lists:
            for a in lst:
                affected[a] = None
        for a in affected:
            sender_epoch[a] = epoch
        return affected

    # ---- structural mutators ------------------------------------------
    def attach(self, participant: Any, receiver: bool = True) -> None:
        """Register a participant; after finalize, patch incrementally.

        A post-finalize attach requires the node's channel position to be
        registered first — without it the spatial index cannot place the
        node and every existing batch would silently go stale, so this
        raises ``RuntimeError`` instead of serving wrong results.
        """
        if not self._finalized:
            super().attach(participant, receiver)
            return
        nid = participant.node_id
        if nid in self._participants:
            raise ValueError(f"node {nid} already attached")
        pos = self.channel.positions.get(nid)
        if pos is None:
            raise RuntimeError(
                f"attach after finalize: node {nid} has no channel position; "
                "call channel.add_position first (the fast backend patches "
                "structure incrementally and cannot place an unlocated node)"
            )
        self._participants[nid] = participant
        if receiver:
            self._receivers[nid] = participant
            j = self._dense_index.get(nid)
            if j is None:
                self._dense_index[nid] = len(self._dense_ids)
                self._dense_ids.append(nid)
                self._dense_x = np.append(self._dense_x, pos[0])
                self._dense_y = np.append(self._dense_y, pos[1])
                # The dense axis grew: every cached interference vector is
                # now too short for it.  Drop them all (rare event).
                self._inter_cache.clear()
                self._inter_cache_entries = 0
                self._inter_dirty.clear()
            else:
                # Same-id reattach (reboot): reuse the tombstoned slot.
                self._dense_x[j] = pos[0]
                self._dense_y[j] = pos[1]
        grid = self._grid
        assert grid is not None
        grid.add(nid, pos)
        affected = self._bump_neighborhood(nid, [grid.neighbors(nid)])
        self._drop_inter(nid)
        self._mark_inter_dirty(affected, nid)

    def detach(self, node_id: int) -> None:
        """Remove a participant; after finalize, patch incrementally.

        The channel position is kept (pair identity survives a crash /
        reboot cycle) but the dense receiver slot is tombstoned with +inf
        coordinates so interference vectors exclude the dead node, and
        the node's pair slots are released for reuse.
        """
        if not self._finalized:
            super().detach(node_id)
            return
        if node_id not in self._participants:
            raise ValueError(f"detach: node {node_id} is not attached to the medium")
        grid = self._grid
        assert grid is not None
        old_neighbors = grid.neighbors(node_id) if node_id in grid else []
        if node_id in grid:
            grid.remove(node_id)
        del self._participants[node_id]
        self._receivers.pop(node_id, None)
        j = self._dense_index.get(node_id)
        if j is not None:
            self._dense_x[j] = math.inf
            self._dense_y[j] = math.inf
        self._soa.pop(node_id, None)
        self._candidates.pop(node_id, None)
        self._cca_heard.pop(node_id, None)
        affected = self._bump_neighborhood(node_id, [old_neighbors])
        self._sender_epoch.pop(node_id, None)
        self._drop_inter(node_id)
        self._mark_inter_dirty(affected, node_id)
        for a in affected:
            self._evict_pair(self._pair_key(node_id, a))

    def update_position(self, node_id: int, x: float, y: float) -> None:
        """Move a node in O(k): re-bucket, re-derive means, mark stale.

        Pair slots whose endpoints drifted out of spatial range are
        evicted; everything else (shadowing, in-range OU/Gilbert state)
        survives the move keyed by pair identity.
        """
        if not self._finalized:
            super().update_position(node_id, x, y)
            return
        grid = self._grid
        assert grid is not None
        if node_id not in grid:
            # A channel-only position (never attached): no batch depends
            # on it, but its interference vectors re-derive.
            self.channel.update_position(node_id, (x, y))
            self._drop_inter(node_id)
            return
        if grid.same_cell(node_id, x, y):
            # Mobility fast path: a sub-cell step means the same 3×3 block
            # serves both the before and after neighbor filters — one scan
            # instead of two (the node's own entry is excluded, so moving
            # it first cannot perturb either list).
            ox, oy = grid.position(node_id)
            grid.move(node_id, x, y)
            old_neighbors, new_neighbors = grid.neighbors_two_points(
                ox, oy, x, y, exclude=node_id
            )
        else:
            old_neighbors = grid.neighbors(node_id)
            grid.move(node_id, x, y)
            new_neighbors = grid.neighbors(node_id)
        self.channel.update_position(node_id, (x, y))
        j = self._dense_index.get(node_id)
        if j is not None and node_id in self._receivers:
            self._dense_x[j] = x
            self._dense_y[j] = y
        affected = self._bump_neighborhood(node_id, [old_neighbors, new_neighbors])
        # The mover's own vectors change at every in-reach entry: a full
        # (vectorized) rebuild at next use beats entry-wise patching.
        self._drop_inter(node_id)
        self._mark_inter_dirty(affected, node_id)
        if old_neighbors:
            still = dict.fromkeys(new_neighbors)
            for a in old_neighbors:
                if a not in still:
                    self._evict_pair(self._pair_key(node_id, a))

    def candidate_receivers(self, sender: int) -> List[Tuple[int, float]]:
        """(receiver, mean gain dB) pairs reachable from ``sender``."""
        if not self._finalized:
            self.finalize()
        self._ensure_batch(sender)
        return self._candidates.get(sender, [])

    # ------------------------------------------------------------------
    # Carrier sense (spatially culled, mean-field)
    # ------------------------------------------------------------------
    def channel_clear(self, node_id: int) -> bool:
        """CCA at ``node_id`` against the precomputed carrier-reach sets."""
        if node_id not in self._participants:
            raise ValueError(
                f"channel_clear: node {node_id} is not attached to the medium"
            )
        active = self._active
        if not active:
            return True
        if not self._finalized:
            self.finalize()
        for tx in active:
            if tx.sender == node_id:
                continue
            batch = self._ensure_batch(tx.sender)
            if batch is not None and node_id in batch.cca_heard:
                return False
        return True

    # ------------------------------------------------------------------
    # Interference gather
    # ------------------------------------------------------------------
    def _dense_inter_mw(self, oid: int, power_dbm: float) -> Any:
        """Mean interference power (mW) from ``oid`` at every dense receiver.

        One vector per (interferer, tx power) over the full receiver axis,
        built in O(N) and cached in *linear* milliwatts with the transmit
        power folded in (powers are fixed after hardware variation, and the
        power is part of the cache key regardless).  Accumulating one
        overlapping transmission in the hot path is then a single array
        add in dense space, followed by one gather through the batch's
        ``rid_dense`` index.  Entries beyond the interferer's spatial reach
        — and the interferer's own receiver slot — are exactly 0; ``None``
        means every receiver is out of reach.  Gains include the mean-field
        fading corrections (see DESIGN.md §9).  The cache nests per
        interferer so structural events invalidate one node's vectors in
        O(1) (see the incremental-maintenance section).
        """
        dirty = self._inter_dirty.pop(oid, None)
        if dirty and oid in self._inter_cache:
            for rid in dirty:
                self._patch_inter(oid, rid)
        by_oid = self._inter_cache.get(oid)
        if by_oid is not None:
            cached = by_oid.get(power_dbm, _MISSING)
            if cached is not _MISSING:
                return cached
        opos = self.channel.positions.get(oid)
        out: Any = None
        if opos is not None and self._dense_ids:
            ox, oy = opos
            dx = self._dense_x - ox
            dy = self._dense_y - oy
            in_range = np.nonzero(dx * dx + dy * dy <= self._radius_m * self._radius_m)[0]
            if in_range.size:
                dense_ids = self._dense_ids
                pair_slot = self._pair_slot
                bimodal = self._g_bimodal
                js = [j for j in in_range.tolist() if dense_ids[j] != oid]
                if js:
                    rids = [dense_ids[j] for j in js]
                    gains = self.channel.mean_gain_many(oid, rids)
                    dense = np.zeros(len(dense_ids))
                    for j, rid, gain in zip(js, rids, gains):
                        extra = self._ou_mean_extra_db
                        if bimodal is not None:
                            slot = pair_slot.get(
                                (oid, rid) if oid <= rid else (rid, oid)
                            )
                            if slot is None:
                                extra += self._expected_bimodal_extra_db
                            elif bimodal[slot]:
                                extra += self._bimodal_mean_extra_db
                        dense[j] = 10.0 ** ((power_dbm + gain + extra) / 10.0)
                    out = dense
        if self._inter_cache_entries < _INTER_CACHE_MAX:
            if by_oid is None:
                by_oid = self._inter_cache[oid] = {}
            by_oid[power_dbm] = out
            self._inter_cache_entries += 1
        return out

    # ------------------------------------------------------------------
    # Reception (vectorized)
    # ------------------------------------------------------------------
    def _prr_table_for(self, modulation: str, frame_bytes: int) -> Any:
        key = (modulation, frame_bytes)
        table = self._prr_tables.get(key)
        if table is None:
            table = self._prr_tables[key] = prr_table(modulation, frame_bytes)
        return table

    def _evaluate_receptions(self, tx: _Transmission) -> None:
        frame = tx.frame
        if isinstance(frame, JamFrame):
            return  # nobody decodes interference
        if not self._finalized:
            self.finalize()
        sender_id = tx.sender
        if sender_id not in self._participants:
            return  # sender detached (crashed) mid-flight: the frame dies with it
        batch = self._ensure_batch(sender_id)
        if batch is None or batch.n == 0:
            return  # zero-candidate sender: nothing in link-budget reach
        overlapping = self._overlapping(tx)
        t = tx.end
        channel = self.channel
        # Per-kernel wall-time buckets: without them the profiler lumps the
        # whole vectorized evaluation under one callback name.  One branch
        # here when profiling is off; early returns simply skip the
        # remaining sections (kernel time is a breakdown, not a total).
        prof = self.engine.profiler
        k0 = perf_counter() if prof is not None else 0.0

        # ---- half duplex: drop candidates that transmitted during tx ----
        if overlapping:
            busy = {other.sender for other in overlapping}
            if busy.isdisjoint(batch.rid_list):
                idx = batch.all_idx
            else:
                keep = np.fromiter(
                    (rid not in busy for rid in batch.rid_list),
                    dtype=bool,
                    count=batch.n,
                )
                idx = np.nonzero(keep)[0]
                if idx.size == 0:
                    return
        else:
            idx = batch.all_idx
        full = idx is batch.all_idx
        if prof is not None:
            k1 = perf_counter()
            prof.record_kernel("medium_fast.cull", k1 - k0)
            k0 = k1

        # ---- time-varying gain: OU + Gilbert, advanced for queried pairs
        slots = batch.pair_idx if full else batch.pair_idx[idx]
        if self._ou_x is not None:
            extra = ou_advance(
                self._ou_x,
                self._ou_t,
                slots,
                t,
                channel.temporal_tau_s,
                channel.temporal_sigma_db,
                channel._ou_freeze_s,
                self._gen_ou,
            )
        else:
            extra = np.zeros(idx.size)
        if self._g_bimodal is not None:
            bi = self._g_bimodal[slots]
            if bi.any():
                faded = gilbert_advance(
                    self._g_faded,
                    self._g_t,
                    slots[bi],
                    t,
                    channel.fade_dwell_s,
                    channel.good_dwell_s,
                    self._gen_fade,
                )
                fade = np.zeros(idx.size)
                fade[bi] = np.where(faded, -channel.fade_depth_db, 0.0)
                extra = extra + fade
        gain = (batch.mean_gain if full else batch.mean_gain[idx]) + extra

        # ---- fault overlay: identical offset/blackout semantics ---------
        faults = self._faults
        if faults is not None:
            keep_mask = np.ones(idx.size, dtype=bool)
            offsets = np.zeros(idx.size)
            offset_for = faults.offset_for
            rid_seq = batch.rid_list if full else batch.rids[idx].tolist()
            for j, rid in enumerate(rid_seq):
                offset = offset_for(sender_id, rid)
                if offset is None:
                    keep_mask[j] = False
                    faults.blackout_drops += 1
                elif offset != 0.0:
                    offsets[j] = offset
            if not keep_mask.all():
                idx = idx[keep_mask]
                full = False
                if idx.size == 0:
                    return
                gain = gain[keep_mask] + offsets[keep_mask]
            else:
                gain = gain + offsets

        rssi = tx.power_dbm + gain
        if prof is not None:
            k1 = perf_counter()
            prof.record_kernel("medium_fast.fading", k1 - k0)
            k0 = k1

        # ---- SINR: noise plus spatially-culled mean-field interference --
        noise_mw = batch.noise_mw if full else batch.noise_mw[idx]
        inter_mw: Any = None
        if overlapping:
            inter_dense: Any = None
            for other in overlapping:
                dense = self._dense_inter_mw(other.sender, other.power_dbm)
                if dense is None:
                    continue
                # First overlap aliases the cached dense array; it is never
                # mutated in place, so no defensive copy is needed.
                inter_dense = dense if inter_dense is None else inter_dense + dense
            if inter_dense is not None:
                sel = batch.rid_dense if full else batch.rid_dense[idx]
                inter_mw = inter_dense[sel]
        if inter_mw is not None:
            sinr = rssi - 10.0 * np.log10(noise_mw + inter_mw)
        else:
            sinr = rssi - (batch.noise_db if full else batch.noise_db[idx])
        if prof is not None:
            k1 = perf_counter()
            prof.record_kernel("medium_fast.interference", k1 - k0)
            k0 = k1

        # ---- decode decision: quantized PRR gather + one uniform draw ---
        params: RadioParams = self._participants[sender_id].radio.params
        frame_bytes = frame.length_bytes + params.phy_overhead_bytes
        if batch.mod_uniform is not None:
            prr = prr_lookup(self._prr_table_for(batch.mod_uniform, frame_bytes), sinr)
        else:
            prr = np.zeros(idx.size)
            mod_ids = batch.mod_ids if full else batch.mod_ids[idx]
            for mid, name in enumerate(batch.mod_names):
                mask = mod_ids == mid
                if mask.any():
                    prr[mask] = prr_lookup(
                        self._prr_table_for(name, frame_bytes), sinr[mask]
                    )
        decoded = self._gen_rx.random(idx.size) < prr
        if inter_mw is not None:
            self.collisions += int(
                np.count_nonzero(~decoded & (inter_mw > noise_mw))
            )
        dec = np.nonzero(decoded)[0]
        if prof is not None:
            k1 = perf_counter()
            prof.record_kernel("medium_fast.prr_decode", k1 - k0)
            k0 = k1
        if dec.size == 0:
            return

        # ---- LQI sample + white bit for the decoded subset --------------
        lqi_model = self.lqi_model
        sinr_dec = sinr[dec]
        value = (
            LQI_MIN
            + _LQI_SPAN
            / (1.0 + np.exp(-(sinr_dec - lqi_model.midpoint_snr_db) / lqi_model.slope_db))
            + self._gen_lqi.standard_normal(dec.size) * lqi_model.noise_sigma
        )
        lqi = np.rint(np.clip(value, LQI_MIN, LQI_MAX)).astype(np.int64)
        policy = self.white_bit_policy
        wb_threshold = policy.threshold if type(policy) is LqiWhiteBit else None
        if wb_threshold is not None:
            white = lqi >= wb_threshold
        else:
            white_eval = policy.evaluate
            white = np.fromiter(
                (white_eval(float(s), int(q)) for s, q in zip(sinr_dec, lqi)),
                dtype=bool,
                count=dec.size,
            )

        # ---- delivery (candidate order, late-bound callbacks) -----------
        receivers = batch.receivers
        rssi_list = rssi[dec].tolist()
        sinr_list = sinr_dec.tolist()
        lqi_list = lqi.tolist()
        white_list = white.tolist()
        pos_list = (dec if full else idx[dec]).tolist()
        rx_info_new = RxInfo.__new__
        self.deliveries += dec.size
        self.white_bits_set += white_list.count(True)
        for k in range(len(pos_list)):
            info = rx_info_new(RxInfo)
            info.__dict__.update(
                timestamp=t,
                rssi_dbm=rssi_list[k],
                snr_db=sinr_list[k],
                lqi=lqi_list[k],
                white_bit=white_list[k],
            )
            receivers[pos_list[k]].on_frame_received(frame, info)
        if prof is not None:
            prof.record_kernel("medium_fast.deliver", perf_counter() - k0)


__all__ = ["FastRadioMedium", "DEFAULT_SHADOW_MARGIN_SIGMAS"]
