"""CSMA MAC with synchronous layer-2 acknowledgments.

The MAC owns a single transmit buffer (TinyOS style — queueing is the
network layer's job) and reports the outcome of every transmission through
``on_send_done`` as a :class:`~repro.sim.packets.TxResult`.  For unicast
frames the result carries the **ack bit**: whether a synchronous L2 ack
came back before the timeout.  The ack itself is a real transmission
through the medium, so ack loss tracks the reverse direction of the link —
which is exactly why the ack bit measures *bidirectional* link quality
(Section 2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable, Optional

from repro.link.csma import CsmaBackoff
from repro.link.frame import AckFrame, BROADCAST, Frame
from repro.phy.radio import Radio
from repro.sim.engine import Engine, EventHandle
from repro.sim.packets import RxInfo, TxResult


@dataclass
class MacStats:
    """Counters for one node's MAC."""

    tx_unicast: int = 0
    tx_broadcast: int = 0
    acks_received: int = 0
    acks_sent: int = 0
    channel_access_failures: int = 0
    frames_delivered_up: int = 0
    #: CCA rounds consumed across all transmissions (≥1 per frame).
    backoff_rounds: int = 0
    #: Unit backoff periods actually waited (CSMA congestion signal).
    backoff_slots: int = 0

    METRICS_PREFIX = "link.mac"

    def register_into(self, registry, **labels) -> None:
        """Register every counter as ``link.mac.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class Mac:
    """One node's link layer."""

    def __init__(self, engine: Engine, medium, radio: Radio, rng) -> None:
        self.engine = engine
        self.medium = medium
        self.radio = radio
        self.node_id = radio.node_id
        self._rng = rng
        self.stats = MacStats()
        #: Failure injection: a disabled MAC neither sends nor receives
        #: (models node death / power failure mid-run).
        self.enabled = True
        # Upper-layer callbacks, wired by the node builder.
        self.on_receive: Optional[Callable[[Frame, RxInfo], None]] = None
        self.on_send_done: Optional[Callable[[Frame, TxResult], None]] = None
        # In-flight state.
        self._current: Optional[Frame] = None
        self._backoff: Optional[CsmaBackoff] = None
        self._ack_timer: Optional[EventHandle] = None
        self._pending_event: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a frame occupies the transmit buffer."""
        return self._current is not None

    def send(self, frame: Frame) -> bool:
        """Accept ``frame`` for transmission.  Returns False if busy."""
        if not self.enabled or self._current is not None:
            return False
        frame.src = self.node_id
        self._current = frame
        self._backoff = CsmaBackoff(self.radio.params, self._rng)
        self._schedule_cca()
        return True

    def _schedule_cca(self) -> None:
        assert self._backoff is not None
        delay = self._backoff.next_delay()
        if delay is None:
            self.stats.channel_access_failures += 1
            self._finish(sent=False, ack_bit=False)
            return
        self._pending_event = self.engine.schedule(delay, self._cca)

    def _cca(self) -> None:
        self._pending_event = None
        if self.medium.channel_clear(self.node_id):
            self._transmit()
        else:
            self._schedule_cca()

    def _transmit(self) -> None:
        assert self._current is not None
        duration = self.medium.start_transmission(self.node_id, self._current)
        self._pending_event = self.engine.schedule(duration, self._tx_done)

    def _tx_done(self) -> None:
        self._pending_event = None
        frame = self._current
        assert frame is not None
        if frame.is_broadcast:
            self.stats.tx_broadcast += 1
            self._finish(sent=True, ack_bit=False)
        else:
            self.stats.tx_unicast += 1
            self._ack_timer = self.engine.schedule(
                self.radio.params.ack_timeout_s, self._ack_timeout
            )

    def _ack_timeout(self) -> None:
        self._ack_timer = None
        self._finish(sent=True, ack_bit=False)

    def _finish(self, sent: bool, ack_bit: bool) -> None:
        frame = self._current
        backoffs = self._backoff.attempts if self._backoff is not None else 0
        if self._backoff is not None:
            self.stats.backoff_rounds += self._backoff.attempts
            self.stats.backoff_slots += self._backoff.slots_waited
        self._current = None
        self._backoff = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        result = TxResult(
            timestamp=self.engine.now,
            dest=frame.dst,
            sent=sent,
            ack_bit=ack_bit,
            backoffs=backoffs,
        )
        if self.on_send_done is not None:
            self.on_send_done(frame, result)

    # ------------------------------------------------------------------
    # Receive path (called by the medium)
    # ------------------------------------------------------------------
    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:
        # Ordered for the common case: most deliveries are overheard frames
        # addressed to someone else (the medium delivers to every receiver
        # that decodes), dropped on the first comparison.  An ack for
        # another node falls into the same early return — ``_handle_ack``
        # would discard it without side effects anyway.
        if not self.enabled:
            return
        dst = frame.dst
        if dst == self.node_id:
            if isinstance(frame, AckFrame):
                self._handle_ack(frame)
                return
            self._send_ack(frame)
        elif dst != BROADCAST:
            return  # not for us (promiscuous mode unsupported)
        elif isinstance(frame, AckFrame):
            # Broadcast acks do not occur, but preserve the old behavior
            # (handled as an ack, never delivered up).
            self._handle_ack(frame)
            return
        self.stats.frames_delivered_up += 1
        if self.on_receive is not None:
            self.on_receive(frame, info)

    def _handle_ack(self, ack: AckFrame) -> None:
        if ack.dst != self.node_id:
            return
        current = self._current
        if current is None or self._ack_timer is None:
            return  # late or stray ack
        if ack.acked_frame_id != current.frame_id:
            return
        self.stats.acks_received += 1
        self._finish(sent=True, ack_bit=True)

    def _send_ack(self, frame: Frame) -> None:
        # Hardware-generated ack: no CSMA, fires after the turnaround time.
        # A node mid-transmission cannot ack (half duplex) — the ack is lost.
        if self.medium.is_transmitting(self.node_id):
            return
        ack = AckFrame(
            src=self.node_id,
            dst=frame.src,
            length_bytes=self.radio.params.ack_mpdu_bytes,
            acked_frame_id=frame.frame_id,
        )
        self.stats.acks_sent += 1
        self.engine.schedule(self.radio.params.turnaround_s, self._transmit_ack, ack)

    def _transmit_ack(self, ack: AckFrame) -> None:
        # The turnaround delay opens a window for a crash between scheduling
        # and transmission; a dead radio must not put the ack on the air.
        if self.enabled:
            self.medium.start_transmission(self.node_id, ack)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Node crash: drop in-flight state, stop sending and receiving.

        No ``on_send_done`` callback fires for the abandoned frame — a
        crashed node cannot report anything.  Safe to call twice.
        """
        self.enabled = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._current = None
        self._backoff = None

    def restart(self) -> None:
        """Node reboot: the radio comes back with an empty transmit buffer."""
        self.enabled = True
