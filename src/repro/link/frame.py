"""Frame formats for the simulated stack.

The layering mirrors the paper's Figure 4: the link estimator is a
"layer 2.5" that wraps network-layer frames with its own header (sequence
number) and footer (link-quality entries), sitting between the MAC frame
and the network payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Link-layer broadcast address (802.15.4 style).
BROADCAST = 0xFFFF

_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """Base MAC-level frame.

    ``length_bytes`` is the full MAC payload length used for airtime and
    packet-error-rate computations (PHY preamble overhead is added by the
    radio model).
    """

    src: int
    dst: int
    length_bytes: int
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    @property
    def is_ack(self) -> bool:
        """True for synchronous L2 acks (excluded from phy ``rx`` traces)."""
        return False

    def describe(self) -> str:
        """Short human-readable tag used in traces."""
        return type(self).__name__


@dataclass
class AckFrame(Frame):
    """Synchronous layer-2 acknowledgment (802.15.4: 11 bytes on air)."""

    acked_frame_id: int = 0

    @property
    def is_ack(self) -> bool:
        return True

    def describe(self) -> str:
        return f"Ack({self.acked_frame_id})"


@dataclass
class JamFrame(Frame):
    """Interference burst from an external (non-network) transmitter.

    Never decodable by network nodes; exists only to raise the interference
    floor during its airtime.
    """

    def describe(self) -> str:
        return "Jam"


@dataclass
class NetworkFrame(Frame):
    """Base class for layer-3 frames (CTP, MultiHopLQI, application)."""

    #: True for frames that carry route-quality information the network
    #: layer can evaluate a *compare bit* against (e.g. routing beacons).
    carries_route_info: bool = False


# Type alias for a link-estimator footer entry: (neighbor id, inbound quality)
FooterEntry = Tuple[int, float]


@dataclass
class LinkEstimatorFrame(Frame):
    """Layer-2.5 frame: LE header + footer around a network payload.

    The header carries an 8-bit sequence number per the Woo et al. scheme;
    receivers use gaps in it to count missed broadcasts.  The footer may
    carry up to ``MAX_FOOTER_ENTRIES`` (neighbor, quality) pairs.
    """

    MAX_FOOTER_ENTRIES = 6
    HEADER_BYTES = 2
    FOOTER_ENTRY_BYTES = 3

    le_seq: int = 0
    payload: Optional[NetworkFrame] = None
    footer: List[FooterEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.footer) > self.MAX_FOOTER_ENTRIES:
            raise ValueError("footer overflow")
        if not 0 <= self.le_seq <= 255:
            raise ValueError(f"le_seq out of 8-bit range: {self.le_seq}")

    def describe(self) -> str:
        inner = self.payload.describe() if self.payload is not None else "none"
        return f"LE(seq={self.le_seq}, {inner})"


def le_wrap(payload: NetworkFrame, le_seq: int, footer: Optional[List[FooterEntry]] = None) -> LinkEstimatorFrame:
    """Wrap a network frame in a link-estimator header/footer."""
    footer = footer or []
    length = (
        payload.length_bytes
        + LinkEstimatorFrame.HEADER_BYTES
        + LinkEstimatorFrame.FOOTER_ENTRY_BYTES * len(footer)
    )
    return LinkEstimatorFrame(
        src=payload.src,
        dst=payload.dst,
        length_bytes=length,
        le_seq=le_seq,
        payload=payload,
        footer=list(footer),
    )
