"""Link layer: frames, CSMA/CA backoff, MAC with synchronous L2 acks."""

from repro.link.csma import CsmaBackoff
from repro.link.frame import (
    BROADCAST,
    AckFrame,
    Frame,
    JamFrame,
    LinkEstimatorFrame,
    NetworkFrame,
    le_wrap,
)
from repro.link.mac import Mac, MacStats

__all__ = [
    "BROADCAST",
    "AckFrame",
    "CsmaBackoff",
    "Frame",
    "JamFrame",
    "LinkEstimatorFrame",
    "Mac",
    "MacStats",
    "NetworkFrame",
    "le_wrap",
]
