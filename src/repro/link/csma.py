"""Unslotted CSMA/CA backoff (802.15.4 § 7.5.1.4 style).

Before each clear-channel assessment the transmitter waits a random number
of unit backoff periods in ``[0, 2^BE − 1]``.  Every busy CCA raises the
backoff exponent (capped) and consumes one of the limited attempts; when
attempts are exhausted the transmission fails with a channel-access error.
"""

from __future__ import annotations

from random import Random
from typing import Optional

from repro.phy.radio import RadioParams


class CsmaBackoff:
    """Backoff state machine for a single frame."""

    def __init__(self, params: RadioParams, rng: Random) -> None:
        self.params = params
        self.rng = rng
        self._be = params.min_be
        self._attempts = 0
        self._slots_waited = 0

    @property
    def attempts(self) -> int:
        """CCA rounds consumed so far."""
        return self._attempts

    @property
    def slots_waited(self) -> int:
        """Unit backoff periods drawn so far (how congested the channel
        looked to this frame — feeds ``link.mac.backoff_slots``)."""
        return self._slots_waited

    def next_delay(self) -> Optional[float]:
        """Delay before the next CCA, or ``None`` when attempts are exhausted.

        The first call always returns a delay (the initial backoff); the
        machine permits ``max_csma_backoffs + 1`` CCA rounds in total.
        """
        if self._attempts > self.params.max_csma_backoffs:
            return None
        slots = self.rng.randrange(2 ** self._be)
        self._attempts += 1
        self._slots_waited += slots
        self._be = min(self._be + 1, self.params.max_be)
        return slots * self.params.backoff_unit_s
