"""Traffic workloads: the paper's constant-rate collection pattern."""

from repro.workloads.collection import (
    CollectionSource,
    DeliveryRecord,
    SinkRecorder,
    WorkloadConfig,
)

__all__ = ["CollectionSource", "DeliveryRecord", "SinkRecorder", "WorkloadConfig"]
