"""Collection workload: the paper's evaluation traffic pattern.

Every node except the sink offers a constant-rate stream of packets to the
root (1 packet / 10 s in the paper's experiments).  Boot times are
staggered uniformly over 30 s, and each send carries jitter to avoid
network-wide packet synchronization — both straight from Section 4.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Engine


@dataclass(frozen=True)
class WorkloadConfig:
    send_interval_s: float = 10.0
    #: Per-send jitter, as a fraction of the interval (uniform ±).
    jitter_fraction: float = 0.1
    boot_stagger_s: float = 30.0
    #: Delay between protocol boot and the first application packet, giving
    #: routing a moment to acquire a first parent (nodes still send into a
    #: route-less stack otherwise; queues absorb a little of it).
    app_start_delay_s: float = 5.0


class CollectionSource:
    """Per-node application traffic generator."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        send_fn: Callable[[], bool],
        rng: Random,
        config: WorkloadConfig,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.send_fn = send_fn
        self.rng = rng
        self.config = config
        self.attempted = 0
        self.accepted = 0
        self._running = False
        self._stopped = False
        #: Bumped on every stop so ticks from an earlier life are orphaned
        #: (a stopped-then-restarted source must not double its send rate).
        self._epoch = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._stopped = False
        first = self.config.app_start_delay_s + self.rng.uniform(0, self.config.send_interval_s)
        self.engine.schedule(first, self._tick, self._epoch)

    def stop(self) -> None:
        """Stop generating (drains naturally; used to end measurements)."""
        self._stopped = True
        self._running = False
        self._epoch += 1

    def _tick(self, epoch: int = 0) -> None:
        if self._stopped or epoch != self._epoch:
            return
        self.attempted += 1
        if self.send_fn():
            self.accepted += 1
        jitter = self.config.jitter_fraction * self.config.send_interval_s
        delay = self.config.send_interval_s + self.rng.uniform(-jitter, jitter)
        self.engine.schedule(max(delay, 0.1), self._tick, epoch)


@dataclass
class DeliveryRecord:
    origin: int
    seq: int
    thl: int
    time: float
    #: End-to-end latency (None when the origin timestamp was not carried).
    latency: Optional[float] = None


class SinkRecorder:
    """Collects deliveries at the root(s); deduplicates for the metrics."""

    def __init__(self) -> None:
        self.records: List[DeliveryRecord] = []
        self._unique: Set[Tuple[int, int]] = set()
        self.duplicates = 0
        self.unique_per_origin: Dict[int, int] = {}
        self.hops_sum = 0

    def on_deliver(
        self, origin: int, seq: int, thl: int, time: float, origin_time: Optional[float] = None
    ) -> None:
        key = (origin, seq)
        if key in self._unique:
            self.duplicates += 1
            return
        self._unique.add(key)
        latency = (time - origin_time) if origin_time is not None else None
        self.records.append(DeliveryRecord(origin, seq, thl, time, latency))
        self.unique_per_origin[origin] = self.unique_per_origin.get(origin, 0) + 1
        self.hops_sum += thl + 1  # thl counts hops after the first transmission

    @property
    def unique_delivered(self) -> int:
        return len(self._unique)

    def mean_hops(self) -> float:
        if not self.records:
            return float("nan")
        return self.hops_sum / len(self.records)

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records if r.latency is not None]
