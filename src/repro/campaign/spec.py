"""The declarative simulation contract: ``spec -> simulate() -> summary``.

A :class:`SimulationSpec` is a frozen, canonically hashable description of
one simulation — the unit the campaign queue enumerates, digests, shards,
caches, and resumes.  :func:`simulate` is the single top-level (picklable)
entry point the runner's workers call; it dispatches on ``spec.kind``:

``collection``
    A full :class:`~repro.sim.network.CollectionNetwork` run built through
    the experiment harness.  Parameters name the scale (``profile``,
    ``n_nodes``, ``duration_s``, ...), the run (``protocol``, ``seed``,
    ``tx_power_dbm``), estimator constants (``ku``, ``kb``,
    ``alpha_outer``, ``alpha_beacon``, ``table_size``, ...), and the
    white-bit derivation (``white_bit``, ``white_bit_threshold``).
``accuracy``
    A scripted single-link estimator-accuracy run
    (:mod:`repro.estimators.accuracy`) scored against ground-truth ETX —
    the cheap objective the closed-loop tuner iterates on.
``synthetic``
    A closed-form objective (quadratic bowl, or deliberately NaN/inf
    surfaces) with no simulator behind it — the harness the campaign's own
    property tests and throughput benchmarks run against.

Every kind returns a :class:`SimulationResult` whose ``summary`` contains
only **deterministic, strict-JSON-safe** values: two runs of the same spec
— serial or pooled, fresh or resumed — serialize byte-identically.  Wall
-clock accounting stays on the separate ``resources`` slot, which the
runner fills and summaries never include.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.metrics.collection_stats import json_sanitize
from repro.runner.hashing import config_digest

#: Simulation kinds :func:`simulate` can execute.
KINDS = ("collection", "accuracy", "synthetic")

#: ``collection`` parameters that size the testbed (everything else is a
#: run/estimator/config parameter).
_SCALE_PARAMS = ("profile", "n_nodes", "duration_s", "warmup_s", "topology_seed")

#: ``collection`` parameters forwarded to :class:`SimConfig` verbatim.
_SIMCONFIG_PARAMS = ("white_bit", "white_bit_threshold", "medium", "faults", "mobility")

#: ``collection`` run identity parameters.
_RUN_PARAMS = ("protocol", "seed", "tx_power_dbm")

#: ``accuracy`` scenario parameters (see ``objectives.scenario_from_params``).
_ACCURACY_PARAMS = (
    "scenario",
    "prr",
    "high",
    "low",
    "step_at_s",
    "duration_s",
    "warmup_s",
    "beacon_period_s",
    "data_rate_pps",
    "sample_period_s",
    "seed",
    "preset",
)


def freeze_value(value: Any) -> Any:
    """Normalize JSON-decoded values into canonically hashable form.

    Lists become tuples (recursively) so a spec loaded from JSON equals —
    and digests identically to — the same spec built in Python.  Dicts
    become sorted ``(key, value)`` tuples for the same reason: the frozen
    dataclass stays hashable and the encoding order-independent.
    """
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), freeze_value(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class SimulationSpec:
    """One fully specified simulation — the unit of caching and fan-out."""

    kind: str
    #: Sorted ``(name, value)`` pairs; values are plain data (canonically
    #: hashable), so the spec digests stably across processes.
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown simulation kind {self.kind!r}; choose from {KINDS}")

    @classmethod
    def make(cls, kind: str, **params: Any) -> "SimulationSpec":
        return cls.from_params(kind, params)

    @classmethod
    def from_params(cls, kind: str, params: Dict[str, Any]) -> "SimulationSpec":
        frozen = tuple(sorted((str(k), freeze_value(v)) for k, v in params.items()))
        return cls(kind=kind, params=frozen)

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def digest(self) -> str:
        """Canonical identity — the cache key component and resume anchor."""
        return config_digest(self)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": json_sanitize(self.param_dict())}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SimulationSpec":
        return cls.from_params(str(data["kind"]), dict(data.get("params", {})))

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({parts})"


@dataclass
class SimulationResult:
    """Outcome of one :func:`simulate` call.

    ``summary`` is the deliverable: deterministic, strict-JSON-safe
    metrics keyed by name.  ``objectives`` read straight out of it — the
    optimizer scores ``summary[spec.objective]``.
    """

    kind: str
    digest: str
    params: Dict[str, Any]
    summary: Dict[str, Any]
    #: Simulator events executed (runner throughput accounting; 0 for
    #: closed-form kinds).
    events_run: int = 0
    #: Wall/CPU/RSS deltas attached by the runner workers — inherently
    #: nondeterministic, excluded from equality and from summaries.
    resources: Optional[Dict[str, float]] = field(default=None, compare=False)

    def to_json_dict(self) -> Dict[str, Any]:
        """Deterministic strict-JSON view (``resources`` deliberately absent)."""
        return json_sanitize(
            {
                "kind": self.kind,
                "digest": self.digest,
                "params": self.params,
                "summary": self.summary,
            }
        )


def simulate(spec: SimulationSpec) -> SimulationResult:
    """Execute one spec.  Top-level and picklable: the pool worker entry."""
    params = spec.param_dict()
    if spec.kind == "synthetic":
        summary: Dict[str, Any] = _simulate_synthetic(params)
        events = 0
    elif spec.kind == "accuracy":
        summary = _simulate_accuracy(params)
        events = int(summary.pop("_events_run", 0))
    else:
        summary, events = _simulate_collection(params)
    return SimulationResult(
        kind=spec.kind,
        digest=spec.digest(),
        params=json_sanitize(params),
        summary=json_sanitize(summary),
        events_run=events,
    )


# ---------------------------------------------------------------------------
# synthetic
# ---------------------------------------------------------------------------
def _simulate_synthetic(params: Dict[str, Any]) -> Dict[str, Any]:
    """Closed-form objective surfaces for tests and benchmarks.

    Coordinates are every parameter whose name starts with ``x``; the
    objective is the squared distance to ``optimum`` (default 0.0, one
    shared target per coordinate).  ``mode`` selects failure surfaces the
    optimizer must degrade gracefully on:

    * ``"quadratic"`` (default) — the convex bowl;
    * ``"nan"`` / ``"inf"`` — the objective is never finite;
    * ``"nan_below"`` — NaN wherever any coordinate falls below
      ``threshold`` (a partially invalid region).
    """
    mode = str(params.get("mode", "quadratic"))
    optimum = float(params.get("optimum", 0.0))
    coords = sorted((k, float(v)) for k, v in params.items() if k.startswith("x"))
    if not coords:
        raise ValueError("synthetic spec needs at least one coordinate parameter (x0, x1, ...)")
    if mode == "nan":
        objective = math.nan
    elif mode == "inf":
        objective = math.inf
    elif mode == "nan_below":
        threshold = float(params.get("threshold", 0.0))
        if any(v < threshold for _k, v in coords):
            objective = math.nan
        else:
            objective = sum((v - optimum) ** 2 for _k, v in coords)
    elif mode == "quadratic":
        objective = sum((v - optimum) ** 2 for _k, v in coords)
    else:
        raise ValueError(f"unknown synthetic mode {mode!r}")
    return {"objective": objective, "dims": len(coords)}


# ---------------------------------------------------------------------------
# accuracy
# ---------------------------------------------------------------------------
def _simulate_accuracy(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.estimators.objectives import (
        accuracy_summary,
        estimator_config_from_params,
        scenario_from_params,
        split_estimator_params,
    )

    est_params, rest = split_estimator_params(params)
    unknown = sorted(k for k in rest if k not in _ACCURACY_PARAMS)
    if unknown:
        raise ValueError(
            f"unknown accuracy parameter(s) {unknown}; "
            f"scenario parameters are {sorted(_ACCURACY_PARAMS)} and estimator "
            "constants follow EstimatorConfig field names"
        )
    config = estimator_config_from_params(est_params, preset=str(rest.get("preset", "4b")))
    scenario = scenario_from_params(rest)
    return accuracy_summary(config, scenario)


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------
def _simulate_collection(params: Dict[str, Any]) -> Tuple[Dict[str, Any], int]:
    # Local imports keep the closed-form kinds import-light (the property
    # tests churn through thousands of synthetic specs).
    from repro.estimators.objectives import (
        estimator_config_from_params,
        split_estimator_params,
    )
    from repro.experiments.common import ExperimentScale, run_one

    est_params, rest = split_estimator_params(params)
    known = _SCALE_PARAMS + _RUN_PARAMS + _SIMCONFIG_PARAMS
    unknown = sorted(k for k in rest if k not in known)
    if unknown:
        raise ValueError(
            f"unknown collection parameter(s) {unknown}; known: {sorted(known)} "
            "plus EstimatorConfig field names"
        )
    n_nodes = rest.get("n_nodes")
    scale = ExperimentScale(
        profile_name=str(rest.get("profile", "mirage")),
        n_nodes=None if n_nodes is None else int(n_nodes),
        duration_s=float(rest.get("duration_s", 420.0)),
        warmup_s=float(rest.get("warmup_s", 120.0)),
        topology_seed=int(rest.get("topology_seed", 11)),
        seeds=(int(rest.get("seed", 1)),),
    )
    overrides: Dict[str, Any] = {}
    for name in _SIMCONFIG_PARAMS:
        if rest.get(name) is not None:
            overrides[name] = rest[name]
    protocol = str(rest.get("protocol", "4b"))
    if est_params:
        overrides["estimator_config"] = estimator_config_from_params(
            est_params, preset=protocol
        )
    result = run_one(
        scale,
        protocol,
        int(rest.get("seed", 1)),
        float(rest.get("tx_power_dbm", 0.0)),
        **overrides,
    )
    summary = {
        "cost": result.cost,
        "delivery_ratio": result.delivery_ratio,
        "avg_tree_depth": result.avg_tree_depth,
        "mean_packet_hops": result.mean_packet_hops,
        "disconnected_fraction": result.disconnected_fraction,
        "offered": result.offered,
        "unique_delivered": result.unique_delivered,
        "duplicates_at_root": result.duplicates_at_root,
        "total_data_tx": result.total_data_tx,
        "beacons_sent": result.beacons_sent,
        "events_run": result.events_run,
    }
    return summary, result.events_run


#: Names of deterministic summary keys per kind — what sweep files may name
#: as an ``objective`` (documentation + spec validation aid).
OBJECTIVE_KEYS = {
    "synthetic": ("objective",),
    "accuracy": ("mre", "availability", "detection_delay_s", "beacon_tx", "data_tx"),
    "collection": (
        "cost",
        "delivery_ratio",
        "avg_tree_depth",
        "mean_packet_hops",
        "disconnected_fraction",
        "total_data_tx",
        "beacons_sent",
    ),
}
