import sys

from repro.campaign.cli import main

sys.exit(main())
