"""Declarative sweep specs: cartesian grids, seeded sampling, refinement.

A :class:`SweepSpec` is the file format of a campaign (JSON, or TOML where
``tomllib`` exists).  Three modes:

``grid``
    The cartesian product of ``axes`` (value lists, in file order — the
    enumeration order is part of the contract, so resumed and sharded
    campaigns serialize point lists byte-identically).
``random``
    ``samples`` points drawn from per-parameter :class:`RangeSpec`\\ s.
    Every draw comes from its own ``derive_seed``-keyed stream, so the
    point set is a pure function of ``(spec digest, seed)`` — adding a
    parameter or re-running on another machine cannot shift the samples.
``adaptive``
    ``rounds`` rounds of ``samples`` draws each; after every round the
    ranges shrink around the ``top_k`` best completed points
    (cross-entropy style).  Later rounds are pure functions of earlier
    *results*, which the result cache persists — so an interrupted
    adaptive campaign re-derives the identical refinement path on resume.

Example sweep file (the paper's ku/kb ablation)::

    {
      "campaign": "ablation-kukb",
      "kind": "collection",
      "mode": "grid",
      "base": {"profile": "mirage", "n_nodes": 20, "duration_s": 240.0},
      "axes": {"ku": [1, 5, 25], "kb": [1, 2, 10], "seed": [1, 2]},
      "objective": "cost"
    }
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import KINDS, SimulationSpec, freeze_value
from repro.runner.hashing import config_digest
from repro.sim.rng import derive_seed

#: Sweep modes a spec file may name (``optimize`` lives in
#: :mod:`repro.campaign.optimize` but shares the file format).
SWEEP_MODES = ("grid", "random", "adaptive")


@dataclass(frozen=True)
class RangeSpec:
    """One sampled parameter: ``lo <= value <= hi``.

    ``scale="log"`` samples uniformly in log space (for scale-free
    constants like table size or EWMA time constants); ``type="int"``
    rounds to the nearest integer (inclusive bounds).
    """

    name: str
    lo: float
    hi: float
    scale: str = "linear"
    type: str = "float"

    def __post_init__(self) -> None:
        if self.scale not in ("linear", "log"):
            raise ValueError(f"range {self.name!r}: unknown scale {self.scale!r}")
        if self.type not in ("float", "int"):
            raise ValueError(f"range {self.name!r}: unknown type {self.type!r}")
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)) or self.lo > self.hi:
            raise ValueError(f"range {self.name!r}: need finite lo <= hi, got [{self.lo}, {self.hi}]")
        if self.scale == "log" and self.lo <= 0:
            raise ValueError(f"range {self.name!r}: log scale needs lo > 0")

    def sample(self, rng: Random) -> Union[int, float]:
        if self.scale == "log":
            value = math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
        else:
            value = rng.uniform(self.lo, self.hi)
        if self.type == "int":
            return int(min(max(round(value), math.ceil(self.lo)), math.floor(self.hi)))
        return value

    def clamped(self, lo: float, hi: float) -> "RangeSpec":
        """This range narrowed to ``[lo, hi]`` (never widened)."""
        new_lo = max(self.lo, lo)
        new_hi = min(self.hi, hi)
        if new_lo > new_hi:  # degenerate: collapse to the nearer bound
            new_lo = new_hi = min(max(lo, self.lo), self.hi)
        return replace(self, lo=new_lo, hi=new_hi)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"lo": self.lo, "hi": self.hi, "scale": self.scale, "type": self.type}

    @classmethod
    def from_json_dict(cls, name: str, data: Dict[str, Any]) -> "RangeSpec":
        return cls(
            name=name,
            lo=float(data["lo"]),
            hi=float(data["hi"]),
            scale=str(data.get("scale", "linear")),
            type=str(data.get("type", "float")),
        )


@dataclass(frozen=True)
class SweepSpec:
    """One declarative campaign (see module docstring for the file format)."""

    name: str
    kind: str
    mode: str = "grid"
    #: Constant parameters merged into every point (sorted pairs).
    base: Tuple[Tuple[str, Any], ...] = ()
    #: Cartesian axes in file order: ``((name, (v1, v2, ...)), ...)``.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Sampled parameters (random/adaptive modes).
    ranges: Tuple[RangeSpec, ...] = ()
    #: Points per draw (total for ``random``, per round for ``adaptive``).
    samples: int = 0
    seed: int = 1
    #: Adaptive refinement: number of rounds, survivors kept, and the
    #: factor each surviving range width shrinks by per round.
    rounds: int = 1
    top_k: int = 3
    shrink: float = 0.5
    #: Summary key campaigns score/sort by (optional for grid/random —
    #: without it the summary carries no ``best`` entry).
    objective: str = ""
    minimize: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown simulation kind {self.kind!r}; choose from {KINDS}")
        if self.mode not in SWEEP_MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r}; choose from {SWEEP_MODES}")
        if self.mode == "grid":
            if not self.axes:
                raise ValueError("grid sweep needs at least one axis")
            for name, values in self.axes:
                if not values:
                    raise ValueError(f"grid axis {name!r} has no values")
        else:
            if not self.ranges:
                raise ValueError(f"{self.mode} sweep needs at least one range")
            if self.samples <= 0:
                raise ValueError(f"{self.mode} sweep needs samples > 0")
        if self.mode == "adaptive":
            if self.rounds <= 0 or self.top_k <= 0 or not (0.0 < self.shrink < 1.0):
                raise ValueError("adaptive sweep needs rounds > 0, top_k > 0, 0 < shrink < 1")
            if not self.objective:
                raise ValueError("adaptive sweep needs an objective to refine on")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Canonical campaign identity (state dirs and reproducibility key)."""
        return config_digest(self)

    def n_rounds(self) -> int:
        return self.rounds if self.mode == "adaptive" else 1

    def total_points(self) -> Optional[int]:
        """Planned point count (grid/random; adaptive counts via rounds)."""
        if self.mode == "grid":
            total = 1
            for _name, values in self.axes:
                total *= len(values)
            return total
        return self.samples * self.n_rounds()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def grid_points(self) -> List[SimulationSpec]:
        """The cartesian product of ``axes``, last axis fastest."""
        points: List[Dict[str, Any]] = [{}]
        for name, values in self.axes:
            points = [dict(p, **{name: v}) for p in points for v in values]
        base = dict(self.base)
        return [SimulationSpec.from_params(self.kind, dict(base, **p)) for p in points]

    def sample_points(
        self, round_index: int = 0, ranges: Optional[Sequence[RangeSpec]] = None
    ) -> List[SimulationSpec]:
        """``samples`` seeded draws for one round (pure in spec + seed)."""
        active = tuple(self.ranges if ranges is None else ranges)
        base = dict(self.base)
        points = []
        for i in range(self.samples):
            rng = Random(derive_seed(self.seed, "campaign", "draw", round_index, i))
            assignment = {r.name: r.sample(rng) for r in active}
            points.append(SimulationSpec.from_params(self.kind, dict(base, **assignment)))
        return points

    def refine_ranges(
        self,
        ranges: Sequence[RangeSpec],
        survivors: Sequence[Dict[str, Any]],
    ) -> Tuple[RangeSpec, ...]:
        """Ranges for the next adaptive round, shrunk around ``survivors``.

        Each dimension re-centers on the survivors' mean (geometric mean
        for log-scaled ranges) with the width multiplied by ``shrink``,
        clamped inside the original bounds.  With no survivors (every
        point's objective was NaN/inf) the ranges pass through unchanged —
        the next round re-samples the same space at fresh seeds.
        """
        return shrink_ranges(ranges, survivors, self.shrink)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "campaign": self.name,
            "kind": self.kind,
            "mode": self.mode,
        }
        if self.base:
            data["base"] = dict(self.base)
        if self.axes:
            data["axes"] = {name: list(values) for name, values in self.axes}
        if self.ranges:
            data["ranges"] = {r.name: r.to_json_dict() for r in self.ranges}
        if self.mode != "grid":
            data["samples"] = self.samples
            data["seed"] = self.seed
        if self.mode == "adaptive":
            data["rounds"] = self.rounds
            data["top_k"] = self.top_k
            data["shrink"] = self.shrink
        if self.objective:
            data["objective"] = self.objective
            data["minimize"] = self.minimize
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        known = {
            "campaign", "kind", "mode", "base", "axes", "ranges", "samples",
            "seed", "rounds", "top_k", "shrink", "objective", "minimize",
        }
        unknown = sorted(k for k in data if k not in known)
        if unknown:
            raise ValueError(f"unknown sweep spec key(s) {unknown}; known: {sorted(known)}")
        axes_data = data.get("axes", {})
        ranges_data = data.get("ranges", {})
        return cls(
            name=str(data.get("campaign", "campaign")),
            kind=str(data["kind"]),
            mode=str(data.get("mode", "grid")),
            base=tuple(sorted(
                (str(k), freeze_value(v)) for k, v in dict(data.get("base", {})).items()
            )),
            axes=tuple(
                (str(name), tuple(freeze_value(v) for v in values))
                for name, values in axes_data.items()
            ),
            ranges=tuple(
                RangeSpec.from_json_dict(str(name), spec)
                for name, spec in ranges_data.items()
            ),
            samples=int(data.get("samples", 0)),
            seed=int(data.get("seed", 1)),
            rounds=int(data.get("rounds", 1)),
            top_k=int(data.get("top_k", 3)),
            shrink=float(data.get("shrink", 0.5)),
            objective=str(data.get("objective", "")),
            minimize=bool(data.get("minimize", True)),
        )


def shrink_ranges(
    ranges: Sequence[RangeSpec],
    survivors: Sequence[Dict[str, Any]],
    shrink: float,
) -> Tuple[RangeSpec, ...]:
    """Each range re-centered on the survivors, width scaled by ``shrink``.

    Log-scaled ranges shrink in log space around the geometric mean; every
    result stays clamped inside the *current* bounds, so a search box only
    ever contracts.  With no survivors the ranges pass through unchanged.
    """
    if not survivors:
        return tuple(ranges)
    refined: List[RangeSpec] = []
    for rng_spec in ranges:
        values = [float(s[rng_spec.name]) for s in survivors if rng_spec.name in s]
        if not values:
            refined.append(rng_spec)
            continue
        if rng_spec.scale == "log":
            center_log = sum(math.log(v) for v in values) / len(values)
            half = (math.log(rng_spec.hi) - math.log(rng_spec.lo)) * shrink / 2.0
            lo = math.exp(center_log - half)
            hi = math.exp(center_log + half)
        else:
            center = sum(values) / len(values)
            half = (rng_spec.hi - rng_spec.lo) * shrink / 2.0
            lo = center - half
            hi = center + half
        refined.append(rng_spec.clamped(lo, hi))
    return tuple(refined)


def read_spec_data(path: Union[str, Path]) -> Dict[str, Any]:
    """Decode a campaign file: JSON always, TOML where ``tomllib`` exists."""
    path = Path(path)
    raw = path.read_bytes()
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise ValueError(
                f"{path}: TOML campaign files need Python >= 3.11 (tomllib); "
                "use the JSON form of the spec instead"
            ) from None
        return tomllib.loads(raw.decode("utf-8"))
    try:
        data = json.loads(raw.decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(data, dict):
        raise ValueError(f"{path}: campaign spec must be a JSON object")
    return data
