"""Campaign orchestration: declarative specs, resumable sweeps, tuning.

The "millions of runs" backbone (ROADMAP): every experiment becomes a
declarative file instead of a script.

* :mod:`repro.campaign.spec` — the ``SimulationSpec -> simulate() ->
  SimulationResult.summary`` contract layered over ``SimConfig`` and the
  accuracy harness.
* :mod:`repro.campaign.sweep` — cartesian grids, seeded random sampling,
  and adaptive refinement, serialized as JSON/TOML sweep files.
* :mod:`repro.campaign.optimize` — the closed-loop optimizer stage that
  tunes estimator constants against accuracy/cost objectives.
* :mod:`repro.campaign.queue` — the persistent, interruption-safe work
  queue: the canonical-digest result cache provides exactly-once
  semantics, the process pool provides sharding, and ``resume`` picks a
  killed campaign up mid-flight from disk.
* ``python -m repro.campaign run/status/resume/tune`` — the CLI.
"""

from repro.campaign.optimize import OptimizerOutcome, OptimizerSpec, run_optimizer
from repro.campaign.queue import Campaign, CampaignInterrupted, load_campaign_file
from repro.campaign.spec import SimulationResult, SimulationSpec, simulate
from repro.campaign.sweep import RangeSpec, SweepSpec

__all__ = [
    "Campaign",
    "CampaignInterrupted",
    "OptimizerOutcome",
    "OptimizerSpec",
    "RangeSpec",
    "SimulationResult",
    "SimulationSpec",
    "SweepSpec",
    "load_campaign_file",
    "run_optimizer",
    "simulate",
]
