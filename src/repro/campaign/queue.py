"""The persistent campaign queue: exactly-once runs, resumable from disk.

A :class:`Campaign` turns a declarative spec (:class:`SweepSpec` or
:class:`OptimizerSpec`) into :class:`~repro.runner.runner.Task`\\ s over
:func:`repro.campaign.spec.simulate` and drives them through the
:class:`~repro.runner.runner.ExperimentRunner` process pool.  Durability
is *not* a bespoke journal — it is the canonical-digest result cache:

* every point's identity is its spec digest, so enumeration is stable
  across processes, machines, and resumes;
* workers write each result to the on-disk cache **before** returning it
  (see ``_call_with_timeout``), so a campaign killed mid-flight — SIGTERM,
  crash, power loss — retains every completed run;
* ``resume`` is therefore just ``run`` again: the deterministic
  enumeration replays, completed points come back as cache hits (zero
  re-executions — the exactly-once property the kill/resume property
  tests pin down), and only the genuinely unfinished tail executes.

Adaptive sweeps and the optimizer stay resumable because each round is a
pure function of the previous rounds' *results*, which the cache holds:
the refinement trajectory re-derives identically on resume.

On-disk state lives under ``<state-root>/<spec-digest>/``:

``spec.json``
    The campaign file as loaded, plus its digest (provenance).
``manifest.json``
    Progress checkpoint, rewritten atomically after every round.
``summary.json``
    The deliverable — written only on full completion, and **byte
    identical** for serial / pooled / interrupted-and-resumed executions
    of the same spec (sorted keys, deterministic fields only).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.optimize import (
    OptimizerOutcome,
    OptimizerSpec,
    objective_score,
    run_optimizer,
)
from repro.campaign.spec import SimulationResult, SimulationSpec, simulate
from repro.campaign.sweep import RangeSpec, SweepSpec, read_spec_data
from repro.runner.cache import MISS, ResultCache
from repro.runner.runner import ExperimentRunner, Task

#: Default root for campaign state directories (sibling of the default
#: ``.repro-cache``); override per campaign or with ``REPRO_CAMPAIGN_DIR``.
DEFAULT_STATE_ROOT = ".repro-campaigns"


@dataclass
class CampaignSessionStats:
    """Run accounting for one ``Campaign.run()`` session.

    Counted off the telemetry stream (one ``run-result`` per point), so
    the numbers are exact even when the session ends mid-sweep by
    interruption — the kill/resume property tests assert the exactly-once
    contract on these: across an interrupted session and its resume,
    ``executed`` totals the unique point count and never double-counts.
    """

    executed: int = 0
    cache_hits: int = 0
    failures: int = 0

    @property
    def completed(self) -> int:
        return self.executed + self.cache_hits + self.failures


class CampaignInterrupted(Exception):
    """Raised mid-campaign by a stop request or ``stop_after`` budget.

    Carries how many runs had *executed* this session when the stop fired;
    everything executed is already durable in the result cache.
    """

    def __init__(self, completed: int) -> None:
        self.completed = completed
        super().__init__(f"campaign interrupted after {completed} completed run(s)")


class _CampaignSink:
    """Telemetry tee that doubles as the interruption point.

    Forwards every record to the wrapped sink (when there is one), counts
    executed runs (``run-result``/``status="ok"``), and raises
    :class:`CampaignInterrupted` once ``stop_after`` executions have been
    observed or :meth:`request_stop` has been called.  Raising *here* is
    safe precisely because workers cache results before returning: the
    triggering run is already durable when the exception unwinds the
    runner, and the pool's shutdown lets in-flight workers finish (and
    cache) their runs.
    """

    def __init__(self, inner: Any = None, stop_after: Optional[int] = None) -> None:
        self.inner = inner
        self.stop_after = stop_after
        self.ok_count = 0
        self.cached_count = 0
        self.failed_count = 0
        self._stop = False
        self._seq = 0

    def request_stop(self) -> None:
        self._stop = True

    def emit(self, record: Dict[str, Any]) -> None:
        if record.get("rec") == "run-result":
            status = record.get("status")
            if status == "ok":
                self.ok_count += 1
            elif status == "cached":
                self.cached_count += 1
            elif status == "failed":
                self.failed_count += 1
        if self.inner is not None:
            self.inner.emit(record)
        if self._stop or (self.stop_after is not None and self.ok_count >= self.stop_after):
            raise CampaignInterrupted(self.ok_count)

    def emit_campaign(self, kind: str, **fields: Any) -> None:
        """Emit one campaign-scoped record (own ``seq`` stream, wall time)."""
        if self.inner is None:
            return
        record: Dict[str, Any] = {"rec": kind, "seq": self._seq, "t": None}
        record.update(fields)
        self._seq += 1
        self.inner.emit(record)

    def close(self) -> None:  # the wrapped sink outlives the campaign
        pass


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _dump_deterministic(doc: Dict[str, Any]) -> str:
    """The byte-identical serialization contract for campaign artifacts."""
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"


def load_campaign_file(path: Union[str, Path]) -> Union[SweepSpec, OptimizerSpec]:
    """Load a campaign spec file (JSON, or TOML on Python >= 3.11).

    ``mode: "optimize"`` selects the closed-loop tuner; every other mode is
    a sweep (``grid`` / ``random`` / ``adaptive``).
    """
    data = read_spec_data(path)
    if str(data.get("mode", "grid")) == "optimize":
        return OptimizerSpec.from_json_dict(data)
    return SweepSpec.from_json_dict(data)


def _rank(
    results: Sequence[Tuple[SimulationSpec, Optional[SimulationResult]]],
    objective: str,
    minimize: bool,
) -> List[Tuple[float, str, SimulationSpec, SimulationResult]]:
    """Valid results best-first, digest-tiebroken (deterministic order)."""
    sign = 1.0 if minimize else -1.0
    ranked = []
    for point, result in results:
        score = objective_score(result, objective)
        if score is None or result is None:
            continue
        ranked.append((sign * score, point.digest(), point, result))
    ranked.sort(key=lambda item: (item[0], item[1]))
    return ranked


class Campaign:
    """One campaign execution handle bound to a state directory.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or :class:`OptimizerSpec`.
    state_root:
        Root under which this campaign's state directory
        (``<root>/<digest>``) lives; default ``REPRO_CAMPAIGN_DIR`` or
        ``.repro-campaigns``.
    cache:
        The :class:`ResultCache` providing durability (``True``/``None``
        for the default location).  A campaign *requires* a cache — it is
        the resume mechanism, not an optimization.
    workers / timeout_s / progress:
        Forwarded to the :class:`ExperimentRunner`.
    telemetry:
        Optional sink; receives the runner's sweep records plus
        campaign-scoped ``campaign-start`` / ``campaign-round`` /
        ``campaign-end`` records.
    stop_after:
        Deterministic forced interruption: raise after this many runs have
        *executed* this session (the CI smoke job and the property tests
        use it; SIGTERM reaches the same code path via
        :meth:`request_stop`).
    """

    def __init__(
        self,
        spec: Union[SweepSpec, OptimizerSpec],
        state_root: Union[str, Path, None] = None,
        cache: Any = None,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        telemetry: Any = None,
        progress: bool = False,
        stop_after: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.digest = spec.digest()
        root = Path(
            state_root
            if state_root is not None
            else os.environ.get("REPRO_CAMPAIGN_DIR") or DEFAULT_STATE_ROOT
        )
        self.state_dir = root / self.digest
        if cache is None or cache is True:
            cache = ResultCache.default()
        if not isinstance(cache, ResultCache):
            raise TypeError(
                "a campaign requires a ResultCache (it is the resume mechanism); "
                f"got {type(cache).__name__}"
            )
        self.cache = cache
        self.workers = workers
        self.timeout_s = timeout_s
        self.telemetry = telemetry
        self.progress = progress
        self.stop_after = stop_after
        self._sink: Optional[_CampaignSink] = None
        #: :class:`CampaignSessionStats` for the most recent ``run()``
        #: session (the property tests assert exactly-once semantics on
        #: these counters).
        self.last_stats = CampaignSessionStats()

    # ------------------------------------------------------------------
    # Paths & small artifacts
    # ------------------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.state_dir / "spec.json"

    @property
    def manifest_path(self) -> Path:
        return self.state_dir / "manifest.json"

    @property
    def summary_path(self) -> Path:
        return self.state_dir / "summary.json"

    def request_stop(self) -> None:
        """Ask the running campaign to stop at the next completion (signal-safe)."""
        if self._sink is not None:
            self._sink.request_stop()

    def _write_spec(self) -> None:
        doc = self.spec.to_json_dict()
        doc["digest"] = self.digest
        _atomic_write_text(self.spec_path, _dump_deterministic(doc))

    def _write_manifest(self, **fields: Any) -> None:
        doc: Dict[str, Any] = {
            "schema": 1,
            "campaign": self.spec.name,
            "digest": self.digest,
            "mode": getattr(self.spec, "mode", "optimize"),
            "kind": self.spec.kind,
        }
        doc.update(fields)
        _atomic_write_text(self.manifest_path, _dump_deterministic(doc))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _make_runner(self, sink: _CampaignSink) -> ExperimentRunner:
        return ExperimentRunner(
            workers=self.workers,
            cache=self.cache,
            timeout_s=self.timeout_s,
            progress=self.progress,
            strict=False,
            telemetry=sink,
        )

    def run(self) -> Dict[str, Any]:
        """Execute (or resume) the campaign to completion or interruption.

        Returns the summary document on completion.  On interruption
        (stop request or ``stop_after``) re-raises
        :class:`CampaignInterrupted` after checkpointing the manifest —
        the caller resumes by calling :meth:`run` again.
        """
        sink = _CampaignSink(self.telemetry, stop_after=self.stop_after)
        self._sink = sink
        runner = self._make_runner(sink)
        self._write_spec()
        mode = getattr(self.spec, "mode", "optimize")
        sink.emit_campaign(
            "campaign-start",
            campaign=self.spec.name,
            digest=self.digest,
            mode=mode,
            planned=None if isinstance(self.spec, OptimizerSpec) else self.spec.total_points(),
        )
        try:
            if isinstance(self.spec, OptimizerSpec):
                doc = self._run_optimizer(runner, sink)
            else:
                doc = self._run_sweep(runner, sink)
        except CampaignInterrupted as exc:
            self._write_manifest(interrupted=True, executed_this_session=exc.completed)
            sink.emit_campaign(
                "campaign-end", campaign=self.spec.name, digest=self.digest,
                status="interrupted", executed=exc.completed,
            )
            raise
        finally:
            self.last_stats = CampaignSessionStats(
                executed=sink.ok_count,
                cache_hits=sink.cached_count,
                failures=sink.failed_count,
            )
            self._sink = None
        _atomic_write_text(self.summary_path, _dump_deterministic(doc))
        self._write_manifest(interrupted=False, completed=True)
        sink.emit_campaign(
            "campaign-end", campaign=self.spec.name, digest=self.digest,
            status="completed", executed=sink.ok_count,
        )
        return doc

    def _execute_points(
        self, runner: ExperimentRunner, points: Sequence[SimulationSpec]
    ) -> List[Tuple[SimulationSpec, Optional[SimulationResult]]]:
        tasks = [Task(fn=simulate, arg=p, label=p.describe()) for p in points]
        results = runner.run(tasks)
        return list(zip(points, results))

    def _failure_lookup(self, runner: ExperimentRunner) -> Dict[str, str]:
        return {f.digest: f.error for f in runner.totals.failures + runner.stats.failures}

    def _run_sweep(self, runner: ExperimentRunner, sink: _CampaignSink) -> Dict[str, Any]:
        spec = self.spec
        assert isinstance(spec, SweepSpec)
        all_pairs: List[Tuple[SimulationSpec, Optional[SimulationResult]]] = []
        if spec.mode == "grid":
            rounds_points: List[List[SimulationSpec]] = [spec.grid_points()]
        elif spec.mode == "random":
            rounds_points = [spec.sample_points(0)]
        else:  # adaptive: later rounds derive from earlier results
            rounds_points = []
        if spec.mode in ("grid", "random"):
            for round_i, points in enumerate(rounds_points):
                pairs = self._execute_points(runner, points)
                all_pairs.extend(pairs)
                self._checkpoint_round(sink, round_i, all_pairs)
        else:
            ranges: Tuple[RangeSpec, ...] = spec.ranges
            for round_i in range(spec.rounds):
                points = spec.sample_points(round_i, ranges)
                pairs = self._execute_points(runner, points)
                all_pairs.extend(pairs)
                self._checkpoint_round(sink, round_i, all_pairs)
                ranked = _rank(pairs, spec.objective, spec.minimize)
                survivors = [p.param_dict() for _s, _d, p, _r in ranked[: spec.top_k]]
                ranges = spec.refine_ranges(ranges, survivors)
        return self._sweep_summary(runner, all_pairs)

    def _checkpoint_round(
        self,
        sink: _CampaignSink,
        round_i: int,
        all_pairs: Sequence[Tuple[SimulationSpec, Optional[SimulationResult]]],
    ) -> None:
        done = sum(1 for _p, r in all_pairs if r is not None)
        self._write_manifest(
            interrupted=False,
            rounds_done=round_i + 1,
            points_enumerated=len(all_pairs),
            points_completed=done,
        )
        sink.emit_campaign(
            "campaign-round",
            campaign=self.spec.name,
            digest=self.digest,
            round=round_i,
            completed=done,
            enumerated=len(all_pairs),
        )

    def _sweep_summary(
        self,
        runner: ExperimentRunner,
        pairs: Sequence[Tuple[SimulationSpec, Optional[SimulationResult]]],
    ) -> Dict[str, Any]:
        spec = self.spec
        assert isinstance(spec, SweepSpec)
        failures = self._failure_lookup(runner)
        points = []
        for point, result in pairs:
            if result is not None:
                points.append(result.to_json_dict())
            else:
                points.append(
                    {
                        "kind": point.kind,
                        "digest": point.digest(),
                        "params": dict(point.params),
                        "error": failures.get(point.digest(), "failed"),
                    }
                )
        doc: Dict[str, Any] = {
            "campaign": spec.name,
            "spec_digest": self.digest,
            "kind": spec.kind,
            "mode": spec.mode,
            "n_points": len(points),
            "n_failed": sum(1 for p in points if "error" in p),
            "events_total": sum(r.events_run for _p, r in pairs if r is not None),
            "points": points,
        }
        if spec.objective:
            ranked = _rank(pairs, spec.objective, spec.minimize)
            doc["objective"] = spec.objective
            doc["minimize"] = spec.minimize
            if ranked:
                signed, digest, best_point, best_result = ranked[0]
                doc["best"] = {
                    "digest": digest,
                    "params": best_result.to_json_dict()["params"],
                    "score": best_result.summary.get(spec.objective),
                }
            else:
                doc["best"] = None
        from repro.metrics.collection_stats import json_sanitize

        return json_sanitize(doc)

    def _run_optimizer(self, runner: ExperimentRunner, sink: _CampaignSink) -> Dict[str, Any]:
        spec = self.spec
        assert isinstance(spec, OptimizerSpec)

        def evaluate(points: Sequence[SimulationSpec]) -> List[Optional[SimulationResult]]:
            return [r for _p, r in self._execute_points(runner, points)]

        rounds_seen = [0]

        def on_round(record: Dict[str, Any]) -> None:
            rounds_seen[0] += 1
            self._write_manifest(
                interrupted=False,
                rounds_done=rounds_seen[0],
                points_completed=None,
            )
            sink.emit_campaign(
                "campaign-round",
                campaign=spec.name,
                digest=self.digest,
                round=record["round"],
                completed=record["valid"],
                enumerated=record["evaluated"],
            )

        outcome: OptimizerOutcome = run_optimizer(spec, evaluate, on_round=on_round)
        return outcome.to_json_dict()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Progress report from disk + cache, without executing anything.

        For grid/random sweeps every point is enumerable up front, so the
        report counts exactly how many are already cached.  For adaptive
        sweeps and the optimizer, rounds are walked as far as the cache can
        re-derive them (a fully cached round determines the next round's
        ranges), so the count reflects true resumable progress.
        """
        spec = self.spec
        mode = getattr(spec, "mode", "optimize")
        manifest = None
        if self.manifest_path.exists():
            manifest = json.loads(self.manifest_path.read_text())
        cached, enumerable = self._cached_progress()
        return {
            "campaign": spec.name,
            "digest": self.digest,
            "kind": spec.kind,
            "mode": mode,
            "state_dir": str(self.state_dir),
            "planned_points": (
                None if isinstance(spec, OptimizerSpec) else spec.total_points()
            ),
            "enumerable_points": enumerable,
            "cached_points": cached,
            "summary_written": self.summary_path.exists(),
            "interrupted": bool(manifest.get("interrupted")) if manifest else False,
            "rounds_done": manifest.get("rounds_done") if manifest else None,
        }

    def _cached_progress(self) -> Tuple[int, int]:
        """(cached, enumerable) point counts derivable without execution."""
        spec = self.spec
        if isinstance(spec, OptimizerSpec):
            return self._walk_cached_optimizer(spec)
        if spec.mode == "grid":
            points = spec.grid_points()
        elif spec.mode == "random":
            points = spec.sample_points(0)
        else:
            return self._walk_cached_adaptive(spec)
        cached = sum(1 for p in points if self.cache.get(_task_digest(p)) is not MISS)
        return cached, len(points)

    def _walk_cached_adaptive(self, spec: SweepSpec) -> Tuple[int, int]:
        ranges: Tuple[RangeSpec, ...] = spec.ranges
        cached = 0
        enumerable = 0
        for round_i in range(spec.rounds):
            points = spec.sample_points(round_i, ranges)
            enumerable += len(points)
            pairs = [(p, self.cache.get(_task_digest(p))) for p in points]
            hits = [(p, r) for p, r in pairs if r is not MISS]
            cached += len(hits)
            if len(hits) < len(points):
                break  # later rounds are not yet determined
            ranked = _rank(hits, spec.objective, spec.minimize)
            survivors = [p.param_dict() for _s, _d, p, _r in ranked[: spec.top_k]]
            ranges = spec.refine_ranges(ranges, survivors)
        return cached, enumerable

    def _walk_cached_optimizer(self, spec: OptimizerSpec) -> Tuple[int, int]:
        from repro.campaign.optimize import _propose
        from repro.campaign.sweep import shrink_ranges

        ranges: Tuple[RangeSpec, ...] = spec.ranges
        cached = 0
        enumerable = 0
        evaluated = 0
        round_i = 0
        while evaluated < spec.budget:
            count = min(spec.batch, spec.budget - evaluated)
            points = _propose(spec, ranges, round_i, count)
            evaluated += len(points)
            enumerable += len(points)
            pairs = [(p, self.cache.get(_task_digest(p))) for p in points]
            hits = [(p, r) for p, r in pairs if r is not MISS]
            cached += len(hits)
            if len(hits) < len(points):
                break
            ranked = _rank(hits, spec.objective, spec.minimize)
            survivors = [p.param_dict() for _s, _d, p, _r in ranked[: spec.top_k]]
            if survivors:
                ranges = shrink_ranges(ranges, survivors, spec.shrink)
            round_i += 1
        return cached, enumerable


def _task_digest(point: SimulationSpec) -> str:
    """The runner cache key for one campaign point (Task digest, not spec digest)."""
    return Task(fn=simulate, arg=point).digest()
