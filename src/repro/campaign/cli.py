"""Campaign CLI: run, resume, inspect, and tune from declarative spec files.

Examples::

    # run the paper's ku/kb ablation grid on 4 workers
    python -m repro.campaign run examples/ablation_kukb.json --workers 4

    # interrupt it (Ctrl-C or SIGTERM), then pick it back up — completed
    # points come back as cache hits, nothing re-executes
    python -m repro.campaign resume examples/ablation_kukb.json --workers 4

    # where is it?  (points cached vs planned, rounds done, summary state)
    python -m repro.campaign status examples/ablation_kukb.json

    # closed-loop estimator tuning (mode: "optimize" spec)
    python -m repro.campaign tune examples/tune_estimator.json

Exit codes: 0 success, 1 usage/spec error, 3 interrupted (resumable).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.campaign.optimize import OptimizerSpec
from repro.campaign.queue import (
    DEFAULT_STATE_ROOT,
    Campaign,
    CampaignInterrupted,
    load_campaign_file,
)
from repro.runner.cache import ResultCache, cache_dir_from_env

EXIT_INTERRUPTED = 3


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="campaign spec file (.json, or .toml on Python >= 3.11)")
    parser.add_argument(
        "--state-dir",
        default=None,
        help=f"campaign state root (default: $REPRO_CAMPAIGN_DIR or {DEFAULT_STATE_ROOT})",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache location (default: $REPRO_CACHE_DIR or {cache_dir_from_env()})",
    )


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument("--workers", type=int, default=1, help="process count (1 = serial)")
    parser.add_argument("--timeout", type=float, default=None, help="per-run timeout (seconds)")
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the summary JSON here ('-' = stdout)",
    )
    parser.add_argument(
        "--stop-after", type=int, default=None, metavar="K",
        help="deterministic forced interruption after K executed runs "
        "(CI smoke / property tests; exits with code 3 like a signal would)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="append campaign + sweep stream records to this JSONL file",
    )
    parser.add_argument("--progress", action="store_true", help="print runner throughput lines")
    parser.add_argument("--quiet", action="store_true", help="suppress the closing report")


def _build_campaign(args: argparse.Namespace) -> Campaign:
    spec = load_campaign_file(args.spec)
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache.default()
    telemetry = None
    if getattr(args, "telemetry", None):
        from repro.obs.stream import JsonlStreamSink

        telemetry = JsonlStreamSink(args.telemetry)
    return Campaign(
        spec,
        state_root=args.state_dir,
        cache=cache,
        workers=getattr(args, "workers", 1),
        timeout_s=getattr(args, "timeout", None),
        telemetry=telemetry,
        progress=getattr(args, "progress", False),
        stop_after=getattr(args, "stop_after", None),
    )


def _cmd_run(args: argparse.Namespace, require_optimizer: bool = False) -> int:
    campaign = _build_campaign(args)
    if require_optimizer and not isinstance(campaign.spec, OptimizerSpec):
        print(
            f"error: {args.spec} is a {getattr(campaign.spec, 'mode', '?')} sweep; "
            "'tune' needs a spec with mode: \"optimize\" (use 'run' instead)",
            file=sys.stderr,
        )
        return 1

    def _on_signal(signum, frame):  # pragma: no cover - exercised via subprocess
        campaign.request_stop()

    previous = {}
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame, None)
        if signum is not None:
            previous[signum] = signal.signal(signum, _on_signal)
    try:
        try:
            doc = campaign.run()
        except CampaignInterrupted as exc:
            stats = campaign.last_stats
            print(
                f"[campaign] interrupted after {exc.completed} executed run(s) "
                f"({stats.cache_hits} cached); state saved under {campaign.state_dir} — "
                f"resume with: python -m repro.campaign resume {args.spec}",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if args.out:
        text = campaign.summary_path.read_text()
        if args.out == "-":
            sys.stdout.write(text)
        else:
            Path(args.out).parent.mkdir(parents=True, exist_ok=True)
            Path(args.out).write_text(text)
    if not args.quiet:
        stats = campaign.last_stats
        line = (
            f"[campaign] {campaign.spec.name}: {stats.executed} executed, "
            f"{stats.cache_hits} cached, {stats.failures} failed; "
            f"summary: {campaign.summary_path}"
        )
        if isinstance(doc, dict) and doc.get("best") not in (None, {}):
            best = doc["best"]
            line += f"\n[campaign] best {doc.get('objective')}: {best.get('score')} at {best.get('params')}"
        elif isinstance(doc, dict) and doc.get("best_params") is not None:
            line += (
                f"\n[campaign] best {doc.get('objective')}: {doc.get('best_score')} "
                f"at {doc.get('best_params')} "
                f"({doc.get('valid_evaluations')}/{doc.get('evaluations')} valid)"
            )
        print(line, file=sys.stderr)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    campaign = _build_campaign(args)
    status = campaign.status()
    json.dump(status, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a campaign spec (resumes automatically)")
    _add_run_args(run_p)
    resume_p = sub.add_parser("resume", help="alias of run: cached points are never re-executed")
    _add_run_args(resume_p)
    tune_p = sub.add_parser("tune", help="run a closed-loop optimizer spec (mode: optimize)")
    _add_run_args(tune_p)
    status_p = sub.add_parser("status", help="report cached/planned progress without executing")
    _add_common(status_p)

    args = parser.parse_args(argv)
    try:
        if args.command in ("run", "resume"):
            return _cmd_run(args)
        if args.command == "tune":
            return _cmd_run(args, require_optimizer=True)
        return _cmd_status(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
