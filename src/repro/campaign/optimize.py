"""Closed-loop estimator tuning: propose -> simulate -> score -> shrink.

The paper fixes its estimator constants (EWMA α = 0.9, ku = 1, kb = 3,
table size, white-bit threshold) by argument and testbed iteration; this
module closes that loop mechanically.  :func:`run_optimizer` is a simple
cross-entropy-style search: each round draws a batch of candidate points
from per-parameter :class:`~repro.campaign.sweep.RangeSpec`\\ s, evaluates
them through a caller-supplied ``evaluate`` callable (the campaign queue,
so every evaluation lands in the result cache and re-runs are free), keeps
the ``top_k`` finite-scored survivors, and shrinks the ranges around them.

Failure surfaces are first-class: NaN/inf/missing objectives mark a point
*invalid* — it can never become the incumbent, and a round where every
point is invalid leaves the ranges untouched (the next round re-samples
the same space at fresh seeds).  The ``budget`` is a hard ceiling on
``simulate()`` calls; exhausting it mid-round truncates the batch rather
than overshooting.

Everything is deterministic in ``(spec digest, seed)``: draws come from
``derive_seed``-keyed streams and survivor selection breaks score ties by
canonical digest, so an interrupted tuning campaign replays the identical
trajectory on resume (earlier rounds coming straight from cache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import KINDS, SimulationResult, SimulationSpec, freeze_value
from repro.campaign.sweep import RangeSpec, shrink_ranges
from repro.runner.hashing import config_digest
from repro.sim.rng import derive_seed

#: An evaluator maps a batch of specs to their results, preserving order.
#: Entries may be ``None`` (skipped/failed run) — counted against the
#: budget but never scored.
Evaluator = Callable[[Sequence[SimulationSpec]], List[Optional[SimulationResult]]]


@dataclass(frozen=True)
class OptimizerSpec:
    """One closed-loop tuning campaign (the ``mode: "optimize"`` file form)."""

    name: str
    kind: str
    #: Constant parameters merged into every candidate (sorted pairs).
    base: Tuple[Tuple[str, Any], ...] = ()
    #: The tuned parameters and their initial search box.
    ranges: Tuple[RangeSpec, ...] = ()
    #: Summary key to optimize (e.g. ``mre``, ``cost``, ``objective``).
    objective: str = "objective"
    minimize: bool = True
    #: Hard ceiling on ``simulate()`` evaluations across all rounds.
    budget: int = 64
    #: Candidate points proposed per round.
    batch: int = 8
    top_k: int = 3
    shrink: float = 0.5
    seed: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown simulation kind {self.kind!r}; choose from {KINDS}")
        if not self.ranges:
            raise ValueError("optimizer needs at least one range to tune")
        if not self.objective:
            raise ValueError("optimizer needs an objective summary key")
        if self.budget <= 0 or self.batch <= 0 or self.top_k <= 0:
            raise ValueError("optimizer needs budget > 0, batch > 0, top_k > 0")
        if not (0.0 < self.shrink < 1.0):
            raise ValueError("optimizer needs 0 < shrink < 1")

    def digest(self) -> str:
        return config_digest(self)

    def to_json_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "campaign": self.name,
            "kind": self.kind,
            "mode": "optimize",
            "ranges": {r.name: r.to_json_dict() for r in self.ranges},
            "objective": self.objective,
            "minimize": self.minimize,
            "budget": self.budget,
            "batch": self.batch,
            "top_k": self.top_k,
            "shrink": self.shrink,
            "seed": self.seed,
        }
        if self.base:
            data["base"] = dict(self.base)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "OptimizerSpec":
        known = {
            "campaign", "kind", "mode", "base", "ranges", "objective",
            "minimize", "budget", "batch", "top_k", "shrink", "seed",
        }
        unknown = sorted(k for k in data if k not in known)
        if unknown:
            raise ValueError(f"unknown optimizer spec key(s) {unknown}; known: {sorted(known)}")
        mode = str(data.get("mode", "optimize"))
        if mode != "optimize":
            raise ValueError(f"optimizer spec has mode {mode!r}; expected 'optimize'")
        return cls(
            name=str(data.get("campaign", "tune")),
            kind=str(data["kind"]),
            base=tuple(sorted(
                (str(k), freeze_value(v)) for k, v in dict(data.get("base", {})).items()
            )),
            ranges=tuple(
                RangeSpec.from_json_dict(str(name), spec)
                for name, spec in dict(data.get("ranges", {})).items()
            ),
            objective=str(data.get("objective", "objective")),
            minimize=bool(data.get("minimize", True)),
            budget=int(data.get("budget", 64)),
            batch=int(data.get("batch", 8)),
            top_k=int(data.get("top_k", 3)),
            shrink=float(data.get("shrink", 0.5)),
            seed=int(data.get("seed", 1)),
        )


@dataclass
class OptimizerOutcome:
    """What a tuning run produced (graceful even when nothing scored)."""

    spec: OptimizerSpec
    #: Best finite-scored point, or ``None`` when every evaluation was
    #: NaN/inf/failed (the graceful-degradation contract).
    best_params: Optional[Dict[str, Any]] = None
    best_score: Optional[float] = None
    evaluations: int = 0
    valid_evaluations: int = 0
    rounds_run: int = 0
    #: True when the run stopped because ``budget`` ran out (vs. rounds
    #: simply completing).
    budget_exhausted: bool = False
    #: Per-round records: ``{"round", "evaluated", "valid", "best_score",
    #: "ranges": {name: [lo, hi]}}`` — the refinement trajectory.
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, Any]:
        from repro.metrics.collection_stats import json_sanitize

        return json_sanitize(
            {
                "campaign": self.spec.name,
                "spec_digest": self.spec.digest(),
                "objective": self.spec.objective,
                "minimize": self.spec.minimize,
                "best_params": self.best_params,
                "best_score": self.best_score,
                "evaluations": self.evaluations,
                "valid_evaluations": self.valid_evaluations,
                "rounds_run": self.rounds_run,
                "budget_exhausted": self.budget_exhausted,
                "history": self.history,
            }
        )


def objective_score(result: Optional[SimulationResult], objective: str) -> Optional[float]:
    """The finite score of one result, or ``None`` when invalid.

    Invalid covers: the run failed (``result is None``), the summary lacks
    the objective key, the value is non-numeric, or it is NaN/±inf.  The
    optimizer treats all four identically — the point simply cannot win.
    """
    if result is None:
        return None
    value = result.summary.get(objective)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    score = float(value)
    if not math.isfinite(score):
        return None
    return score


def _propose(
    spec: OptimizerSpec, ranges: Sequence[RangeSpec], round_index: int, count: int
) -> List[SimulationSpec]:
    base = dict(spec.base)
    points = []
    for i in range(count):
        rng = Random(derive_seed(spec.seed, "campaign", "optimize", round_index, i))
        assignment = {r.name: r.sample(rng) for r in ranges}
        points.append(SimulationSpec.from_params(spec.kind, dict(base, **assignment)))
    return points


def run_optimizer(
    spec: OptimizerSpec,
    evaluate: Evaluator,
    on_round: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> OptimizerOutcome:
    """Run the closed loop to budget exhaustion (see module docstring).

    ``evaluate`` receives each round's batch and must return results in
    order (``None`` entries allowed).  ``on_round`` (optional) observes
    each round's history record as it is produced — the campaign queue
    uses it to emit ``campaign-round`` telemetry and checkpoint progress.
    """
    outcome = OptimizerOutcome(spec=spec)
    ranges: Tuple[RangeSpec, ...] = spec.ranges
    sign = 1.0 if spec.minimize else -1.0
    round_index = 0
    while outcome.evaluations < spec.budget:
        count = min(spec.batch, spec.budget - outcome.evaluations)
        points = _propose(spec, ranges, round_index, count)
        results = evaluate(points)
        if len(results) != len(points):
            raise ValueError(
                f"evaluator returned {len(results)} results for {len(points)} specs"
            )
        outcome.evaluations += len(points)
        scored: List[Tuple[float, str, SimulationSpec]] = []
        for point, result in zip(points, results):
            score = objective_score(result, spec.objective)
            if score is None:
                continue
            # Digest tiebreak keeps survivor order deterministic even when
            # two points score identically (common on plateaus).
            scored.append((sign * score, point.digest(), point))
        scored.sort(key=lambda item: (item[0], item[1]))
        outcome.valid_evaluations += len(scored)
        if scored:
            best_signed, _digest, best_point = scored[0]
            best_score = sign * best_signed
            if outcome.best_score is None or best_signed < sign * outcome.best_score:
                outcome.best_score = best_score
                outcome.best_params = best_point.param_dict()
            survivors = [p.param_dict() for _s, _d, p in scored[: spec.top_k]]
            ranges = shrink_ranges(ranges, survivors, spec.shrink)
        record = {
            "round": round_index,
            "evaluated": len(points),
            "valid": len(scored),
            "best_score": outcome.best_score,
            "ranges": {r.name: [r.lo, r.hi] for r in ranges},
        }
        outcome.history.append(record)
        if on_round is not None:
            on_round(record)
        round_index += 1
    outcome.rounds_run = round_index
    outcome.budget_exhausted = outcome.evaluations >= spec.budget
    return outcome
