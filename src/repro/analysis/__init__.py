"""Terminal rendering for tables, scatter plots, boxplots and trees."""

from repro.analysis.render import boxplot, routing_tree, scatter, table, timeseries

__all__ = ["boxplot", "routing_tree", "scatter", "table", "timeseries"]
