"""Terminal rendering: tables, scatter plots, boxplots, time series, trees.

The paper's figures are regenerated as ASCII so the whole evaluation runs
without a display or plotting dependency.  Each renderer returns a string;
callers print it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def scatter(
    points: Dict[str, Tuple[float, float]],
    width: int = 64,
    height: int = 20,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
    diagonal: bool = False,
) -> str:
    """Labeled scatter plot: one (x, y) point per named series.

    ``diagonal=True`` draws the y = x reference (the paper's "Cost = Depth"
    lower-bound line in Figures 6 and 7).
    """
    if not points:
        return "(no points)"
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if diagonal:
        lo = min(x_lo, y_lo)
        hi = max(x_hi, y_hi)
        x_lo = y_lo = lo
        x_hi = y_hi = hi
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    x_lo -= 0.05 * x_span
    x_hi += 0.05 * x_span
    y_lo -= 0.05 * y_span
    y_hi += 0.05 * y_span
    x_span, y_span = x_hi - x_lo, y_hi - y_lo

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y_hi - y) / y_span * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    if diagonal:
        steps = max(width, height) * 2
        for i in range(steps + 1):
            v = x_lo + x_span * i / steps
            if y_lo <= v <= y_hi:
                r, c = cell(v, v)
                grid[r][c] = "."

    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for i, (name, (x, y)) in enumerate(sorted(points.items())):
        mark = markers[i % len(markers)]
        r, c = cell(x, y)
        grid[r][c] = mark
        legend.append(f"  {mark} = {name} ({x:.2f}, {y:.2f})")

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - y_span * i / (height - 1)
        prefix = f"{y_val:7.2f} |" if i % 4 == 0 else "        |"
        lines.append(prefix + "".join(row))
    lines.append("        +" + "-" * width)
    lines.append(f"         {x_lo:.2f}{' ' * max(1, width - 14)}{x_hi:.2f}")
    lines.append(f"         x: {xlabel}   y: {ylabel}")
    lines.extend(legend)
    return "\n".join(lines)


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    idx = q * (len(sorted_values) - 1)
    lo = int(math.floor(idx))
    hi = int(math.ceil(idx))
    frac = idx - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def boxplot(
    groups: Dict[str, List[float]],
    width: int = 56,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal boxplots (min/Q1/median/Q3/max), one row per group."""
    all_values = [v for vs in groups.values() for v in vs if not math.isnan(v)]
    if not all_values:
        return "(no data)"
    lo = min(all_values) if lo is None else lo
    hi = max(all_values) if hi is None else hi
    span = (hi - lo) or 1.0
    name_w = max(len(n) for n in groups)

    def col(v: float) -> int:
        return max(0, min(width - 1, int((v - lo) / span * (width - 1))))

    lines = []
    if title:
        lines.append(title)
    for name, values in groups.items():
        vs = sorted(v for v in values if not math.isnan(v))
        if not vs:
            lines.append(f"{name.ljust(name_w)} (no data)")
            continue
        q0, q1, q2, q3, q4 = (
            vs[0],
            _quantile(vs, 0.25),
            _quantile(vs, 0.5),
            _quantile(vs, 0.75),
            vs[-1],
        )
        row = [" "] * width
        for c in range(col(q0), col(q4) + 1):
            row[c] = "-"
        for c in range(col(q1), col(q3) + 1):
            row[c] = "="
        row[col(q0)] = "|"
        row[col(q4)] = "|"
        row[col(q2)] = "#"
        stats = (
            f"min={fmt.format(q0)} q1={fmt.format(q1)} med={fmt.format(q2)} "
            f"q3={fmt.format(q3)} max={fmt.format(q4)}"
        )
        lines.append(f"{name.ljust(name_w)} [{''.join(row)}] {stats}")
    lines.append(f"{' ' * name_w}  {fmt.format(lo)}{' ' * max(1, width - 10)}{fmt.format(hi)}")
    return "\n".join(lines)


def timeseries(
    series: Dict[str, List[Tuple[float, Optional[float]]]],
    width: int = 72,
    height: int = 12,
    title: str = "",
    ylabel: str = "",
) -> str:
    """One or more (t, value) series on a shared time axis."""
    values = [v for s in series.values() for _, v in s if v is not None]
    times = [t for s in series.values() for t, _ in s]
    if not values:
        return "(no data)"
    t_lo, t_hi = min(times), max(times)
    v_lo, v_hi = min(values), max(values)
    v_span = (v_hi - v_lo) or 1.0
    t_span = (t_hi - t_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "*o+x@%"
    legend = []
    for i, (name, points) in enumerate(series.items()):
        mark = marks[i % len(marks)]
        legend.append(f"  {mark} = {name}")
        for t, v in points:
            if v is None:
                continue
            col = int((t - t_lo) / t_span * (width - 1))
            row = int((v_hi - v) / v_span * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        v_val = v_hi - v_span * i / (height - 1)
        prefix = f"{v_val:8.2f} |" if i % 3 == 0 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          t={t_lo:.0f}s{' ' * max(1, width - 18)}t={t_hi:.0f}s")
    if ylabel:
        lines.append(f"          y: {ylabel}")
    lines.extend(legend)
    return "\n".join(lines)


def routing_tree(
    parents: Dict[int, Optional[int]],
    depths: Dict[int, Optional[int]],
    root: int,
    title: str = "",
    max_width: int = 100,
) -> str:
    """Indented routing-tree rendering with per-node depth, Figure 2 style."""
    children: Dict[int, List[int]] = {}
    for node, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(node)
    lines = []
    if title:
        lines.append(title)

    def visit(node: int, depth: int, seen: set) -> None:
        if node in seen or depth > 20:
            return
        seen.add(node)
        kids = sorted(children.get(node, []))
        label = f"{'  ' * depth}{node}"
        if kids:
            label += f"  ({len(kids)} children)"
        lines.append(label[:max_width])
        for kid in kids:
            visit(kid, depth + 1, seen)

    visit(root, 0, set())
    orphans = [n for n, d in depths.items() if d is None and n != root]
    if orphans:
        lines.append(f"disconnected: {sorted(orphans)}")
    histogram: Dict[int, int] = {}
    for n, d in depths.items():
        if n != root and d is not None:
            histogram[d] = histogram.get(d, 0) + 1
    lines.append(
        "depth histogram: "
        + "  ".join(f"{d}:{histogram[d]}" for d in sorted(histogram))
    )
    return "\n".join(lines)
