"""Standalone sweep CLI for the parallel experiment runner.

Runs a (protocol × tx-power × seed) collection grid through
:class:`~repro.runner.runner.ExperimentRunner` and prints one summary row
per cell plus runner throughput stats.  Examples::

    # 2-core smoke sweep, cached in .repro-cache (the CI invocation)
    python -m repro.runner --protocols 4b,mhlqi --powers 0 --seeds 2 \\
        --nodes 20 --minutes 4 --workers 2 --cache-dir .repro-cache

    # full fig7-style power sweep on 4 workers, JSON results
    python -m repro.runner --protocols 4b,mhlqi --powers 0,-10,-20 \\
        --seeds 4 --workers 4 --json results/sweep.json

    # drop every cached result
    python -m repro.runner --clear-cache
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.runner.cache import ResultCache, cache_dir_from_env
from repro.runner.runner import ExperimentRunner


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--protocols", default="4b,mhlqi", help="comma-separated protocol keys")
    parser.add_argument("--powers", default="0", help="comma-separated tx powers (dBm)")
    parser.add_argument("--seeds", type=int, default=2, help="run seeds 1..N per cell")
    parser.add_argument("--profile", default="mirage", help="testbed profile name")
    parser.add_argument("--nodes", type=int, default=None, help="shrink the testbed to N nodes")
    parser.add_argument("--minutes", type=float, default=7.0, help="simulated minutes per run")
    parser.add_argument("--warmup", type=float, default=2.0, help="warmup minutes")
    parser.add_argument("--workers", type=int, default=1, help="process count (1 = serial)")
    parser.add_argument("--timeout", type=float, default=None, help="per-run timeout (seconds)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache location (default: $REPRO_CACHE_DIR or {cache_dir_from_env()})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write results as JSON ('-' = stdout; summary rows then move to stderr)",
    )
    parser.add_argument("--clear-cache", action="store_true", help="delete cached results and exit")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress, summary rows and stats"
    )
    parser.add_argument(
        "--profile-events",
        action="store_true",
        help="profile the event loop in every run and report where time went",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PRESET|FILE",
        help="inject faults: a preset name (e.g. reboot_storm) or a JSON "
        "scenario file; implies --collect-metrics so faults.* counters "
        "surface in the summary",
    )
    parser.add_argument(
        "--mobility",
        default=None,
        metavar="PRESET|FILE",
        help="random-waypoint motion: a preset name (pedestrian, vehicular) "
        "or a MobilityConfig JSON file; default is a static network",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="run the invariant checker in every run (fails loudly on a "
        "violated structural property)",
    )
    parser.add_argument(
        "--medium",
        default="exact",
        choices=("exact", "fast"),
        help="radio medium backend: 'exact' is the bit-identical scalar "
        "path; 'fast' is the vectorized, spatially-culled backend "
        "(distribution-equivalent — see DESIGN.md §9)",
    )
    parser.add_argument(
        "--live-telemetry",
        default=None,
        metavar="PATH",
        help="stream live telemetry (JSONL) from every run and the sweep "
        "itself to PATH; follow it with `python -m repro.obs tail -f PATH`. "
        "Disables the result cache — a cached run never executes, so it "
        "would stream nothing",
    )
    parser.add_argument(
        "--telemetry-period",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="simulated seconds between telemetry snapshots (with --live-telemetry)",
    )
    args = parser.parse_args(argv)

    if args.clear_cache:
        cache = ResultCache(args.cache_dir)
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.root}")
        return 0
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.live_telemetry is not None and cache is not None:
        print(
            "[runner] --live-telemetry disables the result cache "
            "(cached runs never execute, so they would stream nothing)",
            file=sys.stderr,
        )
        cache = None

    # Imported late so `--help`/`--clear-cache` stay instant.
    from repro.experiments.common import Cell, ExperimentScale, run_cells

    scale = ExperimentScale(
        profile_name=args.profile,
        n_nodes=args.nodes,
        duration_s=args.minutes * 60.0,
        warmup_s=args.warmup * 60.0,
        seeds=tuple(range(1, args.seeds + 1)),
    )
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    powers = [float(p) for p in args.powers.split(",") if p.strip()]
    overrides = {"profile_events": True} if args.profile_events else {}
    if args.faults is not None:
        from repro.faults.presets import PRESET_NAMES
        from repro.faults.schedule import FaultSchedule

        if args.faults in PRESET_NAMES:
            overrides["faults"] = args.faults
        elif Path(args.faults).exists():
            # File scenarios are loaded here so the cache key reflects the
            # schedule's *content*, not the path it happened to live at.
            overrides["faults"] = FaultSchedule.from_json_file(args.faults)
        else:
            parser.error(
                f"--faults {args.faults!r}: not a preset {PRESET_NAMES} "
                f"and no such file"
            )
        overrides["collect_metrics"] = True
    if args.mobility is not None:
        from repro.sim.mobility import MOBILITY_PRESETS, MobilityConfig

        if args.mobility in MOBILITY_PRESETS:
            overrides["mobility"] = args.mobility
        elif Path(args.mobility).exists():
            # Like --faults FILE: load here so the cache key digests the
            # config's *content*, not the path it happened to live at.
            overrides["mobility"] = MobilityConfig.from_json_file(args.mobility)
        else:
            parser.error(
                f"--mobility {args.mobility!r}: not a preset "
                f"{sorted(MOBILITY_PRESETS)} and no such file"
            )
    if args.check_invariants:
        overrides["check_invariants"] = True
    if args.medium != "exact":
        # Only non-default backends enter the override table, so existing
        # exact-path cache keys are unaffected by the flag's presence.
        overrides["medium"] = args.medium
    if args.live_telemetry is not None:
        overrides["telemetry_period_s"] = args.telemetry_period
        overrides["telemetry_path"] = args.live_telemetry
    cells = [
        Cell.make(proto, label=f"{proto} @{power:+.0f}dBm", tx_power_dbm=power, **overrides)
        for power in powers
        for proto in protocols
    ]

    telemetry_sink = None
    if args.live_telemetry is not None:
        from repro.obs.stream import JsonlStreamSink

        telemetry_sink = JsonlStreamSink(args.live_telemetry)
    runner = ExperimentRunner(
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        progress=not args.quiet,
        telemetry=telemetry_sink,
    )
    averaged = run_cells(scale, cells, runner)
    if telemetry_sink is not None:
        telemetry_sink.close()

    # Only JSON may touch stdout when `--json -` is in play: summary rows
    # move to stderr so `python -m repro.runner --json - | jq` stays valid.
    rows_out = sys.stderr if args.json == "-" else sys.stdout
    if not args.quiet:
        for result in averaged:
            print(result.summary_row(), file=rows_out)
        if args.faults is not None:
            totals = {}
            for result in averaged:
                for run in result.runs:
                    for key, value in (run.metrics or {}).items():
                        name = key.split("{", 1)[0]
                        if name.startswith("faults."):
                            totals[name] = totals.get(name, 0) + value
            for name in sorted(totals):
                print(f"  {name} = {totals[name]:g}", file=rows_out)
        print(runner.stats.summary(), file=sys.stderr)
        if args.profile_events:
            print(runner.stats.profile_report(), file=sys.stderr)

    if args.json:
        payload = {
            "scale": {
                "profile": args.profile,
                "n_nodes": args.nodes,
                "duration_s": scale.duration_s,
                "warmup_s": scale.warmup_s,
                "seeds": list(scale.seeds),
            },
            "cells": [r.to_json_dict() for r in averaged],
            "runner": {
                "workers": args.workers,
                "cache_hits": runner.stats.cache_hits,
                "executed": runner.stats.executed,
                "events_run": runner.stats.events_run,
                "wall_s": runner.stats.wall_s,
                "cpu_s": runner.stats.resources.get("cpu_s"),
                "max_rss_kb": runner.stats.resources.get("max_rss_kb"),
                "profile": runner.stats.profile,
            },
        }
        # to_json_dict maps inf/NaN to null, so strict JSON is safe here.
        text = json.dumps(payload, indent=2, allow_nan=False) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            path = Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
