"""Parallel experiment runner with on-disk result caching.

Because every simulation is a pure function of its configuration (the
named-substream RNG in :mod:`repro.sim.rng` guarantees it), sweeps over
(protocol × seed × power) grids are embarrassingly parallel and perfectly
cacheable.  This package provides:

* :func:`~repro.runner.hashing.config_digest` — canonical, cross-process
  stable hash of a (possibly nested dataclass) configuration;
* :class:`~repro.runner.cache.ResultCache` — pickle-per-digest on-disk
  store with atomic writes;
* :class:`~repro.runner.runner.ExperimentRunner` — process-pool fan-out
  with chunked submission, per-run timeouts, crash isolation, and
  progress/throughput reporting.

Run a standalone sweep with ``python -m repro.runner --help``; the figure
modules in :mod:`repro.experiments` accept a ``runner=`` argument and
otherwise build one from the environment (``REPRO_WORKERS``,
``REPRO_CACHE``, ``REPRO_CACHE_DIR``).
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, MISS, ResultCache, cache_dir_from_env
from repro.runner.hashing import CACHE_SCHEMA_VERSION, canonical_bytes, config_digest
from repro.runner.runner import (
    ExperimentRunner,
    RunFailure,
    RunnerError,
    RunnerStats,
    RunTimeout,
    Task,
    default_runner,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "MISS",
    "ExperimentRunner",
    "ResultCache",
    "RunFailure",
    "RunnerError",
    "RunnerStats",
    "RunTimeout",
    "Task",
    "cache_dir_from_env",
    "canonical_bytes",
    "config_digest",
    "default_runner",
]
